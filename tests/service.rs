//! End-to-end tests of the submit/queue/dispatch service behind the
//! monitor's HTTP front door, plus the chaos + crash-recovery gates.
//!
//! The fault-*injection* tests require `--features failpoints`:
//!
//! ```text
//! cargo test --test service --features failpoints
//! ```
//!
//! Chaos gate: every injected fault — at submit, journal append, dispatch,
//! or retry — must yield a *typed terminal state* visible over
//! `/progress/{id}` and SSE, with no hung submissions. Crash gate: a
//! simulated crash (abrupt shutdown + torn journal tail) followed by a
//! reopen must re-dispatch all pending work exactly once, with the torn
//! line reported as a diagnostic.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use qprog::prelude::*;
use qprog::svc::AdmissionConfig;
use qprog::ServiceRuntime;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(qprog::datagen::customer_table(
        "customer", 20_000, 1.0, 200, 3,
    ))
    .unwrap();
    c.register(qprog::datagen::nation_table("nation", 200))
        .unwrap();
    c
}

const JOIN_SQL: &str =
    "SELECT count(*) FROM customer JOIN nation ON customer.nationkey = nation.nationkey";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qprog-service-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Build a monitored session (fresh server on an OS-assigned port).
fn monitored_session() -> Session {
    SessionBuilder::new(catalog())
        .observability(Observability::new().serve_on("127.0.0.1:0"))
        .build()
        .unwrap()
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

fn get(addr: SocketAddr, path: &str) -> String {
    http(addr, "GET", path, "")
}

fn submit(addr: SocketAddr, tenant: &str, sql: &str) -> (u16, String) {
    let body = format!(
        "{{\"sql\":\"{}\",\"tenant\":\"{tenant}\"}}",
        sql.replace('"', "\\\"")
    );
    let out = http(addr, "POST", "/submit", &body);
    let status: u16 = out
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = out.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

fn field_u64(body: &str, key: &str) -> Option<u64> {
    let at = body.find(&format!("\"{key}\":"))?;
    let rest = &body[at + key.len() + 3..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Poll `/progress/{id}` until `pred` matches (or fail after `timeout`).
fn await_progress(
    addr: SocketAddr,
    id: u64,
    timeout: Duration,
    pred: impl Fn(&str) -> bool,
) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        let detail = get(addr, &format!("/progress/{id}"));
        if pred(&detail) {
            return detail;
        }
        assert!(
            Instant::now() < deadline,
            "progress condition never met for query {id}: {detail}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The failpoint registry is process-global; every test holds the scenario
/// lock so faults cannot bleed across tests (no-op without the feature).
fn scenario() -> qprog::fault::FailScenario {
    qprog::fault::FailScenario::setup()
}

#[test]
fn submitted_query_runs_to_done_visible_over_http_and_sse() {
    let _scenario = scenario();
    let dir = temp_dir("done");
    let session = monitored_session();
    let addr = session.monitor().unwrap().addr();
    let runtime = ServiceRuntime::start(session, &dir, ServiceConfig::default()).unwrap();

    let (status, body) = submit(addr, "acme", JOIN_SQL);
    assert_eq!(status, 202, "{body}");
    let id = field_u64(&body, "id").expect("ticket id");

    let detail = await_progress(addr, id, Duration::from_secs(10), |d| {
        d.contains("\"state\":\"done\"")
    });
    assert!(detail.contains("\"tenant\":\"acme\""), "{detail}");
    assert!(detail.contains("\"rows\":1"), "{detail}");
    assert!(detail.contains("\"done\":true"), "{detail}");
    // Per-operator detail attached by the adopted execution.
    assert!(detail.contains("\"ops\":["), "{detail}");

    // A late SSE subscriber still sees a terminal frame (synthesized from
    // the directory when the broadcast predates the subscription).
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET /progress/{id}/stream HTTP/1.1\r\nHost: t\r\n\r\n"
    )
    .unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut out = String::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => out.push_str(&String::from_utf8_lossy(&buf[..n])),
        }
    }
    assert!(out.contains("event: terminal\n"), "{out}");
    assert!(out.contains("\"done\":true"), "{out}");

    let stats = get(addr, "/service");
    assert!(stats.contains("\"finished\":1"), "{stats}");
    runtime.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn span_tree_is_gapless_and_reconciles_with_the_journal_wall_time() {
    let _scenario = scenario();
    let dir = temp_dir("spans");
    let session = monitored_session();
    let addr = session.monitor().unwrap().addr();
    let runtime = ServiceRuntime::start(session, &dir, ServiceConfig::default()).unwrap();

    let (status, body) = submit(addr, "acme", JOIN_SQL);
    assert_eq!(status, 202, "{body}");
    let id = field_u64(&body, "id").expect("ticket id");
    await_progress(addr, id, Duration::from_secs(10), |d| {
        d.contains("\"state\":\"done\"")
    });

    // Gapless tiling: the lifecycle phases sum exactly to the root span.
    let totals = runtime.service().span_totals(id).expect("span totals");
    assert_eq!(totals.attempts, 1, "{totals:?}");
    assert!(totals.exec_us > 0, "{totals:?}");
    let phases = totals.submit_us
        + totals.queue_wait_us
        + totals.backoff_us
        + totals.exec_us
        + totals.finalize_us;
    assert_eq!(phases, totals.total_us, "gap in the span tree: {totals:?}");

    // The assembled tree nests strictly and agrees with the raw totals.
    let events = runtime.service().span_events(id).expect("span events");
    let tree = qprog::obs::SpanTree::from_events(&events, &[]);
    let violations = tree.nesting_violations();
    assert!(violations.is_empty(), "{violations:?}");
    let lt = tree.lifecycle_totals();
    assert_eq!(lt.total_us, totals.total_us);
    assert_eq!(lt.queue_wait_us, totals.queue_wait_us);
    assert_eq!(lt.exec_us, totals.exec_us);
    assert_eq!(lt.attempts, 1);

    // The journal's terminal record and the span tree describe the same
    // wall time (within 1%; in fact the clocks are shared, so exactly).
    let journal = std::fs::read_to_string(dir.join(qprog::svc::JOURNAL_FILE)).unwrap();
    let wall = journal
        .lines()
        .filter(|l| l.contains("\"op\":\"terminal\"") && l.contains(&format!("\"id\":{id},")))
        .filter_map(|l| field_u64(l, "wall_us"))
        .next_back()
        .expect("terminal journal record with wall_us");
    let diff = wall.abs_diff(totals.total_us) as f64;
    assert!(
        diff <= 0.01 * (wall.max(1) as f64),
        "journal wall {wall}us vs span total {}us",
        totals.total_us
    );

    // Per-tenant SLO aggregates surface in /service stats.
    let stats = get(addr, "/service");
    assert!(stats.contains("\"tenant\":\"acme\""), "{stats}");
    assert!(stats.contains("\"queue_wait_us\":"), "{stats}");
    assert!(stats.contains("\"exec_us\":"), "{stats}");
    assert!(stats.contains("\"deadline_miss_queue\":0"), "{stats}");
    assert!(stats.contains("\"deadline_miss_exec\":0"), "{stats}");
    assert!(stats.contains("\"completed\":1"), "{stats}");

    runtime.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_sql_is_rejected_at_submit_time_with_400() {
    let _scenario = scenario();
    let dir = temp_dir("badsql");
    let session = monitored_session();
    let addr = session.monitor().unwrap().addr();
    let runtime = ServiceRuntime::start(session, &dir, ServiceConfig::default()).unwrap();
    let (status, body) = submit(addr, "t", "SELECT * FROM no_such_table");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("{\"error\":"), "{body}");
    // Nothing was admitted; no worker burned a dispatch on it.
    assert!(get(addr, "/service").contains("\"admitted\":0"));
    runtime.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn abusive_tenant_is_shed_while_polite_tenant_is_served() {
    let _scenario = scenario();
    let dir = temp_dir("fair");
    let session = monitored_session();
    let addr = session.monitor().unwrap().addr();
    let cfg = ServiceConfig {
        admission: AdmissionConfig {
            max_queue_depth: 64,
            max_tenant_inflight: 4,
            retry_after: Duration::from_secs(1),
        },
        workers: 0, // hold everything queued so caps are observable
        ..ServiceConfig::default()
    };
    let runtime = ServiceRuntime::start(session, &dir, cfg).unwrap();

    // The abusive tenant floods; past its in-flight cap it gets typed 429s.
    let mut flood_accepted = 0;
    let mut flood_shed = 0;
    for _ in 0..12 {
        let (status, body) = submit(addr, "flood", "SELECT * FROM nation");
        match status {
            202 => flood_accepted += 1,
            429 => {
                assert!(body.contains("tenant_cap"), "{body}");
                flood_shed += 1;
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert_eq!(flood_accepted, 4, "cap bounds the abusive tenant");
    assert_eq!(flood_shed, 8);

    // The polite tenant is unaffected by the flood.
    let (status, _) = submit(addr, "polite", "SELECT * FROM nation");
    assert_eq!(status, 202);

    let stats = get(addr, "/service");
    assert!(stats.contains("\"tenant\":\"polite\""), "{stats}");
    runtime.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_over_http_reaches_a_cancelled_terminal() {
    let _scenario = scenario();
    let dir = temp_dir("cancel");
    let session = monitored_session();
    let addr = session.monitor().unwrap().addr();
    let cfg = ServiceConfig {
        workers: 0, // keep it queued: cancellation must not need a worker
        ..ServiceConfig::default()
    };
    let runtime = ServiceRuntime::start(session, &dir, cfg).unwrap();
    let (status, body) = submit(addr, "t", JOIN_SQL);
    assert_eq!(status, 202, "{body}");
    let id = field_u64(&body, "id").unwrap();

    let cancelled = http(addr, "POST", &format!("/progress/{id}/cancel"), "");
    assert!(cancelled.contains("\"state\":\"cancelled\""), "{cancelled}");
    let detail = await_progress(addr, id, Duration::from_secs(5), |d| {
        d.contains("\"state\":\"failed\"")
    });
    assert!(detail.contains("\"failure\":\"cancelled\""), "{detail}");
    assert_eq!(
        runtime.service().status(id).unwrap().state,
        JobState::Failed
    );
    runtime.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_drain_flushes_every_terminal_and_stops_admission() {
    let _scenario = scenario();
    let dir = temp_dir("drain");
    let session = monitored_session();
    let addr = session.monitor().unwrap().addr();
    let runtime = ServiceRuntime::start(
        session,
        &dir,
        ServiceConfig {
            workers: 2,
            drain_timeout: Duration::from_secs(10),
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let mut ids = Vec::new();
    for _ in 0..6 {
        let (status, body) = submit(addr, "t", JOIN_SQL);
        assert_eq!(status, 202, "{body}");
        ids.push(field_u64(&body, "id").unwrap());
    }
    runtime.drain();
    // After drain every accepted submission is terminal — none hung.
    let stats = runtime.service().stats();
    assert_eq!(stats.finished + stats.failed, 6, "{stats:?}");
    for id in ids {
        let s = runtime.service().status(id).unwrap();
        assert!(
            matches!(s.state, JobState::Finished | JobState::Failed),
            "query {id} not terminal after drain: {s:?}"
        );
    }
    // Admission is closed: new submissions bounce with a typed 503.
    let (status, body) = submit(addr, "t", JOIN_SQL);
    assert_eq!(status, 503, "{body}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_recovery_redispatches_pending_work_exactly_once() {
    let _scenario = scenario();
    let dir = temp_dir("crash");
    let addr_a;
    // Phase 1: accept work with no workers (nothing dispatches), then shut
    // down abruptly — the crash-adjacent path: journal intact, no
    // terminals.
    {
        let session = monitored_session();
        addr_a = session.monitor().unwrap().addr();
        let runtime = ServiceRuntime::start(
            session,
            &dir,
            ServiceConfig {
                workers: 0,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        for _ in 0..5 {
            let (status, _) = submit(addr_a, "t", "SELECT * FROM nation");
            assert_eq!(status, 202);
        }
        assert_eq!(runtime.service().stats().queue_depth, 5);
        drop(runtime); // abrupt shutdown: pending stays journaled
    }
    // Simulate a torn final append (process died mid-write).
    let journal = dir.join(qprog::svc::JOURNAL_FILE);
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal)
            .unwrap();
        f.write_all(b"{\"op\":\"submit\",\"id\":99,\"tena").unwrap();
    }
    // Phase 2: reopen with workers; every pending entry re-dispatches
    // exactly once and the torn tail is a diagnostic, not an error.
    {
        let session = monitored_session();
        let addr = session.monitor().unwrap().addr();
        let runtime = ServiceRuntime::start(session, &dir, ServiceConfig::default()).unwrap();
        assert!(
            runtime
                .service()
                .recovery_diagnostics()
                .iter()
                .any(|d| d.contains("torn")),
            "{:?}",
            runtime.service().recovery_diagnostics()
        );
        let deadline = Instant::now() + Duration::from_secs(10);
        while runtime.service().stats().finished < 5 {
            assert!(
                Instant::now() < deadline,
                "recovered work never finished: {:?}",
                runtime.service().stats()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        let stats = runtime.service().stats();
        assert_eq!(stats.finished, 5, "{stats:?}");
        assert_eq!(stats.dispatched, 5, "exactly once: {stats:?}");
        assert_eq!(stats.failed, 0, "{stats:?}");
        // Recovered ids are visible over HTTP like any submission.
        let listed = get(addr, "/progress");
        assert!(listed.contains("\"tenant\":\"t\""), "{listed}");
        runtime.drain();
    }
    // Phase 3: a third open finds no pending work — nothing runs twice.
    {
        let session = monitored_session();
        let runtime = ServiceRuntime::start(session, &dir, ServiceConfig::default()).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let stats = runtime.service().stats();
        assert_eq!(
            stats.dispatched, 0,
            "re-dispatch after clean drain: {stats:?}"
        );
        runtime.drain();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(feature = "failpoints")]
mod chaos {
    use super::*;
    use qprog::fault;

    #[test]
    fn submit_fault_is_a_typed_500_and_the_service_keeps_serving() {
        let dir = temp_dir("fp-submit");
        let session = monitored_session();
        let addr = session.monitor().unwrap().addr();
        let _scenario = fault::FailScenario::setup();
        let runtime = ServiceRuntime::start(session, &dir, ServiceConfig::default()).unwrap();
        fault::configure("service/submit", "1*error(chaos: submit torn)").unwrap();
        let (status, body) = submit(addr, "t", "SELECT * FROM nation");
        assert_eq!(status, 500, "{body}");
        assert!(body.contains("{\"error\":\"internal\""), "{body}");
        // The fault was one-shot: the service recovers immediately.
        let (status, body) = submit(addr, "t", "SELECT * FROM nation");
        assert_eq!(status, 202, "{body}");
        let id = field_u64(&body, "id").unwrap();
        await_progress(addr, id, Duration::from_secs(10), |d| {
            d.contains("\"state\":\"done\"")
        });
        runtime.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_fault_rejects_the_submission_without_accepting_it() {
        let dir = temp_dir("fp-journal");
        let session = monitored_session();
        let addr = session.monitor().unwrap().addr();
        let _scenario = fault::FailScenario::setup();
        let runtime = ServiceRuntime::start(session, &dir, ServiceConfig::default()).unwrap();
        fault::configure("service/journal/append", "1*error(chaos: disk full)").unwrap();
        let (status, body) = submit(addr, "t", "SELECT * FROM nation");
        assert_eq!(status, 500, "{body}");
        // Not accepted: nothing to recover, nothing hung.
        assert_eq!(runtime.service().stats().admitted, 0);
        // And durable work still flows afterwards.
        let (status, _) = submit(addr, "t", "SELECT * FROM nation");
        assert_eq!(status, 202);
        runtime.drain();
        assert_eq!(runtime.service().stats().finished, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dispatch_fault_retries_to_success_under_one_query_id() {
        let dir = temp_dir("fp-dispatch");
        let session = monitored_session();
        let addr = session.monitor().unwrap().addr();
        let _scenario = fault::FailScenario::setup();
        let cfg = ServiceConfig {
            retry: RetryPolicy {
                base: Duration::from_millis(10),
                cap: Duration::from_millis(50),
                ..RetryPolicy::default()
            },
            ..ServiceConfig::default()
        };
        let runtime = ServiceRuntime::start(session, &dir, cfg).unwrap();
        fault::configure("service/dispatch", "1*error(chaos: dispatch glitch)").unwrap();
        let (status, body) = submit(addr, "t", "SELECT * FROM nation");
        assert_eq!(status, 202, "{body}");
        let id = field_u64(&body, "id").unwrap();
        // The injected fault is transient → retried → done, same id.
        let detail = await_progress(addr, id, Duration::from_secs(10), |d| {
            d.contains("\"state\":\"done\"")
        });
        assert!(detail.contains("\"attempt\":2"), "{detail}");
        let stats = runtime.service().stats();
        assert!(stats.retries >= 1, "{stats:?}");
        assert_eq!(stats.finished, 1, "{stats:?}");
        runtime.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_fault_abandons_into_a_typed_terminal_visible_over_sse() {
        let dir = temp_dir("fp-retry");
        let session = monitored_session();
        let addr = session.monitor().unwrap().addr();
        let _scenario = fault::FailScenario::setup();
        let runtime = ServiceRuntime::start(session, &dir, ServiceConfig::default()).unwrap();
        // Dispatch always faults; the retry machinery itself faults once →
        // the submission must still end in a typed terminal, not a hang.
        fault::configure("service/dispatch", "error(chaos: dispatch down)").unwrap();
        fault::configure("service/retry", "1*error(chaos: retry broker down)").unwrap();
        let (status, body) = submit(addr, "t", "SELECT * FROM nation");
        assert_eq!(status, 202, "{body}");
        let id = field_u64(&body, "id").unwrap();
        let detail = await_progress(addr, id, Duration::from_secs(10), |d| {
            d.contains("\"state\":\"failed\"")
        });
        assert!(detail.contains("\"failure\":\"injected\""), "{detail}");
        let status = runtime.service().status(id).unwrap();
        assert!(
            status
                .detail
                .as_deref()
                .unwrap_or("")
                .contains("retry abandoned"),
            "{status:?}"
        );
        // SSE subscribers learn the ending too.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET /progress/{id}/stream HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        .unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut out = String::new();
        let mut buf = [0u8; 4096];
        loop {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => out.push_str(&String::from_utf8_lossy(&buf[..n])),
            }
        }
        assert!(out.contains("event: terminal\n"), "{out}");
        assert!(out.contains("\"failure\":\"injected\""), "{out}");
        runtime.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retried_chaos_run_spans_attribute_backoff_and_still_reconcile() {
        let dir = temp_dir("fp-spans");
        let session = monitored_session();
        let addr = session.monitor().unwrap().addr();
        let _scenario = fault::FailScenario::setup();
        let cfg = ServiceConfig {
            retry: RetryPolicy {
                base: Duration::from_millis(20),
                cap: Duration::from_millis(80),
                ..RetryPolicy::default()
            },
            ..ServiceConfig::default()
        };
        let runtime = ServiceRuntime::start(session, &dir, cfg).unwrap();
        // Fault inside the engine so attempt 1 genuinely executes (and is
        // counted) before the retry park and the successful attempt 2.
        fault::configure("exec/scan/next", "1*error(chaos: page gone)").unwrap();
        let (status, body) = submit(addr, "t", "SELECT * FROM nation");
        assert_eq!(status, 202, "{body}");
        let id = field_u64(&body, "id").unwrap();
        await_progress(addr, id, Duration::from_secs(10), |d| {
            d.contains("\"state\":\"done\"")
        });

        let totals = runtime.service().span_totals(id).expect("span totals");
        assert_eq!(totals.attempts, 2, "{totals:?}");
        assert!(totals.backoff_us > 0, "retry park unattributed: {totals:?}");
        assert!(totals.exec_us > 0, "{totals:?}");
        let phases = totals.submit_us
            + totals.queue_wait_us
            + totals.backoff_us
            + totals.exec_us
            + totals.finalize_us;
        assert_eq!(phases, totals.total_us, "gap in retried tree: {totals:?}");

        let events = runtime.service().span_events(id).unwrap();
        let tree = qprog::obs::SpanTree::from_events(&events, &[]);
        assert!(
            tree.nesting_violations().is_empty(),
            "{:?}",
            tree.nesting_violations()
        );
        assert_eq!(tree.lifecycle_totals().attempts, 2);

        let journal = std::fs::read_to_string(dir.join(qprog::svc::JOURNAL_FILE)).unwrap();
        let wall = journal
            .lines()
            .filter(|l| l.contains("\"op\":\"terminal\"") && l.contains(&format!("\"id\":{id},")))
            .filter_map(|l| field_u64(l, "wall_us"))
            .next_back()
            .expect("terminal journal record");
        let diff = wall.abs_diff(totals.total_us) as f64;
        assert!(
            diff <= 0.01 * (wall.max(1) as f64),
            "journal wall {wall}us vs span total {}us",
            totals.total_us
        );

        // Attempt-count attribution reaches the tenant SLO stats.
        let stats = get(addr, "/service");
        assert!(stats.contains("\"attempts\":2"), "{stats}");
        runtime.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_level_fault_retries_and_recovers() {
        let dir = temp_dir("fp-engine");
        let session = monitored_session();
        let addr = session.monitor().unwrap().addr();
        let _scenario = fault::FailScenario::setup();
        let cfg = ServiceConfig {
            retry: RetryPolicy {
                base: Duration::from_millis(10),
                cap: Duration::from_millis(50),
                ..RetryPolicy::default()
            },
            ..ServiceConfig::default()
        };
        let runtime = ServiceRuntime::start(session, &dir, cfg).unwrap();
        // The fault fires inside the engine (scan getnext), not the
        // service: the run aborts as injected, the service retries, and
        // the second attempt succeeds.
        fault::configure("exec/scan/next", "1*error(chaos: page gone)").unwrap();
        let (status, body) = submit(addr, "t", "SELECT * FROM nation");
        assert_eq!(status, 202, "{body}");
        let id = field_u64(&body, "id").unwrap();
        let detail = await_progress(addr, id, Duration::from_secs(10), |d| {
            d.contains("\"state\":\"done\"")
        });
        assert!(detail.contains("\"rows\":200"), "{detail}");
        assert!(runtime.service().stats().retries >= 1);
        runtime.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
