//! Randomized invariants on the core data structures and estimators,
//! cross-checked against brute-force models.
//!
//! Formerly property-based via `proptest`; now driven by the vendored
//! deterministic PRNG so the workspace builds with no external crates.
//! Each property runs over many seeded random cases, including the empty
//! and size-one edges proptest used to shrink towards.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use qprog::core::freq_hist::FreqHist;
use qprog::core::gee::Gee;
use qprog::core::gnm::{PipelineProgress, ProgressSnapshot};
use qprog::core::join_est::{OnceJoinEstimator, SymmetricJoinEstimator};
use qprog::core::mle::mle_estimate;
use qprog::core::pipeline_est::{AttrSource, JoinSpec, PipelineEstimator};
use qprog_types::{Key, Row, Value};

const CASES: u64 = 64;

/// A random vector with length drawn from `0..=max_len` (always exercising
/// the empty and singleton edges in the first two cases) and values drawn
/// from `lo..hi`.
fn rand_vec(rng: &mut StdRng, case: u64, max_len: usize, lo: i64, hi: i64) -> Vec<i64> {
    let len = match case {
        0 => 0,
        1 => 1,
        _ => rng.random_range(0..=max_len),
    };
    (0..len).map(|_| rng.random_range(lo..hi)).collect()
}

fn keys(vals: &[i64]) -> Vec<Key> {
    vals.iter().map(|&v| Key::Int(v)).collect()
}

fn exact_join(r: &[i64], s: &[i64]) -> u64 {
    r.iter()
        .map(|a| s.iter().filter(|&&b| b == *a).count() as u64)
        .sum()
}

/// FreqHist's incrementally maintained aggregates always match direct
/// recomputation from the raw counts.
#[test]
fn freq_hist_aggregates_consistent() {
    let mut rng = StdRng::seed_from_u64(0xf4e9);
    for case in 0..CASES {
        let vals = rand_vec(&mut rng, case, 300, -20, 20);
        let mut h = FreqHist::new();
        for k in keys(&vals) {
            h.observe(&k);
        }
        let direct_counts: std::collections::HashMap<i64, u64> =
            vals.iter()
                .fold(std::collections::HashMap::new(), |mut m, &v| {
                    *m.entry(v).or_default() += 1;
                    m
                });
        assert_eq!(h.total(), vals.len() as u64);
        assert_eq!(h.distinct(), direct_counts.len() as u64);
        let direct_sum_sq: u128 = direct_counts
            .values()
            .map(|&c| (c as u128) * (c as u128))
            .sum();
        assert_eq!(h.sum_squared_counts(), direct_sum_sq);
        let direct_singletons = direct_counts.values().filter(|&&c| c == 1).count() as u64;
        assert_eq!(h.singletons(), direct_singletons);
        // frequency classes partition the distinct values and weight to t
        let d: u64 = h.frequency_classes().map(|(_, f)| f).sum();
        let t: u64 = h.frequency_classes().map(|(j, f)| j * f).sum();
        assert_eq!(d, h.distinct());
        assert_eq!(t, h.total());
        assert!(h.gamma_squared() >= 0.0);
    }
}

/// The once estimator is exact once the probe stream is exhausted, for any
/// pair of key vectors and any probe order.
#[test]
fn once_join_exact_at_convergence() {
    let mut rng = StdRng::seed_from_u64(0x01ce);
    for case in 0..CASES {
        let r = rand_vec(&mut rng, case, 120, -10, 10);
        let s = rand_vec(&mut rng, case, 120, -10, 10);
        let build = keys(&r);
        let mut est = OnceJoinEstimator::from_build_keys(build.iter(), s.len() as u64);
        for k in keys(&s) {
            est.observe_probe(&k);
        }
        assert!(est.converged());
        assert_eq!(est.estimate().round() as u64, exact_join(&r, &s));
    }
}

/// Partial once estimates are always non-negative and scale linearly with
/// the assumed probe size.
#[test]
fn once_join_scaling() {
    let mut rng = StdRng::seed_from_u64(0x5ca1e);
    for case in 0..CASES {
        let mut r = rand_vec(&mut rng, case, 50, 0, 5);
        let mut s = rand_vec(&mut rng, case, 50, 0, 5);
        if r.is_empty() {
            r.push(0);
        }
        if s.is_empty() {
            s.push(0);
        }
        let probe_size = rng.random_range(1u64..10_000);
        let build = keys(&r);
        let mut est = OnceJoinEstimator::from_build_keys(build.iter(), probe_size);
        for k in keys(&s) {
            est.observe_probe(&k);
        }
        let e1 = est.estimate();
        est.set_probe_size(probe_size * 2);
        let e2 = est.estimate();
        assert!(e1 >= 0.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-6 * (1.0 + e1));
    }
}

/// The symmetric estimator agrees with brute force at full observation.
#[test]
fn symmetric_join_exact_at_convergence() {
    let mut rng = StdRng::seed_from_u64(0x53);
    for case in 0..CASES {
        let r = rand_vec(&mut rng, case, 80, -5, 5);
        let s = rand_vec(&mut rng, case, 80, -5, 5);
        let mut est = SymmetricJoinEstimator::new(r.len() as u64, s.len() as u64);
        for k in keys(&r) {
            est.observe_r(&k);
        }
        for k in keys(&s) {
            est.observe_s(&k);
        }
        assert!(est.converged());
        assert_eq!(est.estimate().round() as u64, exact_join(&r, &s));
    }
}

/// GEE and MLE never report fewer groups than observed, and both are exact
/// when the sample is the whole input.
#[test]
fn distinct_estimators_bounds() {
    let mut rng = StdRng::seed_from_u64(0xd157);
    for case in 0..CASES {
        let mut vals = rand_vec(&mut rng, case, 400, 0, 40);
        if vals.is_empty() {
            vals.push(0);
        }
        let mut h = FreqHist::new();
        let mut gee = Gee::new(vals.len() as u64);
        for k in keys(&vals) {
            let prior = h.observe(&k);
            gee.observe_transition(prior);
        }
        let d = h.distinct() as f64;
        assert!((gee.estimate() - d).abs() < 1e-9);
        assert!((mle_estimate(&h, vals.len() as u64) - d).abs() < 1e-9);
        // On a half-size claim of the input, estimates are ≥ observed.
        let bigger = vals.len() as u64 * 2;
        gee.set_input_size(bigger);
        assert!(gee.estimate() >= d - 1e-9);
        assert!(mle_estimate(&h, bigger) >= d - 1e-9);
    }
}

/// gnm fractions are always within [0, 1] no matter how wrong the
/// estimates are.
#[test]
fn gnm_fraction_bounded() {
    let mut rng = StdRng::seed_from_u64(0xf2ac);
    for case in 0..CASES {
        let n = match case {
            0 => 0,
            1 => 1,
            _ => rng.random_range(0..8usize),
        };
        let pipelines = (0..n)
            .map(|i| {
                let done = rng.random_range(0u64..1000);
                let est = rng.random_f64() * 2000.0;
                PipelineProgress::running(i, done, est)
            })
            .collect();
        let snap = ProgressSnapshot::new(pipelines);
        let f = snap.fraction();
        assert!((0.0..=1.0).contains(&f), "fraction {f} out of range");
    }
}

/// Pipeline estimator (2-join same-attribute) agrees with brute force at
/// convergence for arbitrary key data.
#[test]
fn pipeline_two_join_exact() {
    let mut rng = StdRng::seed_from_u64(0x2101);
    for case in 0..CASES {
        let b0 = rand_vec(&mut rng, case, 40, 0, 6);
        let b1 = rand_vec(&mut rng, case.wrapping_add(2), 40, 0, 6);
        let c = rand_vec(&mut rng, case.wrapping_add(3), 40, 0, 6);
        let specs = vec![
            JoinSpec {
                build_attr_col: 0,
                probe_attr: AttrSource::Probe { col: 0 },
            };
            2
        ];
        let mut est = PipelineEstimator::new(specs, c.len() as u64).unwrap();
        let to_rows = |vals: &[i64]| -> Vec<Row> {
            vals.iter()
                .map(|&v| Row::new(vec![Value::Int64(v)]))
                .collect()
        };
        est.feed_build(1, to_rows(&b1).iter()).unwrap();
        est.feed_build(0, to_rows(&b0).iter()).unwrap();
        for row in to_rows(&c) {
            est.observe_probe(&row).unwrap();
        }
        // brute force
        let lower: u64 = c
            .iter()
            .map(|x| b0.iter().filter(|&&v| v == *x).count() as u64)
            .sum();
        let upper: u64 = c
            .iter()
            .map(|x| {
                (b0.iter().filter(|&&v| v == *x).count() * b1.iter().filter(|&&v| v == *x).count())
                    as u64
            })
            .sum();
        assert_eq!(est.estimate(0).round() as u64, lower);
        assert_eq!(est.estimate(1).round() as u64, upper);
    }
}

/// Adaptive interval: the recomputation interval always stays within its
/// configured bounds.
#[test]
fn adaptive_interval_bounds() {
    use qprog::core::interval::AdaptiveInterval;
    let mut rng = StdRng::seed_from_u64(0xad1);
    for case in 0..CASES {
        let l = rng.random_range(1u64..50);
        let u = l + rng.random_range(0u64..100);
        let mut ai = AdaptiveInterval::new(l, u, 0.05);
        let rounds = match case {
            0 => 0,
            _ => rng.random_range(0..50usize),
        };
        for _ in 0..rounds {
            let old = rng.random_f64() * 100.0;
            let new = rng.random_f64() * 100.0;
            ai.feedback(old, new);
            assert!(ai.current_interval() >= l);
            assert!(ai.current_interval() <= u);
        }
    }
}

/// Join algorithm agreement on random data: hash, merge and nested-loops
/// joins must produce identical result multisets.
#[test]
fn join_algorithms_agree_on_random_data() {
    use qprog::plan::physical::{compile, PhysicalOptions};
    use qprog::plan::JoinAlgo;
    use qprog::prelude::*;

    for seed in 0..5u64 {
        let mut catalog = Catalog::new();
        catalog
            .register(qprog::datagen::customer_table("left", 800, 1.0, 60, seed))
            .unwrap();
        catalog
            .register(qprog::datagen::customer_table(
                "right",
                700,
                1.0,
                60,
                seed + 100,
            ))
            .unwrap();
        let builder = qprog::plan::PlanBuilder::new(catalog);
        let mut counts = Vec::new();
        for algo in [JoinAlgo::Hash, JoinAlgo::Merge, JoinAlgo::NestedLoops] {
            let plan = builder
                .scan("right")
                .unwrap()
                .join_build(
                    builder.scan("left").unwrap(),
                    "left.nationkey",
                    "right.nationkey",
                    algo,
                )
                .unwrap();
            let mut q = compile(&plan, &PhysicalOptions::default()).unwrap();
            let mut rows: Vec<String> =
                q.collect().unwrap().iter().map(|r| r.to_string()).collect();
            rows.sort();
            counts.push(rows);
        }
        assert_eq!(counts[0], counts[1], "hash vs merge, seed {seed}");
        assert_eq!(counts[0], counts[2], "hash vs nl, seed {seed}");
    }
}

/// All four join kinds agree with brute force at probe exhaustion, for
/// arbitrary key vectors.
#[test]
fn join_kinds_exact_at_convergence() {
    use qprog::core::join_est::JoinKind;
    let mut rng = StdRng::seed_from_u64(0x1c1d);
    for case in 0..CASES {
        let r = rand_vec(&mut rng, case, 60, -6, 6);
        let s = rand_vec(&mut rng, case, 60, -6, 6);
        let multiplicity = |x: i64| r.iter().filter(|&&v| v == x).count() as u64;
        for kind in [
            JoinKind::Inner,
            JoinKind::LeftOuter,
            JoinKind::Semi,
            JoinKind::Anti,
        ] {
            let truth: u64 = s.iter().map(|&x| kind.contribution(multiplicity(x))).sum();
            let build = keys(&r);
            let hist: FreqHist = build.iter().collect();
            let mut est = OnceJoinEstimator::with_kind(hist, s.len() as u64, kind);
            for k in keys(&s) {
                est.observe_probe(&k);
            }
            assert_eq!(est.estimate().round() as u64, truth, "{kind:?}");
        }
    }
}

/// Pipeline estimator, Case 2 (derived histograms), agrees with brute force
/// at convergence for arbitrary two-column build data.
#[test]
fn pipeline_case2_exact() {
    let mut rng = StdRng::seed_from_u64(0xca5e2);
    for case in 0..CASES {
        let b0: Vec<(i64, i64)> = {
            let xs = rand_vec(&mut rng, case, 30, 0, 5);
            xs.iter().map(|&x| (x, rng.random_range(0i64..5))).collect()
        };
        let b1 = rand_vec(&mut rng, case.wrapping_add(2), 30, 0, 5);
        let c = rand_vec(&mut rng, case.wrapping_add(3), 30, 0, 5);
        let specs = vec![
            JoinSpec {
                build_attr_col: 0,
                probe_attr: AttrSource::Probe { col: 0 },
            },
            JoinSpec {
                build_attr_col: 0,
                probe_attr: AttrSource::Build { join: 0, col: 1 },
            },
        ];
        let mut est = PipelineEstimator::new(specs, c.len() as u64).unwrap();
        let b0_rows: Vec<Row> = b0
            .iter()
            .map(|&(x, y)| Row::new(vec![Value::Int64(x), Value::Int64(y)]))
            .collect();
        let b1_rows: Vec<Row> = b1
            .iter()
            .map(|&y| Row::new(vec![Value::Int64(y)]))
            .collect();
        est.feed_build(1, b1_rows.iter()).unwrap();
        est.feed_build(0, b0_rows.iter()).unwrap();
        for &x in &c {
            est.observe_probe(&Row::new(vec![Value::Int64(x)])).unwrap();
        }
        let lower: u64 = c
            .iter()
            .map(|&x| b0.iter().filter(|&&(bx, _)| bx == x).count() as u64)
            .sum();
        let upper: u64 = c
            .iter()
            .map(|&x| {
                b0.iter()
                    .filter(|&&(bx, _)| bx == x)
                    .map(|&(_, by)| b1.iter().filter(|&&v| v == by).count() as u64)
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(est.estimate(0).round() as u64, lower);
        assert_eq!(est.estimate(1).round() as u64, upper);
    }
}

/// `observe_n` is equivalent to repeated `observe` for every aggregate the
/// histogram maintains.
#[test]
fn freq_hist_observe_n_equivalence() {
    let mut rng = StdRng::seed_from_u64(0x0b5e);
    for case in 0..CASES {
        let n_batches = match case {
            0 => 0,
            _ => rng.random_range(0..60usize),
        };
        let batches: Vec<(i64, u64)> = (0..n_batches)
            .map(|_| (rng.random_range(0i64..10), rng.random_range(1u64..6)))
            .collect();
        let mut bulk = FreqHist::new();
        let mut single = FreqHist::new();
        for &(v, n) in &batches {
            bulk.observe_n(&Key::Int(v), n);
            for _ in 0..n {
                single.observe(&Key::Int(v));
            }
        }
        assert_eq!(bulk.total(), single.total());
        assert_eq!(bulk.distinct(), single.distinct());
        assert_eq!(bulk.sum_squared_counts(), single.sum_squared_counts());
        assert_eq!(bulk.max_frequency(), single.max_frequency());
        let sorted = |h: &FreqHist| {
            let mut v: Vec<_> = h.frequency_classes().collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sorted(&bulk), sorted(&single));
    }
}

/// The disjunction estimator equals brute force for arbitrary pairs.
#[test]
fn disjunction_estimator_exact() {
    use qprog::core::multi_est::DisjunctionJoinEstimator;
    let mut rng = StdRng::seed_from_u64(0xd15);
    for case in 0..CASES {
        let pairs = |rng: &mut StdRng, case: u64| -> Vec<(i64, i64)> {
            let len = match case {
                0 => 0,
                1 => 1,
                _ => rng.random_range(0..40usize),
            };
            (0..len)
                .map(|_| (rng.random_range(0i64..6), rng.random_range(0i64..6)))
                .collect()
        };
        let build = pairs(&mut rng, case);
        let probe = pairs(&mut rng, case);
        let bp: Vec<(Key, Key)> = build
            .iter()
            .map(|&(a, b)| (Key::Int(a), Key::Int(b)))
            .collect();
        let mut est = DisjunctionJoinEstimator::from_build_pairs(
            bp.iter().map(|(a, b)| (a, b)),
            probe.len() as u64,
        );
        for &(x, y) in &probe {
            est.observe_probe(&Key::Int(x), &Key::Int(y));
        }
        let truth: u64 = probe
            .iter()
            .map(|&(x, y)| build.iter().filter(|&&(a, b)| a == x || b == y).count() as u64)
            .sum();
        assert_eq!(est.estimate().round() as u64, truth);
    }
}
