//! Property-based invariants on the core data structures and estimators,
//! cross-checked against brute-force models.

use proptest::prelude::*;
use qprog::core::freq_hist::FreqHist;
use qprog::core::gee::Gee;
use qprog::core::gnm::{PipelineProgress, ProgressSnapshot};
use qprog::core::join_est::{OnceJoinEstimator, SymmetricJoinEstimator};
use qprog::core::mle::mle_estimate;
use qprog::core::pipeline_est::{AttrSource, JoinSpec, PipelineEstimator};
use qprog_types::{Key, Row, Value};

fn keys(vals: &[i64]) -> Vec<Key> {
    vals.iter().map(|&v| Key::Int(v)).collect()
}

fn exact_join(r: &[i64], s: &[i64]) -> u64 {
    r.iter()
        .map(|a| s.iter().filter(|&&b| b == *a).count() as u64)
        .sum()
}

proptest! {
    /// FreqHist's incrementally maintained aggregates always match direct
    /// recomputation from the raw counts.
    #[test]
    fn freq_hist_aggregates_consistent(vals in proptest::collection::vec(-20i64..20, 0..300)) {
        let mut h = FreqHist::new();
        for k in keys(&vals) {
            h.observe(&k);
        }
        let direct_counts: std::collections::HashMap<i64, u64> = vals
            .iter()
            .fold(std::collections::HashMap::new(), |mut m, &v| {
                *m.entry(v).or_default() += 1;
                m
            });
        prop_assert_eq!(h.total(), vals.len() as u64);
        prop_assert_eq!(h.distinct(), direct_counts.len() as u64);
        let direct_sum_sq: u128 = direct_counts.values().map(|&c| (c as u128) * (c as u128)).sum();
        prop_assert_eq!(h.sum_squared_counts(), direct_sum_sq);
        let direct_singletons = direct_counts.values().filter(|&&c| c == 1).count() as u64;
        prop_assert_eq!(h.singletons(), direct_singletons);
        // frequency classes partition the distinct values and weight to t
        let d: u64 = h.frequency_classes().map(|(_, f)| f).sum();
        let t: u64 = h.frequency_classes().map(|(j, f)| j * f).sum();
        prop_assert_eq!(d, h.distinct());
        prop_assert_eq!(t, h.total());
        prop_assert!(h.gamma_squared() >= 0.0);
    }

    /// The once estimator is exact once the probe stream is exhausted, for
    /// any pair of key vectors and any probe order.
    #[test]
    fn once_join_exact_at_convergence(
        r in proptest::collection::vec(-10i64..10, 0..120),
        s in proptest::collection::vec(-10i64..10, 0..120),
    ) {
        let build = keys(&r);
        let mut est = OnceJoinEstimator::from_build_keys(build.iter(), s.len() as u64);
        for k in keys(&s) {
            est.observe_probe(&k);
        }
        prop_assert!(est.converged());
        prop_assert_eq!(est.estimate().round() as u64, exact_join(&r, &s));
    }

    /// Partial once estimates are always non-negative and scale linearly
    /// with the assumed probe size.
    #[test]
    fn once_join_scaling(
        r in proptest::collection::vec(0i64..5, 1..50),
        s in proptest::collection::vec(0i64..5, 1..50),
        probe_size in 1u64..10_000,
    ) {
        let build = keys(&r);
        let mut est = OnceJoinEstimator::from_build_keys(build.iter(), probe_size);
        for k in keys(&s) {
            est.observe_probe(&k);
        }
        let e1 = est.estimate();
        est.set_probe_size(probe_size * 2);
        let e2 = est.estimate();
        prop_assert!(e1 >= 0.0);
        prop_assert!((e2 - 2.0 * e1).abs() < 1e-6 * (1.0 + e1));
    }

    /// The symmetric estimator agrees with brute force at full observation.
    #[test]
    fn symmetric_join_exact_at_convergence(
        r in proptest::collection::vec(-5i64..5, 0..80),
        s in proptest::collection::vec(-5i64..5, 0..80),
    ) {
        let mut est = SymmetricJoinEstimator::new(r.len() as u64, s.len() as u64);
        for k in keys(&r) {
            est.observe_r(&k);
        }
        for k in keys(&s) {
            est.observe_s(&k);
        }
        prop_assert!(est.converged());
        prop_assert_eq!(est.estimate().round() as u64, exact_join(&r, &s));
    }

    /// GEE and MLE never report fewer groups than observed, and both are
    /// exact when the sample is the whole input.
    #[test]
    fn distinct_estimators_bounds(vals in proptest::collection::vec(0i64..40, 1..400)) {
        let mut h = FreqHist::new();
        let mut gee = Gee::new(vals.len() as u64);
        for k in keys(&vals) {
            let prior = h.observe(&k);
            gee.observe_transition(prior);
        }
        let d = h.distinct() as f64;
        prop_assert!((gee.estimate() - d).abs() < 1e-9);
        prop_assert!((mle_estimate(&h, vals.len() as u64) - d).abs() < 1e-9);
        // On a half-size claim of the input, estimates are ≥ observed.
        let bigger = vals.len() as u64 * 2;
        gee.set_input_size(bigger);
        prop_assert!(gee.estimate() >= d - 1e-9);
        prop_assert!(mle_estimate(&h, bigger) >= d - 1e-9);
    }

    /// gnm fractions are always within [0, 1] no matter how wrong the
    /// estimates are.
    #[test]
    fn gnm_fraction_bounded(
        states in proptest::collection::vec((0u64..1000, 0.0f64..2000.0), 0..8),
    ) {
        let pipelines = states
            .iter()
            .enumerate()
            .map(|(i, &(done, est))| PipelineProgress::running(i, done, est))
            .collect();
        let snap = ProgressSnapshot::new(pipelines);
        let f = snap.fraction();
        prop_assert!((0.0..=1.0).contains(&f));
    }

    /// Pipeline estimator (2-join same-attribute) agrees with brute force
    /// at convergence for arbitrary key data.
    #[test]
    fn pipeline_two_join_exact(
        b0 in proptest::collection::vec(0i64..6, 0..40),
        b1 in proptest::collection::vec(0i64..6, 0..40),
        c in proptest::collection::vec(0i64..6, 0..40),
    ) {
        let specs = vec![
            JoinSpec { build_attr_col: 0, probe_attr: AttrSource::Probe { col: 0 } };
            2
        ];
        let mut est = PipelineEstimator::new(specs, c.len() as u64).unwrap();
        let to_rows = |vals: &[i64]| -> Vec<Row> {
            vals.iter().map(|&v| Row::new(vec![Value::Int64(v)])).collect()
        };
        est.feed_build(1, to_rows(&b1).iter()).unwrap();
        est.feed_build(0, to_rows(&b0).iter()).unwrap();
        for row in to_rows(&c) {
            est.observe_probe(&row).unwrap();
        }
        // brute force
        let lower: u64 = c
            .iter()
            .map(|x| b0.iter().filter(|&&v| v == *x).count() as u64)
            .sum();
        let upper: u64 = c
            .iter()
            .map(|x| {
                (b0.iter().filter(|&&v| v == *x).count()
                    * b1.iter().filter(|&&v| v == *x).count()) as u64
            })
            .sum();
        prop_assert_eq!(est.estimate(0).round() as u64, lower);
        prop_assert_eq!(est.estimate(1).round() as u64, upper);
    }

    /// Adaptive interval: the recomputation interval always stays within
    /// its configured bounds.
    #[test]
    fn adaptive_interval_bounds(
        l in 1u64..50,
        u_extra in 0u64..100,
        feedback in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 0..50),
    ) {
        use qprog::core::interval::AdaptiveInterval;
        let u = l + u_extra;
        let mut ai = AdaptiveInterval::new(l, u, 0.05);
        for (old, new) in feedback {
            ai.feedback(old, new);
            prop_assert!(ai.current_interval() >= l);
            prop_assert!(ai.current_interval() <= u);
        }
    }
}

/// Join algorithm agreement on random data: hash, merge and nested-loops
/// joins must produce identical result multisets (run outside proptest for
/// the engine-level machinery, seeded deterministically).
#[test]
fn join_algorithms_agree_on_random_data() {
    use qprog::plan::physical::{compile, PhysicalOptions};
    use qprog::plan::JoinAlgo;
    use qprog::prelude::*;

    for seed in 0..5u64 {
        let mut catalog = Catalog::new();
        catalog
            .register(qprog::datagen::customer_table("left", 800, 1.0, 60, seed))
            .unwrap();
        catalog
            .register(qprog::datagen::customer_table("right", 700, 1.0, 60, seed + 100))
            .unwrap();
        let builder = qprog::plan::PlanBuilder::new(catalog);
        let mut counts = Vec::new();
        for algo in [JoinAlgo::Hash, JoinAlgo::Merge, JoinAlgo::NestedLoops] {
            let plan = builder
                .scan("right")
                .unwrap()
                .join_build(
                    builder.scan("left").unwrap(),
                    "left.nationkey",
                    "right.nationkey",
                    algo,
                )
                .unwrap();
            let mut q = compile(&plan, &PhysicalOptions::default()).unwrap();
            let mut rows: Vec<String> = q
                .collect()
                .unwrap()
                .iter()
                .map(|r| r.to_string())
                .collect();
            rows.sort();
            counts.push(rows);
        }
        assert_eq!(counts[0], counts[1], "hash vs merge, seed {seed}");
        assert_eq!(counts[0], counts[2], "hash vs nl, seed {seed}");
    }
}

proptest! {
    /// All four join kinds agree with brute force at probe exhaustion, for
    /// arbitrary key vectors.
    #[test]
    fn join_kinds_exact_at_convergence(
        r in proptest::collection::vec(-6i64..6, 0..60),
        s in proptest::collection::vec(-6i64..6, 0..60),
    ) {
        use qprog::core::join_est::JoinKind;
        let multiplicity = |x: i64| r.iter().filter(|&&v| v == x).count() as u64;
        for kind in [JoinKind::Inner, JoinKind::LeftOuter, JoinKind::Semi, JoinKind::Anti] {
            let truth: u64 = s.iter().map(|&x| kind.contribution(multiplicity(x))).sum();
            let build = keys(&r);
            let hist: qprog::core::freq_hist::FreqHist = build.iter().collect();
            let mut est = OnceJoinEstimator::with_kind(hist, s.len() as u64, kind);
            for k in keys(&s) {
                est.observe_probe(&k);
            }
            prop_assert_eq!(est.estimate().round() as u64, truth, "{:?}", kind);
        }
    }

    /// Pipeline estimator, Case 2 (derived histograms), agrees with brute
    /// force at convergence for arbitrary two-column build data.
    #[test]
    fn pipeline_case2_exact(
        b0 in proptest::collection::vec((0i64..5, 0i64..5), 0..30),
        b1 in proptest::collection::vec(0i64..5, 0..30),
        c in proptest::collection::vec(0i64..5, 0..30),
    ) {
        let specs = vec![
            JoinSpec { build_attr_col: 0, probe_attr: AttrSource::Probe { col: 0 } },
            JoinSpec { build_attr_col: 0, probe_attr: AttrSource::Build { join: 0, col: 1 } },
        ];
        let mut est = PipelineEstimator::new(specs, c.len() as u64).unwrap();
        let b0_rows: Vec<Row> = b0
            .iter()
            .map(|&(x, y)| Row::new(vec![Value::Int64(x), Value::Int64(y)]))
            .collect();
        let b1_rows: Vec<Row> = b1.iter().map(|&y| Row::new(vec![Value::Int64(y)])).collect();
        est.feed_build(1, b1_rows.iter()).unwrap();
        est.feed_build(0, b0_rows.iter()).unwrap();
        for &x in &c {
            est.observe_probe(&Row::new(vec![Value::Int64(x)])).unwrap();
        }
        let lower: u64 = c
            .iter()
            .map(|&x| b0.iter().filter(|&&(bx, _)| bx == x).count() as u64)
            .sum();
        let upper: u64 = c
            .iter()
            .map(|&x| {
                b0.iter()
                    .filter(|&&(bx, _)| bx == x)
                    .map(|&(_, by)| b1.iter().filter(|&&v| v == by).count() as u64)
                    .sum::<u64>()
            })
            .sum();
        prop_assert_eq!(est.estimate(0).round() as u64, lower);
        prop_assert_eq!(est.estimate(1).round() as u64, upper);
    }

    /// `observe_n` is equivalent to repeated `observe` for every aggregate
    /// the histogram maintains.
    #[test]
    fn freq_hist_observe_n_equivalence(
        batches in proptest::collection::vec((0i64..10, 1u64..6), 0..60),
    ) {
        use qprog::core::freq_hist::FreqHist;
        let mut bulk = FreqHist::new();
        let mut single = FreqHist::new();
        for &(v, n) in &batches {
            bulk.observe_n(&Key::Int(v), n);
            for _ in 0..n {
                single.observe(&Key::Int(v));
            }
        }
        prop_assert_eq!(bulk.total(), single.total());
        prop_assert_eq!(bulk.distinct(), single.distinct());
        prop_assert_eq!(bulk.sum_squared_counts(), single.sum_squared_counts());
        prop_assert_eq!(bulk.max_frequency(), single.max_frequency());
        let sorted = |h: &FreqHist| {
            let mut v: Vec<_> = h.frequency_classes().collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(sorted(&bulk), sorted(&single));
    }

    /// The disjunction estimator equals brute force for arbitrary pairs.
    #[test]
    fn disjunction_estimator_exact(
        build in proptest::collection::vec((0i64..6, 0i64..6), 0..40),
        probe in proptest::collection::vec((0i64..6, 0i64..6), 0..40),
    ) {
        use qprog::core::multi_est::DisjunctionJoinEstimator;
        let bp: Vec<(Key, Key)> = build
            .iter()
            .map(|&(a, b)| (Key::Int(a), Key::Int(b)))
            .collect();
        let mut est = DisjunctionJoinEstimator::from_build_pairs(
            bp.iter().map(|(a, b)| (a, b)),
            probe.len() as u64,
        );
        for &(x, y) in &probe {
            est.observe_probe(&Key::Int(x), &Key::Int(y));
        }
        let truth: u64 = probe
            .iter()
            .map(|&(x, y)| build.iter().filter(|&&(a, b)| a == x || b == y).count() as u64)
            .sum();
        prop_assert_eq!(est.estimate().round() as u64, truth);
    }
}
