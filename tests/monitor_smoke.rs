//! End-to-end smoke test for the live monitor: a TPC-H-lite join runs
//! through [`Observability::serve_on`] while this test curls the HTTP
//! endpoints over a raw `std::net::TcpStream` (exactly what CI does):
//!
//! - `/progress/{id}` is polled during execution: the reported `C` and the
//!   progress fraction must be monotone non-decreasing, and every poll must
//!   carry valid `[lo, hi]` bounds,
//! - `/progress` lists the query while it is live, 404s after its handle
//!   drops,
//! - `/metrics` parses as Prometheus text exposition and carries the
//!   per-estimator q-error histogram.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use qprog::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(qprog::datagen::customer_table(
        "customer", 20_000, 1.0, 400, 7,
    ))
    .unwrap();
    c.register(qprog::datagen::nation_table("nation", 400))
        .unwrap();
    c
}

/// One HTTP GET over a fresh TcpStream; returns (head, body).
fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to monitor");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let split = raw.find("\r\n\r\n").expect("response has a blank line");
    (raw[..split].to_string(), raw[split + 4..].to_string())
}

/// Extract the first `"key":<number>` from a JSON string (the monitor's
/// JSON is flat enough that a textual probe is unambiguous for top-level
/// summary keys).
fn json_num(json: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {json}"));
    let rest = &json[at + pat.len()..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .unwrap_or_else(|_| panic!("bad number for {key}: {rest}"))
}

/// Minimal Prometheus text-format check: every sample line is
/// `name{labels} value` (or `name value`) with a parseable float, and every
/// sample's family has a preceding `# TYPE`.
fn assert_prometheus_well_formed(text: &str) {
    let mut typed: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            typed.push(rest.split_whitespace().next().unwrap().to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let name_end = line
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
            .unwrap_or_else(|| panic!("no name delimiter in sample line: {line}"));
        let name = &line[..name_end];
        assert!(!name.is_empty(), "empty metric name: {line}");
        let value = line.rsplit(' ').next().unwrap();
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "-Inf" || value == "NaN",
            "unparseable value in: {line}"
        );
        // `foo_bucket`/`foo_sum`/`foo_count` belong to family `foo`.
        let family_ok = typed.iter().any(|t| {
            name == t
                || name.strip_suffix("_bucket") == Some(t)
                || name.strip_suffix("_sum") == Some(t)
                || name.strip_suffix("_count") == Some(t)
        });
        assert!(family_ok, "sample before its # TYPE: {line}");
        samples += 1;
    }
    assert!(samples > 0, "no samples in exposition:\n{text}");
}

#[test]
fn monitored_query_is_observable_live_over_http() {
    let session = SessionBuilder::new(catalog())
        .observability(Observability::new().serve_on("127.0.0.1:0"))
        .build()
        .unwrap();
    let server = Arc::clone(session.monitor().unwrap());
    let addr = server.addr();

    let mut handle = session
        .query(
            "SELECT nation.nationkey, count(*) FROM customer \
             JOIN nation ON customer.nationkey = nation.nationkey \
             GROUP BY nation.nationkey",
        )
        .unwrap();
    let id = handle.query_id().expect("monitored query gets an id");

    // Listed while live.
    let (_, listing) = get(addr, "/progress");
    assert!(listing.contains(&format!("\"id\":{id}")), "{listing}");

    // Poll the detail endpoint from this thread while the query runs on a
    // worker: C and the fraction must only move forward, bounds must stay
    // ordered.
    let worker = std::thread::spawn(move || {
        let rows = handle.collect().unwrap();
        (rows.len(), handle)
    });
    let path = format!("/progress/{id}");
    let (mut last_c, mut last_fraction, mut polls) = (0.0, 0.0, 0usize);
    loop {
        let (head, body) = get(addr, &path);
        if !head.starts_with("HTTP/1.1 200") {
            // The worker finished and dropped the handle between polls.
            break;
        }
        let c = json_num(&body, "current");
        let fraction = json_num(&body, "fraction");
        let lo = json_num(&body, "lo");
        let hi = json_num(&body, "hi");
        assert!(c >= last_c, "C went backwards: {last_c} -> {c}");
        assert!(
            fraction >= last_fraction - 1e-9,
            "fraction went backwards: {last_fraction} -> {fraction}"
        );
        assert!((0.0..=1.0).contains(&fraction), "fraction {fraction}");
        assert!(lo <= hi, "bounds inverted: [{lo}, {hi}]");
        assert!(lo >= 0.0, "negative lower bound {lo}");
        // Remaining-time fields: elapsed is always present and positive;
        // once meaningful progress registers, a running query also reports
        // a smoothed `eta_us` derived from `elapsed × (1−p)/p` (null until
        // p clears the smoother's floor and after terminal states).
        let elapsed = json_num(&body, "elapsed_us");
        assert!(elapsed > 0.0, "elapsed_us not positive: {body}");
        assert!(body.contains("\"eta_us\":"), "{body}");
        if fraction > 0.0 && !body.contains("\"done\":true") && !body.contains("\"eta_us\":null") {
            let eta = json_num(&body, "eta_us");
            let expect = elapsed * (1.0 - fraction) / fraction;
            // The smoothed estimate lags the raw formula (and the two
            // fields are sampled at slightly different instants in the
            // server); allow generous slack around it.
            assert!(
                eta >= 0.0 && eta <= expect * 2.0 + 1e6,
                "eta_us {eta} inconsistent with elapsed {elapsed} @ p={fraction}"
            );
        }
        // A clean run never leaves the healthy verdict.
        assert!(body.contains("\"health\":\"healthy\""), "{body}");
        last_c = c;
        last_fraction = fraction;
        polls += 1;
        if body.contains("\"done\":true") {
            break;
        }
    }
    let (rows, handle) = worker.join().unwrap();
    assert_eq!(rows, 400);
    assert!(polls > 0, "never observed the query over HTTP");

    // Terminal state: fraction pinned at 1 while the handle is alive.
    let (head, body) = get(addr, &path);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(json_num(&body, "fraction"), 1.0, "{body}");
    assert!(body.contains("\"done\":true"), "{body}");
    assert!(
        body.contains("\"eta_us\":null"),
        "finished query has no ETA: {body}"
    );

    // /metrics is well-formed Prometheus and has the estimator histograms.
    let (head, metrics) = get(addr, "/metrics");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    assert_prometheus_well_formed(&metrics);
    assert!(
        metrics.contains("# TYPE qprog_estimate_q_error histogram"),
        "{metrics}"
    );
    assert!(
        metrics.contains("qprog_estimate_q_error_bucket{estimator=\"once\",le=\"+Inf\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("qprog_queries_finished_total{estimator=\"once\"} 1"),
        "{metrics}"
    );

    // Dropping the handle unregisters the query.
    drop(handle);
    let (head, _) = get(addr, &path);
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    server.shutdown();
}

/// Open a streaming GET and read until the server closes the connection.
fn stream_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to monitor");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n").unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(20)))
        .unwrap();
    let mut out = String::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => out.push_str(&String::from_utf8_lossy(&buf[..n])),
        }
    }
    out
}

#[test]
fn sse_stream_delivers_well_formed_frames_and_always_a_terminal() {
    let session = SessionBuilder::new(catalog())
        .observability(Observability::new().serve_on("127.0.0.1:0"))
        .build()
        .unwrap();
    let server = Arc::clone(session.monitor().unwrap());
    let addr = server.addr();

    let mut handle = session
        .query(
            "SELECT nation.nationkey, count(*) FROM customer \
             JOIN nation ON customer.nationkey = nation.nationkey \
             GROUP BY nation.nationkey",
        )
        .unwrap();
    let id = handle.query_id().unwrap();
    let reader = std::thread::spawn(move || stream_get(addr, &format!("/progress/{id}/stream")));
    let rows = handle.collect().unwrap();
    assert_eq!(rows.len(), 400);
    // The stream closes by itself once the terminal frame is delivered.
    let raw = reader.join().unwrap();

    // Headers: an open-ended event stream, not a buffered response.
    let split = raw.find("\r\n\r\n").expect("response has a head");
    let (head, body) = (&raw[..split], &raw[split + 4..]);
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(head.contains("Content-Type: text/event-stream"), "{head}");
    assert!(!head.contains("Content-Length"), "{head}");

    // Framing: every chunk is either an SSE comment (keepalive) or an
    // optional monotone `id:` line, an `event:` line, and a single-line
    // JSON `data:` payload. (Hub-broadcast frames always carry ids for
    // `Last-Event-ID` reconnects; per-connection opening frames may not.)
    let mut kinds = Vec::new();
    let mut last_id = 0u64;
    for frame in body.split("\n\n").filter(|f| !f.is_empty()) {
        if frame.starts_with(':') {
            continue; // keepalive comment
        }
        let mut lines = frame.lines().peekable();
        if lines.peek().is_some_and(|l| l.starts_with("id: ")) {
            let id_line = lines.next().unwrap();
            let id: u64 = id_line["id: ".len()..]
                .parse()
                .unwrap_or_else(|_| panic!("bad id line: {frame:?}"));
            assert!(id > last_id, "frame ids not monotone: {body:?}");
            last_id = id;
        }
        let event = lines.next().unwrap_or_default();
        let data = lines.next().unwrap_or_default();
        assert!(event.starts_with("event: "), "bad frame: {frame:?}");
        assert!(data.starts_with("data: {"), "bad frame: {frame:?}");
        assert!(data.ends_with('}'), "bad frame: {frame:?}");
        assert_eq!(lines.next(), None, "multi-line data: {frame:?}");
        kinds.push(event["event: ".len()..].to_string());
    }
    assert!(last_id > 0, "no broadcast frame carried an id: {body:?}");
    // First frame is the initial snapshot; the last is always terminal.
    assert!(!kinds.is_empty(), "no frames in {body:?}");
    assert_eq!(
        kinds.first().map(String::as_str),
        Some("progress"),
        "{kinds:?}"
    );
    assert_eq!(
        kinds.last().map(String::as_str),
        Some("terminal"),
        "{kinds:?}"
    );
    assert_eq!(
        kinds.iter().filter(|k| *k == "terminal").count(),
        1,
        "{kinds:?}"
    );
    assert!(body.contains("\"done\":true"), "{body}");

    // Stream metrics surfaced on /metrics: subscribers came and went,
    // frames were delivered.
    let (_, metrics) = get(addr, "/metrics");
    assert!(
        metrics.contains("qprog_stream_events_delivered_total"),
        "{metrics}"
    );
    assert!(metrics.contains("qprog_stream_subscribers 0"), "{metrics}");

    drop(handle);
    server.shutdown();
}

/// Open a streaming GET with an extra request header and read frames for
/// a bounded window (the firehose never closes on its own).
fn stream_get_with_header(
    addr: SocketAddr,
    path: &str,
    header: &str,
    window: std::time::Duration,
) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to monitor");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: smoke\r\n{header}\r\n\r\n"
    )
    .unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(200)))
        .unwrap();
    let deadline = std::time::Instant::now() + window;
    let mut out = String::new();
    let mut buf = [0u8; 4096];
    while std::time::Instant::now() < deadline {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => out.push_str(&String::from_utf8_lossy(&buf[..n])),
            Err(_) => {} // read-timeout tick; re-check the window
        }
    }
    out
}

#[test]
fn sse_events_reconnect_replays_or_resyncs_by_last_event_id() {
    let session = SessionBuilder::new(catalog())
        .observability(Observability::new().serve_on("127.0.0.1:0"))
        .build()
        .unwrap();
    let server = Arc::clone(session.monitor().unwrap());
    let addr = server.addr();
    let hub = server.hub();

    // Seed the replay ring with deterministic frames (no live queries, so
    // the broadcast tick publishes nothing of its own).
    for i in 0..5 {
        hub.publish(900, "progress", &format!("{{\"n\":{i}}}"), false);
    }
    let last = hub.last_frame_id();
    assert!(last >= 5, "expected seeded frames, got id {last}");

    // Reconnect having seen all but the last two frames: exactly those
    // replay (in order, ids intact) and no snapshot resync happens.
    let out = stream_get_with_header(
        addr,
        "/events",
        &format!("Last-Event-ID: {}", last - 2),
        std::time::Duration::from_millis(700),
    );
    assert!(
        out.contains(&format!(
            "id: {}\nevent: progress\ndata: {{\"n\":3}}\n\n",
            last - 1
        )),
        "{out}"
    );
    assert!(
        out.contains(&format!(
            "id: {last}\nevent: progress\ndata: {{\"n\":4}}\n\n"
        )),
        "{out}"
    );
    assert!(
        !out.contains("event: snapshot"),
        "replay must not resync: {out}"
    );

    // An id the hub never issued (stale client from a previous server
    // life): full snapshot resync, stamped with the current frame id so
    // the client's Last-Event-ID re-anchors to the present.
    let out = stream_get_with_header(
        addr,
        "/events",
        "Last-Event-ID: 999999",
        std::time::Duration::from_millis(700),
    );
    assert!(
        out.contains(&format!(
            "id: {last}\nevent: snapshot\ndata: {{\"queries\":["
        )),
        "{out}"
    );

    server.shutdown();
}

#[test]
fn healthz_answers_over_http() {
    let session = SessionBuilder::new(catalog())
        .observability(Observability::new().serve_on("127.0.0.1:0"))
        .build()
        .unwrap();
    let server = Arc::clone(session.monitor().unwrap());
    let (head, body) = get(server.addr(), "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"version\":\""), "{body}");
    assert!(body.contains("\"queue_depth\":"), "{body}");
    server.shutdown();
}

#[test]
fn sse_slow_subscribers_drop_stale_frames_and_are_evicted() {
    let session = SessionBuilder::new(catalog())
        .observability(Observability::new().serve_on("127.0.0.1:0"))
        .build()
        .unwrap();
    let server = Arc::clone(session.monitor().unwrap());
    let hub = server.hub();

    // A subscriber that never drains with a tiny queue: stale progress
    // frames are dropped, and once it has missed a full queue's worth it
    // is evicted — without ever blocking the publisher.
    let slow = hub.subscribe(Some(4242), 2);
    for i in 0..8 {
        hub.publish(4242, "progress", &format!("{{\"n\":{i}}}"), false);
    }
    assert!(hub.dropped() >= 3, "dropped {}", hub.dropped());
    assert!(hub.evicted() >= 1, "evicted {}", hub.evicted());
    assert!(slow.is_closed());

    // Terminal frames are exempt: a full-but-not-evicted subscriber still
    // receives the query outcome past its cap.
    let full = hub.subscribe(Some(7), 2);
    hub.publish(7, "progress", "{\"n\":0}", false);
    hub.publish(7, "progress", "{\"n\":1}", false);
    hub.publish(7, "terminal", "{\"done\":true}", true);
    let mut saw_terminal = false;
    loop {
        match full.next(std::time::Duration::from_millis(100)) {
            qprog::monitor::StreamNext::Frame(f) => {
                saw_terminal |= f.contains("event: terminal\n");
            }
            qprog::monitor::StreamNext::Closed => break,
            qprog::monitor::StreamNext::Timeout => panic!("stream should close"),
        }
    }
    assert!(saw_terminal, "terminal frame was dropped");

    server.shutdown();
}
