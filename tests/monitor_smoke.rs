//! End-to-end smoke test for the live monitor: a TPC-H-lite join runs
//! through [`Observability::serve_on`] while this test curls the HTTP
//! endpoints over a raw `std::net::TcpStream` (exactly what CI does):
//!
//! - `/progress/{id}` is polled during execution: the reported `C` and the
//!   progress fraction must be monotone non-decreasing, and every poll must
//!   carry valid `[lo, hi]` bounds,
//! - `/progress` lists the query while it is live, 404s after its handle
//!   drops,
//! - `/metrics` parses as Prometheus text exposition and carries the
//!   per-estimator q-error histogram.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use qprog::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(qprog::datagen::customer_table(
        "customer", 20_000, 1.0, 400, 7,
    ))
    .unwrap();
    c.register(qprog::datagen::nation_table("nation", 400))
        .unwrap();
    c
}

/// One HTTP GET over a fresh TcpStream; returns (head, body).
fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to monitor");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let split = raw.find("\r\n\r\n").expect("response has a blank line");
    (raw[..split].to_string(), raw[split + 4..].to_string())
}

/// Extract the first `"key":<number>` from a JSON string (the monitor's
/// JSON is flat enough that a textual probe is unambiguous for top-level
/// summary keys).
fn json_num(json: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {json}"));
    let rest = &json[at + pat.len()..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .unwrap_or_else(|_| panic!("bad number for {key}: {rest}"))
}

/// Minimal Prometheus text-format check: every sample line is
/// `name{labels} value` (or `name value`) with a parseable float, and every
/// sample's family has a preceding `# TYPE`.
fn assert_prometheus_well_formed(text: &str) {
    let mut typed: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            typed.push(rest.split_whitespace().next().unwrap().to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let name_end = line
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
            .unwrap_or_else(|| panic!("no name delimiter in sample line: {line}"));
        let name = &line[..name_end];
        assert!(!name.is_empty(), "empty metric name: {line}");
        let value = line.rsplit(' ').next().unwrap();
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "-Inf" || value == "NaN",
            "unparseable value in: {line}"
        );
        // `foo_bucket`/`foo_sum`/`foo_count` belong to family `foo`.
        let family_ok = typed.iter().any(|t| {
            name == t
                || name.strip_suffix("_bucket") == Some(t)
                || name.strip_suffix("_sum") == Some(t)
                || name.strip_suffix("_count") == Some(t)
        });
        assert!(family_ok, "sample before its # TYPE: {line}");
        samples += 1;
    }
    assert!(samples > 0, "no samples in exposition:\n{text}");
}

#[test]
fn monitored_query_is_observable_live_over_http() {
    let session = SessionBuilder::new(catalog())
        .observability(Observability::new().serve_on("127.0.0.1:0"))
        .build()
        .unwrap();
    let server = Arc::clone(session.monitor().unwrap());
    let addr = server.addr();

    let mut handle = session
        .query(
            "SELECT nation.nationkey, count(*) FROM customer \
             JOIN nation ON customer.nationkey = nation.nationkey \
             GROUP BY nation.nationkey",
        )
        .unwrap();
    let id = handle.query_id().expect("monitored query gets an id");

    // Listed while live.
    let (_, listing) = get(addr, "/progress");
    assert!(listing.contains(&format!("\"id\":{id}")), "{listing}");

    // Poll the detail endpoint from this thread while the query runs on a
    // worker: C and the fraction must only move forward, bounds must stay
    // ordered.
    let worker = std::thread::spawn(move || {
        let rows = handle.collect().unwrap();
        (rows.len(), handle)
    });
    let path = format!("/progress/{id}");
    let (mut last_c, mut last_fraction, mut polls) = (0.0, 0.0, 0usize);
    loop {
        let (head, body) = get(addr, &path);
        if !head.starts_with("HTTP/1.1 200") {
            // The worker finished and dropped the handle between polls.
            break;
        }
        let c = json_num(&body, "current");
        let fraction = json_num(&body, "fraction");
        let lo = json_num(&body, "lo");
        let hi = json_num(&body, "hi");
        assert!(c >= last_c, "C went backwards: {last_c} -> {c}");
        assert!(
            fraction >= last_fraction - 1e-9,
            "fraction went backwards: {last_fraction} -> {fraction}"
        );
        assert!((0.0..=1.0).contains(&fraction), "fraction {fraction}");
        assert!(lo <= hi, "bounds inverted: [{lo}, {hi}]");
        assert!(lo >= 0.0, "negative lower bound {lo}");
        // Remaining-time fields: elapsed is always present and positive;
        // once any progress registers, a running query also reports
        // `eta_us = elapsed × (1−p)/p` (null before first progress and
        // after terminal states).
        let elapsed = json_num(&body, "elapsed_us");
        assert!(elapsed > 0.0, "elapsed_us not positive: {body}");
        assert!(body.contains("\"eta_us\":"), "{body}");
        if fraction > 0.0 && !body.contains("\"done\":true") {
            let eta = json_num(&body, "eta_us");
            let expect = elapsed * (1.0 - fraction) / fraction;
            // Both fields are sampled at slightly different instants in the
            // server; allow generous slack around the formula.
            assert!(
                eta >= 0.0 && eta <= expect * 2.0 + 1e6,
                "eta_us {eta} inconsistent with elapsed {elapsed} @ p={fraction}"
            );
        }
        last_c = c;
        last_fraction = fraction;
        polls += 1;
        if body.contains("\"done\":true") {
            break;
        }
    }
    let (rows, handle) = worker.join().unwrap();
    assert_eq!(rows, 400);
    assert!(polls > 0, "never observed the query over HTTP");

    // Terminal state: fraction pinned at 1 while the handle is alive.
    let (head, body) = get(addr, &path);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(json_num(&body, "fraction"), 1.0, "{body}");
    assert!(body.contains("\"done\":true"), "{body}");
    assert!(
        body.contains("\"eta_us\":null"),
        "finished query has no ETA: {body}"
    );

    // /metrics is well-formed Prometheus and has the estimator histograms.
    let (head, metrics) = get(addr, "/metrics");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    assert_prometheus_well_formed(&metrics);
    assert!(
        metrics.contains("# TYPE qprog_estimate_q_error histogram"),
        "{metrics}"
    );
    assert!(
        metrics.contains("qprog_estimate_q_error_bucket{estimator=\"once\",le=\"+Inf\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("qprog_queries_finished_total{estimator=\"once\"} 1"),
        "{metrics}"
    );

    // Dropping the handle unregisters the query.
    drop(handle);
    let (head, _) = get(addr, &path);
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    server.shutdown();
}
