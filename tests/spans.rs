//! Acceptance: the Chrome trace-event export for a real Q8 run parses as
//! valid JSON and every thread-track's `ts`/`dur` intervals are strictly
//! nested (a stack discipline per `tid` — the invariant Perfetto and
//! `chrome://tracing` require to render complete events).
//!
//! The JSON checks are hand-rolled (this workspace has no external
//! crates): a full well-formedness scanner plus a flat object-field
//! extractor for the trace-event array.

use std::io::Write;
use std::sync::{Arc, Mutex};

use qprog::obs::{ReplayedTrace, SpanTree};
use qprog::prelude::*;
use qprog::workloads::q8_plan;
use qprog_datagen::{TpchConfig, TpchGenerator};

// ---------------------------------------------------------------------
// Minimal JSON well-formedness checker (objects, arrays, strings with
// escapes, numbers, literals). Returns the byte offset that failed.
// ---------------------------------------------------------------------

fn json_check(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    json_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn json_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => json_object(b, pos),
        Some(b'[') => json_array(b, pos),
        Some(b'"') => json_string(b, pos),
        Some(b't') => json_literal(b, pos, b"true"),
        Some(b'f') => json_literal(b, pos, b"false"),
        Some(b'n') => json_literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => json_number(b, pos),
        other => Err(format!("unexpected {other:?} at byte {pos}")),
    }
}

fn json_literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.get(*pos..*pos + lit.len()) == Some(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn json_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        json_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        json_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or '}}', got {other:?} at byte {pos}")),
        }
    }
}

fn json_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        json_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or ']', got {other:?} at byte {pos}")),
        }
    }
}

fn json_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = b.get(*pos + 2..*pos + 6);
                    match hex {
                        Some(h) if h.iter().all(u8::is_ascii_hexdigit) => *pos += 6,
                        _ => return Err(format!("bad \\u escape at byte {pos}")),
                    }
                }
                other => return Err(format!("bad escape {other:?} at byte {pos}")),
            },
            0x00..=0x1f => return Err(format!("raw control byte in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn json_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    fn digits(b: &[u8], pos: &mut usize) -> usize {
        let start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos - start
    }
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    if digits(b, pos) == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if digits(b, pos) == 0 {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if digits(b, pos) == 0 {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Flat extraction of the traceEvents objects (each is one-level deep
// except the trailing "args" object, which is always last).
// ---------------------------------------------------------------------

/// One `"ph":"X"` complete event: `(name, ts, dur, tid)`.
#[derive(Debug, Clone)]
struct Complete {
    name: String,
    ts: u64,
    dur: u64,
    tid: u64,
}

fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = &obj[at..];
    if let Some(s) = rest.strip_prefix('"') {
        s.split('"').next()
    } else {
        Some(rest.split([',', '}']).next().unwrap_or("").trim())
    }
}

/// Split the `traceEvents` array into its top-level objects by brace
/// depth (string-aware would be overkill: names are escaped and the only
/// braces inside strings would be user SQL, which Q8 plans don't carry —
/// json_check above already proved the document well-formed).
fn trace_event_objects(json: &str) -> Vec<&str> {
    let start = json.find("\"traceEvents\":[").expect("traceEvents array") + 15;
    let mut depth = 0usize;
    let mut obj_start = 0usize;
    let mut out = Vec::new();
    for (i, c) in json[start..].char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    obj_start = start + i;
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    out.push(&json[obj_start..=start + i]);
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    out
}

/// Assert that the intervals on one tid obey a strict stack discipline:
/// sorted by `(ts, dur desc)`, every interval either starts at-or-after
/// the previous top ends, or sits entirely inside it.
fn assert_strictly_nested(tid: u64, spans: &mut [Complete]) {
    spans.sort_by_key(|s| (s.ts, u64::MAX - s.dur));
    let mut stack: Vec<Complete> = Vec::new();
    for s in spans.iter() {
        while stack.last().is_some_and(|top| top.ts + top.dur <= s.ts) {
            stack.pop();
        }
        if let Some(top) = stack.last() {
            assert!(
                s.ts >= top.ts && s.ts + s.dur <= top.ts + top.dur,
                "tid {tid}: '{}' [{}, {}] partially overlaps '{}' [{}, {}]",
                s.name,
                s.ts,
                s.ts + s.dur,
                top.name,
                top.ts,
                top.ts + top.dur,
            );
        }
        stack.push(s.clone());
    }
}

fn q8_events() -> (Vec<qprog_exec::trace::TraceEvent>, Vec<String>, String) {
    let catalog = TpchGenerator::new(TpchConfig {
        scale: 0.005,
        skew: 2.0,
        seed: 8,
    })
    .catalog()
    .unwrap();

    // Learn operator names from an untraced compile (registration order is
    // deterministic), as the trace_q8 example does.
    let probe_session = Session::new(catalog.clone());
    let probe = probe_session
        .query_plan(q8_plan(probe_session.builder()).unwrap())
        .unwrap();
    let op_names: Vec<String> = probe
        .registry()
        .iter()
        .map(|(n, _)| n.to_string())
        .collect();

    let ring = Arc::new(RingSink::with_capacity(1 << 14));
    let jsonl_buf = SharedBuf::default();
    let jsonl = Arc::new(JsonlSink::new(jsonl_buf.clone()).with_op_names(op_names.clone()));
    let bus = EventBus::builder()
        .sink(Arc::clone(&ring) as _)
        .sink(Arc::clone(&jsonl) as _)
        .build();
    let session = SessionBuilder::new(catalog)
        .observability(Observability::new().with_trace(bus))
        .build()
        .unwrap();
    let mut query = session
        .query_plan(q8_plan(session.builder()).unwrap())
        .unwrap();
    let rows = query.collect().unwrap();
    assert!(!rows.is_empty(), "Q8 returned no rows");
    (ring.drain(), op_names, jsonl_buf.text())
}

/// A `Write` target the test can read back while the sink keeps ownership.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn q8_chrome_export_is_valid_json_with_strictly_nested_spans() {
    let (events, op_names, _) = q8_events();
    assert!(!events.is_empty(), "traced Q8 run published no events");

    let tree = SpanTree::from_events(&events, &op_names);
    let violations = tree.nesting_violations();
    assert!(
        violations.is_empty(),
        "span tree not nested: {violations:?}"
    );

    let json = tree.to_chrome_json(8);
    json_check(&json).expect("chrome export must be valid JSON");
    assert!(json.contains("\"displayTimeUnit\":\"ms\""));

    let objects = trace_event_objects(&json);
    assert!(
        objects.len() > 10,
        "expected a rich trace, got {} events",
        objects.len()
    );

    let mut by_tid: std::collections::BTreeMap<u64, Vec<Complete>> = Default::default();
    let mut named_tids = std::collections::BTreeSet::new();
    for obj in &objects {
        match field(obj, "ph") {
            Some("X") => {
                let span = Complete {
                    name: field(obj, "name").unwrap_or_default().to_string(),
                    ts: field(obj, "ts").unwrap().parse().unwrap(),
                    dur: field(obj, "dur").unwrap().parse().unwrap(),
                    tid: field(obj, "tid").unwrap().parse().unwrap(),
                };
                assert_eq!(field(obj, "pid"), Some("8"), "pid must be the query id");
                by_tid.entry(span.tid).or_default().push(span);
            }
            Some("M") => {
                assert_eq!(field(obj, "name"), Some("thread_name"));
                named_tids.insert(field(obj, "tid").unwrap().parse::<u64>().unwrap());
            }
            other => panic!("unexpected ph {other:?} in {obj}"),
        }
    }

    // Every track used by a complete event carries thread_name metadata.
    for tid in by_tid.keys() {
        assert!(named_tids.contains(tid), "tid {tid} has no thread_name");
    }

    // The lifecycle track holds the synthesized root covering the run.
    let lifecycle = by_tid.get(&0).expect("lifecycle track");
    let root = lifecycle
        .iter()
        .find(|s| s.name == "query")
        .expect("root query span");
    let t_max = events.iter().map(|e| e.at_us).max().unwrap();
    assert!(root.ts + root.dur >= t_max, "root must cover the run");

    // Q8's eight-table pipeline shows up as real derived spans.
    let all_names: Vec<&str> = by_tid.values().flatten().map(|s| s.name.as_str()).collect();
    assert!(
        all_names.iter().any(|n| n.starts_with("op ")),
        "no operator spans in {all_names:?}"
    );
    assert!(
        all_names.iter().any(|n| n.starts_with("phase ")),
        "no phase spans in {all_names:?}"
    );

    // The acceptance invariant: strict nesting per thread-track.
    for (tid, spans) in by_tid.iter_mut() {
        assert_strictly_nested(*tid, spans);
    }
}

#[test]
fn replayed_jsonl_rebuilds_the_identical_chrome_export() {
    let (events, op_names, jsonl) = q8_events();
    let live = SpanTree::from_events(&events, &op_names).to_chrome_json(8);

    let replayed = ReplayedTrace::parse(&jsonl);
    assert!(
        replayed.errors.is_empty(),
        "replay parse errors: {:?}",
        replayed.errors
    );
    let offline = SpanTree::from_events(&replayed.events, &replayed.op_names).to_chrome_json(8);
    assert_eq!(
        live, offline,
        "offline replay must reproduce the live span export byte-for-byte"
    );
}

#[test]
fn validator_rejects_malformed_documents() {
    // Sanity-check the hand-rolled checker itself so a green export test
    // means something.
    assert!(json_check("{\"a\":[1,2,{\"b\":\"c\\n\"}]}").is_ok());
    assert!(json_check("{\"a\":1,}").is_err());
    assert!(json_check("{\"a\":1} trailing").is_err());
    assert!(json_check("{\"a\":\"unterminated}").is_err());
    assert!(json_check("[1,2,").is_err());
    assert!(json_check("{\"a\":01e}").is_err());
    assert!(json_check("{\"a\":\"bad\\q\"}").is_err());
}
