//! Concurrency stress for the event → metrics path: N producer threads
//! hammer one [`EventBus`] fanned out to a bounded ring sink and a
//! [`MetricsSink`], while a reader thread snapshots the registry the whole
//! time. Verifies the observability pipeline under contention:
//!
//! - no event is lost (the ring holds every published event, with
//!   contiguous unique sequence numbers),
//! - no *terminal* event is lost (every producer's `QueryFinished` lands
//!   in both the ring and the `qprog_queries_finished_total` counter),
//! - counter snapshots are monotone non-decreasing — a registry snapshot
//!   taken mid-storm never observes a counter moving backwards.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use qprog::exec::trace::{EstimateSource, EventBus, Phase, TraceEventKind};
use qprog::metrics::Registry;
use qprog::obs::{MetricsSink, RingSink};

const PRODUCERS: usize = 8;
const ROUNDS: u64 = 200;

#[test]
fn concurrent_publication_loses_no_events_and_counters_stay_monotone() {
    let registry = Arc::new(Registry::new());
    let metrics = Arc::new(MetricsSink::new(Arc::clone(&registry), "once"));
    let ring = Arc::new(RingSink::with_capacity(1 << 16));
    let bus = EventBus::builder()
        .sink(Arc::clone(&ring) as _)
        .sink(Arc::clone(&metrics) as _)
        .build();

    let done = Arc::new(AtomicBool::new(false));
    let reader = {
        let registry = Arc::clone(&registry);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let sum_of = |samples: &[qprog::metrics::Sample], name: &str| -> f64 {
                samples
                    .iter()
                    .filter(|s| s.name == name)
                    .map(|s| s.value)
                    .sum()
            };
            let (mut last_events, mut last_finished) = (0.0, 0.0);
            let mut snapshots = 0usize;
            while !done.load(Ordering::Acquire) {
                let snap = registry.snapshot();
                let events = sum_of(&snap, "qprog_trace_events_total");
                let finished = sum_of(&snap, "qprog_queries_finished_total");
                assert!(
                    events >= last_events,
                    "qprog_trace_events_total went backwards: {last_events} -> {events}"
                );
                assert!(
                    finished >= last_finished,
                    "qprog_queries_finished_total went backwards: \
                     {last_finished} -> {finished}"
                );
                last_events = events;
                last_finished = finished;
                snapshots += 1;
                thread::yield_now();
            }
            snapshots
        })
    };

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let bus = Arc::clone(&bus);
            thread::spawn(move || {
                let op = p as u32;
                for i in 0..ROUNDS {
                    bus.publish(TraceEventKind::PhaseTransition {
                        op,
                        from: Phase::Build,
                        to: Phase::Probe,
                    });
                    bus.publish(TraceEventKind::EstimateRefined {
                        op,
                        old: i as f64,
                        new: (i + 1) as f64,
                        source: EstimateSource::Online,
                    });
                }
                bus.publish(TraceEventKind::OperatorFinished {
                    op,
                    emitted: ROUNDS,
                });
                bus.publish(TraceEventKind::QueryFinished { rows: ROUNDS });
            })
        })
        .collect();
    for t in producers {
        t.join().unwrap();
    }
    done.store(true, Ordering::Release);
    let snapshots = reader.join().unwrap();
    assert!(snapshots > 0, "reader never sampled the registry");

    // Nothing lost: the ring holds every event exactly once.
    let expected = PRODUCERS as u64 * (2 * ROUNDS + 2);
    assert_eq!(bus.published(), expected);
    assert_eq!(
        ring.dropped(),
        0,
        "ring overflowed — sizing bug in the test"
    );
    let events = ring.drain();
    assert_eq!(events.len(), expected as usize);
    let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (0..expected).collect::<Vec<_>>());
    let terminal = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::QueryFinished { .. }))
        .count();
    assert_eq!(terminal, PRODUCERS, "lost terminal events in the ring");

    // ... and the aggregated counters agree exactly.
    let text = registry.render();
    let expect = [
        format!("qprog_queries_finished_total{{estimator=\"once\"}} {PRODUCERS}"),
        format!(
            "qprog_query_rows_total{{estimator=\"once\"}} {}",
            PRODUCERS as u64 * ROUNDS
        ),
        format!(
            "qprog_operator_tuples_total{{estimator=\"once\"}} {}",
            PRODUCERS as u64 * ROUNDS
        ),
        format!("qprog_trace_events_total{{event=\"query_finished\"}} {PRODUCERS}"),
        format!(
            "qprog_trace_events_total{{event=\"phase_transition\"}} {}",
            PRODUCERS as u64 * ROUNDS
        ),
        format!(
            "qprog_estimate_refinements_total{{source=\"online\"}} {}",
            PRODUCERS as u64 * ROUNDS
        ),
    ];
    for line in &expect {
        assert!(text.contains(line), "missing `{line}` in:\n{text}");
    }
}
