//! End-to-end tests spanning the whole stack: SQL → planning → execution
//! with every estimation mode, checked for result consistency and sane
//! progress reporting.

use qprog::core::EstimationMode;
use qprog::plan::physical::PhysicalOptions;
use qprog::prelude::*;
use qprog::workloads::q8_plan;
use qprog_datagen::{TpchConfig, TpchGenerator};

fn skewed_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(qprog::datagen::customer_table(
        "customer", 20_000, 1.5, 300, 1,
    ))
    .unwrap();
    c.register(qprog::datagen::customer_table(
        "customer2",
        20_000,
        1.5,
        300,
        2,
    ))
    .unwrap();
    c.register(qprog::datagen::nation_table("nation", 300))
        .unwrap();
    c
}

/// Row multisets must be identical across estimation modes — estimation is
/// observational only.
#[test]
fn estimation_modes_do_not_change_results() {
    let sql = "SELECT customer.custkey, nation.name FROM customer \
               JOIN nation ON customer.nationkey = nation.nationkey \
               WHERE customer.custkey < 5000 ORDER BY custkey";
    let mut reference: Option<Vec<String>> = None;
    for mode in EstimationMode::ALL {
        let session = Session::new(skewed_catalog()).with_options(PhysicalOptions::with_mode(mode));
        let rows: Vec<String> = session
            .query(sql)
            .unwrap()
            .collect()
            .unwrap()
            .iter()
            .map(|r| r.to_string())
            .collect();
        match &reference {
            None => reference = Some(rows),
            Some(expect) => assert_eq!(&rows, expect, "mode {mode:?} changed results"),
        }
    }
    assert_eq!(reference.unwrap().len(), 5000);
}

/// Once-mode join estimates must be exact as soon as the first output row
/// appears (preprocessing done), even under heavy skew where the optimizer
/// estimate is far off.
#[test]
fn once_estimates_exact_at_first_output_under_skew() {
    let session = Session::new(skewed_catalog());
    let mut q = session
        .query(
            "SELECT * FROM customer JOIN customer2 \
             ON customer.nationkey = customer2.nationkey",
        )
        .unwrap();
    let first = q.step().unwrap();
    assert!(first.is_some());
    let join_estimate = q
        .registry()
        .iter()
        .find(|(n, _)| *n == "hash_join")
        .map(|(_, m)| m.estimated_total())
        .unwrap();
    let mut count = 1u64;
    while q.step().unwrap().is_some() {
        count += 1;
    }
    assert_eq!(join_estimate, count as f64);
}

/// gnm progress: monotone non-decreasing when observed at output cadence,
/// ends at 1.0, complete at the end.
#[test]
fn progress_is_monotone_and_complete() {
    let session = Session::new(skewed_catalog());
    let mut q = session
        .query("SELECT nationkey, count(*) FROM customer GROUP BY nationkey")
        .unwrap();
    let mut fractions = Vec::new();
    q.run(
        RunOptions::new()
            .observer(|s| fractions.push(s.fraction()))
            .cadence(16),
    )
    .unwrap();
    assert!(!fractions.is_empty());
    for w in fractions.windows(2) {
        assert!(
            w[1] >= w[0] - 1e-9,
            "progress went backwards: {} → {}",
            w[0],
            w[1]
        );
    }
    assert_eq!(*fractions.last().unwrap(), 1.0);
}

/// Early termination (LIMIT) must still drive progress to completion.
#[test]
fn limit_terminates_progress() {
    let session = Session::new(skewed_catalog());
    let mut q = session
        .query("SELECT * FROM customer ORDER BY custkey LIMIT 5")
        .unwrap();
    let tracker = q.tracker();
    let rows = q.collect().unwrap();
    assert_eq!(rows.len(), 5);
    assert!(tracker.snapshot().is_complete());
    assert_eq!(tracker.fraction(), 1.0);
}

/// TPC-H Q8 runs identically in all modes on a small skewed database, and
/// all seven joins form a single estimation pipeline in Once mode.
#[test]
fn q8_all_modes_agree() {
    let catalog = TpchGenerator::new(TpchConfig {
        scale: 0.003,
        skew: 2.0,
        seed: 3,
    })
    .catalog()
    .unwrap();
    let mut reference: Option<Vec<String>> = None;
    for mode in EstimationMode::ALL {
        let session = Session::new(catalog.clone()).with_options(PhysicalOptions::with_mode(mode));
        let plan = q8_plan(session.builder()).unwrap();
        let rows: Vec<String> = session
            .query_plan(plan)
            .unwrap()
            .collect()
            .unwrap()
            .iter()
            .map(|r| r.to_string())
            .collect();
        match &reference {
            None => reference = Some(rows),
            Some(expect) => assert_eq!(&rows, expect, "mode {mode:?}"),
        }
    }
}

/// Merge-join plans agree with hash-join plans on results and reach exact
/// estimates before the merge emits.
#[test]
fn merge_join_agrees_with_hash_join() {
    let b = Session::new(skewed_catalog());
    let hash = b
        .builder()
        .scan("customer")
        .unwrap()
        .hash_join(
            b.builder().scan("nation").unwrap(),
            "nation.nationkey",
            "customer.nationkey",
        )
        .unwrap();
    let merge = b
        .builder()
        .scan("customer")
        .unwrap()
        .join_build(
            b.builder().scan("nation").unwrap(),
            "nation.nationkey",
            "customer.nationkey",
            qprog::plan::JoinAlgo::Merge,
        )
        .unwrap();
    let n_hash = b.query_plan(hash).unwrap().collect().unwrap().len();
    let n_merge = b.query_plan(merge).unwrap().collect().unwrap().len();
    assert_eq!(n_hash, n_merge);
    assert_eq!(n_hash, 20_000);
}

/// The sampling fraction changes scan order but never results.
#[test]
fn sampling_fraction_is_semantically_invisible() {
    for fraction in [0.0, 0.05, 0.5, 1.0] {
        let opts = PhysicalOptions {
            sample_fraction: fraction,
            ..PhysicalOptions::default()
        };
        let session = Session::new(skewed_catalog()).with_options(opts);
        let rows = session
            .query("SELECT count(*) FROM customer JOIN nation ON customer.nationkey = nation.nationkey")
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(rows[0].get(0).unwrap().as_i64().unwrap(), 20_000);
    }
}
