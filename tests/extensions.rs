//! Integration tests for the extension features: join kinds through SQL,
//! future-pipeline refinement, and progress confidence bounds.

use qprog::core::EstimationMode;
use qprog::plan::physical::PhysicalOptions;
use qprog::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(qprog::datagen::customer_table(
        "customer", 10_000, 1.0, 400, 1,
    ))
    .unwrap();
    // nation covers only the lower half of the domain → guaranteed misses
    c.register(qprog::datagen::nation_table("nation", 200))
        .unwrap();
    c
}

#[test]
fn sql_left_join_counts_match_set_algebra() {
    let session = Session::new(catalog());
    let total = 10_000i64;
    let inner = session
        .query("SELECT count(*) FROM customer JOIN nation ON customer.nationkey = nation.nationkey")
        .unwrap()
        .collect()
        .unwrap()[0]
        .get(0)
        .unwrap()
        .as_i64()
        .unwrap();
    let left = session
        .query(
            "SELECT count(*) FROM customer LEFT JOIN nation \
             ON customer.nationkey = nation.nationkey",
        )
        .unwrap()
        .collect()
        .unwrap()[0]
        .get(0)
        .unwrap()
        .as_i64()
        .unwrap();
    // nation is a PK (multiplicity ≤ 1), so: left = inner + unmatched, and
    // every customer appears exactly once in the left join.
    assert_eq!(left, total);
    assert!(inner < total, "test data must produce unmatched customers");
    // unmatched customers have NULL nation columns
    let rows = session
        .query(
            "SELECT * FROM customer LEFT JOIN nation \
             ON customer.nationkey = nation.nationkey",
        )
        .unwrap()
        .collect()
        .unwrap();
    let padded = rows.iter().filter(|r| r.get(0).unwrap().is_null()).count() as i64;
    assert_eq!(padded, total - inner);
}

#[test]
fn builder_semi_and_anti_join_partition_the_probe_side() {
    let session = Session::new(catalog());
    let b = session.builder();
    let semi = b
        .scan("customer")
        .unwrap()
        .semi_join(
            b.scan("nation").unwrap(),
            "nation.nationkey",
            "customer.nationkey",
        )
        .unwrap();
    let anti = b
        .scan("customer")
        .unwrap()
        .anti_join(
            b.scan("nation").unwrap(),
            "nation.nationkey",
            "customer.nationkey",
        )
        .unwrap();
    // semi/anti output only the probe columns
    assert_eq!(semi.schema.arity(), 2);
    let n_semi = session.query_plan(semi).unwrap().collect().unwrap().len();
    let n_anti = session.query_plan(anti).unwrap().collect().unwrap().len();
    assert_eq!(n_semi + n_anti, 10_000);
    assert!(n_semi > 0 && n_anti > 0);
}

#[test]
fn once_estimates_exact_for_all_kinds_after_preprocessing() {
    use qprog::plan::JoinAlgo;
    use qprog_core::join_est::JoinKind;
    let session = Session::new(catalog());
    let b = session.builder();
    for kind in [
        JoinKind::Inner,
        JoinKind::LeftOuter,
        JoinKind::Semi,
        JoinKind::Anti,
    ] {
        let plan = b
            .scan("customer")
            .unwrap()
            .join_build_kind(
                b.scan("nation").unwrap(),
                "nation.nationkey",
                "customer.nationkey",
                JoinAlgo::Hash,
                kind,
            )
            .unwrap();
        let mut q = session.query_plan(plan).unwrap();
        let first = q.step().unwrap();
        assert!(first.is_some(), "{kind:?}");
        let estimate = q
            .registry()
            .iter()
            .find(|(n, _)| *n == "hash_join")
            .map(|(_, m)| m.estimated_total())
            .unwrap();
        let mut count = 1u64;
        while q.step().unwrap().is_some() {
            count += 1;
        }
        assert_eq!(estimate, count as f64, "{kind:?}");
    }
}

#[test]
fn refinement_rescales_pending_aggregate() {
    // customer ⋈ customer2 is badly estimated by the optimizer under skew;
    // once the join pipeline converges, the pending GROUP BY's N_i should
    // scale by the same ratio — visible as a better mid-run fraction.
    let mut c = catalog();
    c.register(qprog::datagen::customer_table(
        "customer2",
        10_000,
        1.0,
        400,
        2,
    ))
    .unwrap();
    let session = Session::new(c);
    let mut q = session
        .query(
            "SELECT customer.nationkey, count(*) FROM customer \
             JOIN customer2 ON customer.nationkey = customer2.nationkey \
             GROUP BY customer.nationkey",
        )
        .unwrap();
    let tracker = q.tracker();
    // run the join's preprocessing by pulling one aggregate output row —
    // that drains everything; instead, step operator-by-operator is not
    // possible here, so check refined estimates at completion: they must
    // match the exact totals.
    let rows = q.collect().unwrap();
    assert!(!rows.is_empty());
    let refined = tracker.refined_estimates();
    for (i, (_, m)) in tracker.registry().iter().enumerate() {
        assert_eq!(refined[i], m.emitted() as f64);
    }
    assert_eq!(tracker.fraction(), 1.0);
}

#[test]
fn fraction_bounds_bracket_fraction_throughout_execution() {
    let session = Session::new(catalog()).with_options(PhysicalOptions {
        mode: EstimationMode::Once,
        ..PhysicalOptions::default()
    });
    let mut q = session
        .query("SELECT * FROM customer JOIN nation ON customer.nationkey = nation.nationkey")
        .unwrap();
    let tracker = q.tracker();
    let mut checked = 0;
    while q.step().unwrap().is_some() {
        let (lo, hi) = tracker.fraction_bounds();
        let point = tracker.fraction();
        assert!(
            lo <= point + 1e-9 && point <= hi + 1e-9,
            "bounds [{lo}, {hi}] must bracket {point}"
        );
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        checked += 1;
    }
    assert!(checked > 0);
    assert_eq!(tracker.fraction_bounds(), (1.0, 1.0));
}

#[test]
fn distinct_and_in_compose_with_joins() {
    let session = Session::new(catalog());
    let rows = session
        .query(
            "SELECT DISTINCT nation.name FROM customer \
             JOIN nation ON customer.nationkey = nation.nationkey \
             WHERE customer.nationkey IN (0, 1, 2)",
        )
        .unwrap()
        .collect()
        .unwrap();
    assert!(rows.len() <= 3);
    assert!(!rows.is_empty());
}
