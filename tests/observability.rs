//! End-to-end observability: a traced hash-join query streaming JSONL
//! events, checked for estimate convergence, invariant cleanliness, and
//! timeline capture.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use qprog::obs::json::raw_field;
use qprog::obs::timeline::TimelineRecorder;
use qprog::prelude::*;

/// A `Write` target the test can read back while the sink keeps ownership.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(qprog::datagen::customer_table(
        "customer", 5000, 1.0, 100, 1,
    ))
    .unwrap();
    c.register(qprog::datagen::nation_table("nation", 100))
        .unwrap();
    c
}

#[test]
fn jsonl_trace_shows_estimates_converging_to_exact_cardinality() {
    let buf = SharedBuf::default();
    let jsonl = Arc::new(JsonlSink::new(buf.clone()));
    let validator = Arc::new(ValidatorSink::new());
    let bus = EventBus::builder()
        .sink(Arc::clone(&jsonl) as _)
        .sink(Arc::clone(&validator) as _)
        .build();

    let session = SessionBuilder::new(catalog())
        .observability(Observability::new().with_trace(bus))
        .build()
        .unwrap();
    let mut h = session
        .query(
            "SELECT * FROM customer \
             JOIN nation ON customer.nationkey = nation.nationkey",
        )
        .unwrap();
    let actual = h.collect().unwrap().len() as f64;
    assert_eq!(actual, 5000.0);

    let text = buf.text();
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty());

    // The hash join's registry index, recovered from the trace itself: the
    // op that transitions build -> probe.
    let join_op = lines
        .iter()
        .find(|l| {
            raw_field(l, "event") == Some("phase_transition") && raw_field(l, "to") == Some("probe")
        })
        .and_then(|l| raw_field(l, "op"))
        .expect("hash join publishes a build->probe transition")
        .to_string();
    let join_refinements: Vec<(&str, f64)> = lines
        .iter()
        .filter(|l| {
            raw_field(l, "event") == Some("estimate_refined")
                && raw_field(l, "op") == Some(&join_op)
        })
        .map(|l| {
            (
                raw_field(l, "source").unwrap(),
                raw_field(l, "new").unwrap().parse::<f64>().unwrap(),
            )
        })
        .collect();

    // First publication is the optimizer's compile-time estimate; the
    // framework then refines online and lands exactly on the true
    // cardinality when the join finishes.
    assert!(join_refinements.len() >= 2, "{join_refinements:?}");
    assert_eq!(join_refinements[0].0, "optimizer");
    let (last_source, last_estimate) = *join_refinements.last().unwrap();
    assert_eq!(last_source, "exact");
    assert_eq!(last_estimate, actual);

    // §4.1: the `once` estimate has converged by the end of the probe
    // partitioning pass — the last estimate published before the
    // probe -> partition_join transition is already within the trace
    // batching tolerance of the true cardinality.
    let probe_end = lines
        .iter()
        .position(|l| {
            raw_field(l, "event") == Some("phase_transition")
                && raw_field(l, "op") == Some(&join_op)
                && raw_field(l, "to") == Some("partition_join")
        })
        .expect("probe -> partition_join transition");
    let at_probe_end = lines[..probe_end]
        .iter()
        .rfind(|l| {
            raw_field(l, "event") == Some("estimate_refined")
                && raw_field(l, "op") == Some(&join_op)
        })
        .and_then(|l| raw_field(l, "new"))
        .unwrap()
        .parse::<f64>()
        .unwrap();
    let rel_err = (at_probe_end - actual).abs() / actual;
    assert!(
        rel_err < 0.02,
        "estimate at end of probe pass = {at_probe_end}, actual = {actual}"
    );

    // The trace closes with the query's row count, and no event violated a
    // progress invariant.
    let last = lines.last().unwrap();
    assert_eq!(raw_field(last, "event"), Some("query_finished"));
    assert_eq!(raw_field(last, "rows"), Some("5000"));
    assert!(validator.is_clean(), "{:?}", validator.violations());
}

#[test]
fn ring_timeline_and_explain_cover_a_monitored_query() {
    let ring = Arc::new(RingSink::with_capacity(1 << 12));
    let bus = EventBus::with_sink(Arc::clone(&ring) as _);
    let session = SessionBuilder::new(catalog())
        .observability(Observability::new().with_trace(Arc::clone(&bus)))
        .build()
        .unwrap();
    let mut h = session
        .query("SELECT nationkey, count(*) FROM customer GROUP BY nationkey")
        .unwrap();

    let recorder = TimelineRecorder::new(h.tracker()).with_bus(bus);
    let handle = recorder.spawn(Duration::from_millis(1));
    let rows = h.collect().unwrap();
    let log = handle.finish();
    assert_eq!(rows.len(), 100);

    // Timeline: samples exist, progress never regresses, terminal state is
    // complete, and exports carry every operator column.
    assert!(!log.is_empty());
    assert_eq!(log.monotonicity_violations(0.01), 0);
    let last = log.points().last().unwrap();
    assert_eq!(last.fraction, 1.0);
    let header = log.to_csv().lines().next().unwrap().to_string();
    for name in log.op_names() {
        assert!(header.contains(name), "{header}");
    }

    // EXPLAIN ANALYZE over the drained ring reports exact convergence for
    // every finished operator.
    let events = ring.drain();
    assert!(!events.is_empty());
    assert_eq!(ring.dropped(), 0);
    let report = h.explain_analyze(&events);
    assert!(report.contains("-> hash_agg"), "{report}");
    assert!(report.contains("actual: 100 rows"), "{report}");
    assert!(report.contains("-> scan(customer)"), "{report}");
    assert!(!report.contains("unfinished"), "{report}");
}
