//! Persistent trace corpus: acceptance and crash-safety tests.
//!
//! - the seeded-corpus gate: 8 clean baseline runs plus one degraded run
//!   must yield *exactly one* `RegressionDetected` event, one
//!   `qprog_regressions_total` increment, and a `/history` listing of all
//!   nine runs with scorecards;
//! - crash tolerance: truncated index records and torn trace segments are
//!   skipped with diagnostics on reopen, never errors;
//! - fidelity: a corpus segment written by a real session round-trips
//!   byte-identically through `obs::replay` and re-scores to the stored
//!   scorecard.
//!
//! The failpoint-driven wall-time regression gate (a deliberately slowed
//! run against real baselines) additionally needs `--features failpoints`.

use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use qprog::exec::trace::{RegressionKind, TraceEventKind};
use qprog::obs::{Corpus, CorpusSink, MetricsSink, ReplayedTrace, RunMeta};
use qprog::prelude::*;

fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "qprog-corpus-test-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

/// A synthetic finished run with deterministic timestamps: progress
/// samples offset from the retrospective oracle by `err`.
fn run_events(err: f64) -> Vec<TraceEvent> {
    let samples = [(0.25, 25u64), (0.5, 50), (0.75, 75), (1.0, 100)];
    let mut events: Vec<TraceEvent> = samples
        .iter()
        .enumerate()
        .map(|(i, &(oracle, current))| TraceEvent {
            seq: i as u64,
            at_us: 200 * (i as u64 + 1),
            kind: TraceEventKind::ProgressSampled {
                current,
                total: 100.0,
                fraction: (oracle + err).min(1.0),
                lo: f64::NAN,
                hi: f64::NAN,
            },
        })
        .collect();
    events.push(TraceEvent {
        seq: events.len() as u64,
        at_us: 1000,
        kind: TraceEventKind::QueryFinished { rows: 100 },
    });
    events
}

/// Archive one synthetic run through a [`CorpusSink`] whose regressions
/// fan out to a fresh per-run metrics sink (shared registry) and the
/// shared ring.
fn drive_run(
    corpus: &Arc<Corpus>,
    registry: &Arc<Registry>,
    ring: &Arc<RingSink>,
    err: f64,
) -> qprog::obs::ArchivedRun {
    let sink = Arc::new(CorpusSink::new(
        Arc::clone(corpus),
        RunMeta::new("acceptance", "once"),
    ));
    let metrics = Arc::new(MetricsSink::new(Arc::clone(registry), "once"));
    let bus = EventBus::builder()
        .sink(metrics as _)
        .sink(Arc::clone(ring) as Arc<dyn TraceSink>)
        .build();
    sink.attach_bus(&bus);
    // Events are fed to the sink directly (deterministic timestamps); only
    // the regression verdicts travel over the bus.
    for event in run_events(err) {
        sink.publish(&event);
    }
    assert_eq!(sink.dropped(), 0);
    sink.archived_run()
        .expect("terminal event archives the run")
}

/// The ISSUE acceptance gate: 8 clean + 1 degraded run → exactly one
/// regression event, one metrics increment, nine `/history` rows.
#[test]
fn seeded_corpus_flags_exactly_one_regression() {
    let dir = tmpdir("seeded");
    let corpus = Arc::new(Corpus::open(&dir).unwrap());
    let registry = Arc::new(Registry::new());
    let ring = Arc::new(RingSink::with_capacity(256));

    for _ in 0..8 {
        let run = drive_run(&corpus, &registry, &ring, 0.0);
        assert!(
            run.regressions.is_empty(),
            "clean baseline run flagged: {:?}",
            run.regressions
        );
    }
    // Degraded run: a constant +0.08 progress offset. Only mean_abs_err
    // crosses its threshold — the offset stays inside the convergence
    // band, publishes monotonically, and the timestamps are identical.
    let degraded = drive_run(&corpus, &registry, &ring, 0.08);
    assert_eq!(degraded.regressions.len(), 1, "{:?}", degraded.regressions);
    assert_eq!(degraded.regressions[0].kind, RegressionKind::MeanAbsErr);
    assert_eq!(degraded.record.regressions, 1);

    // Exactly one RegressionDetected event across all nine runs.
    let regression_events: Vec<TraceEvent> = ring
        .drain()
        .into_iter()
        .filter(|e| matches!(e.kind, TraceEventKind::RegressionDetected { .. }))
        .collect();
    assert_eq!(regression_events.len(), 1);
    let text = registry.render();
    assert!(
        text.contains("qprog_regressions_total{kind=\"mean_abs_err\"} 1"),
        "{text}"
    );
    assert!(!text.contains("kind=\"wall_time\""), "{text}");

    // /history lists all nine runs, each with its scorecard.
    let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
    server.set_corpus(Arc::clone(&corpus));
    let listing = http_get(server.addr(), "/history");
    assert_eq!(listing.matches("\"run\":").count(), 9, "{listing}");
    assert_eq!(listing.matches("\"mean_abs_err\":").count(), 9, "{listing}");
    let last = http_get(server.addr(), "/history/8");
    assert!(last.contains("\"regressions\":1"), "{last}");
    let clean = http_get(server.addr(), "/history/0");
    assert!(clean.contains("\"regressions\":0"), "{clean}");
    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// Crash tolerance: a truncated index record and a torn trace segment are
/// both skipped with diagnostics on reopen; intact runs survive.
#[test]
fn corpus_reopen_survives_truncated_index_and_torn_segment() {
    let dir = tmpdir("crash");
    {
        let corpus = Corpus::open(&dir).unwrap();
        let meta = RunMeta::new("crashy", "once");
        for _ in 0..3 {
            corpus.archive(&meta, &run_events(0.0), &[]).unwrap();
        }
    }
    // Tear run 1's segment mid-line (a crash during the segment write).
    let seg1 = dir.join("run-000001.jsonl");
    let bytes = fs::read(&seg1).unwrap();
    fs::write(&seg1, &bytes[..bytes.len() / 2]).unwrap();
    // Truncate the index's last record mid-line (a crash during append).
    let index = dir.join("index.jsonl");
    let text = fs::read_to_string(&index).unwrap();
    fs::write(&index, &text[..text.len() - 20]).unwrap();

    let corpus = Corpus::open(&dir).unwrap();
    let diags = corpus.diagnostics();
    // One diagnostic for the torn segment, one for the truncated index
    // line, one for run 2's segment going orphan when its record was cut.
    assert!(
        diags.iter().any(|d| d.contains("torn trace segment")),
        "{diags:?}"
    );
    assert!(diags.iter().any(|d| d.contains("index line")), "{diags:?}");
    assert!(
        diags.iter().any(|d| d.contains("orphan trace segment")),
        "{diags:?}"
    );
    let runs = corpus.runs();
    assert_eq!(
        runs.iter().map(|r| r.run).collect::<Vec<_>>(),
        vec![0],
        "only the intact run survives"
    );
    // The bad artifacts are gone from disk and ids are never reused.
    assert!(!seg1.exists());
    assert!(!dir.join("run-000002.jsonl").exists());
    let next = corpus
        .archive(&RunMeta::new("crashy", "once"), &run_events(0.0), &[])
        .unwrap();
    assert_eq!(next.record.run, 3);
    drop(corpus);

    // The compacted store reopens clean: diagnostics do not recur.
    let corpus = Corpus::open(&dir).unwrap();
    assert!(
        corpus.diagnostics().is_empty(),
        "{:?}",
        corpus.diagnostics()
    );
    assert_eq!(corpus.len(), 2);
    let _ = fs::remove_dir_all(&dir);
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(qprog::datagen::customer_table(
        "customer", 5000, 1.0, 100, 1,
    ))
    .unwrap();
    c.register(qprog::datagen::nation_table("nation", 100))
        .unwrap();
    c
}

/// End-to-end: a session with a corpus archives every run; the archived
/// segment round-trips byte-identically through `obs::replay` and
/// re-scores to the stored scorecard; the session's monitor serves it all
/// under /history.
#[test]
fn session_archives_runs_that_round_trip_through_replay() {
    let dir = tmpdir("session");
    let session = SessionBuilder::new(catalog())
        .observability(
            Observability::new()
                .serve_on("127.0.0.1:0")
                .with_corpus(&dir),
        )
        .build()
        .unwrap();
    let server = Arc::clone(session.monitor().unwrap());
    let corpus = Arc::clone(session.corpus().unwrap());

    let sql = "SELECT count(*) FROM customer \
               JOIN nation ON customer.nationkey = nation.nationkey";
    for i in 0..2 {
        let mut h = session.query(sql).unwrap();
        assert_eq!(h.collect().unwrap().len(), 1);
        let archived = h.archived_run().expect("terminal event archives");
        assert_eq!(archived.record.run, i);
        assert_eq!(archived.record.state, "finished");
        assert_eq!(archived.record.estimator, "once");
        assert_eq!(archived.record.workload, sql);
        assert!(archived.record.events > 0);
        assert!(
            archived.regressions.is_empty(),
            "{:?}",
            archived.regressions
        );
    }
    assert_eq!(corpus.len(), 2);

    // Byte-identical replay round-trip, and score parity with the index.
    let stored = corpus.run(0).unwrap();
    let jsonl = corpus.trace_jsonl(0).unwrap();
    let trace = ReplayedTrace::parse(&jsonl);
    assert!(trace.errors.is_empty(), "{:?}", trace.errors);
    assert_eq!(trace.events.len() as u64, stored.events);
    let mut reencoded = String::new();
    for event in &trace.events {
        qprog::obs::json::write_event_json(&mut reencoded, event, &trace.op_names);
        reencoded.push('\n');
    }
    assert_eq!(jsonl, reencoded, "segment must round-trip byte-identically");
    assert_eq!(qprog::obs::score_events(&trace.events), stored.score);

    // The monitor picked the corpus up from the session automatically.
    let listing = http_get(server.addr(), "/history");
    assert_eq!(listing.matches("\"run\":").count(), 2, "{listing}");
    assert!(listing.contains("JOIN nation"), "{listing}");
    let trace_dl = http_get(server.addr(), "/history/1/trace");
    assert!(trace_dl.contains("application/x-ndjson"), "{trace_dl}");
    assert!(
        trace_dl.contains("\"event\":\"query_finished\""),
        "{trace_dl}"
    );
    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// An aborted run is archived with its abort reason and never enters the
/// regression baselines.
#[test]
fn aborted_runs_are_archived_with_their_reason() {
    let dir = tmpdir("abort");
    let session = SessionBuilder::new(catalog())
        .observability(Observability::new().with_corpus(&dir))
        .build()
        .unwrap();
    let mut h = session.query("SELECT * FROM customer").unwrap();
    h.cancel();
    assert!(h.collect().is_err());
    let archived = h.archived_run().expect("aborts archive too");
    assert_eq!(archived.record.state, "cancelled");
    assert!(archived.regressions.is_empty());
    let _ = fs::remove_dir_all(&dir);
}

/// The failpoint-seeded wall-time regression gate: real baselines, one
/// deliberately slowed run, zero false positives before and after.
#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;
    use qprog::fault::{self, FailScenario};
    use qprog::obs::{CorpusConfig, RegressionConfig};

    #[test]
    fn seeded_wall_time_regression_is_flagged_with_zero_false_positives() {
        let _scenario = FailScenario::setup();
        // Artifact dir: CI keeps (and uploads) it via QPROG_CI_CORPUS_DIR;
        // local runs use a scratch dir.
        let (dir, keep) = match std::env::var("QPROG_CI_CORPUS_DIR") {
            Ok(d) => (PathBuf::from(d), true),
            Err(_) => (tmpdir("failpoints"), false),
        };
        let _ = fs::remove_dir_all(&dir);
        // A high wall-time floor makes the gate immune to scheduler noise:
        // only a genuinely slowed run (the failpoint sleeps below are two
        // orders of magnitude) can cross median + 5x.
        let corpus = Arc::new(
            Corpus::open_with(
                &dir,
                CorpusConfig {
                    regression: RegressionConfig {
                        wall_time_floor_frac: 5.0,
                        ..RegressionConfig::default()
                    },
                    ..CorpusConfig::default()
                },
            )
            .unwrap(),
        );
        let registry = Arc::new(Registry::new());
        // Strict tuple mode: failpoints fire per batch boundary, and this
        // test's 2%-of-5000-checkpoints sleep budget assumes per-row
        // checkpoints (at the default batch_rows the scan has only ~5
        // boundaries, so the failpoint would almost never fire).
        let session = SessionBuilder::new(catalog())
            .batch_rows(1)
            .observability(
                Observability::new()
                    .with_metrics(Arc::clone(&registry))
                    .with_corpus_handle(Arc::clone(&corpus)),
            )
            .build()
            .unwrap();

        let sql = "SELECT * FROM customer";
        let run = |label: &str| {
            let mut h = session.query(sql).unwrap();
            assert_eq!(h.collect().unwrap().len(), 5000, "{label}");
            h.archived_run().expect("archived")
        };

        // 8 clean baselines: detection arms after min_baseline=5 and must
        // stay silent throughout.
        for i in 0..8 {
            let clean = run("baseline");
            assert!(
                clean.regressions.is_empty(),
                "false positive on clean run {i}: {:?}",
                clean.regressions
            );
        }

        // The degraded run: ~2% of the 5000 scan checkpoints sleep 2ms,
        // adding ~200ms to a run whose baseline is single-digit ms.
        fault::set_seed(7);
        fault::configure("exec/scan/next", "2%sleep(2)").unwrap();
        let degraded = run("degraded");
        fault::remove("exec/scan/next");
        assert_eq!(
            degraded.regressions.len(),
            1,
            "exactly the wall-time metric regresses: {:?}",
            degraded.regressions
        );
        assert_eq!(degraded.regressions[0].kind, RegressionKind::WallTime);
        let text = registry.render();
        assert!(
            text.contains("qprog_regressions_total{kind=\"wall_time\"} 1"),
            "{text}"
        );

        // Clean reruns after the incident: still zero false positives
        // (the slow run joins the baselines but cannot move the median).
        for i in 0..2 {
            let clean = run("rerun");
            assert!(
                clean.regressions.is_empty(),
                "false positive on rerun {i}: {:?}",
                clean.regressions
            );
        }
        assert_eq!(corpus.len(), 11);
        if !keep {
            let _ = fs::remove_dir_all(&dir);
        }
    }
}
