//! Accuracy claims from the paper, checked at test scale: the `once`
//! estimator converges within the probe sample, the baselines do not, and
//! the estimator chooser tracks skew.

use std::sync::Arc;

use qprog::core::chooser::EstimatorChoice;
use qprog::core::distinct::DistinctTracker;
use qprog::core::freq_hist::FreqHist;
use qprog::core::join_est::OnceJoinEstimator;
use qprog::core::{byte::ByteEstimator, dne::DneEstimator};
use qprog_types::Key;

fn keys_of(table: &qprog_storage::Table, col: usize) -> Vec<Key> {
    table
        .iter()
        .map(|r| r.key(col).expect("int column"))
        .collect()
}

fn exact_join(r: &[Key], s: &[Key]) -> u64 {
    let mut hist = FreqHist::new();
    for k in r {
        hist.observe(k);
    }
    s.iter().map(|k| hist.count(k)).sum()
}

/// Ratio error of `once` reaches ~1 within a 10% probe prefix on skewed
/// data with mismatched hot values (the Fig. 3 claim).
#[test]
fn once_ratio_error_converges_within_sample() {
    for z in [0.0, 1.0, 2.0] {
        let r = keys_of(&qprog::datagen::customer_table("a", 30_000, z, 2_000, 1), 1);
        let s = keys_of(&qprog::datagen::customer_table("b", 30_000, z, 2_000, 2), 1);
        let truth = exact_join(&r, &s) as f64;
        let mut est = OnceJoinEstimator::from_build_keys(r.iter(), s.len() as u64);
        for k in s.iter().take(3_000) {
            est.observe_probe(k);
        }
        let ratio = est.estimate() / truth;
        assert!(
            (0.75..=1.25).contains(&ratio),
            "z={z}: ratio error {ratio} after 10% of probe"
        );
        for k in s.iter().skip(3_000) {
            est.observe_probe(k);
        }
        assert_eq!(est.estimate(), truth, "z={z}: exact at convergence");
    }
}

/// With output clustered by value (as hash partitioning produces), dne's
/// trajectory is far less stable than once's (the Fig. 4 claim).
#[test]
fn dne_unstable_on_clustered_output_once_is_not() {
    let z = 1.5;
    let r = keys_of(&qprog::datagen::customer_table("a", 20_000, z, 1_000, 1), 1);
    let s = keys_of(&qprog::datagen::customer_table("b", 20_000, z, 1_000, 2), 1);
    let truth = exact_join(&r, &s) as f64;

    // once: observes the probe stream in (random) generation order.
    let mut once = OnceJoinEstimator::from_build_keys(r.iter(), s.len() as u64);
    let mut once_worst_late_ratio = 1.0f64;
    for (i, k) in s.iter().enumerate() {
        once.observe_probe(k);
        if i >= 2_000 {
            let ratio = once.estimate() / truth;
            once_worst_late_ratio = once_worst_late_ratio.max(ratio.max(1.0 / ratio));
        }
    }

    // dne: observes the join's *output*, clustered by value (simulate by
    // sorting the probe stream — what partition-wise joining effectively
    // does to value order).
    let mut hist = FreqHist::new();
    for k in &r {
        hist.observe(k);
    }
    let mut clustered = s.clone();
    clustered.sort_by_key(|k| match k {
        Key::Int(i) => *i,
        _ => 0,
    });
    let mut dne = DneEstimator::new(s.len() as u64, truth / 13.0);
    let mut dne_worst_late_ratio = 1.0f64;
    for (i, k) in clustered.iter().enumerate() {
        dne.observe_driver(1);
        dne.observe_output(hist.count(k));
        if i >= 2_000 && i < clustered.len() - 100 {
            let ratio = dne.estimate() / truth;
            dne_worst_late_ratio = dne_worst_late_ratio.max(ratio.max(1.0 / ratio));
        }
    }
    assert!(
        dne_worst_late_ratio > 1.3 * once_worst_late_ratio,
        "dne worst {dne_worst_late_ratio} vs once worst {once_worst_late_ratio}"
    );
    assert!(once_worst_late_ratio < 1.5);
    // and once finishes exact, unlike dne mid-flight
    assert_eq!(once.estimate(), truth);
}

/// byte stays anchored to a bad optimizer estimate far longer than once
/// (the Fig. 4 "converges slowly" claim).
#[test]
fn byte_converges_slowly_from_bad_optimizer_estimate() {
    let truth = 100_000.0f64;
    let optimizer = truth / 13.0; // the paper's observed 13× error
    let n = 10_000u64;
    let per_row = truth / n as f64;
    let mut byte = ByteEstimator::new(n, 8, optimizer);
    let mut rows_done = 0u64;
    let mut outputs = 0.0f64;
    // halfway through, byte should still be pulled toward the optimizer
    while rows_done < n / 2 {
        byte.observe_input_rows(1);
        rows_done += 1;
        outputs += per_row;
        byte.observe_output_rows((outputs - byte.output_seen() as f64) as u64);
    }
    let mid = byte.estimate();
    assert!(
        mid < 0.8 * truth,
        "byte at 50% should still underestimate: {mid} vs {truth}"
    );
    while rows_done < n {
        byte.observe_input_rows(1);
        rows_done += 1;
        byte.observe_output_rows(per_row as u64);
    }
    let end = byte.estimate();
    assert!((end / truth - 1.0).abs() < 0.05, "end {end}");
}

/// γ² chooser: MLE on low skew, GEE on high skew, and the chosen estimate
/// beats the rejected one on its home turf (the Table 1 claim).
#[test]
fn chooser_picks_the_better_estimator_per_skew() {
    let rows = 50_000usize;
    let domain = 5_000usize;
    for (z, expect) in [(0.0, EstimatorChoice::Mle), (2.0, EstimatorChoice::Gee)] {
        let table = qprog::datagen::customer_table("c", rows, z, domain, 1);
        let keys = keys_of(&table, 1);
        let truth = {
            let mut h = FreqHist::new();
            for k in &keys {
                h.observe(k);
            }
            h.distinct() as f64
        };
        let mut tracker = DistinctTracker::new(rows as u64);
        for k in keys.iter().take(rows / 10) {
            tracker.observe(k);
        }
        assert_eq!(tracker.choice(), expect, "z={z}");
        let chosen_err = (tracker.estimate() - truth).abs() / truth;
        let other = match expect {
            EstimatorChoice::Mle => tracker.gee_estimate(),
            EstimatorChoice::Gee => tracker.mle_estimate_fresh(),
        };
        let other_err = (other - truth).abs() / truth;
        assert!(
            chosen_err <= other_err + 0.05,
            "z={z}: chosen err {chosen_err:.3} vs other {other_err:.3} (truth {truth})"
        );
    }
}

/// Aggregation push-down: the tracker fed by a join's probe pass reaches
/// the exact distinct count of the join output before the aggregate runs.
#[test]
fn agg_pushdown_tracker_is_exact_after_probe_pass() {
    use qprog_exec::metrics::OpMetrics;
    use qprog_exec::ops::hash_join::{HashJoin, JoinEstimation};
    use qprog_exec::ops::{BoxedOp, RowSource, TableScan};
    use qprog_exec::sync::Mutex;

    let r = qprog::datagen::customer_table("r", 5_000, 1.0, 400, 1).into_shared();
    let s = qprog::datagen::customer_table("s", 5_000, 1.0, 400, 2).into_shared();
    // exact distinct join keys of the output
    let r_keys = keys_of(&r, 1);
    let s_keys = keys_of(&s, 1);
    let mut hist = FreqHist::new();
    for k in &r_keys {
        hist.observe(k);
    }
    let expected_groups = {
        let mut set = std::collections::HashSet::new();
        for k in &s_keys {
            if hist.count(k) > 0 {
                set.insert(k.clone());
            }
        }
        set.len() as u64
    };

    let scan = |t: &Arc<qprog_storage::Table>| -> BoxedOp {
        Box::new(TableScan::new(
            Arc::clone(t),
            OpMetrics::with_initial_estimate(0.0),
        ))
    };
    let tracker = Arc::new(Mutex::new(DistinctTracker::new(100)));
    let mut join = HashJoin::new(
        scan(&r),
        scan(&s),
        1,
        1,
        JoinEstimation::Once {
            probe_size_hint: 5_000,
        },
        OpMetrics::with_initial_estimate(0.0),
    )
    .with_agg_pushdown(Arc::clone(&tracker));
    // pull one row: preprocessing has completed
    assert!(RowSource::new(&mut join).next_row().unwrap().is_some());
    assert_eq!(tracker.lock().groups_seen(), expected_groups);
    assert_eq!(tracker.lock().estimate(), expected_groups as f64);
}
