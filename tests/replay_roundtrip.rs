//! Replay round-trip: a traced query serialized through the JSONL sink and
//! replayed into fresh sinks must reproduce the live run exactly.
//!
//! The live run drives a JSONL sink, a [`MetricsSink`] over its own
//! registry, and a ring buffer, with a bus-attached [`TimelineRecorder`]
//! embedding `progress_sampled` snapshots in the trace. The recorded JSONL
//! is then parsed back ([`ReplayedTrace`]) and replayed into a second
//! [`MetricsSink`] over a second registry — the two registries' full
//! Prometheus expositions must be identical, the replayed trace must pass
//! the [`ValidatorSink`] invariants, and the quality scores computed from
//! the live ring and the replayed stream must agree.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use qprog::obs::timeline::TimelineRecorder;
use qprog::obs::{score_events, ReplayedTrace};
use qprog::prelude::*;

/// A `Write` target the test can read back while the sink keeps ownership.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(qprog::datagen::customer_table(
        "customer", 8000, 1.5, 150, 3,
    ))
    .unwrap();
    c.register(qprog::datagen::nation_table("nation", 150))
        .unwrap();
    c
}

const SQL: &str = "SELECT nation.nationkey, count(*) FROM customer \
                   JOIN nation ON customer.nationkey = nation.nationkey \
                   GROUP BY nation.nationkey";

#[test]
fn replayed_trace_reproduces_live_metrics_aggregates() {
    // Operator registry names are only known post-compile, but the JSONL
    // sink must exist before compilation (registration publishes the
    // optimizer estimates). A dry compile of the same plan recovers them
    // deterministically.
    let names: Vec<String> = {
        let session = Session::new(catalog());
        let h = session.query(SQL).unwrap();
        h.registry().iter().map(|(n, _)| n.to_string()).collect()
    };

    // Live run: JSONL + metrics + ring on one bus, sampled by a timeline
    // recorder so the trace carries progress snapshots.
    let buf = SharedBuf::default();
    let jsonl = Arc::new(JsonlSink::new(buf.clone()).with_op_names(names.clone()));
    let live_registry = Arc::new(Registry::new());
    let live_metrics = Arc::new(MetricsSink::new(Arc::clone(&live_registry), "once"));
    live_metrics.set_op_names(names.clone());
    let ring = Arc::new(RingSink::with_capacity(1 << 14));
    let bus = EventBus::builder()
        .sink(Arc::clone(&jsonl) as _)
        .sink(Arc::clone(&live_metrics) as _)
        .sink(Arc::clone(&ring) as _)
        .build();

    let session = SessionBuilder::new(catalog())
        .observability(Observability::new().with_trace(Arc::clone(&bus)))
        .build()
        .unwrap();
    let mut h = session.query(SQL).unwrap();
    let recorder = TimelineRecorder::new(h.tracker()).with_bus(bus);
    let sampler = recorder.spawn(Duration::from_millis(1));
    let rows = h.collect().unwrap();
    let log = sampler.finish();
    // Zipf-skewed customers: tail nations may have no customers at all.
    assert!(!rows.is_empty() && rows.len() <= 150, "{}", rows.len());
    assert!(!log.is_empty());

    // Parse the recorded JSONL back.
    let text = buf.text();
    let trace = ReplayedTrace::parse(&text);
    assert!(
        trace.errors.is_empty(),
        "unparseable trace lines: {:?}",
        trace.errors
    );
    assert_eq!(
        trace.events.len(),
        text.lines().count(),
        "every line parsed"
    );
    // Operator names were recovered from the op_name annotations.
    assert_eq!(trace.op_names, names);
    // The embedded progress snapshots made it through.
    assert!(trace.events.iter().any(|e| matches!(
        e.kind,
        qprog::exec::trace::TraceEventKind::ProgressSampled { .. }
    )));
    assert!(trace.events.iter().any(|e| matches!(
        e.kind,
        qprog::exec::trace::TraceEventKind::OperatorWallTime { .. }
    )));

    // Replay into a fresh MetricsSink over a fresh registry: the full
    // Prometheus expositions must match counter for counter, bucket for
    // bucket.
    let replay_registry = Arc::new(Registry::new());
    let replay_metrics = MetricsSink::new(Arc::clone(&replay_registry), "once");
    replay_metrics.set_op_names(trace.op_names.clone());
    trace.replay_into(&replay_metrics);
    let live_text = live_registry.render();
    let replay_text = replay_registry.render();
    assert_eq!(
        live_text, replay_text,
        "replayed aggregates diverge from the live run"
    );
    assert!(live_text.contains("qprog_queries_finished_total{estimator=\"once\"} 1"));
    assert!(live_text.contains("qprog_op_wall_us"));

    // The replayed stream passes the invariant validator.
    let validator = ValidatorSink::new();
    trace.replay_into(&validator);
    assert!(validator.is_clean(), "{:?}", validator.violations());

    // Quality scores agree between the live ring and the replayed file.
    let live_score = score_events(&ring.drain());
    let replay_score = score_events(&trace.events);
    assert_eq!(live_score, replay_score);
    assert!(replay_score.samples > 0);
    assert!(
        replay_score.mean_abs_err.is_finite() && replay_score.mean_abs_err >= 0.0,
        "{replay_score:?}"
    );
}

#[test]
fn health_transitions_round_trip_through_replay() {
    use qprog::exec::trace::{HealthReason, HealthState, TraceEvent, TraceEventKind};

    // A verdict trajectory as the health analyzer would publish it:
    // stall, recovery, then estimate oscillation.
    let kinds = [
        (
            HealthState::Healthy,
            HealthState::Stalled,
            HealthReason::Stall,
        ),
        (
            HealthState::Stalled,
            HealthState::Healthy,
            HealthReason::Recovered,
        ),
        (
            HealthState::Healthy,
            HealthState::Unstable,
            HealthReason::Oscillation,
        ),
    ];
    let buf = SharedBuf::default();
    let jsonl = JsonlSink::new(buf.clone());
    let live_registry = Arc::new(Registry::new());
    let live_metrics = MetricsSink::new(Arc::clone(&live_registry), "once");
    for (i, (from, to, reason)) in kinds.into_iter().enumerate() {
        let event = TraceEvent {
            seq: i as u64,
            at_us: 1_000 * (i as u64 + 1),
            kind: TraceEventKind::HealthTransition { from, to, reason },
        };
        jsonl.publish(&event);
        live_metrics.publish(&event);
    }

    let trace = ReplayedTrace::parse(&buf.text());
    assert!(trace.errors.is_empty(), "{:?}", trace.errors);
    assert_eq!(trace.events.len(), 3);
    // The typed fields survive the serialize/parse round trip exactly.
    assert!(matches!(
        trace.events[0].kind,
        TraceEventKind::HealthTransition {
            from: HealthState::Healthy,
            to: HealthState::Stalled,
            reason: HealthReason::Stall,
        }
    ));
    assert!(matches!(
        trace.events[2].kind,
        TraceEventKind::HealthTransition {
            to: HealthState::Unstable,
            reason: HealthReason::Oscillation,
            ..
        }
    ));

    // Replaying into a fresh MetricsSink reproduces the health counters
    // (and everything else) exactly.
    let replay_registry = Arc::new(Registry::new());
    let replay_metrics = MetricsSink::new(Arc::clone(&replay_registry), "once");
    trace.replay_into(&replay_metrics);
    let live_text = live_registry.render();
    assert_eq!(live_text, replay_registry.render());
    assert!(
        live_text.contains("qprog_health_transitions_total"),
        "{live_text}"
    );

    // Real transitions (from != to) satisfy the validator's invariants.
    let validator = ValidatorSink::new();
    trace.replay_into(&validator);
    assert!(validator.is_clean(), "{:?}", validator.violations());
}
