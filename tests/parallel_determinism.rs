//! Partition-parallel execution must be invisible in every output: result
//! multisets, final progress, and converged online estimates are identical
//! at any degree of parallelism, and the worker pool leaves no threads
//! behind.
//!
//! The engine guarantees this by splitting scans into contiguous chunks
//! concatenated in worker order (= serial scan order) and merging
//! per-partition estimator fragments associatively, so P > 1 replays the
//! exact serial observation stream.

use std::time::{Duration, Instant};

use qprog::prelude::*;

const PARALLELISM: &[usize] = &[1, 2, 4];

/// Heavy Zipf skew (z=2) so partitions carry very different loads — the
/// regime where a naive merge would diverge from the serial estimate.
fn skewed_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(qprog::datagen::customer_table(
        "customer", 50_000, 2.0, 400, 11,
    ))
    .unwrap();
    c.register(qprog::datagen::nation_table("nation", 400))
        .unwrap();
    c
}

fn session(threads: usize) -> Session {
    Session::new(skewed_catalog()).with_options(PhysicalOptions {
        threads,
        ..PhysicalOptions::default()
    })
}

/// Current thread count of this process (Linux; `None` elsewhere).
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Run `sql` at parallelism `threads`; return the sorted row multiset, the
/// final progress fraction, and the converged hash-join estimate.
fn run(sql: &str, threads: usize) -> (Vec<String>, f64, f64) {
    let s = session(threads);
    let mut q = s.query(sql).unwrap();
    let tracker = q.tracker();
    let mut rows: Vec<String> = q
        .run(RunOptions::new())
        .unwrap()
        .iter()
        .map(|r| r.to_string())
        .collect();
    rows.sort();
    let estimate = q
        .registry()
        .iter()
        .find(|(n, _)| *n == "hash_join")
        .map(|(_, m)| m.estimated_total())
        .unwrap();
    (rows, tracker.snapshot().fraction(), estimate)
}

/// The skew join: result multisets identical for P ∈ {1, 2, 4}, progress
/// ends at exactly 1.0, and the converged join estimate equals the serial
/// exact cardinality at every P.
#[test]
fn skew_join_is_deterministic_across_parallelism() {
    let sql = "SELECT * FROM customer \
               JOIN nation ON customer.nationkey = nation.nationkey";
    let (serial_rows, serial_fraction, serial_estimate) = run(sql, 1);
    // once-mode converges to the exact join size; the pure join's output
    // count *is* that cardinality.
    assert_eq!(serial_estimate, serial_rows.len() as f64);
    assert_eq!(serial_fraction, 1.0);
    for &threads in &PARALLELISM[1..] {
        let (rows, fraction, estimate) = run(sql, threads);
        assert_eq!(
            rows, serial_rows,
            "threads={threads} changed the result multiset"
        );
        assert_eq!(fraction, 1.0, "threads={threads} final progress != 1.0");
        assert_eq!(
            estimate, serial_estimate,
            "threads={threads} changed the converged join estimate"
        );
    }
}

/// Aggregation over the join — a blocking consumer on top of the parallel
/// drains — must also be bit-identical at every P.
#[test]
fn aggregation_over_parallel_join_matches_serial() {
    let sql = "SELECT nation.name, count(*) AS customers FROM customer \
               JOIN nation ON customer.nationkey = nation.nationkey \
               GROUP BY nation.name";
    let (serial_rows, _, serial_estimate) = run(sql, 1);
    for &threads in &PARALLELISM[1..] {
        let (rows, fraction, estimate) = run(sql, threads);
        assert_eq!(rows, serial_rows, "threads={threads} changed group counts");
        assert_eq!(fraction, 1.0);
        assert_eq!(estimate, serial_estimate);
    }
}

/// The worker pool is scoped: every worker joins before the drain returns,
/// so repeated parallel queries leave the process at its baseline thread
/// count.
#[test]
fn parallel_queries_leak_zero_threads() {
    let baseline = match thread_count() {
        Some(n) => n,
        None => return, // not a procfs platform; nothing to measure
    };
    for &threads in PARALLELISM {
        for _ in 0..2 {
            let s = session(threads);
            let mut q = s
                .query(
                    "SELECT * FROM customer \
                     JOIN nation ON customer.nationkey = nation.nationkey",
                )
                .unwrap();
            q.collect().unwrap();
        }
    }
    // Workers are joined synchronously by the scoped pool; poll briefly so
    // concurrently running tests' threads can drain too.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let now = thread_count().unwrap();
        if now <= baseline {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "thread leak: {now} threads, baseline {baseline}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}
