//! Chaos suite: query lifecycle governance under injected faults.
//!
//! Lifecycle guarantees (cancellation latency, typed terminal errors, no
//! leaked threads) are asserted in every build. The fault-*injection*
//! tests additionally require `--features failpoints`:
//!
//! ```text
//! cargo test --test chaos --features failpoints
//! ```
//!
//! Every injected fault class — error, panic, sleep — must drive the query
//! to a terminal state with monotone, bounded progress along the way, and
//! the monitor must keep serving and report the failure.

use std::sync::Arc;
use std::time::{Duration, Instant};

use qprog::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(qprog::datagen::customer_table(
        "customer", 50_000, 1.0, 500, 7,
    ))
    .unwrap();
    c.register(qprog::datagen::nation_table("nation", 500))
        .unwrap();
    c
}

/// Current thread count of this process (Linux; `None` elsewhere).
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// The failpoint registry is process-global, so with `failpoints` enabled
/// every test here — injecting or not — holds the scenario lock; otherwise
/// a concurrently configured fault could bleed into an unrelated test's
/// query. Without the feature the guard is a no-op.
fn scenario() -> qprog::fault::FailScenario {
    qprog::fault::FailScenario::setup()
}

#[test]
fn cancellation_returns_within_100ms_of_request() {
    let _scenario = scenario();
    let session = Session::new(catalog());
    let mut h = session
        .query(
            "SELECT * FROM customer \
             JOIN nation ON customer.nationkey = nation.nationkey",
        )
        .unwrap();
    let token = h.cancellation_token().expect("every query has a token");
    let tracker = h.tracker();
    let worker = std::thread::spawn(move || {
        let err = h.collect().unwrap_err();
        (Instant::now(), err)
    });
    // Wait until the query is demonstrably mid-flight, then cancel.
    let spin_start = Instant::now();
    while tracker.snapshot().fraction() < 0.005 {
        assert!(
            spin_start.elapsed() < Duration::from_secs(10),
            "query never started"
        );
        std::hint::spin_loop();
    }
    let cancelled_at = Instant::now();
    token.cancel();
    let (returned_at, err) = worker.join().unwrap();
    let latency = returned_at.saturating_duration_since(cancelled_at);
    assert!(
        latency < Duration::from_millis(100),
        "cancellation latency {latency:?} >= 100ms"
    );
    assert!(err.is_cancelled(), "{err}");
}

#[test]
fn deadline_exceeded_is_terminal_and_typed() {
    let _scenario = scenario();
    let session = Session::new(catalog());
    let mut h = session
        .query(
            "SELECT * FROM customer \
             JOIN nation ON customer.nationkey = nation.nationkey",
        )
        .unwrap();
    let err = h
        .run(RunOptions::new().deadline(Duration::from_micros(50)))
        .unwrap_err();
    assert_eq!(err.lifecycle().map(ExecError::kind), Some("deadline"));
}

#[test]
fn row_budget_breach_aborts_with_typed_error() {
    let _scenario = scenario();
    let options = PhysicalOptions {
        max_rows: Some(1_000),
        ..PhysicalOptions::default()
    };
    let session = Session::new(catalog()).with_options(options);
    let mut h = session.query("SELECT * FROM customer").unwrap();
    let err = h.collect().unwrap_err();
    assert_eq!(err.lifecycle().map(ExecError::kind), Some("budget"));
}

#[test]
fn no_threads_leak_across_query_lifecycles() {
    let _scenario = scenario();
    let baseline = match thread_count() {
        Some(n) => n,
        None => return, // not a procfs platform; nothing to measure
    };
    for _ in 0..3 {
        let session = SessionBuilder::new(catalog())
            .observability(Observability::new().serve_on("127.0.0.1:0"))
            .build()
            .unwrap();
        let server = Arc::clone(session.monitor().unwrap());
        let mut h = session.query("SELECT * FROM customer").unwrap();
        let watcher = h.watch(Duration::from_millis(1), |_| {});
        h.cancel();
        assert!(h.collect().is_err());
        drop(watcher); // joins the watcher thread
        drop(h);
        server.shutdown(); // joins accept + connection threads
    }
    // Every thread we started is joined synchronously above; poll briefly
    // so concurrently running tests' threads can drain too.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let now = thread_count().unwrap();
        if now <= baseline {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "thread leak: {now} threads, baseline {baseline}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[cfg(feature = "failpoints")]
mod faulted {
    use super::*;
    use qprog::fault;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn http_get(addr: std::net::SocketAddr, path: &str) -> Option<String> {
        let mut stream = TcpStream::connect(addr).ok()?;
        write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").ok()?;
        let mut out = String::new();
        stream.read_to_string(&mut out).ok()?;
        Some(out)
    }

    /// Run `f` with panic output suppressed (injected panics are expected
    /// noise here, not failures worth a backtrace on stderr).
    fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let saved = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(saved);
        out
    }

    #[test]
    fn injected_error_drives_query_to_failed_state() {
        let scenario = fault::FailScenario::setup();
        fault::configure("exec/scan/next", "1*error(chaos: disk gone)").unwrap();
        let session = SessionBuilder::new(catalog())
            .observability(Observability::new().serve_on("127.0.0.1:0"))
            .build()
            .unwrap();
        let server = Arc::clone(session.monitor().unwrap());
        let mut h = session.query("SELECT * FROM customer").unwrap();
        let id = h.query_id().unwrap();
        let err = h.collect().unwrap_err();
        assert_eq!(err.lifecycle().map(ExecError::kind), Some("injected"));
        assert!(matches!(h.state(), QueryState::Failed(AbortKind::Injected)));
        let detail = http_get(server.addr(), &format!("/progress/{id}")).unwrap();
        assert!(detail.contains("\"state\":\"failed\""), "{detail}");
        assert!(detail.contains("\"failure\":\"injected\""), "{detail}");
        assert_eq!(fault::hits("exec/scan/next"), 1);
        server.shutdown();
        drop(scenario);
    }

    #[test]
    fn injected_panic_is_isolated_as_terminal_error() {
        let scenario = fault::FailScenario::setup();
        fault::configure("exec/agg/accumulate", "1*panic(chaos)").unwrap();
        let session = Session::new(catalog());
        let mut h = session
            .query("SELECT nationkey, count(*) FROM customer GROUP BY nationkey")
            .unwrap();
        let err = quiet_panics(|| h.collect().unwrap_err());
        assert_eq!(err.lifecycle().map(ExecError::kind), Some("panic"));
        assert!(err.to_string().contains("chaos"), "{err}");
        // The process survived; the same session keeps serving queries.
        drop(scenario);
        let mut h2 = session.query("SELECT * FROM nation").unwrap();
        assert_eq!(h2.collect().unwrap().len(), 500);
    }

    #[test]
    fn progress_stays_monotone_and_bounded_under_slowdowns() {
        let scenario = fault::FailScenario::setup();
        fault::set_seed(42);
        fault::configure("exec/scan/next", "2%yield(8)").unwrap();
        fault::configure("exec/agg/accumulate", "1%sleep(1)").unwrap();
        let session = Session::new(catalog());
        let mut h = session
            .query("SELECT nationkey, count(*) FROM customer GROUP BY nationkey")
            .unwrap();
        let mut fractions = Vec::new();
        let rows = h
            .run(
                RunOptions::new()
                    .observer(|snap| fractions.push(snap.fraction()))
                    .cadence(64),
            )
            .unwrap();
        assert_eq!(rows.len(), 500);
        assert!(fractions.len() > 2);
        assert!(fractions.iter().all(|f| (0.0..=1.0).contains(f)));
        assert!(
            fractions.windows(2).all(|w| w[0] <= w[1]),
            "progress regressed under slowdown faults: {fractions:?}"
        );
        drop(scenario);
    }

    #[test]
    fn progress_stays_monotone_until_injected_abort() {
        let scenario = fault::FailScenario::setup();
        fault::set_seed(7);
        // A low-probability per-tuple error: over 50k tuples it fires
        // mid-query with near certainty, at a seed-determined point.
        fault::configure("exec/agg/accumulate", "1%1*error(mid-query fault)").unwrap();
        let session = Session::new(catalog());
        let mut fractions = Vec::new();
        let mut h = session
            .query("SELECT nationkey, count(*) FROM customer GROUP BY nationkey")
            .unwrap();
        let err = h
            .run(
                RunOptions::new()
                    .observer(|snap| fractions.push(snap.fraction()))
                    .cadence(64),
            )
            .unwrap_err();
        assert_eq!(err.lifecycle().map(ExecError::kind), Some("injected"));
        assert!(fractions.iter().all(|f| (0.0..=1.0).contains(f)));
        assert!(
            fractions.windows(2).all(|w| w[0] <= w[1]),
            "progress regressed before abort: {fractions:?}"
        );
        // The abort froze progress rather than snapping it to done.
        assert!(!h.tracker().snapshot().is_complete());
        drop(scenario);
    }

    #[test]
    fn sleep_faults_do_not_defeat_cancellation_latency() {
        let scenario = fault::FailScenario::setup();
        fault::configure("exec/scan/next", "sleep(5)").unwrap();
        let session = Session::new(catalog());
        let mut h = session.query("SELECT * FROM customer").unwrap();
        let token = h.cancellation_token().unwrap();
        let tracker = h.tracker();
        let worker = std::thread::spawn(move || {
            let err = h.collect().unwrap_err();
            (Instant::now(), err)
        });
        let spin_start = Instant::now();
        while tracker.snapshot().current() == 0 {
            assert!(spin_start.elapsed() < Duration::from_secs(10));
            std::thread::sleep(Duration::from_millis(1));
        }
        let cancelled_at = Instant::now();
        token.cancel();
        let (returned_at, err) = worker.join().unwrap();
        let latency = returned_at.saturating_duration_since(cancelled_at);
        assert!(
            latency < Duration::from_millis(100),
            "cancel took {latency:?} with per-tuple sleep faults"
        );
        assert!(err.is_cancelled(), "{err}");
        drop(scenario);
    }

    #[test]
    fn monitor_survives_faulty_accept_and_read_paths() {
        let scenario = fault::FailScenario::setup();
        fault::set_seed(1234);
        fault::configure("monitor/accept", "50%error(accept chaos)").unwrap();
        fault::configure("monitor/read", "50%error(read chaos)").unwrap();
        let session = SessionBuilder::new(catalog())
            .observability(Observability::new().serve_on("127.0.0.1:0"))
            .build()
            .unwrap();
        let server = Arc::clone(session.monitor().unwrap());
        let addr = server.addr();
        let mut served = 0;
        for _ in 0..40 {
            if let Some(resp) = http_get(addr, "/progress") {
                if resp.starts_with("HTTP/1.1 200") {
                    served += 1;
                }
            }
        }
        // Faults dropped some connections but never the server.
        assert!(served > 0, "no request survived 50% fault injection");
        assert!(fault::hits("monitor/accept") + fault::hits("monitor/read") > 0);
        fault::teardown();
        let resp = http_get(addr, "/progress").unwrap();
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        server.shutdown();
        drop(scenario);
    }

    /// A session running the skew join with a 4-way parallel hash join.
    fn parallel_session() -> Session {
        Session::new(catalog()).with_options(PhysicalOptions {
            threads: 4,
            ..PhysicalOptions::default()
        })
    }

    const PARALLEL_SQL: &str = "SELECT * FROM customer \
                                JOIN nation ON customer.nationkey = nation.nationkey";

    #[test]
    fn worker_task_error_is_typed_and_freezes_progress() {
        let scenario = fault::FailScenario::setup();
        fault::configure("exec/parallel/task", "1*error(chaos: worker died)").unwrap();
        let session = parallel_session();
        let mut h = session.query(PARALLEL_SQL).unwrap();
        let err = h.collect().unwrap_err();
        assert_eq!(err.lifecycle().map(ExecError::kind), Some("injected"));
        assert!(err.to_string().contains("worker died"), "{err}");
        // Remaining workers were joined, the error surfaced, and progress
        // froze where the abort happened instead of snapping to done.
        assert!(!h.tracker().snapshot().is_complete());
        drop(scenario);
    }

    #[test]
    fn worker_panic_is_contained_as_terminal_error() {
        let scenario = fault::FailScenario::setup();
        fault::configure("exec/parallel/task", "1*panic(worker chaos)").unwrap();
        let session = parallel_session();
        let mut h = session.query(PARALLEL_SQL).unwrap();
        let err = quiet_panics(|| h.collect().unwrap_err());
        assert_eq!(err.lifecycle().map(ExecError::kind), Some("panic"));
        assert!(err.to_string().contains("worker chaos"), "{err}");
        assert!(!h.tracker().snapshot().is_complete());
        // The process survived: the same session keeps serving queries.
        drop(scenario);
        let mut h2 = session.query("SELECT * FROM nation").unwrap();
        assert_eq!(h2.collect().unwrap().len(), 500);
    }

    #[test]
    fn pool_spawn_failure_is_typed_and_terminal() {
        let scenario = fault::FailScenario::setup();
        fault::configure("exec/parallel/spawn", "1*error(chaos: no threads)").unwrap();
        let session = parallel_session();
        let mut h = session.query(PARALLEL_SQL).unwrap();
        let err = h.collect().unwrap_err();
        assert_eq!(err.lifecycle().map(ExecError::kind), Some("injected"));
        assert_eq!(fault::hits("exec/parallel/spawn"), 1);
        assert!(!h.tracker().snapshot().is_complete());
        drop(scenario);
    }

    #[test]
    fn merge_stall_does_not_defeat_the_deadline() {
        let scenario = fault::FailScenario::setup();
        fault::configure("exec/parallel/merge", "sleep(120)").unwrap();
        let session = parallel_session();
        let mut h = session.query(PARALLEL_SQL).unwrap();
        let err = h
            .run(RunOptions::new().deadline(Duration::from_millis(40)))
            .unwrap_err();
        assert_eq!(err.lifecycle().map(ExecError::kind), Some("deadline"));
        assert!(!h.tracker().snapshot().is_complete());
        drop(scenario);
    }

    #[test]
    fn injected_stall_trips_the_health_detector() {
        let scenario = fault::FailScenario::setup();
        // One long mid-scan sleep: observed work freezes far past the
        // (shrunken) stall window while the query is still Running.
        fault::configure("exec/scan/next", "1*sleep(700)").unwrap();
        let session =
            SessionBuilder::new(catalog())
                .observability(Observability::new().serve_on("127.0.0.1:0").with_health(
                    HealthConfig::default().with_stall_window(Duration::from_millis(150)),
                ))
                .build()
                .unwrap();
        let server = Arc::clone(session.monitor().unwrap());
        let mut h = session.query("SELECT * FROM customer").unwrap();
        let id = h.query_id().unwrap();
        let worker = std::thread::spawn(move || {
            let rows = h.collect().map(|r| r.len());
            (h, rows)
        });
        // While the sleep holds the scan the monitor's tick must flip the
        // verdict to Stalled and surface it over HTTP.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut saw_stalled = false;
        while Instant::now() < deadline && !saw_stalled {
            if let Some(detail) = http_get(server.addr(), &format!("/progress/{id}")) {
                saw_stalled = detail.contains("\"health\":\"stalled\"");
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            saw_stalled,
            "stall detector never fired during a 700ms injected sleep"
        );
        // The fault was a slowdown, not an error: the query still finishes.
        let (h, rows) = worker.join().unwrap();
        assert_eq!(rows.unwrap(), 50_000);
        assert!(h.health().is_some());
        assert_eq!(fault::hits("exec/scan/next"), 1);
        server.shutdown();
        drop(scenario);
    }

    #[test]
    fn clean_runs_never_false_positive_the_stall_detector() {
        let scenario = fault::FailScenario::setup();
        // Same wiring, no fault: with default thresholds a healthy query
        // must never leave the Healthy state.
        let session = SessionBuilder::new(catalog())
            .observability(
                Observability::new()
                    .serve_on("127.0.0.1:0")
                    .with_health(HealthConfig::default()),
            )
            .build()
            .unwrap();
        let server = Arc::clone(session.monitor().unwrap());
        let mut h = session
            .query(
                "SELECT nation.nationkey, count(*) FROM customer \
                 JOIN nation ON customer.nationkey = nation.nationkey \
                 GROUP BY nation.nationkey",
            )
            .unwrap();
        let id = h.query_id().unwrap();
        assert!(!h.collect().unwrap().is_empty());
        // The verdict froze at terminal without ever transitioning.
        assert_eq!(h.health(), Some(HealthState::Healthy));
        let detail = http_get(server.addr(), &format!("/progress/{id}")).unwrap();
        assert!(detail.contains("\"health\":\"healthy\""), "{detail}");
        server.shutdown();
        drop(scenario);
    }

    #[test]
    fn failpoints_are_deterministic_for_a_seed() {
        let scenario = fault::FailScenario::setup();
        let mut outcomes = Vec::new();
        for _ in 0..2 {
            fault::set_seed(99);
            fault::configure("exec/scan/next", "30%error(roll)").unwrap();
            let session = Session::new(catalog());
            let mut h = session.query("SELECT * FROM nation").unwrap();
            let mut survived = 0u32;
            let outcome = loop {
                match h.step() {
                    Ok(Some(_)) => survived += 1,
                    Ok(None) => break (survived, None),
                    Err(e) => break (survived, Some(e.to_string())),
                }
            };
            outcomes.push(outcome);
            fault::teardown();
        }
        assert_eq!(outcomes[0], outcomes[1], "same seed, same fault schedule");
        drop(scenario);
    }
}
