//! Batch-vs-serial equivalence suite.
//!
//! The vectorized engine must be *observationally identical* to the
//! tuple-at-a-time engine it replaced:
//!
//! - identical result multisets for any `batch_rows`,
//! - identical converged estimates (`N_i` at completion) for any
//!   `batch_rows`,
//! - monotone clamped progress fractions,
//! - and at `batch_rows = 1` (strict mode) a byte-identical JSONL trace —
//!   checked against golden traces captured from the pre-batch serial
//!   engine (timestamps normalized: `at_us`/`wall_us` are wall-clock noise
//!   and are zeroed on both sides before encoding).
//!
//! Regenerate the goldens with
//! `cargo test --test batch_equivalence -- --ignored regenerate`.

use std::sync::Arc;

use qprog::obs::RingSink;
use qprog::plan::physical::{compile_traced, PhysicalOptions};
use qprog::plan::{LogicalPlan, PlanBuilder};
use qprog::prelude::*;
use qprog::workloads::q8_plan;
use qprog_datagen::{TpchConfig, TpchGenerator};
use qprog_exec::ops::agg::AggFunc;
use qprog_exec::trace::{TraceEvent, TraceEventKind};

/// The fixed workload matrix: TPC-H Q8 under Zipf-2 skew plus the skewed
/// hash-join aggregate (the scorecard pair, at test-sized scale).
fn workloads() -> Vec<(&'static str, LogicalPlan)> {
    let q8_catalog = TpchGenerator::new(TpchConfig {
        scale: 0.004,
        skew: 2.0,
        seed: 88,
    })
    .catalog()
    .expect("tpch catalog");
    let q8_builder = PlanBuilder::new(q8_catalog);
    let q8 = q8_plan(&q8_builder).expect("q8 plan");

    let mut catalog = Catalog::new();
    catalog
        .register(qprog::datagen::customer_table(
            "customer", 4000, 2.0, 80, 11,
        ))
        .expect("customer");
    catalog
        .register(qprog::datagen::nation_table("nation", 80))
        .expect("nation");
    let builder = PlanBuilder::new(catalog);
    let skew = builder
        .scan("customer")
        .expect("scan customer")
        .hash_join(
            builder.scan("nation").expect("scan nation"),
            "nation.nationkey",
            "customer.nationkey",
        )
        .expect("join")
        .aggregate(
            &["nation.nationkey"],
            &[(AggFunc::CountStar, None, "tally")],
        )
        .expect("aggregate");

    vec![("q8", q8), ("skew_join", skew)]
}

const MODES: [(&str, EstimationMode); 3] = [
    ("once", EstimationMode::Once),
    ("dne", EstimationMode::Dne),
    ("byte", EstimationMode::Byte),
];

const BATCH_SIZES: [usize; 3] = [1, 7, 1024];

fn opts(mode: EstimationMode, batch_rows: usize) -> PhysicalOptions {
    PhysicalOptions {
        mode,
        threads: 1,
        batch_rows,
        ..PhysicalOptions::default()
    }
}

/// Zero the wall-clock fields (`at_us`, wall/busy times) that differ
/// between otherwise-identical runs, keeping sequence and every estimate
/// value intact.
fn normalize(events: &[TraceEvent]) -> Vec<TraceEvent> {
    events
        .iter()
        .map(|e| {
            let kind = match e.kind {
                TraceEventKind::OperatorWallTime { op, .. } => {
                    TraceEventKind::OperatorWallTime { op, wall_us: 0 }
                }
                TraceEventKind::WorkerWallTime { op, worker, .. } => {
                    TraceEventKind::WorkerWallTime {
                        op,
                        worker,
                        busy_us: 0,
                    }
                }
                k => k,
            };
            TraceEvent {
                seq: e.seq,
                at_us: 0,
                kind,
            }
        })
        .collect()
}

/// A normalized JSONL rendering of a traced serial run.
fn traced_jsonl(plan: &LogicalPlan, popts: &PhysicalOptions) -> String {
    let ring = Arc::new(RingSink::with_capacity(1 << 16));
    let bus = EventBus::builder().sink(Arc::clone(&ring) as _).build();
    let mut q = compile_traced(plan, popts, Some(bus)).expect("compile");
    q.collect().expect("run");
    let events = ring.drain();
    let mut out = String::new();
    for e in normalize(&events) {
        out.push_str(&qprog::obs::json::event_to_json(&e, &[]));
        out.push('\n');
    }
    out
}

fn golden_path(workload: &str, mode: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("trace_{workload}_{mode}.jsonl"))
}

/// Regenerates the golden traces (in strict `batch_rows = 1` mode). Run
/// manually (`--ignored regenerate`) only when an intentional estimator or
/// trace change invalidates them; the checked-in goldens were captured
/// from the tuple-at-a-time engine the batch refactor replaced.
#[test]
#[ignore]
fn regenerate_golden_traces() {
    std::fs::create_dir_all(std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden"))
        .unwrap();
    for (name, plan) in &workloads() {
        for (label, mode) in MODES {
            let jsonl = traced_jsonl(plan, &opts(mode, 1));
            std::fs::write(golden_path(name, label), &jsonl).unwrap();
            println!("wrote {name}/{label}: {} bytes", jsonl.len());
        }
    }
}

/// Everything observable about one completed run: the result multiset
/// (sorted debug renderings) and, per operator, the converged `N_i`
/// alongside the exact `K_i` counters it was pinned to.
struct RunFingerprint {
    rows: Vec<String>,
    converged: Vec<(String, f64, u64, u64)>,
}

fn run_fingerprint(plan: &LogicalPlan, popts: &PhysicalOptions) -> RunFingerprint {
    let mut q = compile_traced(plan, popts, None).expect("compile");
    let mut rows: Vec<String> = q
        .collect()
        .expect("run")
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    rows.sort();
    let converged = q
        .tracker()
        .registry()
        .iter()
        .map(|(name, m)| {
            (
                name.to_string(),
                m.estimated_total(),
                m.emitted(),
                m.driver_consumed(),
            )
        })
        .collect();
    RunFingerprint { rows, converged }
}

/// Tentpole invariant: for every workload and estimation mode, any batch
/// capacity produces the same result multiset and the same converged
/// per-operator estimates and counters as strict per-row execution.
#[test]
fn results_and_converged_estimates_identical_across_batch_sizes() {
    let _scenario = qprog::fault::FailScenario::setup();
    for (name, plan) in &workloads() {
        for (label, mode) in MODES {
            let strict = run_fingerprint(plan, &opts(mode, 1));
            assert!(!strict.rows.is_empty(), "{name}/{label}: empty result");
            for batch in BATCH_SIZES {
                let wide = run_fingerprint(plan, &opts(mode, batch));
                assert_eq!(
                    strict.rows, wide.rows,
                    "{name}/{label}: result multiset diverged at batch_rows={batch}"
                );
                assert_eq!(
                    strict.converged, wide.converged,
                    "{name}/{label}: converged estimates diverged at batch_rows={batch}"
                );
            }
        }
    }
}

/// Progress fractions observed at a row cadence are clamped to `[0, 1]`
/// and never decrease, at every batch capacity.
#[test]
fn observed_fractions_are_monotone_and_clamped() {
    let _scenario = qprog::fault::FailScenario::setup();
    for (name, plan) in &workloads() {
        for (label, mode) in MODES {
            for batch in BATCH_SIZES {
                let mut q = compile_traced(plan, &opts(mode, batch), None).expect("compile");
                let mut fractions = Vec::new();
                q.run_with(64, |snap| fractions.push(snap.fraction()))
                    .expect("run");
                assert!(
                    !fractions.is_empty(),
                    "{name}/{label}/{batch}: observer never fired"
                );
                assert!(
                    fractions.iter().all(|f| (0.0..=1.0).contains(f)),
                    "{name}/{label}/{batch}: fraction out of [0,1]: {fractions:?}"
                );
                assert!(
                    fractions.windows(2).all(|w| w[0] <= w[1]),
                    "{name}/{label}/{batch}: fractions not monotone: {fractions:?}"
                );
                assert_eq!(
                    *fractions.last().expect("non-empty"),
                    1.0,
                    "{name}/{label}/{batch}: final fraction below 1.0"
                );
            }
        }
    }
}

/// Strict mode (`batch_rows = 1`) reproduces the tuple-at-a-time engine's
/// JSONL trace byte-for-byte, for every workload × estimation mode.
#[test]
fn strict_mode_traces_are_byte_identical_to_serial_goldens() {
    let _scenario = qprog::fault::FailScenario::setup();
    for (name, plan) in &workloads() {
        for (label, mode) in MODES {
            let path = golden_path(name, label);
            let golden = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
            let live = traced_jsonl(plan, &opts(mode, 1));
            assert!(
                golden == live,
                "{name}/{label}: strict-mode trace diverged from the serial golden \
                 ({} golden bytes vs {} live)",
                golden.len(),
                live.len()
            );
        }
    }
}

/// Chaos subset: cooperative cancellation still lands within the 100ms
/// bound when checkpoints are amortized over 1024-row batches.
#[test]
fn cancel_lands_within_100ms_in_wide_batch_mode() {
    use std::time::{Duration, Instant};
    let _scenario = qprog::fault::FailScenario::setup();
    let mut catalog = Catalog::new();
    catalog
        .register(qprog::datagen::customer_table(
            "customer", 50_000, 1.0, 500, 7,
        ))
        .unwrap();
    catalog
        .register(qprog::datagen::nation_table("nation", 500))
        .unwrap();
    let session = SessionBuilder::new(catalog)
        .batch_rows(1024)
        .build()
        .unwrap();
    let mut h = session
        .query(
            "SELECT * FROM customer \
             JOIN nation ON customer.nationkey = nation.nationkey",
        )
        .unwrap();
    let token = h.cancellation_token().expect("every query has a token");
    let tracker = h.tracker();
    let worker = std::thread::spawn(move || {
        let err = h.collect().unwrap_err();
        (Instant::now(), err)
    });
    let spin_start = Instant::now();
    while tracker.snapshot().fraction() < 0.005 {
        assert!(
            spin_start.elapsed() < Duration::from_secs(10),
            "query never started"
        );
        std::hint::spin_loop();
    }
    let cancelled_at = Instant::now();
    token.cancel();
    let (returned_at, err) = worker.join().unwrap();
    let latency = returned_at.saturating_duration_since(cancelled_at);
    assert!(
        latency < Duration::from_millis(100),
        "cancellation latency {latency:?} >= 100ms at batch_rows=1024"
    );
    assert!(err.is_cancelled(), "{err}");
}

/// Chaos subset: failpoints amortized to batch boundaries still fire —
/// an injected accumulate fault aborts a wide-batch run with the typed
/// injected error.
#[cfg(feature = "failpoints")]
#[test]
fn injected_faults_fire_at_batch_boundaries() {
    let _scenario = qprog::fault::FailScenario::setup();
    qprog::fault::configure("exec/agg/accumulate", "1*error(chaos: batch fault)").unwrap();
    let (_, plan) = &workloads()[1]; // skew_join ends in an aggregate
    let mut q = compile_traced(plan, &opts(EstimationMode::Once, 1024), None).expect("compile");
    let err = q.collect().unwrap_err();
    assert!(
        err.to_string().contains("batch fault"),
        "expected the injected fault to surface, got: {err}"
    );
}
