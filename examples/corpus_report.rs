//! Offline corpus report: re-score every archived run in one pass.
//!
//! Opens a trace corpus (the scorecard bench's by default), replays each
//! run's JSONL segment through `obs::replay`, recomputes its progress
//! scorecard with `score_events`, and compares against the scorecard the
//! corpus stored at archive time — a drift check on the whole archival
//! path: if parsing, scoring, or the segment bytes ever change
//! incompatibly, the recomputed numbers stop matching the stored ones.
//!
//! ```text
//! cargo run --release --example corpus_report [-- path/to/corpus]
//! ```

use qprog::obs::{score_events, Corpus, ReplayedTrace};

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/scorecard_corpus".to_string());
    let corpus = match Corpus::open(&dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot open corpus at {dir}: {e}");
            eprintln!("(run `cargo bench --bench progress_scorecard` to create one)");
            std::process::exit(2);
        }
    };
    for d in corpus.diagnostics() {
        println!("diagnostic: {d}");
    }
    let runs = corpus.runs();
    if runs.is_empty() {
        println!("corpus at {dir} holds no runs");
        return;
    }

    println!(
        "{:>5}  {:<14} {:<5} {:<9} {:>9} {:>9} {:>6} {:>5} {:>4}  rescore",
        "run", "workload", "est", "state", "wall ms", "mean|err|", "conv", "mono", "reg"
    );
    let mut mismatches = 0usize;
    let mut torn = 0usize;
    for r in &runs {
        // Re-read and re-score the stored trace, exactly as a consumer
        // downloading /history/{run}/trace would.
        let verdict = match corpus.trace_jsonl(r.run) {
            Ok(jsonl) => {
                let trace = ReplayedTrace::parse(&jsonl);
                if !trace.errors.is_empty() {
                    torn += 1;
                    format!("torn ({} bad lines)", trace.errors.len())
                } else if score_events(&trace.events) == r.score {
                    "ok".to_string()
                } else {
                    mismatches += 1;
                    "MISMATCH vs stored score".to_string()
                }
            }
            Err(e) => {
                torn += 1;
                format!("unreadable: {e}")
            }
        };
        println!(
            "{:>5}  {:<14} {:<5} {:<9} {:>9.1} {:>9.4} {:>6} {:>5} {:>4}  {}",
            r.run,
            r.workload,
            r.estimator,
            r.state,
            r.wall_us as f64 / 1e3,
            r.score.mean_abs_err,
            r.score
                .convergence
                .map_or("never".to_string(), |c| format!("{:.0}%", c * 100.0)),
            r.score.monotonicity_violations,
            r.regressions,
            verdict,
        );
    }

    let flagged: usize = runs.iter().map(|r| r.regressions).sum();
    println!(
        "\n{} runs, {} trace bytes; {} regression(s) flagged at archive time; \
         re-score: {} mismatch(es), {} torn segment(s)",
        runs.len(),
        corpus.trace_bytes(),
        flagged,
        mismatches,
        torn,
    );
    if mismatches + torn > 0 {
        std::process::exit(1);
    }
}
