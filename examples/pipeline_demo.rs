//! Watch Algorithm-1 push-down estimation converge inside a join pipeline
//! (the paper's Fig. 1/2 plan shapes, live).
//!
//! Builds a three-join pipeline over tables whose hot values deliberately
//! do not line up (the paper's `C, C¹, C²` worst case), then prints each
//! join's cardinality estimate as the probe stream is consumed — all three
//! converge to the exact counts while the upper joins have emitted nothing.
//!
//! ```sh
//! cargo run --release --example pipeline_demo
//! ```

use qprog::core::pipeline_est::{AttrSource, JoinSpec, PipelineEstimator};
use qprog_types::QResult;

fn main() -> QResult<()> {
    let rows = 50_000;
    let domain = 2_000;
    let z = 1.0;
    // Same skew, different peak-frequency values per table.
    let b0 = qprog::datagen::customer_table("b0", rows, z, domain, 1);
    let b1 = qprog::datagen::customer_table("b1", rows, z, domain, 2);
    let b2 = qprog::datagen::customer_table("b2", rows, z, domain, 3);
    let probe = qprog::datagen::customer_table("c", rows, z, domain, 4);

    // Three hash joins on the same attribute (nationkey = column 1).
    let mut est = PipelineEstimator::new(
        vec![
            JoinSpec {
                build_attr_col: 1,
                probe_attr: AttrSource::Probe { col: 1 },
            };
            3
        ],
        rows as u64,
    )?;

    // Builds are fed top-down, exactly like the execution engine does.
    for (j, table) in [(2usize, &b2), (1, &b1), (0, &b0)] {
        let rows: Vec<_> = table.iter().collect();
        est.feed_build(j, rows.iter())?;
    }

    println!(
        "{:>9} {:>16} {:>16} {:>16}",
        "probe %", "lower join", "middle join", "upper join"
    );
    let mut next = rows / 100; // 1%
    for (i, row) in probe.iter().enumerate() {
        est.observe_probe(&row)?;
        if i + 1 == next {
            let e = est.estimates();
            println!(
                "{:>8.1}% {:>16.0} {:>16.0} {:>16.0}",
                est.probe_fraction() * 100.0,
                e[0],
                e[1],
                e[2]
            );
            next = (next * 2).min(rows);
        }
    }
    let finals = est.estimates();
    println!(
        "\nconverged (exact) cardinalities: lower={:.0} middle={:.0} upper={:.0}",
        finals[0], finals[1], finals[2]
    );
    assert!(est.converged());
    Ok(())
}
