//! Explore how data skew drives the GEE-vs-MLE estimator choice (§4.2).
//!
//! For each skew level, streams a grouping column and prints how the `γ²`
//! skew measure evolves, which estimator the online chooser selects, and
//! how fast each estimator's guess approaches the true group count.
//!
//! ```sh
//! cargo run --release --example skew_explorer
//! ```

use qprog::core::distinct::DistinctTracker;
use qprog::core::EstimatorChoice;
use qprog_types::Key;

fn main() {
    let rows = 100_000;
    let domain = 5_000;
    println!("streaming {rows} rows, {domain}-value domain\n");

    for z in [0.0, 0.5, 1.0, 1.5, 2.0] {
        let table = qprog::datagen::customer_table("c", rows, z, domain, 1);
        let truth = {
            let mut seen = std::collections::HashSet::new();
            for r in table.iter() {
                seen.insert(r.get(1).unwrap().as_i64().unwrap());
            }
            seen.len()
        };

        let mut tracker = DistinctTracker::new(rows as u64);
        println!("z = {z}: true groups = {truth}");
        println!(
            "  {:>8} {:>10} {:>7} {:>12} {:>12} {:>12}",
            "seen", "γ²", "pick", "chosen", "GEE", "MLE"
        );
        let mut next_report = 1_000;
        for (i, r) in table.iter().enumerate() {
            tracker.observe(&Key::Int(r.get(1).unwrap().as_i64().unwrap()));
            if i + 1 == next_report {
                let pick = match tracker.choice() {
                    EstimatorChoice::Gee => "GEE",
                    EstimatorChoice::Mle => "MLE",
                };
                println!(
                    "  {:>8} {:>10.2} {:>7} {:>12.0} {:>12.0} {:>12.0}",
                    i + 1,
                    tracker.gamma_squared(),
                    pick,
                    tracker.estimate(),
                    tracker.gee_estimate(),
                    tracker.mle_estimate_fresh(),
                );
                next_report *= 4;
            }
        }
        println!(
            "  final estimate {:.0} (exact: groups enumerated by the hashing phase)\n",
            tracker.estimate()
        );
    }
}
