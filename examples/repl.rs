//! Interactive SQL REPL over a TPC-H-lite database with live progress.
//!
//! ```sh
//! cargo run --release --example repl            # scale 0.01, uniform
//! QPROG_SCALE=0.05 QPROG_SKEW=2 cargo run --release --example repl
//! ```
//!
//! Commands: any supported SELECT statement; `\explain <sql>` to show the
//! plan without running; `\tables` to list tables; `\mode once|dne|byte|off`
//! to switch the estimation framework; `\quit` to exit.

use std::io::{BufRead, Write};
use std::time::{Duration, Instant};

use qprog::core::EstimationMode;
use qprog::plan::physical::PhysicalOptions;
use qprog::prelude::*;
use qprog_datagen::{TpchConfig, TpchGenerator};

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> QResult<()> {
    let scale = env_f64("QPROG_SCALE", 0.01);
    let skew = env_f64("QPROG_SKEW", 0.0);
    eprintln!("loading TPC-H-lite (scale {scale}, skew {skew})...");
    let catalog = TpchGenerator::new(TpchConfig {
        scale,
        skew,
        seed: 42,
    })
    .catalog()?;
    let mut mode = EstimationMode::Once;

    let stdin = std::io::stdin();
    eprintln!("qprog repl — \\tables, \\explain <sql>, \\mode <m>, \\quit");
    loop {
        eprint!("qprog> ");
        std::io::stderr().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.eq_ignore_ascii_case("\\quit") || line.eq_ignore_ascii_case("\\q") {
            break;
        }
        if line.eq_ignore_ascii_case("\\tables") {
            let session = Session::new(catalog.clone());
            for t in session.builder().catalog().table_names() {
                let rows = session.builder().catalog().table(t)?.num_rows();
                println!("  {t} ({rows} rows)");
            }
            continue;
        }
        if let Some(m) = line.strip_prefix("\\mode") {
            mode = match m.trim().to_ascii_lowercase().as_str() {
                "once" => EstimationMode::Once,
                "dne" => EstimationMode::Dne,
                "byte" => EstimationMode::Byte,
                "off" => EstimationMode::Off,
                other => {
                    eprintln!("unknown mode `{other}` (once|dne|byte|off)");
                    continue;
                }
            };
            eprintln!("estimation mode: {}", mode.label());
            continue;
        }
        let (explain_only, sql) = match line.strip_prefix("\\explain") {
            Some(rest) => (true, rest.trim()),
            None => (false, line),
        };
        let session = Session::new(catalog.clone()).with_options(PhysicalOptions::with_mode(mode));
        let mut query = match session.query(sql) {
            Ok(q) => q,
            Err(e) => {
                eprintln!("error: {e}");
                continue;
            }
        };
        if explain_only {
            print!("{}", query.explain());
            continue;
        }

        let tracker = query.tracker();
        let started = Instant::now();
        let monitor = std::thread::spawn(move || loop {
            let snap = tracker.snapshot();
            let (lo, hi) = tracker.fraction_bounds();
            let frac = snap.fraction();
            let filled = (frac * 30.0) as usize;
            eprint!(
                "\r[{}{}] {:5.1}%  (bounds {:.1}–{:.1}%)   ",
                "#".repeat(filled),
                "-".repeat(30 - filled),
                frac * 100.0,
                lo * 100.0,
                hi * 100.0,
            );
            std::io::stderr().flush().ok();
            if snap.is_complete() {
                eprintln!();
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        });
        match query.collect() {
            Ok(rows) => {
                monitor.join().ok();
                let shown = rows.len().min(20);
                for row in &rows[..shown] {
                    println!("{row}");
                }
                if rows.len() > shown {
                    println!("... ({} rows total)", rows.len());
                }
                println!(
                    "{} rows in {:.1} ms [{}]",
                    rows.len(),
                    started.elapsed().as_secs_f64() * 1000.0,
                    mode.label()
                );
            }
            Err(e) => {
                monitor.join().ok();
                eprintln!("error: {e}");
            }
        }
    }
    Ok(())
}
