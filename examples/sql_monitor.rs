//! Live monitoring of concurrent TPC-H queries in a browser.
//!
//! Starts a [`MonitorServer`] via [`Observability::serve_on`], then runs a
//! mix of queries — the paper's Fig. 8 eight-table Q8 join pipeline plus a
//! couple of SQL joins/aggregations — over and over on worker threads.
//! While they run:
//!
//! - `http://localhost:PORT/` renders a dashboard with one progress bar per
//!   live query (gnm point estimate plus its `[lo, hi]` confidence band)
//!   and a per-operator `K_i`/`N̂_i` table,
//! - `GET /progress` and `GET /progress/{id}` serve the same as JSON,
//! - `GET /metrics` exposes fleet-wide Prometheus counters and the
//!   per-estimator q-error histograms.
//!
//! A terminal progress bar is drawn too, so the example is useful without a
//! browser.
//!
//! ```sh
//! cargo run --release --example sql_monitor
//! # then open the printed http://localhost:PORT/ while it runs
//! ```

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use qprog::prelude::*;
use qprog::workloads::q8_plan;
use qprog_datagen::{TpchConfig, TpchGenerator};

const SQL_MIX: &[&str] = &[
    "SELECT c.nationkey, count(*) FROM customer c \
     JOIN orders o ON c.custkey = o.custkey GROUP BY c.nationkey",
    "SELECT o.orderkey, count(*) FROM orders o \
     JOIN lineitem l ON o.orderkey = l.orderkey GROUP BY o.orderkey",
];

fn main() -> QResult<()> {
    eprintln!("generating TPC-H-lite (scale 0.02, Zipf z=2 foreign keys)...");
    let catalog = TpchGenerator::new(TpchConfig {
        scale: 0.02,
        skew: 2.0,
        seed: 8,
    })
    .catalog()?;

    let session = Arc::new(
        SessionBuilder::new(catalog)
            .observability(Observability::new().serve_on("127.0.0.1:0"))
            .build()?,
    );
    let server = Arc::clone(session.monitor().expect("serve_on attached a monitor"));
    eprintln!();
    eprintln!("  live dashboard:  {}/", server.url());
    eprintln!("  progress JSON:   {}/progress", server.url());
    eprintln!("  Prometheus:      {}/metrics", server.url());
    eprintln!();

    // Background SQL workers: re-run the SQL mix so the dashboard always
    // has company for the foreground Q8 runs.
    let workers: Vec<_> = SQL_MIX
        .iter()
        .map(|sql| {
            let session = Arc::clone(&session);
            std::thread::spawn(move || -> QResult<usize> {
                let mut total = 0;
                for _ in 0..3 {
                    total += session.query(sql)?.collect()?.len();
                }
                Ok(total)
            })
        })
        .collect();

    // Foreground: Q8 with a terminal progress bar mirroring the dashboard.
    for run in 1..=3 {
        let plan = q8_plan(session.builder())?;
        let mut query = session.query_plan_labeled(plan, "TPC-H Q8 (8-table join)")?;
        let id = query.query_id().expect("registered with the monitor");
        let tracker = query.tracker();
        let monitor = std::thread::spawn(move || loop {
            let snap = tracker.snapshot();
            let frac = snap.fraction();
            let filled = (frac * 40.0) as usize;
            eprint!(
                "\rQ8 run {run} (query #{id}) [{}{}] {:5.1}%",
                "#".repeat(filled),
                "-".repeat(40 - filled),
                frac * 100.0,
            );
            std::io::stderr().flush().ok();
            if snap.is_complete() {
                eprintln!();
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        });
        let rows = query.collect()?;
        monitor.join().expect("monitor thread");
        eprintln!("  -> {} result rows", rows.len());
        // Keep the finished query on the dashboard briefly before its
        // handle drops and it unregisters.
        std::thread::sleep(Duration::from_millis(300));
    }

    for w in workers {
        let rows = w.join().expect("sql worker")?;
        eprintln!("sql worker done ({rows} rows total)");
    }

    let registry = session.metrics().expect("serve_on created a registry");
    println!();
    println!("final /metrics exposition:");
    println!("{}", registry.render());
    Ok(())
}
