//! A progress bar on another thread while TPC-H Q8 executes.
//!
//! The paper's Fig. 8 scenario: an 8-table join pipeline over a Zipf-2
//! TPC-H database. A monitor thread polls the cloneable
//! [`ProgressTracker`](qprog::plan::ProgressTracker) — estimation state is
//! published through lock-free per-operator metrics, so watching costs the
//! query nothing.
//!
//! ```sh
//! cargo run --release --example sql_monitor
//! ```

use std::io::Write;
use std::time::Duration;

use qprog::prelude::*;
use qprog::workloads::q8_plan;
use qprog_datagen::{TpchConfig, TpchGenerator};

fn main() -> QResult<()> {
    eprintln!("generating TPC-H-lite (scale 0.02, Zipf z=2 foreign keys)...");
    let catalog = TpchGenerator::new(TpchConfig {
        scale: 0.02,
        skew: 2.0,
        seed: 8,
    })
    .catalog()?;

    let session = Session::new(catalog);
    let plan = q8_plan(session.builder())?;
    let mut query = session.query_plan(plan)?;

    // Monitor thread: renders a progress bar until the query completes.
    let tracker = query.tracker();
    let monitor = std::thread::spawn(move || loop {
        let snap = tracker.snapshot();
        let frac = snap.fraction();
        let filled = (frac * 40.0) as usize;
        eprint!(
            "\r[{}{}] {:5.1}%  pipelines: {} total",
            "#".repeat(filled),
            "-".repeat(40 - filled),
            frac * 100.0,
            snap.pipelines().len(),
        );
        std::io::stderr().flush().ok();
        if snap.is_complete() {
            eprintln!();
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    });

    let rows = query.collect()?;
    monitor.join().expect("monitor thread");

    println!("market volume by order year:");
    for row in &rows {
        println!("  {row}");
    }
    Ok(())
}
