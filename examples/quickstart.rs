//! Quickstart: run a SQL join with a live progress indicator.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use qprog::prelude::*;

fn main() -> QResult<()> {
    // 1. Generate a skewed customer table (Zipf z=1.5 over 500 nations)
    //    and its nation dimension, and register them in a catalog.
    let mut catalog = Catalog::new();
    catalog.register(qprog::datagen::customer_table(
        "customer", 200_000, 1.5, 500, 1,
    ))?;
    catalog.register(qprog::datagen::nation_table("nation", 500))?;

    // 2. Open a session (defaults: the paper's `once` estimation framework,
    //    10% block-level random samples delivered first by every scan).
    //    `SessionBuilder` is the one-stop entry point; observability sinks
    //    and a live monitor attach through `.observability(...)`.
    let session = SessionBuilder::new(catalog).build()?;

    // 3. Compile a query. EXPLAIN shows the optimizer's initial estimates —
    //    the numbers the progress indicator will refine online.
    let sql = "SELECT nation.name, count(*) AS customers \
               FROM customer JOIN nation ON customer.nationkey = nation.nationkey \
               WHERE customer.custkey < 150000 \
               GROUP BY nation.name \
               ORDER BY customers DESC LIMIT 10";
    let mut query = session.query(sql)?;
    println!("plan:\n{}", query.explain());

    // 4. Run it with a concurrent monitor: the tracker is cloneable and
    //    lock-free to read, so progress is visible even while blocking
    //    operators (hash build, aggregation) are mid-phase.
    let tracker = query.tracker();
    let monitor = std::thread::spawn(move || loop {
        let snapshot = tracker.snapshot();
        println!(
            "progress {:5.1}%  (getnext so far: {}, estimated total: {:.0})",
            snapshot.fraction() * 100.0,
            snapshot.current(),
            snapshot.total()
        );
        if snapshot.is_complete() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
    // `RunOptions` also composes an in-thread observer callback, a wall-clock
    // deadline, and an external cancellation token when you need them.
    let rows = query.run(RunOptions::new())?;
    monitor.join().expect("monitor thread");

    println!("\ntop nations by customers:");
    for row in &rows {
        println!("  {row}");
    }
    Ok(())
}
