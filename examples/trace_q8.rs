//! Full observability run of TPC-H Q8: JSONL event trace, progress
//! timeline, invariant validation, and an EXPLAIN ANALYZE report.
//!
//! Demonstrates the whole `qprog-obs` surface on the paper's Fig. 8
//! workload (the 8-table join pipeline over skewed TPC-H-lite):
//!
//! - every trace event streams to `results/trace_q8.jsonl` as one JSON
//!   line,
//! - a [`ValidatorSink`] checks the progress model's invariants live,
//! - a [`TimelineRecorder`] on a monitor thread samples per-operator
//!   `(K_i, N_i)` trajectories to `results/trace_q8_timeline.csv`,
//! - after completion, an EXPLAIN ANALYZE report compares actual vs
//!   optimizer vs online cardinalities per operator with q-errors and
//!   phase wall-times.
//!
//! ```sh
//! cargo run --release --example trace_q8
//! ```

use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;
use std::time::Duration;

use qprog::obs::timeline::TimelineRecorder;
use qprog::prelude::*;
use qprog::workloads::q8_plan;
use qprog_datagen::{TpchConfig, TpchGenerator};

fn main() -> QResult<()> {
    eprintln!("generating TPC-H-lite (scale 0.02, Zipf z=2 foreign keys)...");
    let catalog = TpchGenerator::new(TpchConfig {
        scale: 0.02,
        skew: 2.0,
        seed: 8,
    })
    .catalog()?;

    // Compile the plan once untraced to learn operator names for the JSONL
    // annotations (registration order is deterministic).
    let probe_session = Session::new(catalog.clone());
    let probe = probe_session.query_plan(q8_plan(probe_session.builder())?)?;
    let op_names: Vec<String> = probe
        .registry()
        .iter()
        .map(|(n, _)| n.to_string())
        .collect();

    // Sinks: bounded in-memory ring (for the report), JSONL file stream,
    // and the debug invariant validator.
    let ring = Arc::new(RingSink::with_capacity(1 << 14));
    std::fs::create_dir_all("results").map_err(|e| QError::plan(e.to_string()))?;
    let jsonl_path = "results/trace_q8.jsonl";
    let jsonl = Arc::new(
        JsonlSink::new(BufWriter::new(
            File::create(jsonl_path).map_err(|e| QError::plan(e.to_string()))?,
        ))
        .with_op_names(op_names),
    );
    let validator = Arc::new(ValidatorSink::new());
    let bus = EventBus::builder()
        .sink(Arc::clone(&ring) as _)
        .sink(Arc::clone(&jsonl) as _)
        .sink(Arc::clone(&validator) as _)
        .build();

    let session = SessionBuilder::new(catalog)
        .observability(Observability::new().with_trace(Arc::clone(&bus)))
        .build()?;
    let plan = q8_plan(session.builder())?;
    let mut query = session.query_plan(plan)?;

    // Timeline recorder on a monitor thread, 5ms cadence; it also publishes
    // pipeline start/finish events to the bus as it observes them.
    let recorder = TimelineRecorder::new(query.tracker()).with_bus(Arc::clone(&bus));
    let handle = recorder.spawn(Duration::from_millis(5));

    let rows = query.collect()?;
    let log = handle.finish();

    println!("market volume by order year:");
    for row in &rows {
        println!("  {row}");
    }
    println!();

    let events = ring.drain();
    println!("{}", query.explain_analyze(&events));

    let csv_path = "results/trace_q8_timeline.csv";
    std::fs::write(csv_path, log.to_csv()).map_err(|e| QError::plan(e.to_string()))?;
    println!(
        "trace: {} events -> {jsonl_path} ({} dropped by ring)",
        bus.published(),
        ring.dropped()
    );
    println!("timeline: {} samples -> {csv_path}", log.len());
    println!(
        "monotonicity regressions (>1% fraction drop): {}",
        log.monotonicity_violations(0.01)
    );
    match validator.is_clean() {
        true => println!("validator: all progress invariants held"),
        false => {
            println!("validator: VIOLATIONS");
            for v in validator.violations() {
                println!("  {v}");
            }
        }
    }
    Ok(())
}
