//! Offline Perfetto export: span trees from a live Q8 run and from
//! archived corpus segments.
//!
//! Two paths, both ending in Chrome trace-event JSON you can load in
//! [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`:
//!
//! 1. **Live run** — executes TPC-H Q8 with the trace bus attached,
//!    assembles the span tree from the ring events, and writes
//!    `results/spans_q8.json`.
//! 2. **Corpus segments** — if a trace corpus exists (the scorecard
//!    bench's by default, or a directory passed as the first argument),
//!    replays each archived run's JSONL segment through `obs::replay`
//!    and writes one `results/spans_run{N}.json` per run.
//!
//! ```text
//! cargo run --release --example spans_export [-- path/to/corpus]
//! ```

use std::sync::Arc;

use qprog::obs::{Corpus, ReplayedTrace, SpanTree};
use qprog::prelude::*;
use qprog::workloads::q8_plan;
use qprog_datagen::{TpchConfig, TpchGenerator};

fn main() -> QResult<()> {
    std::fs::create_dir_all("results").map_err(|e| QError::plan(e.to_string()))?;

    // -- 1. live Q8 run ------------------------------------------------
    eprintln!("generating TPC-H-lite (scale 0.02, Zipf z=2 foreign keys)...");
    let catalog = TpchGenerator::new(TpchConfig {
        scale: 0.02,
        skew: 2.0,
        seed: 8,
    })
    .catalog()?;

    // Learn operator names from an untraced compile (registration order
    // is deterministic), then run traced with a ring sink.
    let probe_session = Session::new(catalog.clone());
    let probe = probe_session.query_plan(q8_plan(probe_session.builder())?)?;
    let op_names: Vec<String> = probe
        .registry()
        .iter()
        .map(|(n, _)| n.to_string())
        .collect();

    let ring = Arc::new(RingSink::with_capacity(1 << 14));
    let bus = EventBus::builder().sink(Arc::clone(&ring) as _).build();
    let session = SessionBuilder::new(catalog)
        .observability(Observability::new().with_trace(bus))
        .build()?;
    let mut query = session.query_plan(q8_plan(session.builder())?)?;
    let rows = query.collect()?;

    let events = ring.drain();
    let tree = SpanTree::from_events(&events, &op_names);
    let violations = tree.nesting_violations();
    if !violations.is_empty() {
        eprintln!("WARNING: span tree not strictly nested:");
        for v in &violations {
            eprintln!("  {v}");
        }
    }
    let t = tree.lifecycle_totals();
    let path = "results/spans_q8.json";
    std::fs::write(path, tree.to_chrome_json(8)).map_err(|e| QError::plan(e.to_string()))?;
    println!(
        "live Q8: {} rows, {} trace events, {} us wall -> {path}",
        rows.len(),
        events.len(),
        t.total_us
    );

    // -- 2. archived corpus segments ------------------------------------
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/scorecard_corpus".to_string());
    let corpus = match Corpus::open(&dir) {
        Ok(c) => c,
        Err(e) => {
            println!("no corpus at {dir} ({e}); skipping segment export");
            println!("(run `cargo bench --bench progress_scorecard` to create one)");
            return Ok(());
        }
    };
    let runs = corpus.runs();
    if runs.is_empty() {
        println!("corpus at {dir} holds no runs; skipping segment export");
        return Ok(());
    }
    for r in &runs {
        let jsonl = match corpus.trace_jsonl(r.run) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("run {}: segment unreadable ({e})", r.run);
                continue;
            }
        };
        let trace = ReplayedTrace::parse(&jsonl);
        if !trace.errors.is_empty() {
            eprintln!(
                "run {}: {} unparseable lines, exporting the rest",
                r.run,
                trace.errors.len()
            );
        }
        let tree = SpanTree::from_events(&trace.events, &trace.op_names);
        let path = format!("results/spans_run{}.json", r.run);
        std::fs::write(&path, tree.to_chrome_json(r.run))
            .map_err(|e| QError::plan(e.to_string()))?;
        println!(
            "run {} ({} / {}): {} events -> {path}",
            r.run,
            r.workload,
            r.estimator,
            trace.events.len()
        );
    }
    println!("load any of these in https://ui.perfetto.dev or chrome://tracing");
    Ok(())
}
