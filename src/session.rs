//! High-level session API: SQL in, rows + live progress out.

use std::sync::Arc;

use qprog_core::gnm::ProgressSnapshot;
use qprog_exec::trace::{EventBus, TraceEvent};
use qprog_plan::physical::{compile_traced, CompiledQuery, PhysicalOptions};
use qprog_plan::{LogicalPlan, PlanBuilder, ProgressTracker};
use qprog_storage::Catalog;
use qprog_types::{QResult, Row};

/// A database session: a catalog plus physical execution options.
///
/// The default options enable the paper's framework (`Once` estimation,
/// 10% block samples); use [`Session::with_options`] to run the `dne`/
/// `byte` baselines or disable estimation. Attach an
/// [`EventBus`] with [`Session::with_trace`] to stream execution trace
/// events (phase transitions, estimate refinements, query completion) to
/// observability sinks; without one, queries compile with zero tracing
/// overhead.
#[derive(Debug, Clone)]
pub struct Session {
    builder: PlanBuilder,
    options: PhysicalOptions,
    bus: Option<Arc<EventBus>>,
}

impl Session {
    /// New session with default options.
    pub fn new(catalog: Catalog) -> Self {
        Session {
            builder: PlanBuilder::new(catalog),
            options: PhysicalOptions::default(),
            bus: None,
        }
    }

    /// Override the physical options.
    pub fn with_options(mut self, options: PhysicalOptions) -> Self {
        self.options = options;
        self
    }

    /// Attach a trace bus: every query compiled by this session publishes
    /// [`TraceEvent`]s to the bus's sinks.
    pub fn with_trace(mut self, bus: Arc<EventBus>) -> Self {
        self.bus = Some(bus);
        self
    }

    /// The attached trace bus, if any.
    pub fn trace_bus(&self) -> Option<&Arc<EventBus>> {
        self.bus.as_ref()
    }

    /// The plan builder (for programmatic plan construction).
    pub fn builder(&self) -> &PlanBuilder {
        &self.builder
    }

    /// Current physical options.
    pub fn options(&self) -> &PhysicalOptions {
        &self.options
    }

    /// Parse, bind, and compile a SQL query.
    pub fn query(&self, sql: &str) -> QResult<QueryHandle> {
        let plan = qprog_sql::plan_sql(&self.builder, sql)?;
        self.query_plan(plan)
    }

    /// Compile a programmatically built logical plan.
    pub fn query_plan(&self, plan: LogicalPlan) -> QResult<QueryHandle> {
        let compiled = compile_traced(&plan, &self.options, self.bus.clone())?;
        Ok(QueryHandle { plan, compiled })
    }
}

/// A compiled query ready to execute, with live progress observation.
pub struct QueryHandle {
    plan: LogicalPlan,
    compiled: CompiledQuery,
}

impl QueryHandle {
    /// EXPLAIN-style plan rendering with optimizer estimates.
    pub fn explain(&self) -> String {
        self.plan.display()
    }

    /// The logical plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// A cloneable, thread-safe progress tracker (gnm snapshots on demand,
    /// e.g. from a monitor thread while [`collect`](Self::collect) runs).
    pub fn tracker(&self) -> ProgressTracker {
        self.compiled.tracker()
    }

    /// Run to completion, collecting all rows.
    pub fn collect(&mut self) -> QResult<Vec<Row>> {
        self.compiled.collect()
    }

    /// Run to completion, invoking the observer with a progress snapshot
    /// every 256 output rows and at completion.
    pub fn run_with(&mut self, observer: impl FnMut(&ProgressSnapshot)) -> QResult<Vec<Row>> {
        self.run_with_cadence(256, observer)
    }

    /// [`run_with`](Self::run_with) at an explicit row cadence.
    pub fn run_with_cadence(
        &mut self,
        every_n: u64,
        observer: impl FnMut(&ProgressSnapshot),
    ) -> QResult<Vec<Row>> {
        self.compiled.run_with(every_n, observer)
    }

    /// Pull one output row (manual Volcano stepping).
    pub fn step(&mut self) -> QResult<Option<Row>> {
        self.compiled.step()
    }

    /// The compiled query's per-operator metrics.
    pub fn registry(&self) -> &qprog_exec::metrics::MetricsRegistry {
        self.compiled.registry()
    }

    /// The compiled physical query (operator tree metadata, estimator
    /// labels, trace bus).
    pub fn compiled(&self) -> &CompiledQuery {
        &self.compiled
    }

    /// EXPLAIN ANALYZE: actual vs estimated cardinality per operator with
    /// q-errors, `getnext()` counts, estimator attribution, and — when
    /// `events` carries a captured trace — phase wall-times and refinement
    /// counts. Call after the query has run to completion.
    pub fn explain_analyze(&self, events: &[TraceEvent]) -> String {
        qprog_obs::explain_analyze(&self.compiled, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_core::EstimationMode;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(qprog_datagen::customer_table("customer", 5000, 1.0, 100, 1))
            .unwrap();
        c.register(qprog_datagen::nation_table("nation", 100))
            .unwrap();
        c
    }

    #[test]
    fn sql_roundtrip_with_progress() {
        let session = Session::new(catalog());
        let mut h = session
            .query(
                "SELECT count(*) FROM customer \
                 JOIN nation ON customer.nationkey = nation.nationkey",
            )
            .unwrap();
        assert!(h.explain().contains("Join[Hash"));
        let mut fractions = Vec::new();
        let rows = h.run_with(|snap| fractions.push(snap.fraction())).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0).unwrap().as_i64().unwrap(), 5000);
        assert_eq!(*fractions.last().unwrap(), 1.0);
        assert!(fractions.iter().all(|f| (0.0..=1.0).contains(f)));
    }

    #[test]
    fn modes_are_selectable() {
        for mode in EstimationMode::ALL {
            let session = Session::new(catalog()).with_options(PhysicalOptions::with_mode(mode));
            let mut h = session.query("SELECT * FROM customer").unwrap();
            assert_eq!(h.collect().unwrap().len(), 5000);
        }
    }

    #[test]
    fn traced_session_produces_explain_analyze() {
        let ring = Arc::new(qprog_obs::RingSink::with_capacity(4096));
        let validator = Arc::new(qprog_obs::ValidatorSink::new());
        let bus = EventBus::builder()
            .sink(Arc::clone(&ring) as _)
            .sink(Arc::clone(&validator) as _)
            .build();
        let session = Session::new(catalog()).with_trace(bus);
        let mut h = session
            .query(
                "SELECT * FROM customer \
                 JOIN nation ON customer.nationkey = nation.nationkey",
            )
            .unwrap();
        let rows = h.collect().unwrap();
        assert_eq!(rows.len(), 5000);
        let events = ring.drain();
        assert!(!events.is_empty());
        assert!(validator.is_clean(), "{:?}", validator.violations());
        let report = h.explain_analyze(&events);
        assert!(report.contains("-> hash_join"), "{report}");
        assert!(report.contains("actual: 5000 rows"), "{report}");
        assert!(report.contains("phases: build"), "{report}");
    }

    #[test]
    fn untraced_session_has_no_bus() {
        let session = Session::new(catalog());
        assert!(session.trace_bus().is_none());
        let h = session.query("SELECT * FROM nation").unwrap();
        assert!(h.compiled().bus().is_none());
    }

    #[test]
    fn tracker_observes_from_another_thread() {
        let session = Session::new(catalog());
        let mut h = session
            .query("SELECT nationkey, count(*) FROM customer GROUP BY nationkey")
            .unwrap();
        let tracker = h.tracker();
        let watcher = std::thread::spawn(move || loop {
            let snap = tracker.snapshot();
            let f = snap.fraction();
            assert!((0.0..=1.0).contains(&f));
            if snap.is_complete() {
                return f;
            }
            std::thread::yield_now();
        });
        let rows = h.collect().unwrap();
        assert_eq!(rows.len(), 100);
        assert_eq!(watcher.join().unwrap(), 1.0);
    }
}
