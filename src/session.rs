//! High-level session API: SQL in, rows + live progress out.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use qprog_core::gnm::ProgressSnapshot;
use qprog_exec::governor::CancellationToken;
use qprog_exec::trace::HealthState;
use qprog_exec::trace::{EventBus, TraceEvent, TraceSink};
use qprog_metrics::Registry;
use qprog_monitor::{MonitorServer, MonitoredQuery, PhaseSink, QueryState};
use qprog_obs::{
    ArchivedRun, Corpus, CorpusSink, HealthAnalyzer, HealthConfig, MetricsSink, RunMeta,
};
use qprog_plan::physical::{compile_traced, CompiledQuery, PhysicalOptions};
use qprog_plan::{LogicalPlan, PlanBuilder, ProgressTracker};
use qprog_storage::Catalog;
use qprog_types::{QResult, Row};

/// Which observability layers a session attaches, declared in one place.
///
/// Each layer is opt-in; without any of them queries compile with **zero**
/// tracing overhead — the per-tuple hot path is identical to the untraced
/// baseline.
///
/// - [`with_trace`](Self::with_trace) attaches an [`EventBus`]: every query
///   streams execution trace events (phase transitions, estimate
///   refinements, completion) to its sinks.
/// - [`with_metrics`](Self::with_metrics) attaches a shared
///   [`qprog_metrics::Registry`]: every query aggregates its events into
///   fleet-wide counters and per-estimator q-error histograms through a
///   per-query [`MetricsSink`].
/// - [`with_monitor`](Self::with_monitor) joins an already-running
///   [`MonitorServer`] (several sessions can share one);
///   [`serve_on`](Self::serve_on) starts a fresh one at
///   [`SessionBuilder::build`] time. Either way every query registers for
///   live HTTP observation (`/progress/{id}`, its `/stream` SSE variant,
///   the `/events` firehose, and the `/` dashboard) and unregisters when
///   its [`QueryHandle`] drops. Monitored queries also get a per-query
///   [`HealthAnalyzer`] (stall / estimate-oscillation / ETA-volatility
///   detection); tune its thresholds with
///   [`with_health`](Self::with_health).
/// - [`with_corpus`](Self::with_corpus) attaches a persistent
///   [`Corpus`]: every traced run is archived (full trace segment +
///   scorecard) at terminal time, compared against rolling per-workload
///   baselines, and any progress-quality regression is published back onto
///   the query's bus as a `RegressionDetected` trace event. A monitor in
///   the same session serves the corpus at `/history`.
#[derive(Debug, Clone, Default)]
pub struct Observability {
    trace: Option<Arc<EventBus>>,
    metrics: Option<Arc<Registry>>,
    monitor: Option<Arc<MonitorServer>>,
    serve_addr: Option<String>,
    health: HealthConfig,
    corpus: Option<CorpusAttachment>,
}

/// How a corpus joins the session: opened from a path at build time, or an
/// already-open handle shared with other sessions/tools.
#[derive(Debug, Clone)]
enum CorpusAttachment {
    Path(std::path::PathBuf),
    Handle(Arc<Corpus>),
}

impl Observability {
    /// No observability: the zero-overhead default.
    pub fn new() -> Self {
        Observability::default()
    }

    /// Attach a trace bus.
    ///
    /// When metrics or a monitor are also attached, each query gets its own
    /// bus carrying this bus's sinks plus the per-query ones, so events are
    /// stamped once; the session bus's `published()` counter then stays at
    /// zero (drain your sinks, not the bus).
    pub fn with_trace(mut self, bus: Arc<EventBus>) -> Self {
        self.trace = Some(bus);
        self
    }

    /// Attach a metrics registry shared across queries (and sessions).
    pub fn with_metrics(mut self, registry: Arc<Registry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Join an already-running monitor server. The session adopts the
    /// server's metrics registry when none is attached explicitly.
    pub fn with_monitor(mut self, server: Arc<MonitorServer>) -> Self {
        self.monitor = Some(server);
        self
    }

    /// Start a live monitor HTTP server on `addr` (e.g. `"127.0.0.1:0"`
    /// for an OS-assigned port) when the session is built. Creates and
    /// attaches a metrics registry if none is configured, so
    /// `GET /metrics` works out of the box. The server shuts down
    /// gracefully when the last `Arc` to it drops (or on an explicit
    /// [`MonitorServer::shutdown`]). Mutually exclusive with
    /// [`with_monitor`](Self::with_monitor).
    pub fn serve_on(mut self, addr: impl Into<String>) -> Self {
        self.serve_addr = Some(addr.into());
        self
    }

    /// Override the health-detection thresholds (stall window, estimate
    /// flip/divergence sensitivity, ETA volatility) applied to each
    /// monitored query's [`HealthAnalyzer`]. Has no effect unless a
    /// monitor is attached.
    pub fn with_health(mut self, config: HealthConfig) -> Self {
        self.health = config;
        self
    }

    /// Archive every run into a persistent trace corpus at `dir` (created
    /// if missing, opened crash-tolerantly at
    /// [`SessionBuilder::build`]). Each query's full trace and scorecard
    /// are stored at terminal time and checked against rolling
    /// `(workload, estimator, threads)` baselines for progress-quality
    /// regressions.
    pub fn with_corpus(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.corpus = Some(CorpusAttachment::Path(dir.into()));
        self
    }

    /// Archive into an already-open [`Corpus`] (shared across sessions, or
    /// pre-configured via [`Corpus::open_with`]).
    pub fn with_corpus_handle(mut self, corpus: Arc<Corpus>) -> Self {
        self.corpus = Some(CorpusAttachment::Handle(corpus));
        self
    }
}

/// Builds a [`Session`]: catalog + physical options + observability.
///
/// ```no_run
/// # use qprog::prelude::*;
/// # let catalog = Catalog::new();
/// let session = SessionBuilder::new(catalog)
///     .options(PhysicalOptions::default())
///     .observability(Observability::new().serve_on("127.0.0.1:0"))
///     .build()
///     .unwrap();
/// ```
#[derive(Debug)]
pub struct SessionBuilder {
    catalog: Catalog,
    options: PhysicalOptions,
    observability: Observability,
}

impl SessionBuilder {
    /// A builder with default options and no observability.
    pub fn new(catalog: Catalog) -> Self {
        SessionBuilder {
            catalog,
            options: PhysicalOptions::default(),
            observability: Observability::default(),
        }
    }

    /// Override the physical options.
    pub fn options(mut self, options: PhysicalOptions) -> Self {
        self.options = options;
        self
    }

    /// Set the vectorized batch capacity for queries compiled by this
    /// session (clamped to ≥ 1). `1` is strict per-row equivalence mode;
    /// the default is [`PhysicalOptions::batch_rows`] (env
    /// `QPROG_BATCH_ROWS`, normally 1024). Shorthand for mutating
    /// [`options`](Self::options).
    pub fn batch_rows(mut self, n: usize) -> Self {
        self.options.batch_rows = n.max(1);
        self
    }

    /// Configure the observability layers.
    pub fn observability(mut self, observability: Observability) -> Self {
        self.observability = observability;
        self
    }

    /// Build the session, starting the monitor server if
    /// [`Observability::serve_on`] was requested (the only fallible step).
    pub fn build(self) -> QResult<Session> {
        let Observability {
            trace,
            mut metrics,
            mut monitor,
            serve_addr,
            health,
            corpus,
        } = self.observability;
        if let Some(addr) = serve_addr {
            if monitor.is_some() {
                return Err(qprog_types::QError::internal(
                    "Observability::serve_on conflicts with with_monitor: \
                     join the existing server or start a new one, not both",
                ));
            }
            let registry = metrics
                .get_or_insert_with(|| Arc::new(Registry::new()))
                .clone();
            monitor = Some(MonitorServer::start(&addr, Some(registry))?);
        } else if let Some(server) = &monitor {
            if metrics.is_none() {
                metrics = server.metrics().cloned();
            }
        }
        let corpus = match corpus {
            Some(CorpusAttachment::Handle(c)) => Some(c),
            Some(CorpusAttachment::Path(dir)) => {
                Some(Arc::new(Corpus::open(&dir).map_err(|e| {
                    qprog_types::QError::internal(format!(
                        "opening trace corpus at {}: {e}",
                        dir.display()
                    ))
                })?))
            }
            None => None,
        };
        if let (Some(server), Some(c)) = (&monitor, &corpus) {
            server.set_corpus(Arc::clone(c));
        }
        Ok(Session {
            builder: PlanBuilder::new(self.catalog),
            options: self.options,
            bus: trace,
            metrics,
            monitor,
            health,
            corpus,
        })
    }
}

/// A database session: a catalog plus physical execution options.
///
/// The default options enable the paper's framework (`Once` estimation,
/// 10% block samples); use [`Session::with_options`] to run the `dne`/
/// `byte` baselines or disable estimation.
///
/// Observability (tracing, metrics, live monitoring) is configured through
/// [`SessionBuilder`] with an [`Observability`] value; see its docs for
/// the available layers.
#[derive(Debug, Clone)]
pub struct Session {
    builder: PlanBuilder,
    options: PhysicalOptions,
    bus: Option<Arc<EventBus>>,
    metrics: Option<Arc<Registry>>,
    monitor: Option<Arc<MonitorServer>>,
    health: HealthConfig,
    corpus: Option<Arc<Corpus>>,
}

impl Session {
    /// New session with default options.
    pub fn new(catalog: Catalog) -> Self {
        Session {
            builder: PlanBuilder::new(catalog),
            options: PhysicalOptions::default(),
            bus: None,
            metrics: None,
            monitor: None,
            health: HealthConfig::default(),
            corpus: None,
        }
    }

    /// Override the physical options.
    pub fn with_options(mut self, options: PhysicalOptions) -> Self {
        self.options = options;
        self
    }

    /// The attached trace bus, if any.
    pub fn trace_bus(&self) -> Option<&Arc<EventBus>> {
        self.bus.as_ref()
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&Arc<Registry>> {
        self.metrics.as_ref()
    }

    /// The attached monitor server, if any.
    pub fn monitor(&self) -> Option<&Arc<MonitorServer>> {
        self.monitor.as_ref()
    }

    /// The attached trace corpus, if any.
    pub fn corpus(&self) -> Option<&Arc<Corpus>> {
        self.corpus.as_ref()
    }

    /// The plan builder (for programmatic plan construction).
    pub fn builder(&self) -> &PlanBuilder {
        &self.builder
    }

    /// Current physical options.
    pub fn options(&self) -> &PhysicalOptions {
        &self.options
    }

    /// Parse, bind, and compile a SQL query. With a monitor attached, the
    /// SQL text becomes the query's dashboard label.
    pub fn query(&self, sql: &str) -> QResult<QueryHandle> {
        let plan = qprog_sql::plan_sql(&self.builder, sql)?;
        self.compile(plan, sql)
    }

    /// Compile a SQL query that *adopts* an existing monitor entry instead
    /// of registering a fresh one. Used by the query service: the
    /// submission was registered (as `queued`) at accept time under `id`,
    /// and each dispatch attempt attaches its live tracker/phases/health
    /// to that entry, so progress stays under one id across retries. The
    /// returned handle does not own the monitor registration (the service
    /// bridge does), so dropping it never emits a premature terminal.
    pub fn query_adopting(&self, sql: &str, id: u64) -> QResult<QueryHandle> {
        let plan = qprog_sql::plan_sql(&self.builder, sql)?;
        self.compile_as(plan, sql, Some(id))
    }

    /// Compile a programmatically built logical plan.
    pub fn query_plan(&self, plan: LogicalPlan) -> QResult<QueryHandle> {
        self.compile(plan, "<plan>")
    }

    /// Compile a logical plan under an explicit monitor/dashboard label.
    pub fn query_plan_labeled(&self, plan: LogicalPlan, label: &str) -> QResult<QueryHandle> {
        self.compile(plan, label)
    }

    fn compile(&self, plan: LogicalPlan, label: &str) -> QResult<QueryHandle> {
        self.compile_as(plan, label, None)
    }

    fn compile_as(
        &self,
        plan: LogicalPlan,
        label: &str,
        adopt: Option<u64>,
    ) -> QResult<QueryHandle> {
        // Per-query observer sinks. Events carry operator indices that are
        // only meaningful within one query, so the aggregating sinks are
        // per-query even though the registry/monitor they feed are shared.
        let metrics_sink = self
            .metrics
            .as_ref()
            .map(|r| Arc::new(MetricsSink::new(Arc::clone(r), self.options.mode.label())));
        let phase_sink = self.monitor.as_ref().map(|_| Arc::new(PhaseSink::new()));
        // Monitored queries also get a health analyzer: it taps the same
        // trace stream (estimate oscillation/divergence) and is sampled by
        // the monitor's broadcast tick (stall and ETA-volatility checks).
        let health_analyzer = self
            .monitor
            .as_ref()
            .map(|_| Arc::new(HealthAnalyzer::new(self.health.clone())));
        // With a corpus attached, the run is archived + scored at its
        // terminal event; the label doubles as the baseline workload key so
        // repeated invocations of the same query accumulate a baseline.
        let corpus_sink = self.corpus.as_ref().map(|c| {
            let meta = RunMeta::new(label, self.options.mode.label())
                .with_threads(self.options.threads)
                .with_seed(self.options.seed);
            Arc::new(CorpusSink::new(Arc::clone(c), meta))
        });

        let bus = if metrics_sink.is_none() && phase_sink.is_none() && corpus_sink.is_none() {
            // Fast path: exactly the user's bus (or none — zero overhead).
            self.bus.clone()
        } else {
            let mut b = EventBus::builder();
            if let Some(user) = &self.bus {
                for sink in user.sinks() {
                    b = b.sink(Arc::clone(sink));
                }
            }
            if let Some(ms) = &metrics_sink {
                b = b.sink(Arc::clone(ms) as Arc<dyn TraceSink>);
            }
            if let Some(ps) = &phase_sink {
                b = b.sink(Arc::clone(ps) as Arc<dyn TraceSink>);
            }
            if let Some(ha) = &health_analyzer {
                b = b.sink(Arc::clone(ha) as Arc<dyn TraceSink>);
            }
            if let Some(cs) = &corpus_sink {
                b = b.sink(Arc::clone(cs) as Arc<dyn TraceSink>);
            }
            Some(b.build())
        };
        // Health transitions and corpus regressions are published back onto
        // the query's own bus, so the stream that carried the symptoms also
        // carries the verdict.
        if let (Some(ha), Some(b)) = (&health_analyzer, &bus) {
            ha.attach_bus(b);
        }
        if let (Some(cs), Some(b)) = (&corpus_sink, &bus) {
            cs.attach_bus(b);
        }

        let compiled = compile_traced(&plan, &self.options, bus)?;
        let op_names = || -> Vec<String> {
            compiled
                .registry()
                .iter()
                .map(|(n, _)| n.to_string())
                .collect()
        };
        if let Some(ms) = &metrics_sink {
            ms.set_op_names(op_names());
        }
        if let Some(cs) = &corpus_sink {
            cs.set_op_names(op_names());
        }
        let monitored = match (&self.monitor, &phase_sink) {
            (Some(server), Some(phases)) => match adopt {
                // Service-managed entry: attach this attempt's execution
                // state to the pre-registered id; ownership stays with the
                // service's status observer.
                Some(id) => {
                    server.directory().attach_execution(
                        id,
                        compiled.tracker(),
                        Arc::clone(phases),
                        health_analyzer.clone(),
                    );
                    None
                }
                None => Some(server.directory().register(
                    label,
                    self.options.mode.label(),
                    compiled.tracker(),
                    Arc::clone(phases),
                    health_analyzer.clone(),
                )),
            },
            _ => None,
        };
        Ok(QueryHandle {
            plan,
            compiled,
            monitored,
            phases: phase_sink,
            health: health_analyzer,
            corpus: corpus_sink,
        })
    }
}

/// How to drive a query to completion: one options value in place of the
/// old `run_with` / `run_with_cadence` / `run_with_deadline` trio.
///
/// Every field is optional; [`RunOptions::new`] (or `Default`) reproduces
/// plain [`QueryHandle::collect`]. Compose freely:
///
/// ```no_run
/// # use qprog::prelude::*;
/// # use std::time::Duration;
/// # let mut handle: QueryHandle = unimplemented!();
/// let rows = handle.run(
///     RunOptions::new()
///         .observer(|snap| eprintln!("{:.1}%", 100.0 * snap.fraction()))
///         .cadence(64)
///         .deadline(Duration::from_secs(30)),
/// )?;
/// # Ok::<(), qprog::types::QError>(())
/// ```
pub struct RunOptions<'a> {
    observer: Option<ProgressObserver<'a>>,
    cadence: u64,
    deadline: Option<Duration>,
    cancel: Option<CancellationToken>,
    batch_rows: Option<usize>,
}

/// A boxed progress-observer callback, as carried by [`RunOptions`].
type ProgressObserver<'a> = Box<dyn FnMut(&ProgressSnapshot) + 'a>;

impl Default for RunOptions<'_> {
    fn default() -> Self {
        RunOptions {
            observer: None,
            cadence: 256,
            deadline: None,
            cancel: None,
            batch_rows: None,
        }
    }
}

impl<'a> RunOptions<'a> {
    /// Plain collection: no observer, no deadline, no external token.
    pub fn new() -> Self {
        RunOptions::default()
    }

    /// Invoke `f` with a progress snapshot every
    /// [`cadence`](Self::cadence) output rows and once at completion.
    pub fn observer(mut self, f: impl FnMut(&ProgressSnapshot) + 'a) -> Self {
        self.observer = Some(Box::new(f));
        self
    }

    /// Observer row cadence (default 256; ignored without an observer).
    pub fn cadence(mut self, every_n: u64) -> Self {
        self.cadence = every_n.max(1);
        self
    }

    /// Arm a wall-clock deadline measured from the start of the run; past
    /// it the query aborts with
    /// [`qprog_types::ExecError::DeadlineExceeded`].
    pub fn deadline(mut self, after: Duration) -> Self {
        self.deadline = Some(after);
        self
    }

    /// Link an external cancellation token: cancelling it aborts this
    /// query at its next checkpoint, exactly like
    /// [`QueryHandle::cancel`]. One token can be linked to several queries
    /// to cancel them as a group.
    pub fn cancel_token(mut self, token: CancellationToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Override the vectorized batch capacity for this run (clamped to
    /// ≥ 1). `1` is strict per-row equivalence mode, reproducing the
    /// serial engine's trace byte-for-byte; the default comes from the
    /// session's [`PhysicalOptions::batch_rows`] (env `QPROG_BATCH_ROWS`,
    /// normally 1024).
    pub fn batch_rows(mut self, n: usize) -> Self {
        self.batch_rows = Some(n.max(1));
        self
    }
}

impl std::fmt::Debug for RunOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field("observer", &self.observer.is_some())
            .field("cadence", &self.cadence)
            .field("deadline", &self.deadline)
            .field("cancel", &self.cancel.is_some())
            .field("batch_rows", &self.batch_rows)
            .finish()
    }
}

/// A compiled query ready to execute, with live progress observation.
///
/// When the session has a monitor attached, the handle also holds the
/// query's monitor registration: the query is listed at
/// `/progress/{query_id}` until the handle drops.
pub struct QueryHandle {
    plan: LogicalPlan,
    compiled: CompiledQuery,
    monitored: Option<MonitoredQuery>,
    phases: Option<Arc<PhaseSink>>,
    health: Option<Arc<HealthAnalyzer>>,
    corpus: Option<Arc<CorpusSink>>,
}

impl QueryHandle {
    /// EXPLAIN-style plan rendering with optimizer estimates.
    pub fn explain(&self) -> String {
        self.plan.display()
    }

    /// The logical plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// The monitor's id for this query (`/progress/{id}`), when the
    /// session has a monitor attached.
    pub fn query_id(&self) -> Option<u64> {
        self.monitored.as_ref().map(|m| m.id())
    }

    /// A cloneable, thread-safe progress tracker (gnm snapshots on demand,
    /// e.g. from a monitor thread while [`collect`](Self::collect) runs).
    pub fn tracker(&self) -> ProgressTracker {
        self.compiled.tracker()
    }

    /// Run to completion, collecting all rows.
    pub fn collect(&mut self) -> QResult<Vec<Row>> {
        self.compiled.collect()
    }

    /// Run to completion under [`RunOptions`]: optional progress observer
    /// (at a row cadence), wall-clock deadline, and external cancellation
    /// token, in any combination. `RunOptions::new()` is plain
    /// [`collect`](Self::collect).
    pub fn run(&mut self, options: RunOptions<'_>) -> QResult<Vec<Row>> {
        if let Some(n) = options.batch_rows {
            self.compiled.set_batch_rows(n);
        }
        if let Some(after) = options.deadline {
            self.set_deadline(after);
        }
        if let Some(token) = options.cancel {
            if let Some(governor) = self.compiled.governor() {
                governor.link_token(token);
            }
        }
        match options.observer {
            Some(mut f) => self.compiled.run_with(options.cadence, |snap| f(snap)),
            None => self.compiled.collect(),
        }
    }

    /// Pull one output row (manual Volcano stepping).
    pub fn step(&mut self) -> QResult<Option<Row>> {
        self.compiled.step()
    }

    /// The query's cancellation token, shareable with other threads (e.g.
    /// a timeout supervisor): `token.cancel()` makes every in-flight and
    /// future `next()` return [`qprog_types::ExecError::Cancelled`] at the
    /// next per-tuple checkpoint.
    pub fn cancellation_token(&self) -> Option<CancellationToken> {
        self.compiled.cancellation_token()
    }

    /// Request cooperative cancellation. Execution observes the flag at
    /// the next governed checkpoint (every output/consumed tuple), so a
    /// running [`collect`](Self::collect) returns `Err(Cancelled)` well
    /// within the chaos suite's 100ms bound.
    pub fn cancel(&self) {
        self.compiled.cancel();
    }

    /// Arm a wall-clock deadline `after` from now; execution past it
    /// aborts with [`qprog_types::ExecError::DeadlineExceeded`].
    pub fn set_deadline(&self, after: Duration) {
        self.compiled.set_deadline(after);
    }

    /// The query's lifecycle state. Terminal failure reasons are observed
    /// through trace events, so `Failed{..}` is reported when the session
    /// has a monitor attached (the same view `/progress` serves);
    /// otherwise the state derives from progress alone.
    pub fn state(&self) -> QueryState {
        match &self.phases {
            Some(p) => p.state(),
            None => {
                if self.compiled.tracker().snapshot().is_complete() {
                    QueryState::Done
                } else {
                    QueryState::Running
                }
            }
        }
    }

    /// The query's current health verdict (stall / oscillation / ETA
    /// volatility detection), when the session has a monitor — and thus a
    /// [`HealthAnalyzer`] — attached.
    pub fn health(&self) -> Option<HealthState> {
        self.health.as_ref().map(|h| h.state())
    }

    /// The run's corpus archival result — index record plus any detected
    /// progress-quality regressions — once the query has reached a terminal
    /// event. `None` before completion or when the session has no corpus
    /// attached.
    pub fn archived_run(&self) -> Option<ArchivedRun> {
        self.corpus.as_ref().and_then(|c| c.archived_run())
    }

    /// Spawn a watcher thread sampling this query's progress every
    /// `period`, feeding each snapshot to `f`. The watcher exits promptly
    /// — without waiting for natural completion — when the query finishes,
    /// fails, is cancelled, or the returned [`ProgressWatcher`] is
    /// stopped/dropped (drop joins the thread).
    pub fn watch(
        &self,
        period: Duration,
        f: impl FnMut(&ProgressSnapshot) + Send + 'static,
    ) -> ProgressWatcher {
        ProgressWatcher::spawn(
            self.compiled.tracker(),
            self.phases.clone(),
            self.cancellation_token(),
            period,
            f,
        )
    }

    /// The compiled query's per-operator metrics.
    pub fn registry(&self) -> &qprog_exec::metrics::MetricsRegistry {
        self.compiled.registry()
    }

    /// The compiled physical query (operator tree metadata, estimator
    /// labels, trace bus).
    pub fn compiled(&self) -> &CompiledQuery {
        &self.compiled
    }

    /// EXPLAIN ANALYZE: actual vs estimated cardinality per operator with
    /// q-errors, `getnext()` counts, estimator attribution, and — when
    /// `events` carries a captured trace — phase wall-times and refinement
    /// counts. Call after the query has run to completion.
    pub fn explain_analyze(&self, events: &[TraceEvent]) -> String {
        qprog_obs::explain_analyze(&self.compiled, events)
    }
}

/// A progress-sampling thread with a bounded lifetime.
///
/// Earlier revisions open-coded watcher loops that spun until
/// `snapshot().is_complete()` — a query that failed or was cancelled never
/// completes, so the watcher leaked. This watcher exits as soon as the
/// query reaches *any* terminal state (done, failed, cancelled) or when
/// explicitly stopped, and [`Drop`] joins the thread so it can never
/// outlive its owner.
pub struct ProgressWatcher {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ProgressWatcher {
    fn spawn(
        tracker: ProgressTracker,
        phases: Option<Arc<PhaseSink>>,
        token: Option<CancellationToken>,
        period: Duration,
        mut f: impl FnMut(&ProgressSnapshot) + Send + 'static,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("qprog-progress-watch".to_string())
            .spawn(move || loop {
                let snap = tracker.snapshot();
                f(&snap);
                let failed = phases
                    .as_deref()
                    .is_some_and(|p| p.abort_reason().is_some());
                let cancelled = token.as_ref().is_some_and(|t| t.is_cancelled());
                if snap.is_complete() || failed || cancelled || stop2.load(Ordering::Acquire) {
                    return;
                }
                std::thread::park_timeout(period);
            })
            .expect("spawn progress watcher thread");
        ProgressWatcher {
            stop,
            thread: Some(thread),
        }
    }

    /// Signal the watcher to exit and join it. Idempotent; also runs on
    /// drop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            t.thread().unpark();
            let _ = t.join();
        }
    }
}

impl Drop for ProgressWatcher {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for ProgressWatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressWatcher")
            .field("stopped", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_core::EstimationMode;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(qprog_datagen::customer_table("customer", 5000, 1.0, 100, 1))
            .unwrap();
        c.register(qprog_datagen::nation_table("nation", 100))
            .unwrap();
        c
    }

    fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn sql_roundtrip_with_progress() {
        let session = Session::new(catalog());
        let mut h = session
            .query(
                "SELECT count(*) FROM customer \
                 JOIN nation ON customer.nationkey = nation.nationkey",
            )
            .unwrap();
        assert!(h.explain().contains("Join[Hash"));
        let mut fractions = Vec::new();
        let rows = h
            .run(RunOptions::new().observer(|snap| fractions.push(snap.fraction())))
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0).unwrap().as_i64().unwrap(), 5000);
        assert_eq!(*fractions.last().unwrap(), 1.0);
        assert!(fractions.iter().all(|f| (0.0..=1.0).contains(f)));
    }

    #[test]
    fn modes_are_selectable() {
        for mode in EstimationMode::ALL {
            let session = Session::new(catalog()).with_options(PhysicalOptions::with_mode(mode));
            let mut h = session.query("SELECT * FROM customer").unwrap();
            assert_eq!(h.collect().unwrap().len(), 5000);
        }
    }

    #[test]
    fn traced_session_produces_explain_analyze() {
        let ring = Arc::new(qprog_obs::RingSink::with_capacity(4096));
        let validator = Arc::new(qprog_obs::ValidatorSink::new());
        let bus = EventBus::builder()
            .sink(Arc::clone(&ring) as _)
            .sink(Arc::clone(&validator) as _)
            .build();
        let session = SessionBuilder::new(catalog())
            .observability(Observability::new().with_trace(bus))
            .build()
            .unwrap();
        let mut h = session
            .query(
                "SELECT * FROM customer \
                 JOIN nation ON customer.nationkey = nation.nationkey",
            )
            .unwrap();
        let rows = h.collect().unwrap();
        assert_eq!(rows.len(), 5000);
        let events = ring.drain();
        assert!(!events.is_empty());
        assert!(validator.is_clean(), "{:?}", validator.violations());
        let report = h.explain_analyze(&events);
        assert!(report.contains("-> hash_join"), "{report}");
        assert!(report.contains("actual: 5000 rows"), "{report}");
        assert!(report.contains("phases: build"), "{report}");
    }

    #[test]
    fn untraced_session_has_no_bus() {
        let session = Session::new(catalog());
        assert!(session.trace_bus().is_none());
        assert!(session.metrics().is_none());
        assert!(session.monitor().is_none());
        let h = session.query("SELECT * FROM nation").unwrap();
        assert!(h.compiled().bus().is_none());
        assert!(h.query_id().is_none());
    }

    #[test]
    fn watcher_observes_from_another_thread_and_exits_on_completion() {
        let session = Session::new(catalog());
        let mut h = session
            .query("SELECT nationkey, count(*) FROM customer GROUP BY nationkey")
            .unwrap();
        let fractions = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&fractions);
        let mut watcher = h.watch(Duration::from_micros(50), move |snap| {
            sink.lock().unwrap().push(snap.fraction());
        });
        let rows = h.collect().unwrap();
        assert_eq!(rows.len(), 100);
        // The watcher notices completion by itself; stop() merely joins.
        watcher.stop();
        let fractions = fractions.lock().unwrap();
        assert!(fractions.iter().all(|f| (0.0..=1.0).contains(f)));
        assert!(
            fractions.windows(2).all(|w| w[0] <= w[1]),
            "monotone: {fractions:?}"
        );
    }

    #[test]
    fn watcher_exits_promptly_on_cancel_without_completion() {
        let session = Session::new(catalog());
        let h = session.query("SELECT * FROM customer").unwrap();
        // Query never runs: progress stays incomplete forever.
        let watcher = h.watch(Duration::from_millis(1), |_| {});
        h.cancel();
        let start = std::time::Instant::now();
        drop(watcher); // joins; must not wait for natural completion
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "watcher failed to exit promptly on cancel"
        );
        assert_eq!(h.state(), QueryState::Running, "no terminal event yet");
    }

    #[test]
    fn cancelled_query_returns_typed_error_quickly() {
        let session = Session::new(catalog());
        let mut h = session
            .query(
                "SELECT * FROM customer \
                 JOIN nation ON customer.nationkey = nation.nationkey",
            )
            .unwrap();
        h.cancel();
        let start = std::time::Instant::now();
        let err = h.collect().unwrap_err();
        assert!(start.elapsed() < Duration::from_millis(100));
        assert!(err.is_cancelled(), "{err}");
    }

    #[test]
    fn deadline_zero_aborts_with_typed_error() {
        let session = Session::new(catalog());
        let mut h = session.query("SELECT * FROM customer").unwrap();
        let err = h
            .run(RunOptions::new().deadline(Duration::ZERO))
            .unwrap_err();
        assert_eq!(
            err.lifecycle().map(qprog_types::ExecError::kind),
            Some("deadline"),
            "{err}"
        );
    }

    #[test]
    fn monitored_failed_query_shows_terminal_state() {
        let session = SessionBuilder::new(catalog())
            .observability(Observability::new().serve_on("127.0.0.1:0"))
            .build()
            .unwrap();
        let server = Arc::clone(session.monitor().unwrap());
        let mut h = session.query("SELECT * FROM customer").unwrap();
        let id = h.query_id().unwrap();
        h.cancel();
        assert!(h.collect().is_err());
        assert!(matches!(h.state(), QueryState::Failed(_)));
        let detail = http_get(server.addr(), &format!("/progress/{id}"));
        assert!(detail.contains("\"state\":\"failed\""), "{detail}");
        assert!(detail.contains("\"failure\":\"cancelled\""), "{detail}");
        server.shutdown();
    }

    #[test]
    fn metrics_session_aggregates_across_queries() {
        let registry = Arc::new(Registry::new());
        let session = SessionBuilder::new(catalog())
            .observability(Observability::new().with_metrics(Arc::clone(&registry)))
            .build()
            .unwrap();
        for _ in 0..2 {
            let mut h = session
                .query(
                    "SELECT * FROM customer \
                     JOIN nation ON customer.nationkey = nation.nationkey",
                )
                .unwrap();
            assert_eq!(h.collect().unwrap().len(), 5000);
        }
        let text = registry.render();
        assert!(
            text.contains("qprog_queries_finished_total{estimator=\"once\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("qprog_query_rows_total{estimator=\"once\"} 10000"),
            "{text}"
        );
        assert!(
            text.contains("qprog_estimate_q_error_count{estimator=\"once\"}"),
            "{text}"
        );
        assert!(
            text.contains("qprog_operator_emitted_total{op=\"hash_join\"} 10000"),
            "{text}"
        );
    }

    #[test]
    fn metrics_compose_with_a_user_trace_bus() {
        let ring = Arc::new(qprog_obs::RingSink::with_capacity(4096));
        let registry = Arc::new(Registry::new());
        let session = SessionBuilder::new(catalog())
            .observability(
                Observability::new()
                    .with_trace(EventBus::with_sink(Arc::clone(&ring) as _))
                    .with_metrics(Arc::clone(&registry)),
            )
            .build()
            .unwrap();
        let mut h = session.query("SELECT * FROM nation").unwrap();
        h.collect().unwrap();
        // Both consumers saw the same (once-stamped) event stream.
        let events = ring.drain();
        assert!(!events.is_empty());
        assert!(registry
            .render()
            .contains("qprog_queries_finished_total{estimator=\"once\"} 1"));
    }

    #[test]
    fn monitored_queries_register_and_unregister() {
        let session = SessionBuilder::new(catalog())
            .observability(Observability::new().serve_on("127.0.0.1:0"))
            .build()
            .unwrap();
        let server = Arc::clone(session.monitor().unwrap());
        let addr = server.addr();

        let mut h = session.query("SELECT * FROM nation").unwrap();
        let id = h.query_id().expect("monitored query has an id");
        let listed = http_get(addr, "/progress");
        assert!(listed.contains(&format!("\"id\":{id}")), "{listed}");
        assert!(listed.contains("SELECT * FROM nation"), "{listed}");

        h.collect().unwrap();
        let detail = http_get(addr, &format!("/progress/{id}"));
        assert!(detail.contains("\"done\":true"), "{detail}");
        assert!(detail.contains("\"fraction\":1"), "{detail}");
        assert!(detail.contains("\"ops\":["), "{detail}");

        // /metrics works out of the box (registry auto-created).
        let metrics = http_get(addr, "/metrics");
        assert!(metrics.contains("qprog_queries_live 1"), "{metrics}");

        drop(h);
        let after = http_get(addr, &format!("/progress/{id}"));
        assert!(after.starts_with("HTTP/1.1 404"), "{after}");
        server.shutdown();
    }

    #[test]
    fn run_options_compose_observer_cadence_and_deadline() {
        let session = Session::new(catalog());
        let mut h = session
            .query(
                "SELECT count(*) FROM customer \
                 JOIN nation ON customer.nationkey = nation.nationkey",
            )
            .unwrap();
        let mut samples = 0u64;
        let rows = h
            .run(
                RunOptions::new()
                    .observer(|snap| {
                        samples += 1;
                        assert!((0.0..=1.0).contains(&snap.fraction()));
                    })
                    .cadence(64)
                    .deadline(Duration::from_secs(60)),
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert!(samples >= 1, "observer fires at least at completion");
    }

    #[test]
    fn batch_rows_override_preserves_results() {
        // Session-level and run-level batch capacities agree with strict
        // per-row mode on the result multiset.
        let strict = {
            let session = Session::new(catalog()).with_options(PhysicalOptions {
                batch_rows: 1,
                ..PhysicalOptions::default()
            });
            let mut h = session
                .query("SELECT nationkey, count(*) FROM customer GROUP BY nationkey")
                .unwrap();
            h.collect().unwrap()
        };
        let session_wide = {
            let session = SessionBuilder::new(catalog())
                .batch_rows(512)
                .build()
                .unwrap();
            let mut h = session
                .query("SELECT nationkey, count(*) FROM customer GROUP BY nationkey")
                .unwrap();
            assert_eq!(h.compiled().batch_rows(), 512);
            h.collect().unwrap()
        };
        let per_run = {
            let session = Session::new(catalog());
            let mut h = session
                .query("SELECT nationkey, count(*) FROM customer GROUP BY nationkey")
                .unwrap();
            h.run(RunOptions::new().batch_rows(7)).unwrap()
        };
        assert_eq!(strict, session_wide);
        assert_eq!(strict, per_run);
    }

    #[test]
    fn run_options_link_an_external_cancel_token() {
        let session = Session::new(catalog());
        let mut h = session.query("SELECT * FROM customer").unwrap();
        let group = CancellationToken::new();
        group.cancel();
        let err = h
            .run(RunOptions::new().cancel_token(group.clone()))
            .unwrap_err();
        assert!(err.is_cancelled(), "{err}");
        // The query's own token is untouched; only the linked one fired.
        assert!(!h.cancellation_token().unwrap().is_cancelled());
    }

    #[test]
    fn monitored_queries_report_health() {
        let session = SessionBuilder::new(catalog())
            .observability(Observability::new().serve_on("127.0.0.1:0"))
            .build()
            .unwrap();
        let server = Arc::clone(session.monitor().unwrap());
        let mut h = session.query("SELECT * FROM nation").unwrap();
        let id = h.query_id().unwrap();
        assert_eq!(h.health(), Some(HealthState::Healthy));
        h.collect().unwrap();
        let detail = http_get(server.addr(), &format!("/progress/{id}"));
        assert!(detail.contains("\"health\":\"healthy\""), "{detail}");
        server.shutdown();
    }

    #[test]
    fn unmonitored_queries_have_no_health_analyzer() {
        let session = Session::new(catalog());
        let h = session.query("SELECT * FROM nation").unwrap();
        assert_eq!(h.health(), None);
    }

    #[test]
    fn concurrent_queries_on_one_session_are_all_listed() {
        let session = SessionBuilder::new(catalog())
            .observability(Observability::new().serve_on("127.0.0.1:0"))
            .build()
            .unwrap();
        let addr = session.monitor().unwrap().addr();
        let session = Arc::new(session);
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let session = Arc::clone(&session);
                std::thread::spawn(move || {
                    let mut h = session
                        .query(
                            "SELECT * FROM customer \
                             JOIN nation ON customer.nationkey = nation.nationkey",
                        )
                        .unwrap();
                    let id = h.query_id().unwrap();
                    let rows = h.collect().unwrap().len();
                    (id, rows, h)
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|t| t.join().unwrap()).collect();
        let listed = http_get(addr, "/progress");
        for (id, rows, _) in &results {
            assert_eq!(*rows, 5000);
            assert!(listed.contains(&format!("\"id\":{id}")), "{listed}");
        }
        let ids: std::collections::HashSet<u64> = results.iter().map(|r| r.0).collect();
        assert_eq!(ids.len(), 3, "distinct ids per concurrent query");
    }
}
