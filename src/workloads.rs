//! Canonical workload plans used by the paper's evaluation and the
//! benchmark harness.

use qprog_exec::expr::{BinOp, Expr};
use qprog_exec::ops::agg::AggFunc;
use qprog_plan::{LogicalPlan, PlanBuilder};
use qprog_types::{QResult, Value};

/// TPC-H Q8-lite (§5.3, Fig. 8): an 8-table join pipeline followed by an
/// aggregation on order year.
///
/// Shape (left-deep, lineitem drives the probe stream):
///
/// ```text
/// region(σ name='AMERICA') ⋈ n2 ⋈ n1 ⋈ customer ⋈ orders ⋈ supplier ⋈ part(σ) ⋈ lineitem
/// → GROUP BY orderyear, SUM(extendedprice)
/// ```
///
/// The chain exercises every attribute-source case of Algorithm 1: the
/// lower joins probe with lineitem columns directly, customer/n1/n2/region
/// probe with columns carried by lower build relations (Case 2, with the
/// region histogram cascading through three derivation levels before it is
/// keyed by a lineitem column).
pub fn q8_plan(builder: &PlanBuilder) -> QResult<LogicalPlan> {
    let part = builder.scan("part")?.filter(Expr::binary(
        BinOp::Eq,
        Expr::Column(1), // part.type
        Expr::Literal(Value::str("PROMO")),
    ))?;
    let region = builder.scan("region")?.filter(Expr::binary(
        BinOp::Eq,
        Expr::Column(1), // region.name
        Expr::Literal(Value::str("AMERICA")),
    ))?;
    let n1 = builder.scan("nation")?.with_alias("n1");
    let n2 = builder.scan("nation")?.with_alias("n2");

    builder
        .scan("lineitem")?
        .hash_join(part, "part.partkey", "lineitem.partkey")?
        .hash_join(
            builder.scan("supplier")?,
            "supplier.suppkey",
            "lineitem.suppkey",
        )?
        .hash_join(
            builder.scan("orders")?,
            "orders.orderkey",
            "lineitem.orderkey",
        )?
        .hash_join(
            builder.scan("customer")?,
            "customer.custkey",
            "orders.custkey",
        )?
        .hash_join(n1, "n1.nationkey", "customer.nationkey")?
        .hash_join(n2, "n2.nationkey", "supplier.nationkey")?
        .hash_join(region, "region.regionkey", "n1.regionkey")?
        .aggregate(
            &["orders.orderyear"],
            &[
                (AggFunc::Sum, Some("lineitem.extendedprice"), "volume"),
                (AggFunc::CountStar, None, "rows"),
            ],
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_datagen::{TpchConfig, TpchGenerator};
    use qprog_plan::physical::{compile, PhysicalOptions};

    #[test]
    fn q8_compiles_and_runs_on_tiny_tpch() {
        let catalog = TpchGenerator::new(TpchConfig {
            scale: 0.002,
            skew: 1.0,
            seed: 5,
        })
        .catalog()
        .unwrap();
        let builder = PlanBuilder::new(catalog);
        let plan = q8_plan(&builder).unwrap();
        assert_eq!(plan.schema.arity(), 3); // year, volume, rows
        let mut q = compile(&plan, &PhysicalOptions::default()).unwrap();
        let rows = q.collect().unwrap();
        // up to 7 order years
        assert!(rows.len() <= 7);
        // the 7-join chain must have been wired as one estimation pipeline:
        // after completion every hash join's estimate is exact (= emitted)
        for (name, m) in q.registry().iter() {
            if name == "hash_join" {
                assert_eq!(m.estimated_total(), m.emitted() as f64);
            }
        }
    }
}
