//! The full query-service stack, assembled: session + monitor + service.
//!
//! [`ServiceRuntime`] wires a monitored [`Session`] to a
//! [`QueryService`] so the monitor's HTTP server becomes the service's
//! front door:
//!
//! - `POST /submit` accepts `{"sql","tenant"[,"label","deadline_ms"]}` and
//!   answers `202 {"id":N}` the moment the submission is journaled;
//! - workers compile and run accepted jobs through the session (the
//!   engine's cancellation token and governor deadline are wired to the
//!   service's), with the remaining deadline budget measured from submit
//!   time — queue wait counts;
//! - every lifecycle step (queued → running → retrying → terminal) is
//!   mirrored into the monitor directory, so `GET /progress/{id}` and the
//!   SSE streams cover submitted queries exactly like session-run ones;
//! - `POST /progress/{id}/cancel` cancels, `GET /service` reports
//!   admission/queue/retry statistics.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use qprog_exec::governor::CancellationToken;
use qprog_monitor::service::DirectoryObserver;
use qprog_service::{JobExecutor, JobSpec, QueryService, ServiceConfig};
use qprog_types::{QError, QResult};

use crate::session::{RunOptions, Session};

/// [`JobExecutor`] that compiles and runs jobs through a [`Session`].
///
/// Each dispatch attempt adopts the submission's pre-registered monitor
/// entry (same query id across retries) and links the service's
/// cancellation token and remaining deadline into the engine's governor.
struct SessionExecutor {
    session: Session,
}

impl JobExecutor for SessionExecutor {
    fn validate(&self, sql: &str) -> Result<(), String> {
        // Plan (parse + bind) without compiling: catches bad SQL at submit
        // time so it is rejected with a 400 instead of burning a worker.
        qprog_sql::plan_sql(self.session.builder(), sql)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn execute(
        &self,
        job: &JobSpec,
        cancel: CancellationToken,
        deadline: Option<Duration>,
    ) -> Result<u64, QError> {
        let mut handle = self.session.query_adopting(&job.sql, job.id)?;
        let mut options = RunOptions::new().cancel_token(cancel);
        if let Some(remaining) = deadline {
            options = options.deadline(remaining);
        }
        let rows = handle.run(options)?;
        Ok(rows.len() as u64)
    }
}

/// A running submit/queue/dispatch service bound to one monitored session.
///
/// ```no_run
/// # use qprog::prelude::*;
/// # use qprog::ServiceRuntime;
/// # let catalog = Catalog::new();
/// let session = SessionBuilder::new(catalog)
///     .observability(Observability::new().serve_on("127.0.0.1:0"))
///     .build()
///     .unwrap();
/// let runtime = ServiceRuntime::start(
///     session,
///     "/tmp/qprog-queue",
///     Default::default(),
/// )
/// .unwrap();
/// println!("submit to {}/submit", runtime.session().monitor().unwrap().url());
/// # runtime.drain();
/// ```
///
/// Dropping the runtime shuts the service down abruptly ([`QueryService::
/// shutdown`]): accepted-but-unfinished work stays journaled and is
/// re-dispatched on the next open. Call [`drain`](Self::drain) first for a
/// graceful ending (finish or checkpoint-abort in-flight work, flush
/// terminal states to streaming subscribers).
pub struct ServiceRuntime {
    session: Session,
    service: Arc<QueryService>,
    observer: Arc<DirectoryObserver>,
}

impl ServiceRuntime {
    /// Open (or recover) the journal at `dir` and start dispatching
    /// through `session`, which must have a monitor attached — the monitor
    /// is both the status surface and the HTTP front door.
    pub fn start(session: Session, dir: impl AsRef<Path>, cfg: ServiceConfig) -> QResult<Self> {
        let Some(server) = session.monitor().cloned() else {
            return Err(QError::internal(
                "ServiceRuntime requires a session with a monitor attached \
                 (Observability::serve_on or with_monitor)",
            ));
        };
        let observer = DirectoryObserver::new(
            Arc::clone(server.directory()),
            session.options().mode.label(),
        );
        let executor = Arc::new(SessionExecutor {
            session: session.clone(),
        });
        let service = QueryService::open(
            dir.as_ref(),
            cfg,
            executor,
            Arc::clone(&observer) as Arc<_>,
            session.metrics().cloned(),
        )
        .map_err(|e| QError::internal(format!("opening service journal: {e}")))?;
        server.set_service(Arc::clone(&service));
        Ok(ServiceRuntime {
            session,
            service,
            observer,
        })
    }

    /// The session executing submissions.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The underlying service (submit/status/cancel/stats without HTTP).
    pub fn service(&self) -> &Arc<QueryService> {
        &self.service
    }

    /// The monitor bridge (mostly useful for its tracked-entry count).
    pub fn observer(&self) -> &Arc<DirectoryObserver> {
        &self.observer
    }

    /// Graceful shutdown: stop admitting, let in-flight and queued work
    /// finish within the configured drain timeout, checkpoint-abort the
    /// rest, and flush every terminal to streaming subscribers.
    pub fn drain(&self) {
        self.service.drain();
    }
}

impl Drop for ServiceRuntime {
    fn drop(&mut self) {
        // Abrupt by design: pending work stays journaled for the next
        // open. Graceful endings are an explicit `drain()`.
        self.service.shutdown();
    }
}

impl std::fmt::Debug for ServiceRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceRuntime")
            .field("stats", &self.service.stats())
            .finish()
    }
}
