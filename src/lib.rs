//! # qprog — A Lightweight Online Framework for Query Progress Indicators
//!
//! `qprog` is a from-scratch Rust reproduction of Mishra & Koudas,
//! *"A Lightweight Online Framework For Query Progress Indicators"*
//! (ICDE 2007). It bundles:
//!
//! - a miniature Volcano-style relational engine with phase-structured
//!   operators (grace hash join, sort-merge join, hash aggregation, ...)
//!   instrumented with `getnext()` counters ([`exec`], [`storage`]),
//! - a planner with deliberately optimizer-grade (i.e. skew-blind)
//!   cardinality estimates and pipeline decomposition ([`plan`]),
//! - the paper's **online estimation framework**: incremental join-size
//!   estimators pushed into partitioning/sorting phases, pipeline push-down
//!   (Algorithm 1), the GEE and MLE distinct-value estimators with the
//!   γ²-based online chooser, and the *gnm* progress monitor, plus the
//!   `dne` and `byte` baselines it is evaluated against ([`core`]),
//! - Zipfian TPC-H-lite data generation matching the paper's evaluation
//!   ([`datagen`]) and a small SQL front end ([`sql`]),
//! - an observability stack: execution event tracing with EXPLAIN ANALYZE
//!   ([`obs`]), a lock-cheap metrics registry with Prometheus text
//!   exposition ([`metrics`]), and a std-only live monitor HTTP server
//!   with a progress dashboard, server-push SSE streaming, per-query
//!   health detection (stall / drift / ETA volatility) for concurrent
//!   queries, and a run-history API over a persistent trace corpus with
//!   automatic progress-quality regression detection ([`monitor`]).
//!
//! ## Quickstart
//!
//! ```
//! use qprog::prelude::*;
//!
//! // Generate a small skewed customer table and register it.
//! let mut catalog = Catalog::new();
//! let customer = qprog::datagen::customer_table("customer", 10_000, 1.0, 200, 1);
//! catalog.register(customer).unwrap();
//! let nation = qprog::datagen::nation_table("nation", 200);
//! catalog.register(nation).unwrap();
//!
//! // Run a join with a live progress monitor.
//! let session = Session::new(catalog);
//! let mut handle = session
//!     .query("SELECT count(*) FROM customer JOIN nation ON customer.nationkey = nation.nationkey")
//!     .unwrap();
//! let rows = handle.run(RunOptions::new().observer(|progress| {
//!     assert!((0.0..=1.0).contains(&progress.fraction()));
//! })).unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

pub use qprog_core as core;
pub use qprog_datagen as datagen;
pub use qprog_exec as exec;
pub use qprog_metrics as metrics;
pub use qprog_monitor as monitor;
pub use qprog_obs as obs;
pub use qprog_plan as plan;
pub use qprog_sql as sql;
pub use qprog_storage as storage;
pub use qprog_types as types;

pub mod service;
mod session;
pub mod workloads;

pub use qprog_fault as fault;
pub use qprog_service as svc;
pub use service::ServiceRuntime;
pub use session::{
    Observability, ProgressWatcher, QueryHandle, RunOptions, Session, SessionBuilder,
};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::service::ServiceRuntime;
    pub use crate::session::{
        Observability, ProgressWatcher, QueryHandle, RunOptions, Session, SessionBuilder,
    };
    pub use qprog_core::gnm::ProgressSnapshot;
    pub use qprog_core::EstimationMode;
    pub use qprog_exec::governor::{Budgets, CancellationToken, Governor};
    pub use qprog_exec::trace::{
        AbortKind, DegradeReason, EventBus, HealthReason, HealthState, TraceEvent, TraceSink,
    };
    pub use qprog_metrics::Registry;
    pub use qprog_monitor::{MonitorServer, QueryState, StreamHub, StreamNext};
    pub use qprog_obs::{
        explain_analyze, ArchivedRun, Corpus, CorpusConfig, HealthAnalyzer, HealthConfig,
        JsonlSink, MetricsSink, ProgressLog, RegressionConfig, RingSink, RunMeta, RunRecord,
        StderrSink, TimelineRecorder, ValidatorSink,
    };
    pub use qprog_plan::builder::PlanBuilder;
    pub use qprog_plan::physical::PhysicalOptions;
    pub use qprog_service::{
        AdmissionConfig, CancelOutcome, JobState, JobStatus, QueryService, RetryPolicy,
        ServiceConfig, SubmitError, SubmitRequest, Ticket,
    };
    pub use qprog_storage::{Catalog, Table};
    pub use qprog_types::{DataType, ExecError, Field, Key, QError, QResult, Row, Schema, Value};
}
