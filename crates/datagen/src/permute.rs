//! Seeded rank→value permutations.
//!
//! Two tables generated with the same Zipf skew but different permutation
//! variants have the same *frequency profile* but different *peak values* —
//! the paper's `C¹, C², C³` construction (§5.1.1), chosen because joining
//! columns whose hot values do **not** line up is the hard case for
//! join-size estimation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A bijection from frequency ranks to domain values.
#[derive(Debug, Clone)]
pub struct RankMapper {
    forward: Vec<u32>,
}

impl RankMapper {
    /// A permutation of `[0, n)` determined by `variant`. Variant 0 is the
    /// identity (rank = value); other variants are Fisher-Yates shuffles
    /// seeded by the variant id.
    pub fn new(n: usize, variant: u64) -> Self {
        assert!(n <= u32::MAX as usize, "domain too large");
        let mut forward: Vec<u32> = (0..n as u32).collect();
        if variant != 0 {
            let mut rng =
                StdRng::seed_from_u64(0x0FAC_E0FF ^ variant.wrapping_mul(0x2545F4914F6CDD1D));
            forward.shuffle(&mut rng);
        }
        RankMapper { forward }
    }

    /// Domain size.
    pub fn domain(&self) -> usize {
        self.forward.len()
    }

    /// The domain value assigned to frequency rank `rank`.
    pub fn value_of(&self, rank: usize) -> u32 {
        self.forward[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn identity_variant() {
        let m = RankMapper::new(10, 0);
        for r in 0..10 {
            assert_eq!(m.value_of(r), r as u32);
        }
    }

    #[test]
    fn is_a_bijection() {
        let m = RankMapper::new(1000, 7);
        let vals: HashSet<u32> = (0..1000).map(|r| m.value_of(r)).collect();
        assert_eq!(vals.len(), 1000);
        assert!(vals.iter().all(|&v| v < 1000));
    }

    #[test]
    fn variants_differ_and_are_deterministic() {
        let a = RankMapper::new(100, 1);
        let a2 = RankMapper::new(100, 1);
        let b = RankMapper::new(100, 2);
        assert_eq!(
            (0..100).map(|r| a.value_of(r)).collect::<Vec<_>>(),
            (0..100).map(|r| a2.value_of(r)).collect::<Vec<_>>()
        );
        assert_ne!(
            (0..100).map(|r| a.value_of(r)).collect::<Vec<_>>(),
            (0..100).map(|r| b.value_of(r)).collect::<Vec<_>>()
        );
    }
}
