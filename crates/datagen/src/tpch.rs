//! TPC-H-lite: the subset of the TPC-H schema the paper's evaluation uses,
//! at any scale factor, with optional Zipfian skew on foreign keys.
//!
//! Row counts follow the specification (SF 1: 150K customer, 1.5M orders,
//! 6M lineitem, ...). With `skew > 0`, foreign-key columns are drawn from
//! Zipf(`skew`) with per-column value permutations, reproducing the skewed
//! databases of §5 (e.g. the Zipf-2 database behind Fig. 8).

use qprog_storage::{Catalog, Table};
use qprog_types::{row, DataType, Field, QResult, Schema};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::permute::RankMapper;
use crate::zipf::ZipfSampler;

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct TpchConfig {
    /// TPC-H scale factor (1.0 = 6M-row lineitem).
    pub scale: f64,
    /// Zipf skew applied to foreign-key columns (0 = uniform, per spec).
    pub skew: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale: 0.01,
            skew: 0.0,
            seed: 7,
        }
    }
}

/// Generates TPC-H-lite tables.
#[derive(Debug, Clone)]
pub struct TpchGenerator {
    cfg: TpchConfig,
}

const REGIONS: usize = 5;
const NATIONS: usize = 25;
const SUPPLIER_BASE: usize = 10_000;
const CUSTOMER_BASE: usize = 150_000;
const PART_BASE: usize = 200_000;
const ORDERS_BASE: usize = 1_500_000;
const LINES_PER_ORDER: usize = 4; // 6M lineitem rows at SF 1

impl TpchGenerator {
    /// New generator.
    pub fn new(cfg: TpchConfig) -> Self {
        TpchGenerator { cfg }
    }

    fn scaled(&self, base: usize) -> usize {
        ((base as f64 * self.cfg.scale).round() as usize).max(1)
    }

    /// A foreign-key drawing closure over `[0, domain)`: Zipfian with a
    /// per-column permutation when `skew > 0`, uniform otherwise.
    fn fk_sampler(&self, domain: usize, column_tag: u64) -> impl FnMut(&mut StdRng) -> i64 {
        let skew = self.cfg.skew;
        let sampler = (skew > 0.0).then(|| ZipfSampler::new(domain, skew));
        let mapper = RankMapper::new(domain, column_tag);
        move |rng: &mut StdRng| match &sampler {
            Some(s) => mapper.value_of(s.sample_rank(rng)) as i64,
            None => rng.random_range(0..domain as i64),
        }
    }

    /// region(regionkey, name) — 5 rows.
    pub fn region(&self) -> Table {
        let mut t = Table::new(
            "region",
            Schema::new(vec![
                Field::new("regionkey", DataType::Int64),
                Field::new("name", DataType::Utf8),
            ]),
        );
        const NAMES: [&str; REGIONS] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
        for (i, name) in NAMES.iter().enumerate() {
            t.push(row![i as i64, *name]).expect("valid row");
        }
        t
    }

    /// nation(nationkey, regionkey, name) — 25 rows.
    pub fn nation(&self) -> Table {
        let mut t = Table::new(
            "nation",
            Schema::new(vec![
                Field::new("nationkey", DataType::Int64),
                Field::new("regionkey", DataType::Int64),
                Field::new("name", DataType::Utf8),
            ]),
        );
        for i in 0..NATIONS {
            t.push(row![i as i64, (i % REGIONS) as i64, format!("nation{i}")])
                .expect("valid row");
        }
        t
    }

    /// supplier(suppkey, nationkey).
    pub fn supplier(&self) -> Table {
        let n = self.scaled(SUPPLIER_BASE);
        let mut t = Table::new(
            "supplier",
            Schema::new(vec![
                Field::new("suppkey", DataType::Int64),
                Field::new("nationkey", DataType::Int64),
            ]),
        );
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x51);
        let mut nation_fk = self.fk_sampler(NATIONS, 11);
        for i in 0..n {
            t.push(row![i as i64, nation_fk(&mut rng)])
                .expect("valid row");
        }
        t
    }

    /// customer(custkey, nationkey).
    pub fn customer(&self) -> Table {
        let n = self.scaled(CUSTOMER_BASE);
        let mut t = Table::new(
            "customer",
            Schema::new(vec![
                Field::new("custkey", DataType::Int64),
                Field::new("nationkey", DataType::Int64),
            ]),
        );
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xC5);
        let mut nation_fk = self.fk_sampler(NATIONS, 12);
        for i in 0..n {
            t.push(row![i as i64, nation_fk(&mut rng)])
                .expect("valid row");
        }
        t
    }

    /// part(partkey, type).
    pub fn part(&self) -> Table {
        let n = self.scaled(PART_BASE);
        let mut t = Table::new(
            "part",
            Schema::new(vec![
                Field::new("partkey", DataType::Int64),
                Field::new("type", DataType::Utf8),
            ]),
        );
        const TYPES: [&str; 5] = ["ECONOMY", "STANDARD", "MEDIUM", "LARGE", "PROMO"];
        for i in 0..n {
            t.push(row![i as i64, TYPES[i % TYPES.len()]])
                .expect("valid row");
        }
        t
    }

    /// orders(orderkey, custkey, orderyear).
    pub fn orders(&self) -> Table {
        let n = self.scaled(ORDERS_BASE);
        let customers = self.scaled(CUSTOMER_BASE);
        let mut t = Table::new(
            "orders",
            Schema::new(vec![
                Field::new("orderkey", DataType::Int64),
                Field::new("custkey", DataType::Int64),
                Field::new("orderyear", DataType::Int64),
            ]),
        );
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x0D);
        let mut cust_fk = self.fk_sampler(customers, 13);
        for i in 0..n {
            let year = 1992 + rng.random_range(0..7i64);
            t.push(row![i as i64, cust_fk(&mut rng), year])
                .expect("valid row");
        }
        t
    }

    /// lineitem(orderkey, partkey, suppkey, quantity, extendedprice).
    pub fn lineitem(&self) -> Table {
        let orders = self.scaled(ORDERS_BASE);
        let parts = self.scaled(PART_BASE);
        let suppliers = self.scaled(SUPPLIER_BASE);
        let mut t = Table::new(
            "lineitem",
            Schema::new(vec![
                Field::new("orderkey", DataType::Int64),
                Field::new("partkey", DataType::Int64),
                Field::new("suppkey", DataType::Int64),
                Field::new("quantity", DataType::Int64),
                Field::new("extendedprice", DataType::Float64),
            ]),
        );
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x11);
        let mut part_fk = self.fk_sampler(parts, 14);
        let mut supp_fk = self.fk_sampler(suppliers, 15);
        for o in 0..orders {
            for _ in 0..LINES_PER_ORDER {
                let qty = rng.random_range(1..=50i64);
                let price = qty as f64 * rng.random_range(900.0..=1100.0);
                t.push(row![
                    o as i64,
                    part_fk(&mut rng),
                    supp_fk(&mut rng),
                    qty,
                    price
                ])
                .expect("valid row");
            }
        }
        t
    }

    /// Generate and register all seven tables.
    pub fn catalog(&self) -> QResult<Catalog> {
        let mut c = Catalog::new();
        c.register(self.region())?;
        c.register(self.nation())?;
        c.register(self.supplier())?;
        c.register(self.customer())?;
        c.register(self.part())?;
        c.register(self.orders())?;
        c.register(self.lineitem())?;
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn tiny() -> TpchGenerator {
        TpchGenerator::new(TpchConfig {
            scale: 0.001,
            skew: 0.0,
            seed: 1,
        })
    }

    #[test]
    fn row_counts_scale() {
        let g = tiny();
        assert_eq!(g.region().num_rows(), 5);
        assert_eq!(g.nation().num_rows(), 25);
        assert_eq!(g.customer().num_rows(), 150);
        assert_eq!(g.orders().num_rows(), 1500);
        assert_eq!(g.lineitem().num_rows(), 6000);
    }

    #[test]
    fn referential_domains_hold() {
        let g = tiny();
        let customers = g.customer().num_rows() as i64;
        for r in g.orders().iter() {
            let ck = r.get(1).unwrap().as_i64().unwrap();
            assert!((0..customers).contains(&ck));
        }
        for r in g.nation().iter() {
            let rk = r.get(1).unwrap().as_i64().unwrap();
            assert!((0..5).contains(&rk));
        }
    }

    #[test]
    fn catalog_registers_all_tables() {
        let c = tiny().catalog().unwrap();
        assert_eq!(c.len(), 7);
        for t in [
            "region", "nation", "supplier", "customer", "part", "orders", "lineitem",
        ] {
            assert!(c.table(t).is_ok(), "{t}");
        }
    }

    #[test]
    fn skew_concentrates_foreign_keys() {
        let uniform = TpchGenerator::new(TpchConfig {
            scale: 0.002,
            skew: 0.0,
            seed: 1,
        });
        let skewed = TpchGenerator::new(TpchConfig {
            scale: 0.002,
            skew: 2.0,
            seed: 1,
        });
        let top_share = |t: &Table| {
            let mut counts: HashMap<i64, usize> = HashMap::new();
            for r in t.iter() {
                *counts
                    .entry(r.get(1).unwrap().as_i64().unwrap())
                    .or_default() += 1;
            }
            *counts.values().max().unwrap() as f64 / t.num_rows() as f64
        };
        assert!(top_share(&skewed.orders()) > 3.0 * top_share(&uniform.orders()));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = tiny().orders();
        let b = tiny().orders();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }
}
