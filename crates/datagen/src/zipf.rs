//! Zipfian sampling.
//!
//! Rank `r ∈ [0, n)` receives probability `(r+1)^{-z} / Σ_k (k+1)^{-z}`.
//! `z = 0` degenerates to the uniform distribution. Sampling is by binary
//! search over the precomputed CDF — O(log n) per draw, fast enough to
//! generate paper-scale tables (150K–6M rows) in well under a second.

use rand::rngs::StdRng;
use rand::RngExt;

/// Precomputed Zipf(`z`) distribution over ranks `[0, n)`.
///
/// # Example
///
/// ```
/// use qprog_datagen::ZipfSampler;
///
/// let z = ZipfSampler::new(100, 1.0);
/// // rank 0 carries about twice the mass of rank 1
/// let ratio = z.fraction_of(0) / z.fraction_of(1);
/// assert!((ratio - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    z: f64,
}

impl ZipfSampler {
    /// New sampler over a domain of `n ≥ 1` ranks with skew `z ≥ 0`.
    pub fn new(n: usize, z: f64) -> Self {
        assert!(n >= 1, "domain must be non-empty");
        assert!(z >= 0.0, "skew must be non-negative, got {z}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += ((r + 1) as f64).powf(-z);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // guard against floating-point shortfall at the top
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cdf, z }
    }

    /// Domain size.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }

    /// Configured skew.
    pub fn skew(&self) -> f64 {
        self.z
    }

    /// Probability mass of rank `r`.
    pub fn fraction_of(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }

    /// Draw one rank (0 = most frequent).
    pub fn sample_rank(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn histogram(n: usize, z: f64, draws: usize) -> Vec<usize> {
        let s = ZipfSampler::new(n, z);
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[s.sample_rank(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn uniform_at_zero_skew() {
        let counts = histogram(10, 0.0, 50_000);
        for &c in &counts {
            assert!((4_000..=6_000).contains(&c), "count {c}, expected ~5000");
        }
    }

    #[test]
    fn rank_frequencies_follow_power_law() {
        let counts = histogram(100, 1.0, 200_000);
        // rank 0 should be ~2× rank 1, ~10× rank 9
        let r0 = counts[0] as f64;
        assert!((1.6..=2.4).contains(&(r0 / counts[1] as f64)));
        assert!((7.0..=13.0).contains(&(r0 / counts[9] as f64)));
    }

    #[test]
    fn high_skew_concentrates_mass() {
        let s = ZipfSampler::new(1000, 2.0);
        // top rank holds 1/ζ(2,1000) ≈ 0.61 of the mass
        assert!(s.fraction_of(0) > 0.55);
        let counts = histogram(1000, 2.0, 10_000);
        assert!(counts[0] > 5_000);
    }

    #[test]
    fn fractions_sum_to_one() {
        let s = ZipfSampler::new(50, 1.5);
        let sum: f64 = (0..50).map(|r| s.fraction_of(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_rank_domain() {
        let s = ZipfSampler::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.sample_rank(&mut rng), 0);
        assert_eq!(s.fraction_of(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "domain must be non-empty")]
    fn empty_domain_panics() {
        ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "skew must be non-negative")]
    fn negative_skew_panics() {
        ZipfSampler::new(10, -1.0);
    }
}
