//! Data generation matching the paper's evaluation workloads (§5).
//!
//! The paper uses the TPC-H schema, populated by a skewed-data generator
//! (Chaudhuri et al.'s tool) modified to control the number of distinct
//! values per column. This crate reproduces that knob set:
//!
//! - [`zipf::ZipfSampler`] — Zipfian value distributions with skew `z`
//!   (`z = 0` is uniform) over a configurable domain;
//! - [`permute`] — seeded rank→value permutations so that two tables with
//!   the same skew have **different peak-frequency values** (the paper's
//!   `C¹, C², C³` superscripts, §5.1.1 — the worst case for join-size
//!   estimation);
//! - [`tpch`] — a TPC-H-lite catalog (region, nation, supplier, customer,
//!   part, orders, lineitem) at any scale factor, uniform or skewed;
//! - table helpers ([`customer_table`], [`nation_table`]) for the paper's
//!   `C_{z,n}` experiment tables.

pub mod permute;
pub mod tpch;
pub mod zipf;

pub use permute::RankMapper;
pub use tpch::{TpchConfig, TpchGenerator};
pub use zipf::ZipfSampler;

use qprog_storage::Table;
use qprog_types::{row, DataType, Field, Schema};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's `C_{z,n}` customer table (§5.1.1): `rows` rows with a
/// sequential `custkey` and a `nationkey` drawn from a Zipfian distribution
/// with skew `z` over the domain `[0, domain)`, with the rank→value mapping
/// chosen by `variant` (the `C¹/C²/C³` superscript — tables with different
/// variants have different peak-frequency values).
pub fn customer_table(name: &str, rows: usize, z: f64, domain: usize, variant: u64) -> Table {
    let mut t = Table::new(
        name,
        Schema::new(vec![
            Field::new("custkey", DataType::Int64),
            Field::new("nationkey", DataType::Int64),
        ]),
    );
    let sampler = ZipfSampler::new(domain, z);
    let mapper = RankMapper::new(domain, variant);
    let mut rng = StdRng::seed_from_u64(0x5EED_0000 ^ variant.wrapping_mul(0x9E37_79B9));
    for i in 0..rows {
        let rank = sampler.sample_rank(&mut rng);
        let value = mapper.value_of(rank) as i64;
        t.push(row![i as i64, value]).expect("schema-valid row");
    }
    t
}

/// A skewed single-column key table: like [`customer_table`] but exposing
/// only the skewed key column (used for custkey-skew experiments, §5.1.3).
pub fn skewed_key_table(
    name: &str,
    col: &str,
    rows: usize,
    z: f64,
    domain: usize,
    variant: u64,
) -> Table {
    let mut t = Table::new(name, Schema::new(vec![Field::new(col, DataType::Int64)]));
    let sampler = ZipfSampler::new(domain, z);
    let mapper = RankMapper::new(domain, variant);
    let mut rng = StdRng::seed_from_u64(0xBEEF_0000 ^ variant.wrapping_mul(0x51_7C_C1));
    for _ in 0..rows {
        let rank = sampler.sample_rank(&mut rng);
        t.push(row![mapper.value_of(rank) as i64])
            .expect("valid row");
    }
    t
}

/// The paper's nation table generalization: `domain` rows with a
/// primary-key `nationkey` in `[0, domain)` and a name column.
pub fn nation_table(name: &str, domain: usize) -> Table {
    let mut t = Table::new(
        name,
        Schema::new(vec![
            Field::new("nationkey", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]),
    );
    for i in 0..domain {
        t.push(row![i as i64, format!("nation{i}")])
            .expect("valid row");
    }
    t
}

/// A customer-like table with *two* independently skewed key columns
/// (custkey, nationkey) as used by the Fig. 6 pipeline experiments, where
/// the primary-key custkey column is replaced by a skewed distribution.
#[allow(clippy::too_many_arguments)] // two (z, domain, variant) triples
pub fn two_key_table(
    name: &str,
    rows: usize,
    custkey_z: f64,
    custkey_domain: usize,
    custkey_variant: u64,
    nationkey_z: f64,
    nationkey_domain: usize,
    nationkey_variant: u64,
) -> Table {
    let mut t = Table::new(
        name,
        Schema::new(vec![
            Field::new("custkey", DataType::Int64),
            Field::new("nationkey", DataType::Int64),
        ]),
    );
    let ck_sampler = ZipfSampler::new(custkey_domain, custkey_z);
    let ck_mapper = RankMapper::new(custkey_domain, custkey_variant);
    let nk_sampler = ZipfSampler::new(nationkey_domain, nationkey_z);
    let nk_mapper = RankMapper::new(nationkey_domain, nationkey_variant);
    let mut rng = StdRng::seed_from_u64(
        0xD0_0D ^ custkey_variant.wrapping_mul(31) ^ nationkey_variant.wrapping_mul(1009),
    );
    for _ in 0..rows {
        let ck = ck_mapper.value_of(ck_sampler.sample_rank(&mut rng)) as i64;
        let nk = nk_mapper.value_of(nk_sampler.sample_rank(&mut rng)) as i64;
        t.push(row![ck, nk]).expect("valid row");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn customer_table_shape() {
        let t = customer_table("c", 1000, 1.0, 50, 1);
        assert_eq!(t.num_rows(), 1000);
        assert_eq!(t.schema().index_of("c.nationkey").unwrap(), 1);
        // custkey sequential
        assert_eq!(t.row(5).unwrap().get(0).unwrap().as_i64().unwrap(), 5);
        // nationkey within domain
        for r in t.iter() {
            let nk = r.get(1).unwrap().as_i64().unwrap();
            assert!((0..50).contains(&nk));
        }
    }

    #[test]
    fn variants_have_different_peak_values() {
        let peak = |variant| {
            let t = customer_table("c", 5000, 2.0, 100, variant);
            let mut counts: HashMap<i64, usize> = HashMap::new();
            for r in t.iter() {
                *counts
                    .entry(r.get(1).unwrap().as_i64().unwrap())
                    .or_default() += 1;
            }
            counts.into_iter().max_by_key(|(_, c)| *c).unwrap().0
        };
        // At z=2 the top rank dominates; different variants map it to
        // different values.
        let peaks: Vec<i64> = (1..=4).map(peak).collect();
        let distinct: std::collections::HashSet<_> = peaks.iter().collect();
        assert!(distinct.len() >= 3, "peaks {peaks:?} should differ");
    }

    #[test]
    fn zero_skew_is_roughly_uniform() {
        let t = customer_table("c", 20_000, 0.0, 10, 1);
        let mut counts = [0usize; 10];
        for r in t.iter() {
            counts[r.get(1).unwrap().as_i64().unwrap() as usize] += 1;
        }
        for (v, &c) in counts.iter().enumerate() {
            assert!(
                (1600..=2400).contains(&c),
                "value {v} count {c}, expected ~2000"
            );
        }
    }

    #[test]
    fn nation_table_is_a_primary_key() {
        let t = nation_table("nation", 25);
        assert_eq!(t.num_rows(), 25);
        let keys: std::collections::HashSet<i64> = t
            .iter()
            .map(|r| r.get(0).unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(keys.len(), 25);
    }

    #[test]
    fn two_key_table_independent_columns() {
        let t = two_key_table("c", 2000, 2.0, 100, 1, 1.0, 50, 2);
        assert_eq!(t.num_rows(), 2000);
        for r in t.iter() {
            assert!((0..100).contains(&r.get(0).unwrap().as_i64().unwrap()));
            assert!((0..50).contains(&r.get(1).unwrap().as_i64().unwrap()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = customer_table("c", 100, 1.0, 20, 3);
        let b = customer_table("c", 100, 1.0, 20, 3);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }
}
