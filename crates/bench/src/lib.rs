//! Shared harness for the experiment benches.
//!
//! Every bench target reproduces one table or figure of the paper's §5.
//! By default each runs a scaled-down configuration so that
//! `cargo bench --workspace` finishes in minutes; set `QPROG_FULL=1` for
//! paper-scale runs (150K-row accuracy tables, TPC-H SF 0.5–2). Each bench
//! prints the same rows/series the paper reports and additionally writes a
//! CSV under `results/`.

use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Experiment scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Paper-scale when true (`QPROG_FULL=1`).
    pub full: bool,
}

impl Scale {
    /// Read from the environment.
    pub fn detect() -> Self {
        Scale {
            full: std::env::var("QPROG_FULL")
                .map(|v| v == "1")
                .unwrap_or(false),
        }
    }

    /// Rows for the §5.1 accuracy tables (paper: TPC-H SF 1 customer =
    /// 150K rows).
    pub fn accuracy_rows(self) -> usize {
        if self.full {
            150_000
        } else {
            30_000
        }
    }

    /// Small / large nationkey domains (paper: 5K / 125K).
    pub fn domains(self) -> (usize, usize) {
        if self.full {
            (5_000, 125_000)
        } else {
            (1_000, 25_000)
        }
    }

    /// TPC-H scale factors for the overhead tables (paper: 0.5 / 1 / 2).
    pub fn tpch_sfs(self) -> Vec<f64> {
        if self.full {
            vec![0.5, 1.0, 2.0]
        } else {
            vec![0.01, 0.02, 0.04]
        }
    }

    /// TPC-H scale factor for the Fig. 8 progress run (paper: 1).
    pub fn q8_sf(self) -> f64 {
        if self.full {
            1.0
        } else {
            0.02
        }
    }
}

/// Print the experiment banner.
pub fn banner(id: &str, title: &str, scale: Scale) {
    println!("==================================================================");
    println!("{id}: {title}");
    println!(
        "scale: {} (set QPROG_FULL=1 for paper scale)",
        if scale.full { "FULL (paper)" } else { "quick" }
    );
    println!("==================================================================");
}

/// Print an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Write a CSV into `results/` (relative to the workspace root when run via
/// cargo, else the current directory).
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    let Ok(mut f) = fs::File::create(&path) else {
        return;
    };
    let _ = writeln!(f, "{}", headers.join(","));
    for row in rows {
        let _ = writeln!(f, "{}", row.join(","));
    }
    println!("(csv written to {})", path.display());
}

/// The `results/` directory (relative to the workspace root when run via
/// cargo, else the current directory). Benches drop CSVs and trace corpora
/// here.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR of the bench crate is crates/bench; hop up twice.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir).join("../../results"),
        Err(_) => PathBuf::from("results"),
    }
}

/// The workspace root (where `BENCH_*.json` trajectory files live).
pub fn repo_root() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir).join("../.."),
        Err(_) => PathBuf::from("."),
    }
}

/// Write a continuous-benchmark JSON document (e.g. `BENCH_progress.json`)
/// at the repo root, returning the path on success.
pub fn write_bench_json(name: &str, json: &str) -> Option<PathBuf> {
    let path = repo_root().join(name);
    match fs::write(&path, json) {
        Ok(()) => {
            println!("(json written to {})", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            None
        }
    }
}

/// Time a closure.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Best (minimum) wall time of `runs` executions of `f` — the standard
/// low-noise statistic for CPU-bound measurements.
pub fn median_time<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    (0..runs.max(1))
        .map(|_| time_it(&mut f).1)
        .min()
        .expect("at least one run")
}

/// Minimum wall time per configuration with the configurations
/// *interleaved* across repetitions, so slow machine drift (frequency
/// scaling, allocator state) hits every configuration equally.
pub fn interleaved_min_times(runs: usize, mut fs: Vec<Box<dyn FnMut() + '_>>) -> Vec<Duration> {
    let mut best = vec![Duration::MAX; fs.len()];
    for _ in 0..runs.max(1) {
        for (i, f) in fs.iter_mut().enumerate() {
            let (_, d) = time_it(f);
            best[i] = best[i].min(d);
        }
    }
    best
}

/// Format a duration as milliseconds with 1 decimal.
pub fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1000.0)
}

/// Format an overhead percentage of `with` relative to `without`.
pub fn overhead_pct(without: Duration, with: Duration) -> String {
    if without.is_zero() {
        return "n/a".into();
    }
    format!(
        "{:+.1}%",
        (with.as_secs_f64() / without.as_secs_f64() - 1.0) * 100.0
    )
}

/// Format any displayable value into a cell.
pub fn cell(v: impl Display) -> String {
    v.to_string()
}

/// A compact "paper vs measured" note printed at the end of every bench.
pub fn paper_note(lines: &[&str]) {
    println!("\npaper comparison:");
    for l in lines {
        println!("  - {l}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_quick() {
        let s = Scale { full: false };
        assert_eq!(s.accuracy_rows(), 30_000);
        assert!(s.tpch_sfs().iter().all(|&sf| sf < 0.1));
        let f = Scale { full: true };
        assert_eq!(f.accuracy_rows(), 150_000);
        assert_eq!(f.domains(), (5_000, 125_000));
    }

    #[test]
    fn overhead_formatting() {
        let a = Duration::from_millis(100);
        let b = Duration::from_millis(103);
        assert_eq!(overhead_pct(a, b), "+3.0%");
        assert_eq!(ms(a), "100.0");
        assert_eq!(overhead_pct(Duration::ZERO, b), "n/a");
    }

    #[test]
    fn median_time_positive() {
        let d = median_time(3, || std::hint::black_box((0..1000).sum::<u64>()));
        assert!(d.as_nanos() > 0);
    }
}
