//! SSE fan-out overhead benchmark: what does server-push streaming cost
//! the query it is watching?
//!
//! Two identical monitored sessions run the same skew-join aggregate. The
//! baseline session has zero stream subscribers; the loaded session fans
//! every broadcast frame out to 256 in-process firehose subscribers (each
//! drained by its own thread) plus a handful of real TCP clients reading
//! `GET /events`. Because the hub encodes each frame once and clones an
//! `Arc`, the marginal cost per subscriber is a queue push — the measured
//! overhead should stay in the low single digits.
//!
//! A separate delivery phase subscribes 256 per-query streams to one query
//! and asserts every one of them receives exactly one terminal frame —
//! terminal delivery is exempt from backpressure drops by design, and the
//! bench exits non-zero if even one subscriber misses it.
//!
//! Results are written to **`BENCH_stream.json`** at the repo root. Set
//! `QPROG_STREAM_MAX_OVERHEAD_PCT` (e.g. `5`) to turn the fan-out overhead
//! into a hard gate.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use qprog::prelude::*;
use qprog_bench::{banner, interleaved_min_times, ms, paper_note, write_bench_json, Scale};

/// In-process firehose subscribers on the loaded session.
const SUBSCRIBERS: usize = 256;
/// Real TCP clients reading `GET /events` on the loaded session.
const TCP_CLIENTS: usize = 4;
/// Per-query subscribers in the terminal-delivery phase.
const TERMINAL_SUBS: usize = 256;

const SQL: &str = "SELECT nation.nationkey, count(*) FROM customer \
                   JOIN nation ON customer.nationkey = nation.nationkey \
                   GROUP BY nation.nationkey";

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(qprog::datagen::customer_table(
        "customer", 250_000, 1.5, 300, 17,
    ))
    .expect("customer");
    c.register(qprog::datagen::nation_table("nation", 300))
        .expect("nation");
    c
}

fn monitored_session() -> Session {
    SessionBuilder::new(catalog())
        .observability(Observability::new().serve_on("127.0.0.1:0"))
        .build()
        .expect("session")
}

/// Drain a firehose subscriber until the hub closes it (frame counts are
/// side effects we do not need; keeping the queue empty is the job).
fn spawn_drainer(
    sub: Arc<qprog::monitor::StreamSubscriber>,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        let mut frames = 0u64;
        loop {
            match sub.next(Duration::from_millis(50)) {
                StreamNext::Frame(_) => frames += 1,
                StreamNext::Timeout if stop.load(Ordering::Relaxed) => break,
                StreamNext::Timeout => {}
                StreamNext::Closed => break,
            }
        }
        frames
    })
}

/// A real SSE client: connect, issue `GET /events`, and keep reading until
/// the stop flag flips or the server hangs up.
fn spawn_tcp_client(
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        let mut bytes = 0u64;
        let Ok(mut stream) = TcpStream::connect(addr) else {
            return 0;
        };
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        if write!(stream, "GET /events HTTP/1.1\r\nHost: bench\r\n\r\n").is_err() {
            return 0;
        }
        let mut buf = [0u8; 4096];
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => bytes += n as u64,
                Err(_) if stop.load(Ordering::Relaxed) => break,
                Err(_) => {}
            }
        }
        bytes
    })
}

fn main() {
    let scale = Scale::detect();
    banner(
        "stream_fanout",
        "SSE fan-out: query overhead with 256 stream subscribers vs none",
        scale,
    );
    let runs = if scale.full { 5 } else { 3 };

    // Baseline: monitored, streamed endpoints live, zero subscribers.
    let baseline = monitored_session();
    // Loaded: same session shape plus the full subscriber complement.
    let loaded = monitored_session();
    let server = Arc::clone(loaded.monitor().expect("monitor"));
    let stop = Arc::new(AtomicBool::new(false));
    let drainers: Vec<_> = (0..SUBSCRIBERS)
        .map(|_| spawn_drainer(server.hub().subscribe(None, 256), Arc::clone(&stop)))
        .collect();
    let tcp_clients: Vec<_> = (0..TCP_CLIENTS)
        .map(|_| spawn_tcp_client(server.addr(), Arc::clone(&stop)))
        .collect();

    println!(
        "timing {runs} interleaved runs ({SUBSCRIBERS} in-process + {TCP_CLIENTS} TCP subscribers)..."
    );
    let run_query = |session: &Session| {
        let mut h = session.query(SQL).expect("query");
        h.collect().expect("collect");
    };
    let times = interleaved_min_times(
        runs,
        vec![
            Box::new(|| run_query(&baseline)) as Box<dyn FnMut() + '_>,
            Box::new(|| run_query(&loaded)) as Box<dyn FnMut() + '_>,
        ],
    );
    let (t_base, t_loaded) = (times[0], times[1]);
    let overhead_pct = if t_base.as_secs_f64() > 0.0 {
        100.0 * (t_loaded.as_secs_f64() - t_base.as_secs_f64()) / t_base.as_secs_f64()
    } else {
        0.0
    };
    let (delivered, dropped, evicted) = (
        server.hub().delivered(),
        server.hub().dropped(),
        server.hub().evicted(),
    );

    // Terminal-delivery phase: every per-query subscriber must see exactly
    // one terminal frame, drops and backpressure notwithstanding.
    println!("checking terminal delivery across {TERMINAL_SUBS} per-query subscribers...");
    let mut h = loaded.query(SQL).expect("query");
    let id = h.query_id().expect("query id");
    let subs: Vec<_> = (0..TERMINAL_SUBS)
        .map(|_| server.hub().subscribe(Some(id), 8))
        .collect();
    h.collect().expect("collect");
    let mut dropped_terminal = 0usize;
    for sub in &subs {
        let mut terminals = 0u32;
        loop {
            match sub.next(Duration::from_secs(5)) {
                StreamNext::Frame(f) if f.starts_with("event: terminal\n") => terminals += 1,
                StreamNext::Frame(_) => {}
                // Per-query streams close right after the terminal frame;
                // a timeout here means the frame never came.
                StreamNext::Timeout | StreamNext::Closed => break,
            }
        }
        if terminals != 1 {
            dropped_terminal += 1;
        }
    }
    drop(h);

    stop.store(true, Ordering::Relaxed);
    server.shutdown();
    let frames_drained: u64 = drainers.into_iter().map(|d| d.join().unwrap()).sum();
    let tcp_bytes: u64 = tcp_clients.into_iter().map(|c| c.join().unwrap()).sum();

    println!(
        "\nbaseline {} ms -> loaded {} ms  ({overhead_pct:+.2}% with {} subscribers)",
        ms(t_base),
        ms(t_loaded),
        SUBSCRIBERS + TCP_CLIENTS,
    );
    println!(
        "hub: delivered {delivered}, dropped {dropped}, evicted {evicted}; \
         drained {frames_drained} frames in-process, {tcp_bytes} bytes over TCP"
    );
    println!(
        "terminal delivery: {}/{TERMINAL_SUBS} subscribers received exactly one terminal",
        TERMINAL_SUBS - dropped_terminal,
    );

    let json = format!(
        "{{\n  \"bench\": \"stream_fanout\",\n  \"scale\": \"{}\",\n  \
         \"runs\": {runs},\n  \"subscribers\": {SUBSCRIBERS},\n  \
         \"tcp_clients\": {TCP_CLIENTS},\n  \
         \"baseline_ms\": {:.3},\n  \"loaded_ms\": {:.3},\n  \
         \"overhead_pct\": {overhead_pct:.3},\n  \
         \"delivered\": {delivered},\n  \"dropped\": {dropped},\n  \
         \"evicted\": {evicted},\n  \"frames_drained\": {frames_drained},\n  \
         \"tcp_bytes\": {tcp_bytes},\n  \
         \"terminal_subs\": {TERMINAL_SUBS},\n  \
         \"dropped_terminal\": {dropped_terminal}\n}}\n",
        if scale.full { "full" } else { "quick" },
        t_base.as_secs_f64() * 1e3,
        t_loaded.as_secs_f64() * 1e3,
    );
    write_bench_json("BENCH_stream.json", &json);

    paper_note(&[
        "streaming is this reproduction's extension: the paper reports its \
         estimators cost <2% of query time; server-push must not undo that",
        "expect: one encode per broadcast frame regardless of subscriber \
         count — fan-out is an Arc clone and a bounded queue push",
        "expect: zero dropped terminal frames (terminals bypass the cap)",
    ]);

    if dropped_terminal > 0 {
        eprintln!("FAIL: {dropped_terminal} subscribers missed their terminal frame");
        std::process::exit(1);
    }
    if let Ok(bound) = std::env::var("QPROG_STREAM_MAX_OVERHEAD_PCT") {
        let bound: f64 = bound.parse().expect("QPROG_STREAM_MAX_OVERHEAD_PCT");
        if overhead_pct > bound {
            eprintln!("FAIL: fan-out overhead {overhead_pct:.2}% above bound {bound:.2}%");
            std::process::exit(1);
        }
        println!("overhead gate: {overhead_pct:.2}% <= {bound:.2}% — ok");
    }
}
