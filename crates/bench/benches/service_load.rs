//! Service load benchmark: the submit/queue/dispatch front door under
//! concurrent fire.
//!
//! Hundreds of submitter threads push short queries through `POST /submit`
//! while per-query SSE subscribers watch a sample of them and one abusive
//! tenant floods far past its in-flight cap. Measured:
//!
//! - **submit latency** (p50/p99 across every HTTP submit round-trip —
//!   accepted and shed alike; admission control answers fast either way),
//! - **zero dropped terminal states** — every accepted submission must end
//!   in a typed terminal (`finished`/`failed`) after drain, and every
//!   sampled SSE subscriber must see a terminal frame. Either miss fails
//!   the bench with a non-zero exit.
//! - **shed behaviour** — the abusive tenant's floods must be answered
//!   with typed 429s, never by queue collapse.
//!
//! Results are written to **`BENCH_service.json`** at the repo root. Set
//! `QPROG_SERVICE_MAX_P99_MS` (e.g. `250`) to turn the p99 submit latency
//! into a hard gate.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qprog::prelude::*;
use qprog::svc::AdmissionConfig;
use qprog::ServiceRuntime;
use qprog_bench::{banner, ms, paper_note, write_bench_json, Scale};

const SQL: &str = "SELECT count(*) FROM customer \
                   JOIN nation ON customer.nationkey = nation.nationkey";

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(qprog::datagen::customer_table(
        "customer", 10_000, 1.0, 200, 11,
    ))
    .expect("customer");
    c.register(qprog::datagen::nation_table("nation", 200))
        .expect("nation");
    c
}

fn submit_raw(addr: SocketAddr, tenant: &str) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    let body = format!("{{\"sql\":\"{}\",\"tenant\":\"{tenant}\"}}", SQL);
    write!(
        stream,
        "POST /submit HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    let mut out = String::new();
    stream.read_to_string(&mut out).ok()?;
    let status: u16 = out.split_whitespace().nth(1)?.parse().ok()?;
    let body = out.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    Some((status, body))
}

fn ticket_id(body: &str) -> Option<u64> {
    let at = body.find("\"id\":")?;
    let rest = &body[at + 5..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Watch `/progress/{id}/stream` until the connection closes; report
/// whether a terminal frame arrived.
fn watch_terminal(addr: SocketAddr, id: u64) -> bool {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return false;
    };
    if write!(
        stream,
        "GET /progress/{id}/stream HTTP/1.1\r\nHost: b\r\n\r\n"
    )
    .is_err()
    {
        return false;
    }
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut out = String::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                out.push_str(&String::from_utf8_lossy(&buf[..n]));
                if out.contains("event: terminal\n") {
                    return true;
                }
            }
        }
    }
    out.contains("event: terminal\n")
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let scale = Scale::detect();
    banner(
        "service_load",
        "submit/queue/dispatch under concurrent submitters + an abusive tenant",
        scale,
    );
    let (submitters, submits_each, flood_submits) = if scale.full {
        (256usize, 3usize, 256usize)
    } else {
        (96, 2, 96)
    };
    let tenants = 16usize;
    let watched_sample = 32usize;

    let session = SessionBuilder::new(catalog())
        .observability(Observability::new().serve_on("127.0.0.1:0"))
        .build()
        .expect("session");
    let addr = session.monitor().expect("monitor").addr();
    let dir = std::env::temp_dir().join(format!("qprog-service-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServiceConfig {
        admission: AdmissionConfig {
            max_queue_depth: 4096,
            max_tenant_inflight: 16,
            retry_after: Duration::from_secs(1),
        },
        workers: 8,
        retain_terminals: 1 << 20, // hold every terminal for the audit
        ..ServiceConfig::default()
    };
    let runtime = Arc::new(ServiceRuntime::start(session, &dir, cfg).expect("service"));

    println!(
        "phase 1: {submitters} submitters x {submits_each} submissions across \
         {tenants} tenants, plus {flood_submits} floods from one abusive tenant..."
    );
    let started = Instant::now();
    let mut workers = Vec::new();
    for i in 0..submitters {
        workers.push(std::thread::spawn(move || {
            let tenant = format!("tenant-{}", i % tenants);
            let mut latencies = Vec::with_capacity(submits_each);
            let mut accepted = Vec::new();
            let mut shed = 0u64;
            for _ in 0..submits_each {
                let t0 = Instant::now();
                match submit_raw(addr, &tenant) {
                    Some((202, body)) => {
                        latencies.push(t0.elapsed());
                        accepted.extend(ticket_id(&body));
                    }
                    Some((429, _)) => {
                        latencies.push(t0.elapsed());
                        shed += 1;
                    }
                    Some((status, body)) => {
                        panic!("unexpected submit status {status}: {body}")
                    }
                    None => panic!("submit transport failure"),
                }
            }
            (latencies, accepted, shed)
        }));
    }
    // The abusive tenant floods from many threads at once so its in-flight
    // count outruns the workers; past the cap it must be shed with 429s.
    let flood_threads = 8usize;
    let floods: Vec<_> = (0..flood_threads)
        .map(|_| {
            std::thread::spawn(move || {
                let mut accepted = Vec::new();
                let mut shed = 0u64;
                for _ in 0..flood_submits / flood_threads {
                    match submit_raw(addr, "abusive") {
                        Some((202, body)) => accepted.extend(ticket_id(&body)),
                        Some((429, _)) => shed += 1,
                        Some((status, body)) => panic!("flood: unexpected {status}: {body}"),
                        None => panic!("flood transport failure"),
                    }
                }
                (accepted, shed)
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut accepted_ids = Vec::new();
    let mut polite_shed = 0u64;
    for w in workers {
        let (lat, ids, shed) = w.join().expect("submitter");
        latencies.extend(lat);
        accepted_ids.extend(ids);
        polite_shed += shed;
    }
    let mut flood_accepted = Vec::new();
    let mut flood_shed = 0u64;
    for f in floods {
        let (ids, shed) = f.join().expect("flood");
        flood_accepted.extend(ids);
        flood_shed += shed;
    }
    let submit_wall = started.elapsed();

    // Phase 2: streaming subscribers watch a sample of accepted queries;
    // late subscription is fine — terminals are synthesized for them.
    println!("phase 2: {watched_sample} SSE subscribers watching accepted queries...");
    let watchers: Vec<_> = accepted_ids
        .iter()
        .take(watched_sample)
        .map(|&id| std::thread::spawn(move || watch_terminal(addr, id)))
        .collect();
    let mut missed_sse_terminals = 0usize;
    for w in watchers {
        if !w.join().expect("watcher") {
            missed_sse_terminals += 1;
        }
    }

    // Phase 3: graceful drain, then audit — every accepted submission,
    // polite or abusive, must sit in a typed terminal state.
    println!("phase 3: drain + terminal audit...");
    runtime.drain();
    let total_wall = started.elapsed();
    let service = runtime.service();
    let mut dropped_terminals = 0usize;
    for id in accepted_ids.iter().chain(flood_accepted.iter()) {
        match service.status(*id) {
            Some(s) if matches!(s.state, JobState::Finished | JobState::Failed) => {}
            _ => dropped_terminals += 1,
        }
    }
    let stats = service.stats();

    latencies.sort();
    let p50 = percentile(&latencies, 50.0);
    let p99 = percentile(&latencies, 99.0);
    let accepted_total = accepted_ids.len() + flood_accepted.len();
    let throughput = stats.finished as f64 / total_wall.as_secs_f64();

    println!(
        "\nsubmits: {} accepted ({} polite + {} abusive), {} shed \
         ({polite_shed} polite + {flood_shed} abusive)",
        accepted_total,
        accepted_ids.len(),
        flood_accepted.len(),
        polite_shed + flood_shed,
    );
    println!(
        "submit latency: p50 {} ms, p99 {} ms over {} round-trips",
        ms(p50),
        ms(p99),
        latencies.len() + flood_accepted.len() + flood_shed as usize,
    );
    println!(
        "terminals: {} finished, {} failed, {} retries; {} dropped; \
         {missed_sse_terminals}/{} SSE watchers missed theirs",
        stats.finished,
        stats.failed,
        stats.retries,
        dropped_terminals,
        watched_sample.min(accepted_ids.len()),
    );
    println!(
        "wall: submits {} ms, total {} ms ({throughput:.1} queries/s finished)",
        ms(submit_wall),
        ms(total_wall),
    );

    let json = format!(
        "{{\n  \"bench\": \"service_load\",\n  \"scale\": \"{}\",\n  \
         \"submitters\": {submitters},\n  \"submits_each\": {submits_each},\n  \
         \"flood_submits\": {flood_submits},\n  \
         \"accepted\": {accepted_total},\n  \
         \"shed_polite\": {polite_shed},\n  \"shed_abusive\": {flood_shed},\n  \
         \"submit_p50_ms\": {:.3},\n  \"submit_p99_ms\": {:.3},\n  \
         \"finished\": {},\n  \"failed\": {},\n  \"retries\": {},\n  \
         \"dropped_terminals\": {dropped_terminals},\n  \
         \"missed_sse_terminals\": {missed_sse_terminals},\n  \
         \"submit_wall_ms\": {:.3},\n  \"total_wall_ms\": {:.3},\n  \
         \"finished_per_sec\": {throughput:.3}\n}}\n",
        if scale.full { "full" } else { "quick" },
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
        stats.finished,
        stats.failed,
        stats.retries,
        submit_wall.as_secs_f64() * 1e3,
        total_wall.as_secs_f64() * 1e3,
    );
    write_bench_json("BENCH_service.json", &json);
    let _ = std::fs::remove_dir_all(&dir);

    paper_note(&[
        "the paper's monitor is passive; the service front door is this \
         reproduction's extension — progress still has to stay observable \
         when the system is the one running the queries",
        "expect: admission control answers in microseconds whether the \
         verdict is 202 or 429 — shed is cheap by construction",
        "expect: zero dropped terminal states — every accepted submission \
         ends typed, visible over /progress/{id} and SSE",
    ]);

    let mut fail = false;
    if dropped_terminals > 0 {
        eprintln!("FAIL: {dropped_terminals} accepted submissions never reached a terminal state");
        fail = true;
    }
    if missed_sse_terminals > 0 {
        eprintln!("FAIL: {missed_sse_terminals} SSE watchers missed their terminal frame");
        fail = true;
    }
    if flood_shed == 0 && flood_submits > 64 {
        eprintln!("FAIL: the abusive tenant was never shed — admission control is inert");
        fail = true;
    }
    if let Ok(bound) = std::env::var("QPROG_SERVICE_MAX_P99_MS") {
        let bound: f64 = bound.parse().expect("QPROG_SERVICE_MAX_P99_MS");
        let got = p99.as_secs_f64() * 1e3;
        if got > bound {
            eprintln!("FAIL: submit p99 {got:.2} ms above bound {bound:.2} ms");
            fail = true;
        } else {
            println!("latency gate: p99 {got:.2} ms <= {bound:.2} ms — ok");
        }
    }
    if fail {
        std::process::exit(1);
    }
}
