//! Figure 5: pipeline of joins **on the same attribute** —
//! `C_{z,small} ⋈ C¹ ⋈ C²` — estimates for (a) the upper join and (b) the
//! lower join as the lower probe input streams, for z ∈ {0, 1, 2}.

use qprog_bench::{banner, paper_note, print_table, write_csv, Scale};
use qprog_core::pipeline_est::PipelineEstimator;
use qprog_datagen::customer_table;
use qprog_storage::Table;

const CHECKPOINTS: [f64; 8] = [0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 0.75, 1.0];

struct Run {
    /// ratio error per checkpoint: [lower, upper]
    lower: Vec<f64>,
    upper: Vec<f64>,
}

fn run_pipeline(probe: &Table, b0: &Table, b1: &Table) -> Run {
    let n = probe.num_rows() as u64;
    let b0_rows: Vec<qprog_types::Row> = b0.iter().collect();
    let b1_rows: Vec<qprog_types::Row> = b1.iter().collect();
    let exact = |est: &mut PipelineEstimator| {
        for row in probe.iter() {
            est.observe_probe(&row).expect("probe");
        }
        (est.estimate(0), est.estimate(1))
    };
    // truth pass
    let mut est = PipelineEstimator::same_attribute(2, 1, 1, n).expect("spec");
    est.feed_build(1, b1_rows.iter()).expect("build");
    est.feed_build(0, b0_rows.iter()).expect("build");
    let (truth_lower, truth_upper) = exact(&mut est);

    // measured pass with checkpoints
    let mut est = PipelineEstimator::same_attribute(2, 1, 1, n).expect("spec");
    est.feed_build(1, b1_rows.iter()).expect("build");
    est.feed_build(0, b0_rows.iter()).expect("build");
    let mut lower = Vec::new();
    let mut upper = Vec::new();
    let mut next_cp = 0;
    for (i, row) in probe.iter().enumerate() {
        est.observe_probe(&row).expect("probe");
        let frac = (i + 1) as f64 / n as f64;
        while next_cp < CHECKPOINTS.len() && frac >= CHECKPOINTS[next_cp] {
            lower.push(ratio(est.estimate(0), truth_lower));
            upper.push(ratio(est.estimate(1), truth_upper));
            next_cp += 1;
        }
    }
    Run { lower, upper }
}

fn ratio(est: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        f64::NAN
    } else {
        est / truth
    }
}

fn print_panel(label: &str, csv: &str, series: &[(f64, Vec<f64>)]) {
    println!("\nFigure 5({label})");
    let rows: Vec<Vec<String>> = CHECKPOINTS
        .iter()
        .enumerate()
        .map(|(i, cp)| {
            let mut row = vec![format!("{:.0}%", cp * 100.0)];
            for (_, s) in series {
                row.push(format!("{:.3}", s[i]));
            }
            row
        })
        .collect();
    let headers: Vec<String> = std::iter::once("lower probe seen".to_string())
        .chain(series.iter().map(|(z, _)| format!("ratio z={z}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);
    write_csv(csv, &header_refs, &rows);
}

fn main() {
    let scale = Scale::detect();
    banner(
        "fig5",
        "join pipeline on the same attribute (paper Fig. 5)",
        scale,
    );
    let rows = scale.accuracy_rows();
    let (small, _) = scale.domains();
    let zs = [0.0, 1.0, 2.0];
    let mut upper_series = Vec::new();
    let mut lower_series = Vec::new();
    for &z in &zs {
        let b0 = customer_table("b0", rows, z, small, 1);
        let b1 = customer_table("b1", rows, z, small, 2);
        let probe = customer_table("c", rows, z, small, 3);
        let run = run_pipeline(&probe, &b0, &b1);
        upper_series.push((z, run.upper));
        lower_series.push((z, run.lower));
    }
    print_panel("a: upper join", "fig5a_upper_join", &upper_series);
    print_panel("b: lower join", "fig5b_lower_join", &lower_series);
    paper_note(&[
        "paper: both joins converge to exact cardinalities while only a fraction \
         of the lower probe input has been seen (push-down estimation)",
        "paper: the z=2 upper-join curve may jump mid-way when a hot lower value \
         meets a hot upper value — only a few values contribute to the join",
        "expect: all ratios ≈1 from the 5-25% checkpoints, exactly 1.000 at 100%",
    ]);
}
