//! Table 4(a): estimation overhead on two-join pipelines over copies of
//! the orders relation, joins on *different attributes* — Case 1 (the upper
//! key carried by the probe relation) and Case 2 (carried by the lower
//! build relation). 10% samples, per the paper.
//!
//! Per §5.2.2 we duplicate the orderkey column so both joins are key-equal
//! in data but count as different attributes for estimation.

use std::sync::Arc;

use qprog::plan::physical::{compile, PhysicalOptions};
use qprog::plan::PlanBuilder;
use qprog_bench::{
    banner, interleaved_min_times, ms, overhead_pct, paper_note, print_table, write_csv, Scale,
};
use qprog_core::EstimationMode;
use qprog_datagen::{TpchConfig, TpchGenerator};
use qprog_storage::{Catalog, Table};
use qprog_types::{DataType, Field, Row, Schema};

/// Simulated page-read cost per block for the paper's disk-resident
/// context (see table3).
const BLOCK_IO_US: u64 = 150;

/// orders with the orderkey column duplicated: (okey1, okey2, custkey).
fn orders_dup(name: &str, sf: f64, seed: u64) -> Table {
    let orders = TpchGenerator::new(TpchConfig {
        scale: sf,
        skew: 0.0,
        seed,
    })
    .orders();
    let mut t = Table::new(
        name,
        Schema::new(vec![
            Field::new("okey1", DataType::Int64),
            Field::new("okey2", DataType::Int64),
            Field::new("custkey", DataType::Int64),
        ]),
    );
    for r in orders.iter() {
        let ok = r.get(0).expect("col").clone();
        let ck = r.get(1).expect("col").clone();
        t.push(Row::new(vec![ok.clone(), ok, ck])).expect("push");
    }
    t
}

fn main() {
    let scale = Scale::detect();
    banner(
        "table4a",
        "estimation overhead on join pipelines (paper Table 4a)",
        scale,
    );
    let runs = if scale.full { 3 } else { 7 };
    let mut rows = Vec::new();
    for sf in scale.tpch_sfs() {
        let mut catalog = Catalog::new();
        for (i, name) in ["o1", "o2", "o3"].iter().enumerate() {
            catalog
                .register(orders_dup(name, sf, 30 + i as u64))
                .expect("register");
        }
        let catalog = Arc::new(catalog);
        let builder = PlanBuilder::new((*catalog).clone());

        // Case 1: lower join o2.okey1 = o1.okey1, upper join o3.okey2 =
        // o1.okey2 (upper key from the probe relation o1).
        let case1 = builder
            .scan("o1")
            .expect("scan")
            .hash_join(builder.scan("o2").expect("scan"), "o2.okey1", "o1.okey1")
            .expect("join")
            .hash_join(builder.scan("o3").expect("scan"), "o3.okey2", "o1.okey2")
            .expect("join");
        // Case 2: upper join o3.okey2 = o2.okey2 (upper key from the lower
        // build relation o2 → derived histogram).
        let case2 = builder
            .scan("o1")
            .expect("scan")
            .hash_join(builder.scan("o2").expect("scan"), "o2.okey1", "o1.okey1")
            .expect("join")
            .hash_join(builder.scan("o3").expect("scan"), "o3.okey2", "o2.okey2")
            .expect("join");

        for (label, plan) in [("case 1", &case1), ("case 2", &case2)] {
            for (ctx, io_us) in [("mem", 0u64), ("io", BLOCK_IO_US)] {
                let exec = |mode: EstimationMode| {
                    let opts = PhysicalOptions {
                        mode,
                        sample_fraction: 0.10,
                        block_io_us: io_us,
                        ..PhysicalOptions::default()
                    };
                    let mut q = compile(plan, &opts).expect("compile");
                    q.collect().expect("run");
                };
                let times = interleaved_min_times(
                    runs,
                    vec![
                        Box::new(|| exec(EstimationMode::Off)),
                        Box::new(|| exec(EstimationMode::Once)),
                    ],
                );
                let (off, once) = (times[0], times[1]);
                rows.push(vec![
                    format!("{sf}"),
                    label.to_string(),
                    ctx.to_string(),
                    ms(off),
                    ms(once),
                    overhead_pct(off, once),
                ]);
            }
        }
    }
    print_table(
        &["SF", "pipeline", "ctx", "off ms", "once ms", "overhead"],
        &rows,
    );
    write_csv(
        "table4a_pipeline_overhead",
        &["sf", "case", "ctx", "off_ms", "once_ms", "overhead"],
        &rows,
    );
    paper_note(&[
        "paper: pipeline push-down estimation (including Case 2's derived \
         histograms) increases query times imperceptibly at 10% samples",
        "expect: low-single-digit-percent overheads in both cases",
    ]);
}
