//! Table 2: memory overhead of the exact frequency histograms, per number
//! of distinct entries. The paper reports PostgreSQL's generic hashtable at
//! ~20 B/entry ("Mem. Used") plus allocation slack ("Mem. Alloc."); we
//! report the same two columns for our structure.

use qprog_bench::{banner, paper_note, print_table, write_csv, Scale};
use qprog_core::freq_hist::FreqHist;
use qprog_types::Key;

fn human(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2} MB", bytes as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1} KB", bytes as f64 / 1024.0)
    }
}

fn main() {
    let scale = Scale::detect();
    banner(
        "table2",
        "histogram memory overheads (paper Table 2)",
        scale,
    );
    let sizes: Vec<usize> = if scale.full {
        vec![1_000, 10_000, 100_000, 1_000_000]
    } else {
        vec![1_000, 10_000, 100_000]
    };
    let mut rows = Vec::new();
    for &n in &sizes {
        let mut h = FreqHist::new(); // grows organically, like a join build would
        for i in 0..n {
            h.observe(&Key::Int(i as i64));
        }
        let used = h.memory_used();
        let alloc = h.memory_allocated();
        rows.push(vec![
            n.to_string(),
            human(used),
            human(alloc),
            format!("{:.1}", used as f64 / n as f64),
            format!("{:.1}", alloc as f64 / n as f64),
        ]);
    }
    print_table(
        &[
            "#values",
            "mem used",
            "mem alloc",
            "used B/entry",
            "alloc B/entry",
        ],
        &rows,
    );
    write_csv(
        "table2_histogram_memory",
        &[
            "values",
            "mem_used",
            "mem_alloc",
            "used_bytes_per_entry",
            "alloc_bytes_per_entry",
        ],
        &rows,
    );
    paper_note(&[
        "paper: ~20 B/entry used (8 B payload + pointer overhead of the \
         PostgreSQL generic hashtable), allocation slightly above that; \
         1M entries ≈ 20.3 MB used / 25.2 MB allocated",
        "here: the per-entry footprint is the (Key, u64) pair plus the std \
         HashMap's capacity slack — same order, no pointer chains",
    ]);
}
