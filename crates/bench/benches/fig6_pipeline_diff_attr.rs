//! Figure 6: pipeline of two hash joins **on different attributes**
//! (§4.1.4.2). The lower join is on `nationkey`; the upper join is on
//! `custkey`, whose value reaches the pipeline either
//!
//! - **Case 1 (6a)**: from the *probe* relation of the lower join (the
//!   lowest probe tuple carries it directly), or
//! - **Case 2 (6b)**: from the *build* relation of the lower join (a derived
//!   histogram folds the lower join's multiplicity during its build pass).
//!
//! Following §5.1.3: custkey is replaced by a skewed distribution over a
//! 25K-element domain; the lower join's skew is fixed (z=2 for Case 1, z=1
//! for Case 2) and the upper join's skew varies.

use qprog_bench::{banner, paper_note, print_table, write_csv, Scale};
use qprog_core::pipeline_est::{AttrSource, JoinSpec, PipelineEstimator};
use qprog_datagen::{skewed_key_table, two_key_table};
use qprog_storage::Table;

const CHECKPOINTS: [f64; 8] = [0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 0.75, 1.0];

/// Build the estimator, replay (truth pass + measured pass), return the
/// upper-join ratio-error per checkpoint plus the exact cardinalities.
fn run_case(specs: Vec<JoinSpec>, probe: &Table, b0: &Table, b1: &Table) -> (Vec<f64>, f64, f64) {
    let n = probe.num_rows() as u64;
    let b0_rows: Vec<qprog_types::Row> = b0.iter().collect();
    let b1_rows: Vec<qprog_types::Row> = b1.iter().collect();
    let full = |est: &mut PipelineEstimator| {
        for row in probe.iter() {
            est.observe_probe(&row).expect("probe");
        }
        (est.estimate(0), est.estimate(1))
    };
    let fresh = || {
        let mut est = PipelineEstimator::new(specs.clone(), n).expect("specs");
        est.feed_build(1, b1_rows.iter()).expect("build upper");
        est.feed_build(0, b0_rows.iter()).expect("build lower");
        est
    };
    let mut est = fresh();
    let (truth_lower, truth_upper) = full(&mut est);

    let mut est = fresh();
    let mut ratios = Vec::new();
    let mut next_cp = 0;
    for (i, row) in probe.iter().enumerate() {
        est.observe_probe(&row).expect("probe");
        let frac = (i + 1) as f64 / n as f64;
        while next_cp < CHECKPOINTS.len() && frac >= CHECKPOINTS[next_cp] {
            ratios.push(if truth_upper == 0.0 {
                f64::NAN
            } else {
                est.estimate(1) / truth_upper
            });
            next_cp += 1;
        }
    }
    (ratios, truth_lower, truth_upper)
}

fn print_panel(label: &str, csv: &str, series: &[(f64, Vec<f64>)]) {
    println!("\nFigure 6({label})");
    let rows: Vec<Vec<String>> = CHECKPOINTS
        .iter()
        .enumerate()
        .map(|(i, cp)| {
            let mut row = vec![format!("{:.0}%", cp * 100.0)];
            for (_, s) in series {
                row.push(format!("{:.3}", s[i]));
            }
            row
        })
        .collect();
    let headers: Vec<String> = std::iter::once("lower probe seen".to_string())
        .chain(series.iter().map(|(z, _)| format!("upper ratio z={z}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);
    write_csv(csv, &header_refs, &rows);
}

fn main() {
    let scale = Scale::detect();
    banner(
        "fig6",
        "join pipeline on different attributes, Cases 1 and 2 (paper Fig. 6)",
        scale,
    );
    let rows = scale.accuracy_rows();
    let domain = if scale.full { 25_000 } else { 5_000 };

    // ---- Case 1: upper key comes from the lowest probe relation ----
    // probe C(custkey, nationkey); lower build on nationkey (z=2 both
    // sides); upper build on custkey (z varies). z=2 upper produces no
    // tuples in the paper; we report z ∈ {0, 1}.
    let mut case1 = Vec::new();
    for &z_up in &[0.0, 1.0] {
        let probe = two_key_table("c", rows, z_up, domain, 1, 2.0, domain, 2);
        let b0 = skewed_key_table("b0", "nationkey", rows, 2.0, domain, 3);
        let b1 = skewed_key_table("b1", "custkey", rows, z_up, domain, 4);
        let specs = vec![
            JoinSpec {
                build_attr_col: 0,
                probe_attr: AttrSource::Probe { col: 1 }, // C.nationkey
            },
            JoinSpec {
                build_attr_col: 0,
                probe_attr: AttrSource::Probe { col: 0 }, // C.custkey
            },
        ];
        let (ratios, tl, tu) = run_case(specs, &probe, &b0, &b1);
        println!("case 1, upper z={z_up}: lower truth {tl:.0}, upper truth {tu:.0}");
        case1.push((z_up, ratios));
    }
    print_panel(
        "a: Case 1 — key from the probe relation",
        "fig6a_case1",
        &case1,
    );

    // ---- Case 2: upper key comes from the lower build relation ----
    // lower build B0(custkey, nationkey) joins C on nationkey (z=1 fixed);
    // upper build B1(custkey) joins B0.custkey (z varies).
    let mut case2 = Vec::new();
    for &z_up in &[0.0, 1.0, 2.0] {
        let probe = skewed_key_table("c", "nationkey", rows, 1.0, domain, 1);
        let b0 = two_key_table("b0", rows, z_up, domain, 2, 1.0, domain, 3);
        let b1 = skewed_key_table("b1", "custkey", rows, z_up, domain, 4);
        let specs = vec![
            JoinSpec {
                build_attr_col: 1, // B0.nationkey
                probe_attr: AttrSource::Probe { col: 0 },
            },
            JoinSpec {
                build_attr_col: 0,                                 // B1.custkey
                probe_attr: AttrSource::Build { join: 0, col: 0 }, // B0.custkey
            },
        ];
        let (ratios, tl, tu) = run_case(specs, &probe, &b0, &b1);
        println!("case 2, upper z={z_up}: lower truth {tl:.0}, upper truth {tu:.0}");
        case2.push((z_up, ratios));
    }
    print_panel(
        "b: Case 2 — key from the build relation",
        "fig6b_case2",
        &case2,
    );

    paper_note(&[
        "paper: fast convergence of the upper-join estimate as the lower probe \
         input is read, in both cases (Case 2 via derived histograms)",
        "paper: at z=2 for Case 1 the upper join is empty (hot values miss), \
         hence no curve",
        "expect: ratios ≈1 well before 100%, exactly 1.000 at 100%",
    ]);
}
