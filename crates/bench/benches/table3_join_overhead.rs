//! Table 3: runtime overhead of the estimation framework on binary hash
//! and sort-merge joins — lineitem ⋈ orders on orderkey (PK-FK), per
//! TPC-H scale factor and sample size.
//!
//! Compares wall time with estimation Off vs Once at 5% and 10% block
//! samples. Absolute numbers differ from the paper's 2007 hardware; the
//! claim to reproduce is the *relative* overhead staying small.

use qprog::plan::physical::{compile, PhysicalOptions};
use qprog::plan::{JoinAlgo, PlanBuilder};
use qprog_bench::{banner, ms, overhead_pct, paper_note, print_table, write_csv, Scale};
use qprog_core::EstimationMode;
use qprog_datagen::{TpchConfig, TpchGenerator};

/// Simulated page-read cost per 256-row block when reproducing the paper's
/// disk-resident context ("io" rows): ~50µs is a 2007-era sequential page
/// read of an 8 KB page.
const BLOCK_IO_US: u64 = 150;

fn main() {
    let scale = Scale::detect();
    banner(
        "table3",
        "estimation overhead on binary joins (paper Table 3)",
        scale,
    );
    let runs = if scale.full { 3 } else { 7 };
    let mut rows = Vec::new();
    for sf in scale.tpch_sfs() {
        let gen = TpchGenerator::new(TpchConfig {
            scale: sf,
            skew: 0.0,
            seed: 21,
        });
        let mut catalog = qprog_storage::Catalog::new();
        catalog.register(gen.orders()).expect("register");
        catalog.register(gen.lineitem()).expect("register");
        let builder = PlanBuilder::new(catalog);

        for algo in [JoinAlgo::Hash, JoinAlgo::Merge] {
            let plan = builder
                .scan("lineitem")
                .expect("scan")
                .join_build(
                    builder.scan("orders").expect("scan"),
                    "orders.orderkey",
                    "lineitem.orderkey",
                    algo,
                )
                .expect("join");
            let exec = |mode: EstimationMode, sample: f64, io_us: u64| {
                let opts = PhysicalOptions {
                    mode,
                    sample_fraction: sample,
                    block_io_us: io_us,
                    ..PhysicalOptions::default()
                };
                let mut q = compile(&plan, &opts).expect("compile");
                q.collect().expect("run");
            };
            for (ctx, io_us) in [("mem", 0u64), ("io", BLOCK_IO_US)] {
                let times = qprog_bench::interleaved_min_times(
                    runs,
                    vec![
                        Box::new(|| exec(EstimationMode::Off, 0.10, io_us)),
                        Box::new(|| exec(EstimationMode::Once, 0.05, io_us)),
                        Box::new(|| exec(EstimationMode::Once, 0.10, io_us)),
                    ],
                );
                let (off, once5, once10) = (times[0], times[1], times[2]);
                rows.push(vec![
                    format!("{sf}"),
                    format!("{algo:?}"),
                    ctx.to_string(),
                    ms(off),
                    ms(once5),
                    overhead_pct(off, once5),
                    ms(once10),
                    overhead_pct(off, once10),
                ]);
            }
        }
    }
    print_table(
        &[
            "SF",
            "join",
            "ctx",
            "off ms",
            "once 5% ms",
            "ovh 5%",
            "once 10% ms",
            "ovh 10%",
        ],
        &rows,
    );
    write_csv(
        "table3_join_overhead",
        &[
            "sf",
            "join",
            "ctx",
            "off_ms",
            "once5_ms",
            "overhead5",
            "once10_ms",
            "overhead10",
        ],
        &rows,
    );
    paper_note(&[
        "paper: overhead is a small fraction of response time for both hash \
         and sort-merge joins at every scale factor, because estimation runs \
         inside the (I/O-heavy) preprocessing phases",
        "the `mem` rows run fully in memory, where the same absolute work is \
         a 10-25% relative overhead — there is no I/O to hide behind; the \
         `io` rows restore the paper's disk-page cost model (50µs/block) and \
         the single-digit overheads of Table 3",
    ]);
}
