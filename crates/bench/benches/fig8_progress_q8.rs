//! Figure 8: estimated vs actual progress of TPC-H Q8 on a Zipf-2
//! database, comparing the paper's framework (`once`) with the `dne`
//! baseline. 10% samples, as in the paper.
//!
//! Actual progress is computed post-hoc: a monitor thread records
//! `(C(Q), estimated fraction)` while the query runs; after completion the
//! true total `T(Q) = C_final(Q)` is known, so actual progress at each
//! sample is `C/C_final`.

use std::time::Duration;

use qprog::plan::physical::{compile, PhysicalOptions};
use qprog::plan::PlanBuilder;
use qprog::workloads::q8_plan;
use qprog_bench::{banner, paper_note, print_table, write_csv, Scale};
use qprog_core::EstimationMode;
use qprog_datagen::{TpchConfig, TpchGenerator};

const CHECKPOINTS: [f64; 10] = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

/// Run Q8 in `mode`; return (actual fraction, estimated fraction) samples.
fn run_q8(builder: &PlanBuilder, mode: EstimationMode) -> Vec<(f64, f64)> {
    let plan = q8_plan(builder).expect("q8 plan");
    let opts = PhysicalOptions {
        mode,
        sample_fraction: 0.10,
        ..PhysicalOptions::default()
    };
    let mut q = compile(&plan, &opts).expect("compile");
    let tracker = q.tracker();
    let worker = std::thread::spawn(move || {
        let rows = q.collect().expect("q8 run");
        rows.len()
    });
    let mut samples: Vec<(u64, f64)> = Vec::new();
    loop {
        let snap = tracker.snapshot();
        samples.push((snap.current(), snap.fraction()));
        if snap.is_complete() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    worker.join().expect("worker");
    let final_c = tracker.snapshot().current().max(1);
    samples
        .into_iter()
        .map(|(c, est)| (c as f64 / final_c as f64, est))
        .collect()
}

/// Estimated progress at each actual-progress checkpoint (last sample at or
/// below the checkpoint).
fn at_checkpoints(samples: &[(f64, f64)]) -> Vec<f64> {
    CHECKPOINTS
        .iter()
        .map(|&cp| {
            samples
                .iter()
                .take_while(|(actual, _)| *actual <= cp)
                .last()
                .or(samples.first())
                .map(|(_, est)| *est)
                .unwrap_or(0.0)
        })
        .collect()
}

fn main() {
    let scale = Scale::detect();
    banner(
        "fig8",
        "progress of TPC-H Q8 under skew: once vs dne (paper Fig. 8)",
        scale,
    );
    println!(
        "generating TPC-H-lite SF {} with Zipf-2 foreign keys...",
        scale.q8_sf()
    );
    let catalog = TpchGenerator::new(TpchConfig {
        scale: scale.q8_sf(),
        skew: 2.0,
        seed: 88,
    })
    .catalog()
    .expect("catalog");
    let builder = PlanBuilder::new(catalog);

    let once = at_checkpoints(&run_q8(&builder, EstimationMode::Once));
    let dne = at_checkpoints(&run_q8(&builder, EstimationMode::Dne));

    let rows: Vec<Vec<String>> = CHECKPOINTS
        .iter()
        .enumerate()
        .map(|(i, cp)| {
            vec![
                format!("{:.0}%", cp * 100.0),
                format!("{:.1}%", once[i] * 100.0),
                format!("{:.1}%", dne[i] * 100.0),
            ]
        })
        .collect();
    print_table(&["actual progress", "once estimate", "dne estimate"], &rows);
    write_csv(
        "fig8_progress_q8",
        &["actual", "once_estimate", "dne_estimate"],
        &rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|c| c.trim_end_matches('%').to_string())
                    .collect()
            })
            .collect::<Vec<_>>(),
    );
    // summary: mean absolute progress error
    let mae = |est: &[f64]| {
        est.iter()
            .zip(CHECKPOINTS.iter())
            .map(|(e, a)| (e - a).abs())
            .sum::<f64>()
            / est.len() as f64
    };
    println!(
        "\nmean |estimated − actual| progress: once {:.3}, dne {:.3}",
        mae(&once),
        mae(&dne)
    );
    paper_note(&[
        "paper: once pushes estimation down as soon as the main 3-hash-join \
         pipeline begins, giving correct progress for the rest of the query; \
         dne does not adjust upper-join cardinalities until much later and \
         overestimates progress for a long time",
        "expect: the once column tracks the actual column closely; dne \
         deviates farther (typically running ahead), with a larger mean error",
    ]);
}
