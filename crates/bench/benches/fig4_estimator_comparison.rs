//! Figure 4: `once` vs the `dne` and `byte` baselines, run through the real
//! engine (grace hash join), estimates sampled as the probe input is
//! *joined* (x-axis of the paper's figure).
//!
//! (a) join of two Zipf-1 customer tables with different peak values —
//!     the optimizer estimate is off by an order of magnitude;
//! (b) PK-FK join customer ⋈ σ(nationkey < domain/2)(nation).
//!
//! The paper's claims: once has already converged when only a small
//! percentage of the probe input has been joined; dne fluctuates with the
//! partition-clustered output; byte converges slowly because it stays
//! anchored to the optimizer estimate.

use qprog::plan::physical::{compile, PhysicalOptions};
use qprog::plan::{LogicalPlan, PlanBuilder};
use qprog_bench::{banner, paper_note, print_table, write_csv, Scale};
use qprog_core::EstimationMode;
use qprog_datagen::{customer_table, nation_table};
use qprog_exec::expr::{BinOp, Expr};
use qprog_storage::Catalog;

const CHECKPOINTS: [f64; 9] = [0.02, 0.05, 0.10, 0.20, 0.35, 0.50, 0.70, 0.90, 1.0];

/// Run the plan in `mode` and sample the join's estimate at checkpoints of
/// "fraction of probe input joined" (the join's driver counter). Returns
/// the samples and the exact output cardinality.
fn sample_estimates(plan: &LogicalPlan, mode: EstimationMode, probe_rows: u64) -> (Vec<f64>, u64) {
    let mut q = compile(plan, &PhysicalOptions::with_mode(mode)).expect("compile");
    let join_metrics = q
        .registry()
        .iter()
        .find(|(n, _)| *n == "hash_join")
        .map(|(_, m)| std::sync::Arc::clone(m))
        .expect("plan contains a hash join");
    let mut samples: Vec<f64> = Vec::new();
    let mut next_cp = 0usize;
    let mut emitted: u64 = 0;
    while let Some(_row) = q.step().expect("execution") {
        emitted += 1;
        let joined_frac = join_metrics.driver_consumed() as f64 / probe_rows as f64;
        while next_cp < CHECKPOINTS.len() && joined_frac >= CHECKPOINTS[next_cp] {
            samples.push(join_metrics.estimated_total());
            next_cp += 1;
        }
    }
    // trailing checkpoints (driver drained between last outputs): final value
    while samples.len() < CHECKPOINTS.len() {
        samples.push(join_metrics.estimated_total());
    }
    (samples, emitted)
}

fn run_panel(label: &str, csv: &str, plan: &LogicalPlan, probe_rows: u64) {
    println!("\nFigure 4({label})");
    println!("optimizer estimate: {:.0}", plan.estimate);
    let mut per_mode = Vec::new();
    let mut truth = 0u64;
    for mode in [
        EstimationMode::Once,
        EstimationMode::Dne,
        EstimationMode::Byte,
    ] {
        let (samples, emitted) = sample_estimates(plan, mode, probe_rows);
        truth = emitted;
        per_mode.push(samples);
    }
    println!(
        "true join cardinality: {truth}  (optimizer off by {:.1}x)",
        truth as f64 / plan.estimate.max(1.0)
    );
    let rows: Vec<Vec<String>> = CHECKPOINTS
        .iter()
        .enumerate()
        .map(|(i, cp)| {
            vec![
                format!("{:.0}%", cp * 100.0),
                format!("{:.3}", per_mode[0][i] / truth as f64),
                format!("{:.3}", per_mode[1][i] / truth as f64),
                format!("{:.3}", per_mode[2][i] / truth as f64),
            ]
        })
        .collect();
    print_table(&["probe joined", "once", "dne", "byte"], &rows);
    write_csv(
        csv,
        &[
            "probe_joined_fraction",
            "once_ratio",
            "dne_ratio",
            "byte_ratio",
        ],
        &rows
            .iter()
            .map(|r| {
                let mut c = r.clone();
                c[0] = c[0].trim_end_matches('%').to_string();
                c
            })
            .collect::<Vec<_>>(),
    );
}

fn main() {
    let scale = Scale::detect();
    banner(
        "fig4",
        "once vs dne vs byte through the engine (paper Fig. 4)",
        scale,
    );
    let rows = scale.accuracy_rows();
    let (_, large) = scale.domains();

    // (a) skewed-skewed join, mismatched peaks
    let mut catalog = Catalog::new();
    catalog
        .register(customer_table("c0", rows, 1.0, large, 1))
        .expect("register");
    catalog
        .register(customer_table("c1", rows, 1.0, large, 2))
        .expect("register");
    let builder = PlanBuilder::new(catalog);
    let plan = builder
        .scan("c1")
        .expect("scan")
        .hash_join(
            builder.scan("c0").expect("scan"),
            "c0.nationkey",
            "c1.nationkey",
        )
        .expect("join");
    run_panel(
        "a: C ⋈ C¹, z=1, large domain",
        "fig4a_skew_join",
        &plan,
        rows as u64,
    );

    // (b) PK-FK join with a selection on the build side
    let mut catalog = Catalog::new();
    catalog
        .register(customer_table("customer", rows, 1.0, large, 1))
        .expect("register");
    catalog
        .register(nation_table("nation", large))
        .expect("register");
    let builder = PlanBuilder::new(catalog);
    let nation = builder.scan("nation").expect("scan");
    let cutoff = (large / 2) as i64;
    let pred = Expr::binary(
        BinOp::Lt,
        nation.col_expr("nationkey").expect("column"),
        Expr::Literal(cutoff.into()),
    );
    let nation = nation.filter(pred).expect("filter");
    let plan = builder
        .scan("customer")
        .expect("scan")
        .hash_join(nation, "nation.nationkey", "customer.nationkey")
        .expect("join");
    run_panel(
        "b: customer ⋈ σ(nationkey < half)(nation)",
        "fig4b_pkfk_selection",
        &plan,
        rows as u64,
    );

    paper_note(&[
        "paper: once is already exact at the leftmost checkpoints (it converged \
         during the probe partitioning pass, before any joining)",
        "paper: dne ignores the optimizer estimate but swings with the \
         partition-clustered output before converging at 100%",
        "paper: byte starts at the (badly wrong) optimizer estimate and blends \
         toward the truth only as the input is consumed",
    ]);
}
