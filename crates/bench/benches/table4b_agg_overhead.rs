//! Table 4(b): estimation overhead on GROUP BY orders.custkey, per TPC-H
//! scale factor, for the GEE and MLE estimators separately and for the full
//! framework (GEE + adaptively recomputed MLE + γ² chooser).
//!
//! Algorithm 3 parameters follow the paper: l = 0.1% of the input,
//! u = 3.2%, k = 1%. 10% block samples.

use std::sync::Arc;

use qprog_bench::{
    banner, interleaved_min_times, ms, overhead_pct, paper_note, print_table, write_csv, Scale,
};
use qprog_core::distinct::DistinctTracker;
use qprog_core::interval::AdaptiveInterval;
use qprog_datagen::{TpchConfig, TpchGenerator};
use qprog_exec::metrics::OpMetrics;
use qprog_exec::ops::agg::{AggEstimation, AggFunc, AggSpec, HashAggregate};
use qprog_exec::ops::TableScan;
use qprog_storage::Table;
use qprog_types::{DataType, Field, Schema};

/// Simulated page-read cost per block for the paper's disk-resident
/// context (see table3).
const BLOCK_IO_US: u64 = 150;

fn run_group_by(orders: &Arc<Table>, tracker: Option<DistinctTracker>, io_us: u64) -> usize {
    let scan = Box::new(
        TableScan::sampled(
            Arc::clone(orders),
            0.10,
            99,
            OpMetrics::with_initial_estimate(orders.num_rows() as f64),
        )
        .with_io_cost(std::time::Duration::from_micros(io_us)),
    );
    let schema = Schema::new(vec![
        Field::new("custkey", DataType::Int64),
        Field::new("cnt", DataType::Int64).with_nullable(true),
    ])
    .into_ref();
    let estimation = match &tracker {
        Some(_) => AggEstimation::Track {
            input_size_hint: orders.num_rows() as u64,
        },
        None => AggEstimation::Off,
    };
    let mut agg = HashAggregate::new(
        scan,
        vec![1], // orders.custkey
        vec![AggSpec {
            func: AggFunc::CountStar,
            col: None,
        }],
        schema,
        estimation,
        OpMetrics::with_initial_estimate(0.0),
    );
    if let Some(t) = tracker {
        agg = agg.with_tracker(t);
    }
    qprog_exec::runtime::collect(&mut agg, 1)
        .expect("agg")
        .len()
}

fn main() {
    let scale = Scale::detect();
    banner(
        "table4b",
        "estimation overhead on GROUP BY orders.custkey (paper Table 4b)",
        scale,
    );
    let runs = if scale.full { 3 } else { 7 };
    let mut rows = Vec::new();
    for sf in scale.tpch_sfs() {
        let orders = TpchGenerator::new(TpchConfig {
            scale: sf,
            skew: 0.0,
            seed: 77,
        })
        .orders()
        .into_shared();
        let n = orders.num_rows() as u64;
        // MLE disabled: interval so large it never fires; τ = -1 keeps the
        // chooser on GEE.
        let gee_only = || {
            DistinctTracker::new(n)
                .with_tau(-1.0)
                .with_interval(AdaptiveInterval::new(u64::MAX / 2, u64::MAX / 2, 0.01))
        };
        // MLE at the paper's Algorithm-3 parameters; τ = ∞ keeps the
        // chooser on MLE.
        let mle_adaptive = || {
            DistinctTracker::new(n)
                .with_tau(f64::INFINITY)
                .with_interval(AdaptiveInterval::paper_default(n))
        };
        let full = || DistinctTracker::new(n); // paper defaults: chooser active

        for (ctx, io_us) in [("mem", 0u64), ("io", BLOCK_IO_US)] {
            let times = interleaved_min_times(
                runs,
                vec![
                    Box::new(|| {
                        run_group_by(&orders, None, io_us);
                    }),
                    Box::new(|| {
                        run_group_by(&orders, Some(gee_only()), io_us);
                    }),
                    Box::new(|| {
                        run_group_by(&orders, Some(mle_adaptive()), io_us);
                    }),
                    Box::new(|| {
                        run_group_by(&orders, Some(full()), io_us);
                    }),
                ],
            );
            let (off, gee, mle, both) = (times[0], times[1], times[2], times[3]);
            rows.push(vec![
                format!("{sf}"),
                ctx.to_string(),
                ms(off),
                ms(gee),
                overhead_pct(off, gee),
                ms(mle),
                overhead_pct(off, mle),
                ms(both),
                overhead_pct(off, both),
            ]);
        }
    }
    print_table(
        &[
            "SF",
            "ctx",
            "off ms",
            "GEE ms",
            "ovh",
            "MLE ms",
            "ovh",
            "chooser ms",
            "ovh",
        ],
        &rows,
    );
    write_csv(
        "table4b_agg_overhead",
        &[
            "sf",
            "ctx",
            "off_ms",
            "gee_ms",
            "gee_overhead",
            "mle_ms",
            "mle_overhead",
            "chooser_ms",
            "chooser_overhead",
        ],
        &rows,
    );
    paper_note(&[
        "paper: neither GEE nor MLE slows aggregation appreciably; the MLE \
         recomputation cost is bounded by the adaptive interval (l=0.1%, \
         u=3.2%, k=1%)",
        "expect: single-digit-percent overheads for all three variants",
    ]);
}
