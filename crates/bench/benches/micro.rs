//! Microbenchmarks for the per-tuple costs the paper's "lightweight"
//! claim rests on: histogram maintenance, incremental join estimation,
//! the GEE update, MLE recomputation, and the γ² read.
//!
//! Uses the workspace's own timing harness (median over repeated runs) —
//! the workspace carries no external benchmark framework.

use std::time::Duration;

use qprog_bench::{median_time, print_table, Scale};
use qprog_core::confidence::z_alpha;
use qprog_core::freq_hist::FreqHist;
use qprog_core::gee::Gee;
use qprog_core::join_est::OnceJoinEstimator;
use qprog_core::mle::mle_estimate;
use qprog_datagen::customer_table;
use qprog_storage::ScanOrder;
use qprog_types::Key;

fn nationkeys(rows: usize, z: f64, domain: usize, variant: u64) -> Vec<Key> {
    customer_table("c", rows, z, domain, variant)
        .iter()
        .map(|r| r.key(1).expect("int column"))
        .collect()
}

/// Nanoseconds with thousands separators are overkill here; µs with two
/// decimals reads best at these magnitudes.
fn us(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e6)
}

fn main() {
    let scale = Scale::detect();
    let runs = if scale.full { 51 } else { 21 };
    println!("micro: per-tuple estimator costs (median of {runs} runs)\n");

    let keys = nationkeys(10_000, 1.0, 1_000, 1);
    let mut rows = Vec::new();

    rows.push(vec![
        "freq_hist_observe_10k".to_string(),
        us(median_time(runs, || {
            let mut h = FreqHist::new();
            for k in &keys {
                h.observe(k);
            }
            std::hint::black_box(&h);
        })),
    ]);

    let mut full = FreqHist::new();
    for k in &keys {
        full.observe(k);
    }
    rows.push(vec![
        "freq_hist_gamma_squared".to_string(),
        us(median_time(runs, || {
            std::hint::black_box(full.gamma_squared());
        })),
    ]);
    rows.push(vec![
        "freq_hist_probe".to_string(),
        us(median_time(runs, || {
            std::hint::black_box(full.count(&Key::Int(500)));
        })),
    ]);

    let build = nationkeys(10_000, 1.0, 1_000, 1);
    let probe = nationkeys(10_000, 1.0, 1_000, 2);
    rows.push(vec![
        "once_join_probe_10k".to_string(),
        us(median_time(runs, || {
            let mut est = OnceJoinEstimator::from_build_keys(build.iter(), probe.len() as u64);
            for k in &probe {
                est.observe_probe(k);
            }
            std::hint::black_box(est.estimate());
        })),
    ]);

    let skewed = nationkeys(10_000, 0.5, 2_000, 1);
    rows.push(vec![
        "gee_update_10k".to_string(),
        us(median_time(runs, || {
            let mut h = FreqHist::new();
            let mut g = Gee::new(10_000);
            for k in &skewed {
                g.observe_transition(h.observe(k));
            }
            std::hint::black_box(g.estimate());
        })),
    ]);

    let mut hist = FreqHist::new();
    for k in &skewed {
        hist.observe(k);
    }
    rows.push(vec![
        "mle_recompute".to_string(),
        us(median_time(runs, || {
            std::hint::black_box(mle_estimate(&hist, 100_000));
        })),
    ]);

    rows.push(vec![
        "z_alpha".to_string(),
        us(median_time(runs, || {
            std::hint::black_box(z_alpha(0.99));
        })),
    ]);
    rows.push(vec![
        "scan_order_sample_1k_blocks".to_string(),
        us(median_time(runs, || {
            std::hint::black_box(ScanOrder::sample_first(1_000, 0.10, 7));
        })),
    ]);

    print_table(&["benchmark", "median µs"], &rows);
}
