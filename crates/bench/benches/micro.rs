//! Criterion microbenchmarks for the per-tuple costs the paper's
//! "lightweight" claim rests on: histogram maintenance, incremental join
//! estimation, the GEE update, MLE recomputation, and the γ² read.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qprog_core::confidence::z_alpha;
use qprog_core::freq_hist::FreqHist;
use qprog_core::gee::Gee;
use qprog_core::join_est::OnceJoinEstimator;
use qprog_core::mle::mle_estimate;
use qprog_datagen::customer_table;
use qprog_storage::ScanOrder;
use qprog_types::Key;

fn nationkeys(rows: usize, z: f64, domain: usize, variant: u64) -> Vec<Key> {
    customer_table("c", rows, z, domain, variant)
        .iter()
        .map(|r| r.key(1).expect("int column"))
        .collect()
}

fn bench_freq_hist(c: &mut Criterion) {
    let keys = nationkeys(10_000, 1.0, 1_000, 1);
    c.bench_function("freq_hist_observe_10k", |b| {
        b.iter_batched(
            FreqHist::new,
            |mut h| {
                for k in &keys {
                    h.observe(k);
                }
                h
            },
            BatchSize::SmallInput,
        )
    });
    let mut full = FreqHist::new();
    for k in &keys {
        full.observe(k);
    }
    c.bench_function("freq_hist_gamma_squared", |b| {
        b.iter(|| std::hint::black_box(full.gamma_squared()))
    });
    c.bench_function("freq_hist_probe", |b| {
        b.iter(|| std::hint::black_box(full.count(&Key::Int(500))))
    });
}

fn bench_join_estimator(c: &mut Criterion) {
    let build = nationkeys(10_000, 1.0, 1_000, 1);
    let probe = nationkeys(10_000, 1.0, 1_000, 2);
    c.bench_function("once_join_probe_10k", |b| {
        b.iter_batched(
            || OnceJoinEstimator::from_build_keys(build.iter(), probe.len() as u64),
            |mut est| {
                for k in &probe {
                    est.observe_probe(k);
                }
                est.estimate()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_distinct(c: &mut Criterion) {
    let keys = nationkeys(10_000, 0.5, 2_000, 1);
    c.bench_function("gee_update_10k", |b| {
        b.iter_batched(
            || (FreqHist::new(), Gee::new(10_000)),
            |(mut h, mut g)| {
                for k in &keys {
                    g.observe_transition(h.observe(k));
                }
                g.estimate()
            },
            BatchSize::SmallInput,
        )
    });
    let mut hist = FreqHist::new();
    for k in &keys {
        hist.observe(k);
    }
    c.bench_function("mle_recompute", |b| {
        b.iter(|| std::hint::black_box(mle_estimate(&hist, 100_000)))
    });
}

fn bench_misc(c: &mut Criterion) {
    c.bench_function("z_alpha", |b| b.iter(|| std::hint::black_box(z_alpha(0.99))));
    c.bench_function("scan_order_sample_1k_blocks", |b| {
        b.iter(|| std::hint::black_box(ScanOrder::sample_first(1_000, 0.10, 7)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_freq_hist, bench_join_estimator, bench_distinct, bench_misc
}
criterion_main!(benches);
