//! Figure 3: ratio error of the `once` join estimator vs the fraction of
//! the probe input seen, for (a) small and (b) large nationkey domains and
//! Zipf skews z ∈ {0, 1, 2}.
//!
//! Each join is between two customer tables with the same skew and domain
//! but different peak-frequency values (the paper's worst case, §5.1.1).

use qprog_bench::{banner, paper_note, print_table, write_csv, Scale};
use qprog_core::join_est::OnceJoinEstimator;
use qprog_datagen::customer_table;
use qprog_types::Key;

const CHECKPOINTS: [f64; 8] = [0.005, 0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 1.0];

fn nationkeys(rows: usize, z: f64, domain: usize, variant: u64) -> Vec<Key> {
    customer_table("c", rows, z, domain, variant)
        .iter()
        .map(|r| r.key(1).expect("int column"))
        .collect()
}

/// Ratio-error trajectory for one (z, domain) configuration.
fn trajectory(rows: usize, z: f64, domain: usize) -> Vec<(f64, f64)> {
    let build = nationkeys(rows, z, domain, 1);
    let probe = nationkeys(rows, z, domain, 2);
    let truth: u64 = {
        let mut est = OnceJoinEstimator::from_build_keys(build.iter(), probe.len() as u64);
        for k in &probe {
            est.observe_probe(k);
        }
        est.matched_so_far() as u64
    };
    let mut est = OnceJoinEstimator::from_build_keys(build.iter(), probe.len() as u64);
    let mut out = Vec::new();
    let mut next_cp = 0;
    for (i, k) in probe.iter().enumerate() {
        est.observe_probe(k);
        let frac = (i + 1) as f64 / probe.len() as f64;
        while next_cp < CHECKPOINTS.len() && frac >= CHECKPOINTS[next_cp] {
            let ratio = if truth == 0 {
                f64::NAN
            } else {
                est.estimate() / truth as f64
            };
            out.push((CHECKPOINTS[next_cp], ratio));
            next_cp += 1;
        }
    }
    out
}

fn run_panel(label: &str, csv: &str, rows: usize, domain: usize) {
    println!("\nFigure 3({label}): domain = {domain}, rows = {rows}");
    let zs = [0.0, 1.0, 2.0];
    let series: Vec<Vec<(f64, f64)>> = zs.iter().map(|&z| trajectory(rows, z, domain)).collect();
    let mut table_rows = Vec::new();
    for (cp_idx, &cp) in CHECKPOINTS.iter().enumerate() {
        let mut row = vec![format!("{:.1}%", cp * 100.0)];
        for s in &series {
            row.push(format!("{:.3}", s[cp_idx].1));
        }
        table_rows.push(row);
    }
    print_table(
        &["probe seen", "ratio z=0", "ratio z=1", "ratio z=2"],
        &table_rows,
    );
    write_csv(
        csv,
        &["probe_fraction", "ratio_z0", "ratio_z1", "ratio_z2"],
        &table_rows
            .iter()
            .map(|r| {
                let mut c = r.clone();
                c[0] = c[0].trim_end_matches('%').to_string();
                c
            })
            .collect::<Vec<_>>(),
    );
}

fn main() {
    let scale = Scale::detect();
    banner(
        "fig3",
        "ratio error of once vs fraction of probe input (paper Fig. 3)",
        scale,
    );
    let rows = scale.accuracy_rows();
    let (small, large) = scale.domains();
    run_panel("a: small domain", "fig3a_small_domain", rows, small);
    run_panel("b: large domain", "fig3b_large_domain", rows, large);
    paper_note(&[
        "paper: estimators converge to ratio error ~1 having seen only a small \
         fraction of the probe input, for all skews and both domains",
        "expect: every column ≈1.000 by the 5-10% checkpoints, exactly 1.000 at 100%",
    ]);
}
