//! Continuous parallel-scaling benchmark: the skewed hash-join aggregate
//! runs at 1, 2, and 4 worker threads under the emulated per-block I/O
//! cost model (the paper's disk-resident setting), measuring wall-time
//! speedup and verifying that parallelism is observationally invisible —
//! converged join estimates are bit-identical to the serial run and
//! progress quality does not regress.
//!
//! TPC-H Q8 is reported for context only: its joins run under pipelined
//! estimation, whose drains stay serial by design, so no speedup is
//! expected there.
//!
//! Results are written to **`BENCH_parallel.json`** at the repo root so CI
//! can archive the scaling trajectory. Set `QPROG_PARALLEL_MIN_SPEEDUP`
//! (e.g. `1.5`) to turn the 4-thread skew-join speedup into a hard gate:
//! the bench exits non-zero when the speedup falls below the bound.

use std::sync::Arc;
use std::time::Duration;

use qprog::obs::ProgressScore;
use qprog::plan::physical::{compile, compile_traced, PhysicalOptions};
use qprog::plan::{LogicalPlan, PlanBuilder};
use qprog::prelude::*;
use qprog::workloads::q8_plan;
use qprog_bench::{
    banner, interleaved_min_times, ms, paper_note, print_table, write_bench_json, Scale,
};
use qprog_datagen::{TpchConfig, TpchGenerator};
use qprog_exec::ops::agg::AggFunc;

/// Emulated per-block I/O latency — the same cost model as the overhead
/// tables (table3/table4a), under which the drains dominate wall time.
const BLOCK_IO_US: u64 = 150;

/// Degrees of parallelism measured.
const THREADS: [usize; 3] = [1, 2, 4];

struct Workload {
    name: &'static str,
    /// Gate the speedup on this workload (false = context only).
    gated: bool,
    io_us: u64,
    plan: LogicalPlan,
}

/// Skewed hash-join + aggregate: Zipf-2 customers against a small
/// dimension — the partitioned-join regime the worker pool targets.
fn skew_join_workload(scale: Scale) -> Workload {
    let mut catalog = Catalog::new();
    catalog
        .register(qprog::datagen::customer_table(
            "customer",
            scale.accuracy_rows(),
            2.0,
            400,
            11,
        ))
        .expect("customer");
    catalog
        .register(qprog::datagen::nation_table("nation", 400))
        .expect("nation");
    let builder = PlanBuilder::new(catalog);
    let plan = builder
        .scan("customer")
        .expect("scan customer")
        .hash_join(
            builder.scan("nation").expect("scan nation"),
            "nation.nationkey",
            "customer.nationkey",
        )
        .expect("join")
        .aggregate(
            &["nation.nationkey"],
            &[(AggFunc::CountStar, None, "tally")],
        )
        .expect("aggregate");
    Workload {
        name: "skew_join",
        gated: true,
        io_us: BLOCK_IO_US,
        plan,
    }
}

/// TPC-H Q8 (pipelined estimation — drains stay serial by design).
fn q8_workload(scale: Scale) -> Workload {
    let catalog = TpchGenerator::new(TpchConfig {
        scale: scale.q8_sf(),
        skew: 2.0,
        seed: 88,
    })
    .catalog()
    .expect("tpch catalog");
    let builder = PlanBuilder::new(catalog);
    Workload {
        name: "q8",
        gated: false,
        io_us: BLOCK_IO_US,
        plan: q8_plan(&builder).expect("q8 plan"),
    }
}

fn opts(threads: usize, io_us: u64) -> PhysicalOptions {
    PhysicalOptions {
        sample_fraction: 0.10,
        block_io_us: io_us,
        threads,
        ..PhysicalOptions::default()
    }
}

/// Minimum wall time per thread count, interleaved across repetitions.
fn time_threads(w: &Workload, runs: usize) -> Vec<Duration> {
    let closures: Vec<Box<dyn FnMut() + '_>> = THREADS
        .iter()
        .map(|&t| {
            Box::new(move || {
                compile(&w.plan, &opts(t, w.io_us))
                    .expect("compile")
                    .collect()
                    .expect("workload run");
            }) as Box<dyn FnMut() + '_>
        })
        .collect();
    interleaved_min_times(runs, closures)
}

/// One traced, sampled run at `threads`: converged hash-join estimate (bit
/// pattern) plus the progress-quality score against the oracle.
fn quality(w: &Workload, threads: usize) -> (Option<u64>, ProgressScore) {
    let ring = Arc::new(RingSink::with_capacity(1 << 16));
    let bus = EventBus::builder().sink(Arc::clone(&ring) as _).build();
    // Quality runs skip the emulated I/O: it only stretches wall time.
    let mut q =
        compile_traced(&w.plan, &opts(threads, 0), Some(Arc::clone(&bus))).expect("compile");
    let recorder = TimelineRecorder::new(q.tracker()).with_bus(bus);
    let sampler = recorder.spawn(Duration::from_millis(2));
    q.collect().expect("workload run");
    let _ = sampler.finish();
    let estimate = q
        .registry()
        .iter()
        .find(|(n, _)| *n == "hash_join")
        .map(|(_, m)| m.estimated_total().to_bits());
    (estimate, qprog::obs::score_events(&ring.drain()))
}

struct Entry {
    workload: &'static str,
    gated: bool,
    times: Vec<Duration>,
    /// Converged hash-join estimate bits at each thread count (quality run).
    estimates: Vec<Option<u64>>,
    scores: Vec<ProgressScore>,
}

impl Entry {
    fn speedup(&self, i: usize) -> f64 {
        let t = self.times[i].as_secs_f64();
        if t == 0.0 {
            return 1.0;
        }
        self.times[0].as_secs_f64() / t
    }

    fn estimates_identical(&self) -> bool {
        self.estimates.iter().all(|e| *e == self.estimates[0])
    }

    fn to_json(&self) -> String {
        let times: Vec<String> = THREADS
            .iter()
            .zip(&self.times)
            .map(|(t, d)| format!("\"t{t}_ms\":{:.3}", d.as_secs_f64() * 1e3))
            .collect();
        let speedups: Vec<String> = THREADS
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, t)| format!("\"t{t}_speedup\":{:.3}", self.speedup(i)))
            .collect();
        let quality: Vec<String> = THREADS
            .iter()
            .zip(&self.scores)
            .map(|(t, s)| format!("\"t{t}\":{}", s.to_json()))
            .collect();
        format!(
            "{{\"workload\":\"{}\",\"gated\":{},{},{},\
             \"estimates_identical\":{},\"quality\":{{{}}}}}",
            self.workload,
            self.gated,
            times.join(","),
            speedups.join(","),
            self.estimates_identical(),
            quality.join(","),
        )
    }
}

fn main() {
    let scale = Scale::detect();
    banner(
        "parallel_scale",
        "partition-parallel scaling: skew join at 1/2/4 worker threads",
        scale,
    );
    let runs = if scale.full { 3 } else { 5 };

    println!("generating workloads...");
    let workloads = [skew_join_workload(scale), q8_workload(scale)];

    let mut entries: Vec<Entry> = Vec::new();
    for w in &workloads {
        println!("running {}...", w.name);
        let (estimates, scores): (Vec<_>, Vec<_>) = THREADS.iter().map(|&t| quality(w, t)).unzip();
        let times = time_threads(w, runs);
        entries.push(Entry {
            workload: w.name,
            gated: w.gated,
            times,
            estimates,
            scores,
        });
    }

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.workload.to_string(),
                ms(e.times[0]),
                format!("{} ({:.2}x)", ms(e.times[1]), e.speedup(1)),
                format!("{} ({:.2}x)", ms(e.times[2]), e.speedup(2)),
                if e.estimates_identical() { "yes" } else { "NO" }.to_string(),
                format!("{:.3}", e.scores[2].mean_abs_err),
                if e.gated { "gated" } else { "info" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "workload",
            "1t ms",
            "2t ms",
            "4t ms",
            "est ==",
            "4t mean|err|",
            "role",
        ],
        &rows,
    );

    let gated = entries.iter().find(|e| e.gated).expect("a gated workload");
    let speedup_4t = gated.speedup(2);
    println!(
        "\nskew-join 4-thread speedup: {speedup_4t:.2}x \
         (1t {} ms -> 4t {} ms); estimates identical: {}",
        ms(gated.times[0]),
        ms(gated.times[2]),
        gated.estimates_identical(),
    );

    let json = format!(
        "{{\n  \"bench\": \"parallel_scale\",\n  \"scale\": \"{}\",\n  \
         \"runs\": {runs},\n  \"block_io_us\": {BLOCK_IO_US},\n  \
         \"threads\": [{}],\n  \"entries\": [\n    {}\n  ],\n  \
         \"gate\": {{\"speedup_4t\": {speedup_4t:.3}, \
         \"estimates_identical\": {}}}\n}}\n",
        if scale.full { "full" } else { "quick" },
        THREADS.map(|t| t.to_string()).join(", "),
        entries
            .iter()
            .map(Entry::to_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
        gated.estimates_identical(),
    );
    write_bench_json("BENCH_parallel.json", &json);

    paper_note(&[
        "the paper's framework is estimation-only; parallel drains are this \
         reproduction's extension, constrained to keep §4's estimators \
         bit-identical to serial (mergeable FreqHist fragments)",
        "expect: near-linear I/O overlap on the partitioned skew join; Q8 \
         flat (pipelined estimation keeps its drains serial by design)",
        "expect: converged join estimates identical at every thread count",
    ]);

    if !gated.estimates_identical() {
        eprintln!("FAIL: parallel converged estimates diverge from serial");
        std::process::exit(1);
    }

    // Optional CI gate on the 4-thread speedup.
    if let Ok(bound) = std::env::var("QPROG_PARALLEL_MIN_SPEEDUP") {
        let bound: f64 = bound.parse().expect("QPROG_PARALLEL_MIN_SPEEDUP");
        if speedup_4t < bound {
            eprintln!("FAIL: 4-thread speedup {speedup_4t:.2}x below bound {bound:.2}x");
            std::process::exit(1);
        }
        println!("speedup gate: {speedup_4t:.2}x >= {bound:.2}x — ok");
    }
}
