//! Span-emission overhead on the scorecard workloads.
//!
//! The causal-span subsystem adds two costs on top of the existing trace
//! port: the service's per-lifecycle-transition `SpanStart`/`SpanEnd`
//! events (a handful per query, stamped under the state lock — never on
//! the execution hot path), and the offline assembly of the span tree
//! plus its Chrome trace-event export. This bench measures both against
//! the traced baseline the scorecard already pays:
//!
//! - **traced** — the workload with the standard event bus attached
//!   (ring sink), exactly what the scorecard's `trace` config measures.
//! - **traced+spans** — the same run wrapped in a full service-shaped
//!   [`SpanLog`] lifecycle (submit → journal append → queue wait →
//!   dispatch → finalize), followed by `SpanTree` assembly,
//!   lifecycle-totals reduction, and the Chrome JSON export.
//!
//! The delta is the whole price of span tracing for one query. Gate:
//! `QPROG_SPANS_MAX_OVERHEAD_PCT` (CI pins 5) fails the run when any
//! workload exceeds the bound. Results go to `BENCH_spans.json`.
//!
//! ```sh
//! cargo bench --bench span_overhead            # quick scale
//! QPROG_FULL=1 cargo bench --bench span_overhead
//! ```

use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use qprog::obs::SpanTree;
use qprog::plan::physical::{compile_traced, PhysicalOptions};
use qprog::plan::{LogicalPlan, PlanBuilder};
use qprog::prelude::*;
use qprog::svc::SpanLog;
use qprog::workloads::q8_plan;
use qprog_bench::{
    banner, interleaved_min_times, ms, overhead_pct, paper_note, print_table, write_bench_json,
    Scale,
};
use qprog_datagen::{TpchConfig, TpchGenerator};
use qprog_exec::ops::agg::AggFunc;
use qprog_exec::span::SpanKind;
use qprog_exec::trace::TraceEvent;

/// One scorecard workload: a name and a reusable logical plan.
struct Workload {
    name: &'static str,
    plan: LogicalPlan,
}

/// TPC-H Q8 on the Zipf-2 database (the paper's Fig. 8 setup).
fn q8_workload(scale: Scale) -> Workload {
    let catalog = TpchGenerator::new(TpchConfig {
        scale: scale.q8_sf(),
        skew: 2.0,
        seed: 88,
    })
    .catalog()
    .expect("tpch catalog");
    let builder = PlanBuilder::new(catalog);
    Workload {
        name: "q8",
        plan: q8_plan(&builder).expect("q8 plan"),
    }
}

/// Skewed hash-join + aggregate (the scorecard's second workload).
fn skew_join_workload(scale: Scale) -> Workload {
    let mut catalog = Catalog::new();
    catalog
        .register(qprog::datagen::customer_table(
            "customer",
            scale.accuracy_rows(),
            2.0,
            400,
            11,
        ))
        .expect("customer");
    catalog
        .register(qprog::datagen::nation_table("nation", 400))
        .expect("nation");
    let builder = PlanBuilder::new(catalog);
    let plan = builder
        .scan("customer")
        .expect("scan customer")
        .hash_join(
            builder.scan("nation").expect("scan nation"),
            "nation.nationkey",
            "customer.nationkey",
        )
        .expect("join")
        .aggregate(
            &["nation.nationkey"],
            &[(AggFunc::CountStar, None, "tally")],
        )
        .expect("aggregate");
    Workload {
        name: "skew_join",
        plan,
    }
}

/// Run the plan with a ring-sinked trace bus; return the drained events.
fn traced_run(plan: &LogicalPlan, popts: &PhysicalOptions) -> Vec<TraceEvent> {
    let ring = Arc::new(RingSink::with_capacity(1 << 14));
    let bus = EventBus::builder().sink(Arc::clone(&ring) as _).build();
    let mut q = compile_traced(plan, popts, Some(bus)).expect("compile");
    q.collect().expect("workload run");
    ring.drain()
}

/// The traced run plus everything span tracing adds: a service-shaped
/// lifecycle log around the execution, then tree assembly, totals, and
/// the Chrome export.
fn spans_run(plan: &LogicalPlan, popts: &PhysicalOptions) -> usize {
    let mut log = SpanLog::new(std::time::Instant::now());
    log.push(SpanKind::Query, 0);
    log.push(SpanKind::Submit, 0);
    log.push(SpanKind::JournalAppend, 0);
    log.pop(); // journal append
    log.pop(); // submit
    log.push(SpanKind::QueueWait, 0);
    log.pop();
    log.push(SpanKind::Dispatch, 0);
    let mut events = traced_run(plan, popts);
    let t = log.now_us();
    log.close_children(t);
    log.push_at(t, SpanKind::Finalize, 0);
    log.close_all(log.now_us());

    // Merge lifecycle + execution events on one stream, as the service's
    // `/trace/{id}` path does, then pay the full offline analysis.
    events.extend_from_slice(log.events());
    let totals = log.totals();
    let tree = SpanTree::from_events(&events, &[]);
    assert!(tree.nesting_violations().is_empty(), "span tree not nested");
    assert_eq!(totals.attempts, 1);
    tree.to_chrome_json(0).len()
}

fn main() {
    let scale = Scale::detect();
    banner(
        "BENCH_spans",
        "span-emission overhead on the scorecard workloads",
        scale,
    );
    let runs = if scale.full { 7 } else { 3 };
    let popts = PhysicalOptions::default();

    let workloads = [q8_workload(scale), skew_join_workload(scale)];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut entries: Vec<String> = Vec::new();
    let mut worst_pct = f64::MIN;

    for w in &workloads {
        let closures: Vec<Box<dyn FnMut() + '_>> = vec![
            Box::new(|| {
                black_box(traced_run(&w.plan, &popts).len());
            }),
            Box::new(|| {
                black_box(spans_run(&w.plan, &popts));
            }),
        ];
        let times: Vec<Duration> = interleaved_min_times(runs, closures);
        let (traced, spans) = (times[0], times[1]);
        let pct = (spans.as_secs_f64() / traced.as_secs_f64() - 1.0) * 100.0;
        worst_pct = worst_pct.max(pct);
        rows.push(vec![
            w.name.to_string(),
            ms(traced),
            ms(spans),
            overhead_pct(traced, spans),
        ]);
        entries.push(format!(
            "{{\"workload\": \"{}\", \"traced_ms\": {:.3}, \"spans_ms\": {:.3}, \
             \"overhead_pct\": {:.3}}}",
            w.name,
            traced.as_secs_f64() * 1e3,
            spans.as_secs_f64() * 1e3,
            pct,
        ));
    }

    print_table(&["workload", "traced", "traced+spans", "overhead"], &rows);

    let bound: f64 = std::env::var("QPROG_SPANS_MAX_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    let pass = worst_pct <= bound;
    let json = format!(
        "{{\n  \"bench\": \"span_overhead\",\n  \"scale\": \"{}\",\n  \"runs\": {},\n  \
         \"workloads\": [\n    {}\n  ],\n  \"worst_overhead_pct\": {:.3},\n  \
         \"bound_pct\": {},\n  \"pass\": {}\n}}\n",
        if scale.full { "full" } else { "quick" },
        runs,
        entries.join(",\n    "),
        worst_pct,
        bound,
        pass,
    );
    write_bench_json("BENCH_spans.json", &json);

    paper_note(&[
        "the paper keeps its estimators within a few percent of query \
         time; span tracing rides the same trace port and must stay in \
         that envelope",
        "expect: lifecycle span emission is a handful of events per query \
         (stamped off the hot path) — the measurable cost is the offline \
         tree assembly + Chrome export, amortized once per run",
        "expect: overhead well under the 5% CI gate on both workloads",
    ]);

    if !pass {
        eprintln!(
            "FAIL: span overhead {worst_pct:.2}% exceeds the {bound}% bound \
             (QPROG_SPANS_MAX_OVERHEAD_PCT)"
        );
        std::process::exit(1);
    }
    println!("span overhead {worst_pct:+.2}% within the {bound}% bound");
}
