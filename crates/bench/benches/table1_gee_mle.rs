//! Table 1: GEE vs MLE accuracy on the customer grouping column for
//! varying distinct-value budgets and skews.
//!
//! Columns (as in the paper): the number of *possible* distinct values, the
//! skew z, γ² when 10% of the input has been seen, the number of input rows
//! each estimator needs before first reaching within 10% of the true group
//! count, and the rows needed before *all* groups have been seen.

use qprog_bench::{banner, paper_note, print_table, write_csv, Scale};
use qprog_core::chooser::{choose_estimator, EstimatorChoice, DEFAULT_TAU};
use qprog_core::freq_hist::FreqHist;
use qprog_core::gee::Gee;
use qprog_core::mle::mle_estimate;
use qprog_datagen::customer_table;
use qprog_types::Key;

struct Row1 {
    values: usize,
    gamma_at_10pct: f64,
    gee_rows: Option<u64>,
    mle_rows: Option<u64>,
    all_seen: u64,
    chosen: &'static str,
}

fn run_config(rows: usize, values: usize, z: f64, mle_every: u64) -> Row1 {
    let keys: Vec<Key> = customer_table("c", rows, z, values, 1)
        .iter()
        .map(|r| r.key(1).expect("int column"))
        .collect();
    let truth = {
        let mut h = FreqHist::new();
        for k in &keys {
            h.observe(k);
        }
        h.distinct() as f64
    };
    let within = |e: f64| (e - truth).abs() / truth <= 0.10;

    let mut hist = FreqHist::new();
    let mut gee = Gee::new(rows as u64);
    let mut gee_rows = None;
    let mut mle_rows = None;
    let mut all_seen = 0u64;
    let mut gamma_at_10pct = 0.0;
    for (i, k) in keys.iter().enumerate() {
        let t = (i + 1) as u64;
        let prior = hist.observe(k);
        gee.observe_transition(prior);
        if hist.distinct() as f64 >= truth && all_seen == 0 {
            all_seen = t;
        }
        if gee_rows.is_none() && within(gee.estimate()) {
            gee_rows = Some(t);
        }
        if mle_rows.is_none()
            && t.is_multiple_of(mle_every)
            && within(mle_estimate(&hist, rows as u64))
        {
            mle_rows = Some(t);
        }
        if t == (rows as u64) / 10 {
            gamma_at_10pct = hist.gamma_squared();
        }
    }
    Row1 {
        values,
        gamma_at_10pct,
        gee_rows,
        mle_rows,
        all_seen,
        chosen: match choose_estimator(gamma_at_10pct, DEFAULT_TAU) {
            EstimatorChoice::Gee => "GEE",
            EstimatorChoice::Mle => "MLE",
        },
    }
}

fn main() {
    let scale = Scale::detect();
    banner("table1", "GEE vs MLE rows-to-±10% (paper Table 1)", scale);
    let rows = scale.accuracy_rows();
    let value_budgets: Vec<usize> = if scale.full {
        vec![100, 1_000, 10_000, 100_000]
    } else {
        vec![100, 1_000, 5_000, 20_000]
    };
    let mle_every = (rows as u64 / 500).max(1);

    let mut table = Vec::new();
    for &values in &value_budgets {
        for &z in &[0.0, 1.0, 2.0] {
            let r = run_config(rows, values, z, mle_every);
            let fmt_rows =
                |o: Option<u64>| o.map(|v| v.to_string()).unwrap_or_else(|| "never".into());
            table.push(vec![
                r.values.to_string(),
                format!("{z}"),
                format!("{:.2}", r.gamma_at_10pct),
                fmt_rows(r.gee_rows),
                fmt_rows(r.mle_rows),
                r.all_seen.to_string(),
                r.chosen.to_string(),
            ]);
        }
    }
    print_table(
        &[
            "#values",
            "z",
            "γ²@10%",
            "GEE",
            "MLE",
            "all seen",
            "chosen (τ=10)",
        ],
        &table,
    );
    write_csv(
        "table1_gee_mle",
        &[
            "values",
            "z",
            "gamma2_at_10pct",
            "gee_rows",
            "mle_rows",
            "all_seen",
            "chosen",
        ],
        &table,
    );
    paper_note(&[
        "paper: GEE reaches ±10% earlier on high-skew data and when many \
         low-frequency values exist; MLE wins on low-skew data",
        "paper: a wide γ² gap separates low- and high-skew configurations, and \
         γ² < τ=10 selects the better estimator",
    ]);
}
