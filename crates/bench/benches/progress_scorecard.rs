//! Continuous progress-quality scorecard: the fixed workload matrix
//! (TPC-H Q8 under Zipf-2 skew, plus a skewed hash-join aggregate) runs
//! under every estimator (`once` / `dne` / `byte`) and every observability
//! configuration (trace off, JSONL trace, metrics sink, full monitor
//! registration), producing:
//!
//! - throughput (driver tuples/s) and per-configuration overhead vs the
//!   untraced baseline, measured with interleaved minimum-of-runs timing,
//! - progress-quality scores from a traced run sampled by a
//!   [`TimelineRecorder`]: mean/max absolute progress error against the
//!   retrospective oracle, monotonicity violations, convergence point, and
//!   final-estimate q-errors ([`qprog::obs::score_events`]).
//!
//! The matrix is written to **`BENCH_progress.json`** at the repo root so
//! CI can archive the trajectory of progress quality and tracing cost over
//! time. Set `QPROG_SCORECARD_MAX_OVERHEAD_PCT` (e.g. `5`) to turn the
//! aggregate JSONL-trace overhead into a hard gate: the bench exits
//! non-zero when the overhead exceeds the bound.

use std::sync::Arc;
use std::time::Duration;

use qprog::monitor::{PhaseSink, QueryDirectory};
use qprog::obs::{Corpus, CorpusConfig, ProgressScore, RunMeta};
use qprog::plan::physical::{compile, compile_traced, CompiledQuery, PhysicalOptions};
use qprog::plan::{LogicalPlan, PlanBuilder};
use qprog::prelude::*;
use qprog::workloads::q8_plan;
use qprog_bench::{
    banner, interleaved_min_times, ms, overhead_pct, paper_note, print_table, results_dir,
    write_bench_json, Scale,
};
use qprog_datagen::{TpchConfig, TpchGenerator};
use qprog_exec::ops::agg::AggFunc;

/// One workload of the fixed matrix: a name and a reusable logical plan.
struct Workload {
    name: &'static str,
    plan: LogicalPlan,
}

/// TPC-H Q8 on the Zipf-2 database (the paper's Fig. 8 setup).
fn q8_workload(scale: Scale) -> Workload {
    let catalog = TpchGenerator::new(TpchConfig {
        scale: scale.q8_sf(),
        skew: 2.0,
        seed: 88,
    })
    .catalog()
    .expect("tpch catalog");
    let builder = PlanBuilder::new(catalog);
    Workload {
        name: "q8",
        plan: q8_plan(&builder).expect("q8 plan"),
    }
}

/// Skewed hash-join + aggregate: Zipf-2 customers against a small
/// dimension, grouped back down to the dimension key.
fn skew_join_workload(scale: Scale) -> Workload {
    let mut catalog = Catalog::new();
    catalog
        .register(qprog::datagen::customer_table(
            "customer",
            scale.accuracy_rows(),
            2.0,
            400,
            11,
        ))
        .expect("customer");
    catalog
        .register(qprog::datagen::nation_table("nation", 400))
        .expect("nation");
    let builder = PlanBuilder::new(catalog);
    let plan = builder
        .scan("customer")
        .expect("scan customer")
        .hash_join(
            builder.scan("nation").expect("scan nation"),
            "nation.nationkey",
            "customer.nationkey",
        )
        .expect("join")
        .aggregate(
            &["nation.nationkey"],
            &[(AggFunc::CountStar, None, "tally")],
        )
        .expect("aggregate");
    Workload {
        name: "skew_join",
        plan,
    }
}

fn opts(mode: EstimationMode) -> PhysicalOptions {
    PhysicalOptions {
        mode,
        sample_fraction: 0.10,
        ..PhysicalOptions::default()
    }
}

/// Compile and drain a query, returning the driver-tuple count `C(Q)`.
fn drain(mut q: CompiledQuery) -> u64 {
    let tracker = q.tracker();
    q.collect().expect("workload run");
    tracker.snapshot().current()
}

/// The four observability configurations timed against each other.
const CONFIGS: [&str; 4] = ["off", "trace", "metrics", "monitor"];

/// Minimum wall time per configuration, interleaved across repetitions.
fn time_configs(plan: &LogicalPlan, mode: EstimationMode, runs: usize) -> Vec<Duration> {
    let popts = opts(mode);
    let metrics_registry = Arc::new(Registry::new());
    let monitor_registry = Arc::new(Registry::new());
    let directory = Arc::new(QueryDirectory::new(Some(&monitor_registry)));
    let closures: Vec<Box<dyn FnMut() + '_>> = vec![
        // off: no bus at all — the single-branch untraced fast path.
        Box::new(|| {
            drain(compile(plan, &popts).expect("compile"));
        }),
        // trace: every event serialized as JSONL (into the null writer, so
        // the cost measured is stamping + encoding, not disk).
        Box::new(|| {
            let sink = Arc::new(JsonlSink::new(std::io::sink()));
            let bus = EventBus::builder().sink(sink as _).build();
            drain(compile_traced(plan, &popts, Some(bus)).expect("compile"));
        }),
        // metrics: events aggregated into Prometheus counters/histograms.
        Box::new(|| {
            let sink = Arc::new(MetricsSink::new(
                Arc::clone(&metrics_registry),
                mode.label(),
            ));
            let bus = EventBus::builder().sink(sink as _).build();
            drain(compile_traced(plan, &popts, Some(bus)).expect("compile"));
        }),
        // monitor: metrics + phase tracking + live directory registration,
        // i.e. everything the HTTP monitor needs.
        Box::new(|| {
            let sink = Arc::new(MetricsSink::new(
                Arc::clone(&monitor_registry),
                mode.label(),
            ));
            let phases = Arc::new(PhaseSink::new());
            let bus = EventBus::builder()
                .sink(sink as _)
                .sink(Arc::clone(&phases) as _)
                .build();
            let mut q = compile_traced(plan, &popts, Some(bus)).expect("compile");
            let monitored =
                directory.register("scorecard", mode.label(), q.tracker(), phases, None);
            q.collect().expect("workload run");
            drop(monitored);
        }),
    ];
    interleaved_min_times(runs, closures)
}

/// One traced run sampled by a [`TimelineRecorder`], scored against the
/// retrospective oracle; also returns the driver-tuple count. With a
/// corpus, the run is archived under `results/` so repeated bench
/// invocations accumulate a scorecard history (and eventually exercise the
/// retention cap) that the regression baselines run against.
fn quality(
    plan: &LogicalPlan,
    mode: EstimationMode,
    corpus: Option<&Corpus>,
    workload: &str,
) -> (ProgressScore, u64) {
    let ring = Arc::new(RingSink::with_capacity(1 << 16));
    let bus = EventBus::builder().sink(Arc::clone(&ring) as _).build();
    let mut q = compile_traced(plan, &opts(mode), Some(Arc::clone(&bus))).expect("compile");
    let tracker = q.tracker();
    let recorder = TimelineRecorder::new(q.tracker()).with_bus(bus);
    let sampler = recorder.spawn(Duration::from_millis(2));
    q.collect().expect("workload run");
    let _ = sampler.finish();
    let events = ring.drain();
    if let Some(corpus) = corpus {
        let op_names: Vec<String> = q.registry().iter().map(|(n, _)| n.to_string()).collect();
        let meta = RunMeta::new(workload, mode.label());
        match corpus.archive(&meta, &events, &op_names) {
            Ok(run) => {
                for r in &run.regressions {
                    println!(
                        "  REGRESSION {}: {:.4} > threshold {:.4} (baseline {:.4})",
                        r.kind, r.observed, r.threshold, r.baseline
                    );
                }
            }
            Err(e) => println!("  (corpus archive failed: {e})"),
        }
    }
    (
        qprog::obs::score_events(&events),
        tracker.snapshot().current(),
    )
}

/// Batch-vs-tuple throughput for one workload: the untraced `off`
/// configuration timed in strict tuple-at-a-time mode (`batch_rows = 1`)
/// against the vectorized default, interleaved minimum-of-runs.
struct BatchSpeedup {
    workload: &'static str,
    tuples: u64,
    batch_rows: usize,
    tuple_time: Duration,
    batch_time: Duration,
}

impl BatchSpeedup {
    fn rows_per_s(tuples: u64, t: Duration) -> f64 {
        let s = t.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            tuples as f64 / s
        }
    }

    fn tuple_rows_per_s(&self) -> f64 {
        Self::rows_per_s(self.tuples, self.tuple_time)
    }

    fn batch_rows_per_s(&self) -> f64 {
        Self::rows_per_s(self.tuples, self.batch_time)
    }

    fn speedup(&self) -> f64 {
        let b = self.batch_time.as_secs_f64();
        if b == 0.0 {
            0.0
        } else {
            self.tuple_time.as_secs_f64() / b
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"workload\":\"{}\",\"tuples\":{},\"batch_rows\":{},\
             \"tuple_rows_per_s\":{:.0},\"batch_rows_per_s\":{:.0},\
             \"speedup\":{:.2}}}",
            self.workload,
            self.tuples,
            self.batch_rows,
            self.tuple_rows_per_s(),
            self.batch_rows_per_s(),
            self.speedup(),
        )
    }
}

fn measure_batch_speedup(w: &Workload, runs: usize) -> BatchSpeedup {
    let tuple_opts = PhysicalOptions {
        batch_rows: 1,
        ..opts(EstimationMode::Once)
    };
    let batch_opts = opts(EstimationMode::Once);
    let tuples = drain(compile(&w.plan, &batch_opts).expect("compile"));
    let closures: Vec<Box<dyn FnMut() + '_>> = vec![
        Box::new(|| {
            drain(compile(&w.plan, &tuple_opts).expect("compile"));
        }),
        Box::new(|| {
            drain(compile(&w.plan, &batch_opts).expect("compile"));
        }),
    ];
    let times = interleaved_min_times(runs, closures);
    BatchSpeedup {
        workload: w.name,
        tuples,
        batch_rows: batch_opts.batch_rows,
        tuple_time: times[0],
        batch_time: times[1],
    }
}

/// One row of the scorecard matrix.
struct Entry {
    workload: &'static str,
    estimator: &'static str,
    tuples: u64,
    times: Vec<Duration>,
    score: ProgressScore,
}

impl Entry {
    fn overhead(&self, config: usize) -> f64 {
        let off = self.times[0].as_secs_f64();
        if off == 0.0 {
            return 0.0;
        }
        (self.times[config].as_secs_f64() / off - 1.0) * 100.0
    }

    fn rows_per_s(&self) -> f64 {
        let off = self.times[0].as_secs_f64();
        if off == 0.0 {
            return 0.0;
        }
        self.tuples as f64 / off
    }

    fn to_json(&self) -> String {
        let times: Vec<String> = CONFIGS
            .iter()
            .enumerate()
            .map(|(i, c)| format!("\"{c}_ms\":{:.3}", self.times[i].as_secs_f64() * 1e3))
            .collect();
        let overheads: Vec<String> = CONFIGS
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, c)| format!("\"{c}_overhead_pct\":{:.2}", self.overhead(i)))
            .collect();
        format!(
            "{{\"workload\":\"{}\",\"estimator\":\"{}\",\"tuples\":{},\
             \"rows_per_s\":{:.0},{},{},\"quality\":{}}}",
            self.workload,
            self.estimator,
            self.tuples,
            self.rows_per_s(),
            times.join(","),
            overheads.join(","),
            self.score.to_json(),
        )
    }
}

fn main() {
    let scale = Scale::detect();
    banner(
        "scorecard",
        "progress-quality scorecard: workload matrix x estimator x observability",
        scale,
    );
    let runs = if scale.full { 5 } else { 7 };
    let modes = [
        ("once", EstimationMode::Once),
        ("dne", EstimationMode::Dne),
        ("byte", EstimationMode::Byte),
    ];

    println!("generating workloads...");
    let workloads = [q8_workload(scale), skew_join_workload(scale)];

    // Every quality run is archived into a persistent corpus under
    // results/, so reruns build a baseline history per (workload,
    // estimator) and progress-quality regressions get flagged right in the
    // bench output. The cap is a few invocations of the 6-entry matrix, so
    // sustained use also exercises oldest-run eviction.
    let corpus = Corpus::open_with(
        results_dir().join("scorecard_corpus"),
        CorpusConfig {
            max_runs: 30,
            ..CorpusConfig::default()
        },
    )
    .map_err(|e| println!("(scorecard corpus unavailable: {e})"))
    .ok();

    let mut entries: Vec<Entry> = Vec::new();
    for w in &workloads {
        for (label, mode) in modes {
            println!("running {} [{label}]...", w.name);
            let (score, tuples) = quality(&w.plan, mode, corpus.as_ref(), w.name);
            let times = time_configs(&w.plan, mode, runs);
            entries.push(Entry {
                workload: w.name,
                estimator: label,
                tuples,
                times,
                score,
            });
        }
    }

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.workload.to_string(),
                e.estimator.to_string(),
                ms(e.times[0]),
                overhead_pct(e.times[0], e.times[1]),
                overhead_pct(e.times[0], e.times[2]),
                overhead_pct(e.times[0], e.times[3]),
                format!("{:.0}k/s", e.rows_per_s() / 1e3),
                format!("{:.3}", e.score.mean_abs_err),
                e.score
                    .convergence
                    .map_or("never".into(), |c| format!("{:.0}%", c * 100.0)),
                e.score.monotonicity_violations.to_string(),
                format!("{:.2}", e.score.q_error.mean),
            ]
        })
        .collect();
    print_table(
        &[
            "workload",
            "estimator",
            "off ms",
            "trace",
            "metrics",
            "monitor",
            "tuples/s",
            "mean|err|",
            "conv",
            "mono",
            "qerr",
        ],
        &rows,
    );

    // Batch-vs-tuple throughput: the vectorized engine against strict
    // per-row mode, per workload, on the untraced fast path.
    println!("\nmeasuring batch speedup (tuple mode vs batch_rows default)...");
    let speedups: Vec<BatchSpeedup> = workloads
        .iter()
        .map(|w| measure_batch_speedup(w, runs))
        .collect();
    let speedup_rows: Vec<Vec<String>> = speedups
        .iter()
        .map(|s| {
            vec![
                s.workload.to_string(),
                s.batch_rows.to_string(),
                format!("{:.0}k/s", s.tuple_rows_per_s() / 1e3),
                format!("{:.0}k/s", s.batch_rows_per_s() / 1e3),
                format!("{:.2}x", s.speedup()),
            ]
        })
        .collect();
    print_table(
        &[
            "workload",
            "batch_rows",
            "tuple rows/s",
            "batch rows/s",
            "speedup",
        ],
        &speedup_rows,
    );

    // Aggregate trace overhead across the whole matrix: total best-of-runs
    // traced time vs total untraced time.
    let total = |i: usize| {
        entries
            .iter()
            .map(|e| e.times[i].as_secs_f64())
            .sum::<f64>()
    };
    let (off_total, trace_total) = (total(0), total(1));
    let aggregate_overhead = if off_total > 0.0 {
        (trace_total / off_total - 1.0) * 100.0
    } else {
        0.0
    };
    let worst_mean_err = entries
        .iter()
        .map(|e| e.score.mean_abs_err)
        .fold(0.0, f64::max);
    println!(
        "\naggregate JSONL-trace overhead: {aggregate_overhead:+.2}% \
         (off {:.1} ms, traced {:.1} ms); worst mean|err| {worst_mean_err:.3}",
        off_total * 1e3,
        trace_total * 1e3,
    );

    let min_speedup = speedups
        .iter()
        .map(BatchSpeedup::speedup)
        .fold(f64::INFINITY, f64::min);
    let json = format!(
        "{{\n  \"bench\": \"progress_scorecard\",\n  \"scale\": \"{}\",\n  \
         \"runs\": {runs},\n  \"configs\": [{}],\n  \"entries\": [\n    {}\n  ],\n  \
         \"batch\": [\n    {}\n  ],\n  \
         \"aggregate\": {{\"trace_overhead_pct\": {aggregate_overhead:.2}, \
         \"worst_mean_abs_err\": {worst_mean_err:.4}, \
         \"min_batch_speedup\": {min_speedup:.2}}}\n}}\n",
        if scale.full { "full" } else { "quick" },
        CONFIGS
            .iter()
            .map(|c| format!("\"{c}\""))
            .collect::<Vec<_>>()
            .join(", "),
        entries
            .iter()
            .map(Entry::to_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
        speedups
            .iter()
            .map(BatchSpeedup::to_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    write_bench_json("BENCH_progress.json", &json);
    if let Some(corpus) = &corpus {
        println!(
            "(scorecard corpus: {} runs, {} trace bytes at {})",
            corpus.len(),
            corpus.trace_bytes(),
            corpus.dir().display()
        );
    }

    paper_note(&[
        "paper §5.3: tracking overhead stays within a few percent of the \
         untraced run even for multi-join pipelines",
        "expect: once converges earliest with the lowest mean error; dne \
         runs ahead under skew; byte tracks once but weights wide rows more",
        "expect: trace < metrics < monitor overhead ordering, all small; \
         the JSONL trace pays encoding, the monitor adds phase tracking",
    ]);

    // Hard gate: the reporting layer clamps published fractions to their
    // running max, so the scorecard must never observe a regression — any
    // violation means raw estimator wobble leaked past the clamp.
    let violations: usize = entries
        .iter()
        .map(|e| e.score.monotonicity_violations)
        .sum();
    if violations > 0 {
        eprintln!("FAIL: {violations} monotonicity violations in published progress");
        std::process::exit(1);
    }
    println!(
        "monotonicity gate: zero violations across {} entries — ok",
        entries.len()
    );

    // Optional CI gate on the aggregate JSONL-trace overhead.
    if let Ok(bound) = std::env::var("QPROG_SCORECARD_MAX_OVERHEAD_PCT") {
        let bound: f64 = bound.parse().expect("QPROG_SCORECARD_MAX_OVERHEAD_PCT");
        if aggregate_overhead > bound {
            eprintln!(
                "FAIL: aggregate trace overhead {aggregate_overhead:.2}% \
                 exceeds bound {bound:.2}%"
            );
            std::process::exit(1);
        }
        println!("overhead gate: {aggregate_overhead:.2}% <= {bound:.2}% — ok");
    }

    // Optional CI gate on the vectorization win: every workload's batch
    // throughput must be at least `bound`× its tuple-at-a-time throughput.
    if let Ok(bound) = std::env::var("QPROG_BATCH_MIN_SPEEDUP") {
        let bound: f64 = bound.parse().expect("QPROG_BATCH_MIN_SPEEDUP");
        if min_speedup < bound {
            eprintln!("FAIL: batch speedup {min_speedup:.2}x below bound {bound:.2}x");
            std::process::exit(1);
        }
        println!("batch speedup gate: {min_speedup:.2}x >= {bound:.2}x — ok");
    }
}
