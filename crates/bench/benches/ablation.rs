//! Ablations of the design choices the paper motivates (DESIGN.md §6):
//!
//! 1. the incremental `D_{t+1}` update vs periodically cross-multiplying
//!    two histograms (the §4.1 "basic scheme" the paper rejects);
//! 2. Algorithm 3's adaptive MLE recomputation interval vs fixed intervals;
//! 3. the γ² chooser vs always-GEE vs always-MLE;
//! 4. estimating on every probe tuple vs every k-th tuple.

use std::time::Instant;

use qprog_bench::{banner, paper_note, print_table, time_it, write_csv, Scale};
use qprog_core::distinct::DistinctTracker;
use qprog_core::freq_hist::FreqHist;
use qprog_core::interval::AdaptiveInterval;
use qprog_core::join_est::{OnceJoinEstimator, SymmetricJoinEstimator};
use qprog_core::mle::mle_estimate;
use qprog_datagen::customer_table;
use qprog_types::Key;

fn nationkeys(rows: usize, z: f64, domain: usize, variant: u64) -> Vec<Key> {
    customer_table("c", rows, z, domain, variant)
        .iter()
        .map(|r| r.key(1).expect("int column"))
        .collect()
}

/// Ablation 1: per-tuple incremental update vs periodic full
/// histogram-multiply at several refresh cadences.
fn ablate_join_update(rows: usize, domain: usize) {
    println!("\n[1] incremental D_t update vs periodic histogram cross-multiply");
    let build = nationkeys(rows, 1.0, domain, 1);
    let probe = nationkeys(rows, 1.0, domain, 2);

    let (final_inc, inc_time) = time_it(|| {
        let mut est = OnceJoinEstimator::from_build_keys(build.iter(), probe.len() as u64);
        for k in &probe {
            est.observe_probe(k);
        }
        est.estimate()
    });

    let mut rows_out = vec![vec![
        "incremental (every tuple)".to_string(),
        format!("{:.1}", inc_time.as_secs_f64() * 1000.0),
        format!("{final_inc:.0}"),
    ]];
    for refresh in [100usize, 1000, 10000] {
        let (final_batch, batch_time) = time_it(|| {
            // the basic scheme: maintain a histogram on the probe side too,
            // recompute Σ N_i^R N_i^S by a full pass every `refresh` tuples
            let mut build_hist = FreqHist::new();
            for k in &build {
                build_hist.observe(k);
            }
            let mut probe_hist = FreqHist::new();
            let mut estimate = 0.0f64;
            for (i, k) in probe.iter().enumerate() {
                probe_hist.observe(k);
                if (i + 1) % refresh == 0 || i + 1 == probe.len() {
                    let t = probe_hist.total() as f64;
                    let cross: u128 = probe_hist
                        .iter()
                        .map(|(key, c)| (build_hist.count(&key) * c) as u128)
                        .sum();
                    estimate = cross as f64 / t * probe.len() as f64;
                }
            }
            estimate
        });
        rows_out.push(vec![
            format!("cross-multiply every {refresh}"),
            format!("{:.1}", batch_time.as_secs_f64() * 1000.0),
            format!("{final_batch:.0}"),
        ]);
    }
    print_table(&["strategy", "time ms", "final estimate"], &rows_out);
    write_csv(
        "ablation1_join_update",
        &["strategy", "time_ms", "final"],
        &rows_out,
    );
}

/// Ablation 2: Algorithm 3 vs fixed recomputation intervals.
fn ablate_mle_interval(rows: usize, domain: usize) {
    println!("\n[2] adaptive MLE recomputation (Algorithm 3) vs fixed intervals");
    let keys = nationkeys(rows, 0.5, domain, 1);
    let n = rows as u64;

    let run = |mut due: Box<dyn FnMut(u64) -> bool>| {
        let mut hist = FreqHist::new();
        let mut recomputes = 0u64;
        let start = Instant::now();
        let mut last = 0.0;
        for (i, k) in keys.iter().enumerate() {
            hist.observe(k);
            if due(i as u64 + 1) {
                last = mle_estimate(&hist, n);
                recomputes += 1;
            }
        }
        (recomputes, start.elapsed(), last)
    };

    let mut out = Vec::new();
    // Algorithm 3
    let mut ai = AdaptiveInterval::paper_default(n);
    let mut last_est = 0.0f64;
    let mut hist2 = FreqHist::new();
    let start = Instant::now();
    let mut recomputes = 0u64;
    for k in &keys {
        hist2.observe(k);
        if ai.tick() {
            let new = mle_estimate(&hist2, n);
            ai.feedback(last_est, new);
            last_est = new;
            recomputes += 1;
        }
    }
    out.push(vec![
        "adaptive (Algorithm 3)".to_string(),
        recomputes.to_string(),
        format!("{:.1}", start.elapsed().as_secs_f64() * 1000.0),
        format!("{last_est:.0}"),
    ]);
    for fixed in [n / 1000, n / 100, n / 10] {
        let fixed = fixed.max(1);
        let (r, d, e) = run(Box::new(move |t| t % fixed == 0));
        out.push(vec![
            format!("fixed every {fixed}"),
            r.to_string(),
            format!("{:.1}", d.as_secs_f64() * 1000.0),
            format!("{e:.0}"),
        ]);
    }
    print_table(&["policy", "recomputes", "time ms", "final estimate"], &out);
    write_csv(
        "ablation2_mle_interval",
        &["policy", "recomputes", "time_ms", "final"],
        &out,
    );
}

/// Ablation 3: chooser accuracy vs committing to one estimator.
fn ablate_chooser(rows: usize) {
    println!("\n[3] γ² chooser vs always-GEE vs always-MLE (error at a 10% sample)");
    let mut out = Vec::new();
    for &(z, domain) in &[
        (0.0, 5_000usize),
        (1.0, 5_000),
        (2.0, 5_000),
        (0.0, 200),
        (2.0, 200),
    ] {
        let keys = nationkeys(rows, z, domain, 1);
        let truth = {
            let mut h = FreqHist::new();
            for k in &keys {
                h.observe(k);
            }
            h.distinct() as f64
        };
        let mut tracker = DistinctTracker::new(rows as u64);
        for k in keys.iter().take(rows / 10) {
            tracker.observe(k);
        }
        let err = |e: f64| format!("{:+.1}%", (e / truth - 1.0) * 100.0);
        out.push(vec![
            format!("z={z}, domain={domain}"),
            format!("{truth:.0}"),
            tracker.choice().label().to_string(),
            err(tracker.estimate()),
            err(tracker.gee_estimate()),
            err(tracker.mle_estimate_fresh()),
        ]);
    }
    print_table(
        &[
            "config",
            "true groups",
            "chosen",
            "chooser err",
            "GEE err",
            "MLE err",
        ],
        &out,
    );
    write_csv(
        "ablation3_chooser",
        &[
            "config",
            "truth",
            "chosen",
            "chooser_err",
            "gee_err",
            "mle_err",
        ],
        &out,
    );
}

/// Ablation 4: estimate on every probe tuple vs every k-th tuple.
fn ablate_update_cadence(rows: usize, domain: usize) {
    println!("\n[4] estimation on every tuple vs every k-th tuple");
    let build = nationkeys(rows, 1.0, domain, 1);
    let probe = nationkeys(rows, 1.0, domain, 2);
    let truth: f64 = {
        let mut est = OnceJoinEstimator::from_build_keys(build.iter(), probe.len() as u64);
        for k in &probe {
            est.observe_probe(k);
        }
        est.estimate()
    };
    let mut out = Vec::new();
    for k_every in [1usize, 4, 16, 64] {
        let (est_at_10pct, d) = time_it(|| {
            let mut est = OnceJoinEstimator::from_build_keys(build.iter(), probe.len() as u64);
            let mut at_10 = 0.0;
            for (i, k) in probe.iter().enumerate() {
                if i % k_every == 0 {
                    est.observe_probe(k);
                }
                if i + 1 == probe.len() / 10 {
                    at_10 = est.estimate();
                }
            }
            at_10
        });
        out.push(vec![
            format!("every {k_every}"),
            format!("{:.1}", d.as_secs_f64() * 1000.0),
            format!("{:+.1}%", (est_at_10pct / truth - 1.0) * 100.0),
        ]);
    }
    print_table(&["cadence", "time ms", "err@10% sample"], &out);
    write_csv(
        "ablation4_cadence",
        &["cadence", "time_ms", "err_at_10pct"],
        &out,
    );
    // sanity: the symmetric estimator exists and agrees, documenting why
    // the asymmetric form is preferred
    let mut sym = SymmetricJoinEstimator::new(build.len() as u64, probe.len() as u64);
    for (a, b) in build.iter().zip(probe.iter()) {
        sym.observe_r(a);
        sym.observe_s(b);
    }
    println!(
        "(symmetric basic-scheme estimate after full observation: {:.0}, truth {:.0})",
        sym.estimate(),
        truth
    );
}

fn main() {
    let scale = Scale::detect();
    banner("ablation", "design-choice ablations (DESIGN.md §6)", scale);
    let rows = scale.accuracy_rows();
    let (small, _) = scale.domains();
    ablate_join_update(rows, small);
    ablate_mle_interval(rows, small);
    ablate_chooser(rows);
    ablate_update_cadence(rows, small);
    paper_note(&[
        "incremental per-tuple updates cost no more than coarse periodic \
         cross-multiplies while staying continuously fresh (§4.1.1's argument)",
        "Algorithm 3 buys near-finest-interval accuracy at a fraction of the \
         recomputations",
        "the γ² chooser follows the paper's skew rule (MLE on low skew, GEE \
         otherwise); when the group count rivals the sample size both \
         estimators are biased (GEE up, MLE down) and neither dominates",
    ]);
}
