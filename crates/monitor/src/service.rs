//! Bridge between the query service's [`StatusObserver`] callbacks and the
//! monitor's [`QueryDirectory`], so every submission — queued, retrying,
//! or terminal — is visible over `/progress`, `/progress/{id}`, and SSE
//! exactly like a session-run query.
//!
//! The bridge holds each submission's [`MonitoredQuery`] registration
//! token: a job stays listed from acceptance until the service evicts its
//! terminal record, and the exactly-once terminal SSE frame fires when the
//! service declares the outcome (never from a transient attempt's abort).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use qprog_exec::sync::Mutex;
use qprog_service::{JobOutcome, JobSpec, StatusObserver};

use crate::directory::{ManagedState, MonitoredQuery, QueryDirectory};

/// [`StatusObserver`] implementation backed by a [`QueryDirectory`].
///
/// Callbacks arrive under the service's state lock; every method here only
/// touches the directory (entries lock, then hub), never the service, so
/// the lock order service → directory is acyclic.
pub struct DirectoryObserver {
    directory: Arc<QueryDirectory>,
    /// Estimator label rendered for managed entries (execution attaches
    /// later; until then the directory has nothing else to report).
    estimator: String,
    tokens: Mutex<BTreeMap<u64, MonitoredQuery>>,
}

impl DirectoryObserver {
    /// A bridge publishing service lifecycle into `directory`.
    pub fn new(directory: Arc<QueryDirectory>, estimator: impl Into<String>) -> Arc<Self> {
        Arc::new(DirectoryObserver {
            directory,
            estimator: estimator.into(),
            tokens: Mutex::new(BTreeMap::new()),
        })
    }

    /// The directory this bridge publishes into.
    pub fn directory(&self) -> &Arc<QueryDirectory> {
        &self.directory
    }

    /// Registration tokens currently held (queued/running/retained jobs).
    pub fn tracked(&self) -> usize {
        self.tokens.lock().len()
    }
}

impl StatusObserver for DirectoryObserver {
    fn allocate_id(&self, floor: u64) -> u64 {
        self.directory.allocate_id(floor)
    }

    fn on_queued(&self, job: &JobSpec) {
        let token =
            self.directory
                .register_managed(job.id, &job.label, &self.estimator, &job.tenant);
        self.tokens.lock().insert(job.id, token);
    }

    fn on_dispatched(&self, job: &JobSpec) {
        // `job.attempt` counts *prior* attempts; this dispatch is the next.
        self.directory.set_managed_state(
            job.id,
            ManagedState::Running {
                attempt: job.attempt + 1,
            },
        );
    }

    fn on_retrying(&self, job: &JobSpec, kind: &'static str, _backoff: Duration) {
        self.directory.set_managed_state(
            job.id,
            ManagedState::Retrying {
                kind: kind.to_string(),
                attempt: job.attempt + 1,
            },
        );
    }

    fn on_terminal(&self, job: &JobSpec, outcome: &JobOutcome) {
        let state = match outcome {
            JobOutcome::Finished { rows } => ManagedState::Terminal {
                done: true,
                failure: None,
                rows: Some(*rows),
            },
            JobOutcome::Failed { kind, .. } => ManagedState::Terminal {
                done: false,
                failure: Some((*kind).to_string()),
                rows: None,
            },
        };
        self.directory.set_managed_state(job.id, state);
    }

    fn on_evicted(&self, id: u64) {
        // Dropping the token unregisters the entry; its terminal frame was
        // already broadcast (or is synthesized by the drop for watchers).
        self.tokens.lock().remove(&id);
    }

    fn flush(&self) {
        // Drain calls this so streaming subscribers observe every ending
        // before the process goes away: force a broadcast tick now.
        self.directory.tick();
    }
}

impl std::fmt::Debug for DirectoryObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirectoryObserver")
            .field("tracked", &self.tracked())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_service::JobSpec;
    use std::time::Instant;

    fn job(id: u64, tenant: &str) -> JobSpec {
        JobSpec {
            id,
            tenant: tenant.to_string(),
            label: format!("job {id}"),
            sql: "select 1".to_string(),
            deadline: None,
            submitted: Instant::now(),
            attempt: 0,
        }
    }

    #[test]
    fn observer_mirrors_the_lifecycle_into_the_directory() {
        let dir = Arc::new(QueryDirectory::new(None));
        let obs = DirectoryObserver::new(Arc::clone(&dir), "gnm");
        let id = obs.allocate_id(1);
        let mut j = job(id, "acme");
        obs.on_queued(&j);
        assert_eq!(obs.tracked(), 1);
        assert!(dir
            .render_query(id)
            .unwrap()
            .contains("\"state\":\"queued\""));

        obs.on_dispatched(&j);
        let json = dir.render_query(id).unwrap();
        assert!(json.contains("\"state\":\"running\""), "{json}");
        assert!(json.contains("\"attempt\":1"), "{json}");

        obs.on_retrying(&j, "injected", Duration::from_millis(5));
        let json = dir.render_query(id).unwrap();
        assert!(json.contains("\"state\":\"retrying\""), "{json}");
        assert!(json.contains("\"failure\":\"injected\""), "{json}");

        j.attempt = 1;
        obs.on_dispatched(&j);
        assert!(dir.render_query(id).unwrap().contains("\"attempt\":2"));

        obs.on_terminal(&j, &JobOutcome::Finished { rows: 7 });
        let json = dir.render_query(id).unwrap();
        assert!(json.contains("\"state\":\"done\""), "{json}");
        assert!(json.contains("\"rows\":7"), "{json}");

        // Eviction drops the registration: the entry disappears.
        obs.on_evicted(id);
        assert_eq!(obs.tracked(), 0);
        assert!(dir.render_query(id).is_none());
    }

    #[test]
    fn failed_outcomes_render_their_typed_kind() {
        let dir = Arc::new(QueryDirectory::new(None));
        let obs = DirectoryObserver::new(Arc::clone(&dir), "gnm");
        let id = obs.allocate_id(1);
        let j = job(id, "t");
        obs.on_queued(&j);
        obs.on_terminal(
            &j,
            &JobOutcome::Failed {
                kind: "deadline",
                detail: "expired in queue".to_string(),
            },
        );
        let json = dir.render_query(id).unwrap();
        assert!(json.contains("\"state\":\"failed\""), "{json}");
        assert!(json.contains("\"failure\":\"deadline\""), "{json}");
        assert!(json.contains("\"done\":false"), "{json}");
    }
}
