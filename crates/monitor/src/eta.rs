//! ETA smoothing for the monitor's JSON endpoints.
//!
//! The raw estimate `elapsed × (1 − p) / p` is exact in expectation but
//! wild in practice: at small `p` it amplifies every estimator refinement,
//! and near the end it jitters with scheduling noise. The smoother keeps
//! an exponentially-weighted moving average of the raw estimate, refreshed
//! at a bounded cadence, and declines to answer at all until the query has
//! made enough progress for the formula to mean something.

/// EWMA weight given to the newest raw estimate.
const ALPHA: f64 = 0.3;
/// Below this completed fraction the raw formula is dominated by
/// estimator noise; report no ETA yet.
const MIN_FRACTION: f64 = 0.01;
/// Minimum spacing between EWMA refreshes, so rapid polling does not
/// collapse the average onto the instantaneous estimate.
const MIN_INTERVAL_US: u64 = 20_000;

/// Smoothed remaining-time estimator for one monitored query.
#[derive(Debug, Default)]
pub struct EtaSmoother {
    smoothed: Option<f64>,
    last_refresh_us: u64,
}

impl EtaSmoother {
    /// A fresh smoother with no history.
    pub fn new() -> Self {
        EtaSmoother::default()
    }

    /// Fold in one observation and return the smoothed ETA in
    /// microseconds. Returns `None` while the query is not running
    /// (terminal states have no remaining time) and while `fraction` is
    /// too small for `elapsed × (1 − p) / p` to be meaningful.
    pub fn update(&mut self, elapsed_us: u64, fraction: f64, running: bool) -> Option<u64> {
        if !running {
            self.smoothed = None;
            return None;
        }
        if !fraction.is_finite() || fraction <= MIN_FRACTION {
            return None;
        }
        let p = fraction.min(1.0);
        let raw = elapsed_us as f64 * (1.0 - p) / p;
        match self.smoothed {
            None => {
                self.smoothed = Some(raw);
                self.last_refresh_us = elapsed_us;
            }
            Some(prev) => {
                if elapsed_us.saturating_sub(self.last_refresh_us) >= MIN_INTERVAL_US {
                    self.smoothed = Some(ALPHA * raw + (1.0 - ALPHA) * prev);
                    self.last_refresh_us = elapsed_us;
                }
            }
        }
        self.smoothed.map(|eta| eta.max(0.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_eta_before_meaningful_progress() {
        let mut s = EtaSmoother::new();
        assert_eq!(s.update(1_000, 0.0, true), None);
        assert_eq!(s.update(2_000, 0.0001, true), None);
        assert_eq!(s.update(3_000, f64::NAN, true), None);
        // First answer appears once p clears the floor, seeded from raw.
        let eta = s.update(100_000, 0.5, true).expect("eta at p=0.5");
        assert_eq!(eta, 100_000);
    }

    #[test]
    fn terminal_states_have_no_eta_and_reset_history() {
        let mut s = EtaSmoother::new();
        assert!(s.update(100_000, 0.5, true).is_some());
        // Finished (or failed): no remaining time, history cleared.
        assert_eq!(s.update(200_000, 1.0, false), None);
        assert_eq!(s.update(300_000, 1.0, false), None);
    }

    #[test]
    fn smoothing_damps_swings_and_throttles_refreshes() {
        let mut s = EtaSmoother::new();
        let first = s.update(100_000, 0.5, true).unwrap();
        assert_eq!(first, 100_000);
        // Within the refresh interval the answer is pinned.
        let pinned = s.update(100_500, 0.05, true).unwrap();
        assert_eq!(pinned, 100_000);
        // After the interval, a wildly different raw estimate moves the
        // average only by ALPHA of the gap.
        let raw = 150_000.0 * (1.0 - 0.05) / 0.05; // = 2_850_000
        let smoothed = s.update(150_000, 0.05, true).unwrap();
        let expect = (ALPHA * raw + (1.0 - ALPHA) * 100_000.0) as u64;
        assert_eq!(smoothed, expect);
        assert!((smoothed as f64) < raw);
    }

    #[test]
    fn converges_to_zero_near_completion() {
        let mut s = EtaSmoother::new();
        let mut elapsed = 50_000u64;
        s.update(elapsed, 0.5, true);
        let mut last = u64::MAX;
        for step in 1..=20 {
            elapsed += MIN_INTERVAL_US;
            let p = 0.5 + 0.025 * step as f64;
            last = s.update(elapsed, p, true).unwrap();
        }
        // At p = 1.0 the raw term is 0; the EWMA decays toward it.
        assert!(last < 50_000, "eta should shrink near completion: {last}");
    }
}
