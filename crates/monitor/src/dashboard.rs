//! The self-contained HTML dashboard served at `GET /`.
//!
//! One page, zero external assets. It subscribes to the `GET /events`
//! server-push stream (SSE) for live summaries, health transitions, and
//! terminal frames, falling back to polling `GET /progress` twice a second
//! when streaming is unavailable; per-operator detail (`GET
//! /progress/{id}`) is refreshed on a slower reconcile pass. Each live
//! query renders a progress bar (point estimate plus the `[lo, hi]`
//! confidence band), a health badge (healthy / stalled / unstable), and a
//! per-operator table of `K_i`, `N_i`, bounds, and phase.

/// The dashboard page.
pub const DASHBOARD_HTML: &str = r#"<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>qprog — live query progress</title>
<style>
  body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto; max-width: 60rem;
         color: #1a1a24; background: #fafafa; }
  h1 { font-size: 1.2rem; }
  .muted { color: #777; }
  .query { border: 1px solid #ddd; border-radius: 8px; padding: .8rem 1rem;
           margin: .8rem 0; background: #fff; }
  .label { font-weight: 600; overflow-wrap: anywhere; }
  .bar { position: relative; height: 18px; background: #eee; border-radius: 9px;
         overflow: hidden; margin: .45rem 0; }
  .bar .band { position: absolute; top: 0; bottom: 0; background: #b7d3f2; }
  .bar .fill { position: absolute; top: 0; bottom: 0; background: #2f6fb4;
               border-radius: 9px 0 0 9px; transition: width .3s; }
  .bar.done .fill { background: #3d9a52; }
  .bar.failed .fill { background: #c43d3d; }
  .bar.queued .fill { background: #a8a8b8; }
  .bar.retrying .fill { background: #d9941f; }
  .failure { color: #c43d3d; font-weight: 600; }
  .retrying-note { color: #9a6b00; font-weight: 600; }
  .tenant { font-size: 11px; font-weight: 600; padding: .1rem .45rem;
            border-radius: 9px; background: #e8eef7; color: #2f4f74;
            vertical-align: middle; }
  #service .strip { border: 1px solid #ddd; border-radius: 8px;
            padding: .5rem 1rem; margin: .8rem 0; background: #fff;
            font-variant-numeric: tabular-nums; }
  .health { font-size: 11px; font-weight: 600; padding: .1rem .45rem;
            border-radius: 9px; vertical-align: middle; }
  .health.healthy { background: #e4f3e7; color: #2c7a3f; }
  .health.stalled { background: #fbe5e5; color: #c43d3d; }
  .health.unstable { background: #fdf0d7; color: #9a6b00; }
  .health.regressed { background: #fbe5e5; color: #c43d3d; }
  .health.clean { background: #e4f3e7; color: #2c7a3f; }
  .pct { font-variant-numeric: tabular-nums; }
  table { border-collapse: collapse; margin-top: .5rem; font-size: 12.5px;
          font-variant-numeric: tabular-nums; }
  th, td { text-align: right; padding: .15rem .6rem; border-bottom: 1px solid #eee; }
  th:first-child, td:first-child { text-align: left; }
  a { color: #2f6fb4; }
  .wf-link { font-size: 11.5px; }
  .waterfall { margin-top: .5rem; font-size: 11.5px;
               font-variant-numeric: tabular-nums; }
  .wf-row { display: flex; align-items: center; gap: .5rem; margin: 1px 0; }
  .wf-name { flex: 0 0 15rem; text-align: right; color: #555;
             overflow: hidden; white-space: nowrap; }
  .wf-track { flex: 1; position: relative; height: 10px; background: #f2f2f2;
              border-radius: 3px; }
  .wf-dur { flex: 0 0 5rem; color: #777; }
  .wf-span { position: absolute; top: 0; bottom: 0; border-radius: 3px;
             min-width: 1px; background: #2f6fb4; }
  .wf-lifecycle { background: #8a6fc9; }
  .wf-pipeline { background: #d9941f; }
  .wf-operator { background: #2f6fb4; }
  .wf-phase { background: #58a0d8; }
  .wf-worker { background: #5aa56a; }
</style>
</head>
<body>
<h1>qprog — live query progress</h1>
<p class="muted">Streaming <a href="/events">/events</a> (SSE, polling
<a href="/progress">/progress</a> as fallback)
&middot; <a href="/metrics">/metrics</a> (Prometheus)</p>
<div id="service"></div>
<div id="queries"><p class="muted">waiting for queries&hellip;</p></div>
<div id="history"></div>
<script>
const fmt = n => n == null ? "–" : Number(n).toLocaleString("en-US",
  {maximumFractionDigits: 0});
const pct = f => (100 * f).toFixed(1) + "%";

function bar(q) {
  const lo = Math.min(q.lo ?? q.fraction, q.hi ?? q.fraction);
  const hi = Math.max(q.lo ?? q.fraction, q.hi ?? q.fraction);
  const cls = q.state === "failed" ? " failed" : q.done ? " done"
    : q.state === "queued" ? " queued" : q.state === "retrying" ? " retrying" : "";
  return `<div class="bar${cls}">
    <div class="band" style="left:${100 * lo}%;width:${100 * (hi - lo)}%"></div>
    <div class="fill" style="width:${100 * q.fraction}%"></div>
  </div>`;
}

const badge = q => q.health == null ? "" :
  `<span class="health ${q.health}">${q.health}</span>`;

function ops(detail) {
  if (!detail || !detail.ops || !detail.ops.length) return "";
  const rows = detail.ops.map(o => `<tr>
    <td>${o.name}</td><td>${o.phase ?? (o.finished ? "done" : "–")}</td>
    <td>${fmt(o.k)}</td><td>${fmt(o.n)}</td>
    <td>${o.lo == null ? "–" : fmt(o.lo) + " … " + fmt(o.hi)}</td>
    <td>${o.wall_us == null ? "–" : (o.wall_us / 1e3).toFixed(1) + " ms"}</td>
    <td>${o.workers ?? "–"}</td>
  </tr>`).join("");
  return `<table><tr><th>operator</th><th>phase</th><th>K</th><th>N&#770;</th>
    <th>bounds</th><th>wall</th><th>thr</th></tr>${rows}</table>`;
}

let queries = new Map();  // id -> latest summary (streamed or polled)
let details = new Map();  // id -> per-operator detail (reconcile pass)
let traces = new Map();   // id -> Chrome trace JSON (waterfall tab)
let waterfall = new Set();// query ids with the waterfall tab open
let streaming = false;

// Waterfall tab: toggle per query; span trees come from GET /trace/{id}
// (Chrome trace-event JSON — the same document Perfetto loads).
async function toggleWaterfall(id) {
  if (waterfall.has(id)) { waterfall.delete(id); render(); return; }
  try {
    const res = await fetch(`/trace/${id}`);
    if (!res.ok) return;
    traces.set(id, await res.json());
    waterfall.add(id);
    render();
  } catch (e) { /* no service attached / query evicted */ }
}

function waterfallView(id) {
  if (!waterfall.has(id)) return "";
  const t = traces.get(id);
  if (!t || !t.traceEvents) return "";
  const names = new Map();  // tid -> track name (thread_name metadata)
  const spans = [];
  for (const e of t.traceEvents) {
    if (e.ph === "M" && e.name === "thread_name") names.set(e.tid, e.args.name);
    if (e.ph === "X") spans.push(e);
  }
  if (!spans.length) return "";
  const t0 = Math.min(...spans.map(s => s.ts));
  const total = Math.max(1, Math.max(...spans.map(s => s.ts + s.dur)) - t0);
  const rows = spans.map(s => `<div class="wf-row">
    <span class="wf-name" title="${s.name}">${names.get(s.tid) ?? s.tid} &middot; ${s.name}</span>
    <div class="wf-track"><div class="wf-span wf-${s.cat}"
      style="left:${100 * (s.ts - t0) / total}%;width:${100 * s.dur / total}%"></div></div>
    <span class="wf-dur">${(s.dur / 1e3).toFixed(2)} ms</span>
  </div>`).join("");
  return `<div class="waterfall">${rows}</div>`;
}

function render() {
  const root = document.getElementById("queries");
  const list = [...queries.values()].sort((a, b) => a.id - b.id);
  if (!list.length) {
    root.innerHTML = '<p class="muted">no live queries</p>';
    return;
  }
  root.innerHTML = list.map(q => `<div class="query">
    <div class="label">#${q.id} &middot; ${q.label}
      <span class="muted">[${q.estimator}]</span>
      ${q.tenant == null ? "" : `<span class="tenant">${q.tenant}${
        q.attempt > 1 ? ` &middot; attempt ${q.attempt}` : ""}</span>`}
      ${badge(q)}</div>
    ${bar(q)}
    <div><span class="pct">${pct(q.fraction)}</span>
      <span class="muted">(bounds ${pct(q.lo)} – ${pct(q.hi)})
      &middot; C=${fmt(q.current)} / T&#770;=${fmt(q.total)}
      &middot; pipelines ${q.pipelines_finished}/${q.pipelines}
      &middot; ${(q.elapsed_us / 1e6).toFixed(2)}s
      ${q.eta_us == null ? "" : `&middot; ETA ${(q.eta_us / 1e6).toFixed(1)}s`}
      ${q.done ? `&middot; done${q.rows == null ? "" : ", " + fmt(q.rows) + " rows"}` : ""}
      </span>
      ${q.state === "failed" ? `<span class="failure">&middot; failed (${q.failure})${
        q.rows == null ? "" : ", " + fmt(q.rows) + " rows before abort"}</span>` : ""}
      ${q.state === "queued" ? `<span class="muted">&middot; queued</span>` : ""}
      ${q.state === "retrying" ? `<span class="retrying-note">&middot; retrying (${
        q.failure})</span>` : ""}
      ${q.tenant == null ? "" : `<span class="wf-link">&middot;
        <a href='javascript:void(0)' onclick="toggleWaterfall(${q.id})">${
          waterfall.has(q.id) ? "hide waterfall" : "waterfall"}</a> &middot;
        <a href="/trace/${q.id}">trace</a></span>`}
      </div>
    ${ops(details.get(q.id))}
    ${waterfallView(q.id)}
  </div>`).join("");
}

// Full refresh over the JSON endpoints: the only data path when polling,
// the membership/detail reconcile pass when streaming.
async function poll() {
  try {
    const res = await fetch("/progress");
    const data = await res.json();
    queries = new Map(data.queries.map(q => [q.id, q]));
    await Promise.all(data.queries.map(q =>
      fetch(`/progress/${q.id}`).then(r => r.ok ? r.json() : null)
        .then(d => { if (d) details.set(q.id, d); }).catch(() => null)));
    for (const id of [...details.keys()])
      if (!queries.has(id)) details.delete(id);
    render();
  } catch (e) { /* server going away between polls is fine */ }
}

// Primary path: server-push over SSE. One broadcast frame updates every
// open dashboard; no per-client polling while the stream is healthy.
function connect() {
  if (!window.EventSource) return;
  const es = new EventSource("/events");
  const upsert = e => {
    const q = JSON.parse(e.data);
    queries.set(q.id, q);
    render();
  };
  es.addEventListener("snapshot", e => {
    streaming = true;
    queries = new Map(JSON.parse(e.data).queries.map(q => [q.id, q]));
    render();
  });
  es.addEventListener("progress", upsert);
  es.addEventListener("terminal", upsert);
  es.addEventListener("health", e => {
    const h = JSON.parse(e.data);
    const q = queries.get(h.id);
    if (q) { q.health = h.to; render(); }
  });
  // Stream gone (server restart, proxy strips SSE): fall back to polling.
  es.onerror = () => { es.close(); streaming = false; };
}

// Run history: archived traces + progress-quality scorecards from the
// attached corpus (absent — and the section hidden — when the session has
// none). Refreshed on a slow cadence; history only changes when a query
// finishes.
async function pollHistory() {
  const root = document.getElementById("history");
  try {
    const res = await fetch("/history?limit=25");
    if (!res.ok) { root.innerHTML = ""; return; }
    const data = await res.json();
    const runs = data.runs.slice().reverse();
    const rows = runs.map(r => `<tr>
      <td><a href="/history/${r.run}/trace">#${r.run}</a></td>
      <td class="label">${r.workload}</td>
      <td>${r.estimator}</td><td>${r.state}</td>
      <td>${(r.wall_us / 1e3).toFixed(1)} ms</td>
      <td>${r.mean_abs_err == null ? "–" : r.mean_abs_err.toFixed(4)}</td>
      <td>${r.convergence == null ? "never" : r.convergence.toFixed(2)}</td>
      <td>${r.monotonicity_violations}</td>
      <td>${r.regressions > 0
        ? `<span class="health regressed">${r.regressions} regressed</span>`
        : `<span class="health clean">clean</span>`}</td>
    </tr>`).join("");
    root.innerHTML = `<h1>run history</h1>
      <p class="muted"><a href="/history">/history</a> &middot;
      ${runs.length} archived run${runs.length === 1 ? "" : "s"} shown</p>
      <table><tr><th>run</th><th>workload</th><th>est</th><th>state</th>
      <th>wall</th><th>mean err</th><th>conv</th><th>mono</th>
      <th>quality</th></tr>${rows}</table>`;
  } catch (e) { root.innerHTML = ""; }
}

// Service strip: admission/queue/retry statistics from the query service
// front door. Absent — and the strip hidden — when no service is attached
// (the endpoint answers 404).
async function pollService() {
  const root = document.getElementById("service");
  try {
    const res = await fetch("/service");
    if (!res.ok) { root.innerHTML = ""; return; }
    const s = await res.json();
    const tenants = (s.tenants || []).map(t =>
      `<span class="tenant">${t.tenant}: ${t.inflight}</span>`).join(" ");
    root.innerHTML = `<div class="strip">
      <b>query service</b> ${s.admitting ? "" : '<span class="failure">draining</span>'}
      &middot; queue ${s.queue_depth} &middot; running ${s.running}
      &middot; admitted ${fmt(s.admitted)} / shed ${fmt(s.rejected)}
      &middot; finished ${fmt(s.finished)} / failed ${fmt(s.failed)}
      &middot; retries ${fmt(s.retries)}
      ${tenants ? "&middot; in-flight " + tenants : ""}</div>`;
  } catch (e) { root.innerHTML = ""; }
}

let beat = 0;
setInterval(() => {
  beat += 1;
  if (!streaming || beat % 4 === 0) poll();
  if (beat % 4 === 0) pollService();
  if (beat % 10 === 0) pollHistory();
}, 500);
connect();
poll();
pollService();
pollHistory();
</script>
</body>
</html>
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dashboard_is_self_contained_and_polls_the_json_endpoints() {
        assert!(DASHBOARD_HTML.starts_with("<!doctype html>"));
        assert!(DASHBOARD_HTML.contains("fetch(\"/progress\")"));
        assert!(DASHBOARD_HTML.contains("/progress/${q.id}"));
        // no external assets
        assert!(!DASHBOARD_HTML.contains("http://"));
        assert!(!DASHBOARD_HTML.contains("https://"));
        assert!(!DASHBOARD_HTML.contains("src="));
    }

    #[test]
    fn dashboard_renders_eta_and_wall_time() {
        assert!(DASHBOARD_HTML.contains("q.eta_us"));
        assert!(DASHBOARD_HTML.contains("ETA"));
        assert!(DASHBOARD_HTML.contains("o.wall_us"));
    }

    #[test]
    fn dashboard_renders_worker_counts() {
        assert!(DASHBOARD_HTML.contains("o.workers"));
        assert!(DASHBOARD_HTML.contains("<th>thr</th>"));
    }

    #[test]
    fn dashboard_renders_terminal_states() {
        assert!(DASHBOARD_HTML.contains(r#"q.state === "failed""#));
        assert!(DASHBOARD_HTML.contains("q.failure"));
        assert!(DASHBOARD_HTML.contains(".bar.failed .fill"));
    }

    #[test]
    fn dashboard_streams_with_polling_fallback() {
        assert!(DASHBOARD_HTML.contains(r#"new EventSource("/events")"#));
        assert!(DASHBOARD_HTML.contains(r#"addEventListener("snapshot""#));
        assert!(DASHBOARD_HTML.contains(r#"addEventListener("progress""#));
        assert!(DASHBOARD_HTML.contains(r#"addEventListener("terminal""#));
        // on stream error the page degrades to the polling loop
        assert!(DASHBOARD_HTML.contains("es.onerror"));
        assert!(DASHBOARD_HTML.contains("streaming = false"));
    }

    #[test]
    fn dashboard_renders_run_history_with_regression_badges() {
        assert!(DASHBOARD_HTML.contains("fetch(\"/history?limit=25\")"));
        assert!(DASHBOARD_HTML.contains("/history/${r.run}/trace"));
        assert!(DASHBOARD_HTML.contains("r.mean_abs_err"));
        assert!(DASHBOARD_HTML.contains("r.regressions > 0"));
        assert!(DASHBOARD_HTML.contains(".health.regressed"));
        assert!(DASHBOARD_HTML.contains("pollHistory()"));
    }

    #[test]
    fn dashboard_renders_the_service_strip_and_managed_states() {
        assert!(DASHBOARD_HTML.contains("fetch(\"/service\")"));
        assert!(DASHBOARD_HTML.contains("s.queue_depth"));
        assert!(DASHBOARD_HTML.contains("s.retries"));
        assert!(DASHBOARD_HTML.contains("t.inflight"));
        assert!(DASHBOARD_HTML.contains("pollService()"));
        // managed lifecycle states get their own bar colours + notes
        assert!(DASHBOARD_HTML.contains(".bar.queued .fill"));
        assert!(DASHBOARD_HTML.contains(".bar.retrying .fill"));
        assert!(DASHBOARD_HTML.contains(r#"q.state === "queued""#));
        assert!(DASHBOARD_HTML.contains(r#"q.state === "retrying""#));
        assert!(DASHBOARD_HTML.contains("q.tenant"));
    }

    #[test]
    fn dashboard_renders_the_span_waterfall_tab() {
        assert!(DASHBOARD_HTML.contains("toggleWaterfall"));
        assert!(DASHBOARD_HTML.contains("fetch(`/trace/${id}`)"));
        assert!(DASHBOARD_HTML.contains("t.traceEvents"));
        // Complete spans render as positioned bars; metadata events name
        // the tracks.
        assert!(DASHBOARD_HTML.contains(r#"e.ph === "X""#));
        assert!(DASHBOARD_HTML.contains(r#"e.ph === "M""#));
        assert!(DASHBOARD_HTML.contains("wf-span"));
        assert!(DASHBOARD_HTML.contains(".wf-lifecycle"));
        assert!(DASHBOARD_HTML.contains(".wf-worker"));
        assert!(DASHBOARD_HTML.contains("waterfallView(q.id)"));
    }

    #[test]
    fn dashboard_renders_health_badges() {
        assert!(DASHBOARD_HTML.contains(r#"addEventListener("health""#));
        assert!(DASHBOARD_HTML.contains("q.health"));
        assert!(DASHBOARD_HTML.contains(".health.stalled"));
        assert!(DASHBOARD_HTML.contains(".health.unstable"));
        assert!(DASHBOARD_HTML.contains(".health.healthy"));
    }
}
