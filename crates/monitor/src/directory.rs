//! The registry of live (and recently finished, still-held) queries.
//!
//! Entries come in two flavours:
//!
//! - **Session-owned** ([`register`](QueryDirectory::register)): created
//!   when a session compiles a query; lifecycle state is *derived* from the
//!   execution trace (the [`PhaseSink`]).
//! - **Service-owned** ([`register_managed`](QueryDirectory::register_managed)):
//!   created by the query service at submit time, before any execution
//!   exists. Lifecycle state is *dictated* by the service
//!   ([`set_managed_state`](QueryDirectory::set_managed_state)) so a
//!   transiently-failed attempt can show `retrying` instead of leaking a
//!   premature terminal; execution progress attaches later
//!   ([`attach_execution`](QueryDirectory::attach_execution)) when a
//!   worker dispatches the job. The terminal SSE frame is emitted exactly
//!   once, and only when the service says so.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use qprog_core::gnm::PipelineState;
use qprog_exec::sync::Mutex;
use qprog_exec::trace::{AbortKind, Phase, TraceEvent, TraceEventKind, TraceSink};
use qprog_metrics::{Counter, Gauge, Registry};
use qprog_obs::json::{escape, num};
use qprog_obs::HealthAnalyzer;
use qprog_plan::ProgressTracker;

use crate::eta::EtaSmoother;
use crate::hub::StreamHub;

/// A monitored query's lifecycle state, as rendered in `/progress` and the
/// dashboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryState {
    /// Still executing (or compiled and not yet driven).
    Running,
    /// Root exhausted; progress pinned at 1.0.
    Done,
    /// Terminated without completing (cancelled, deadline, budget, panic,
    /// injected fault, or error). Progress freezes where it stopped.
    Failed(AbortKind),
}

impl QueryState {
    /// Stable lowercase name (`running` / `done` / `failed`).
    pub fn name(self) -> &'static str {
        match self {
            QueryState::Running => "running",
            QueryState::Done => "done",
            QueryState::Failed(_) => "failed",
        }
    }
}

/// Service-dictated lifecycle for managed entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManagedState {
    /// Accepted, waiting for a dispatcher worker.
    Queued,
    /// Dispatched; execution attempt `attempt` (1-based) is in flight.
    Running {
        /// Attempt number.
        attempt: u32,
    },
    /// Last attempt failed transiently; parked for backoff.
    Retrying {
        /// Typed failure kind of the failed attempt.
        kind: String,
        /// Attempts completed so far.
        attempt: u32,
    },
    /// The service declared the outcome. This — and only this — triggers
    /// the exactly-once terminal frame for managed entries.
    Terminal {
        /// Completed successfully.
        done: bool,
        /// Typed failure kind when not `done`.
        failure: Option<String>,
        /// Rows produced, when known.
        rows: Option<u64>,
    },
}

/// A [`TraceSink`] tracking each operator's last observed phase plus the
/// query's terminal event — the live-status complement to the cumulative
/// counters a `MetricsSink` keeps. One per monitored query.
#[derive(Debug, Default)]
pub struct PhaseSink {
    phases: Mutex<Vec<Option<Phase>>>,
    rows: AtomicU64,
    finished: AtomicBool,
    aborted: Mutex<Option<AbortKind>>,
}

impl PhaseSink {
    /// A fresh sink.
    pub fn new() -> Self {
        PhaseSink::default()
    }

    /// The last phase operator `op` transitioned into, if any transition
    /// was observed.
    pub fn phase(&self, op: usize) -> Option<Phase> {
        self.phases.lock().get(op).copied().flatten()
    }

    /// Whether the query's root has been exhausted (`QueryFinished` seen).
    pub fn is_finished(&self) -> bool {
        self.finished.load(Ordering::Relaxed)
    }

    /// Why the query aborted, if a terminal `QueryAborted` was observed.
    pub fn abort_reason(&self) -> Option<AbortKind> {
        *self.aborted.lock()
    }

    /// The query's lifecycle state as observed through trace events.
    pub fn state(&self) -> QueryState {
        if let Some(reason) = self.abort_reason() {
            QueryState::Failed(reason)
        } else if self.is_finished() {
            QueryState::Done
        } else {
            QueryState::Running
        }
    }

    /// Rows the query returned before reaching a terminal state (`None`
    /// while still running).
    pub fn rows(&self) -> Option<u64> {
        (self.is_finished() || self.abort_reason().is_some())
            .then(|| self.rows.load(Ordering::Relaxed))
    }
}

impl TraceSink for PhaseSink {
    fn publish(&self, event: &TraceEvent) {
        match event.kind {
            TraceEventKind::PhaseTransition { op, to, .. } => {
                let mut phases = self.phases.lock();
                let idx = op as usize;
                if phases.len() <= idx {
                    phases.resize(idx + 1, None);
                }
                phases[idx] = Some(to);
            }
            TraceEventKind::QueryFinished { rows } => {
                self.rows.store(rows, Ordering::Relaxed);
                self.finished.store(true, Ordering::Release);
            }
            TraceEventKind::QueryAborted { reason, rows } => {
                self.rows.store(rows, Ordering::Relaxed);
                *self.aborted.lock() = Some(reason);
            }
            _ => {}
        }
    }
}

/// Live execution state attached to an entry (present from compile time
/// for session-owned queries; from dispatch time for managed ones).
struct ExecAttachment {
    tracker: ProgressTracker,
    phases: Arc<PhaseSink>,
    health: Option<Arc<HealthAnalyzer>>,
}

/// One registered query.
struct QueryEntry {
    label: String,
    estimator: String,
    /// Owning tenant; `Some` only for service-managed entries (rendered
    /// into their JSON).
    tenant: Option<String>,
    /// Dispatch attempts (managed entries).
    attempt: u32,
    exec: Option<ExecAttachment>,
    /// `None` = session-owned (lifecycle derived from the trace).
    managed: Option<ManagedState>,
    started: Instant,
    /// Smoothed remaining-time estimate (interior mutability: refreshed
    /// from whichever render or broadcast tick observes the entry).
    eta: Mutex<EtaSmoother>,
    /// Running maximum of the published fraction (f64 bits). The raw gnm
    /// estimate may regress when an estimator revises `N_i` upward; the
    /// *reported* fraction is clamped monotone so progress bars never
    /// move backwards. Raw estimates stay visible in the trace stream.
    max_fraction: AtomicU64,
    /// Whether the stream hub already saw this query's terminal frame.
    terminal_emitted: AtomicBool,
}

/// Flattened lifecycle used by every render path.
struct LifeView {
    state: &'static str,
    /// Failure kind (terminal failures and retry parks).
    failure: Option<String>,
    done: bool,
    terminal: bool,
    rows: Option<u64>,
    running: bool,
}

impl QueryEntry {
    /// Monotonically-clamped published fraction. Mutated only with the
    /// directory's entries lock held, so a plain load/store race-free.
    fn clamped_fraction(&self, raw: f64) -> f64 {
        let prev = f64::from_bits(self.max_fraction.load(Ordering::Relaxed));
        if raw.is_finite() && raw > prev {
            self.max_fraction.store(raw.to_bits(), Ordering::Relaxed);
            raw
        } else {
            prev
        }
    }

    fn view(&self) -> LifeView {
        match &self.managed {
            None => {
                let exec = self.exec.as_ref().expect("session entries carry exec");
                let state = exec.phases.state();
                let done = match state {
                    QueryState::Failed(_) => false,
                    QueryState::Done => true,
                    QueryState::Running => exec.tracker.snapshot().is_complete(),
                };
                let terminal = done || matches!(state, QueryState::Failed(_));
                LifeView {
                    state: if done { "done" } else { state.name() },
                    failure: match state {
                        QueryState::Failed(reason) => Some(reason.to_string()),
                        _ => None,
                    },
                    done,
                    terminal,
                    rows: exec.phases.rows(),
                    running: state == QueryState::Running && !done,
                }
            }
            Some(ManagedState::Queued) => LifeView {
                state: "queued",
                failure: None,
                done: false,
                terminal: false,
                rows: None,
                running: false,
            },
            Some(ManagedState::Running { .. }) => LifeView {
                state: "running",
                failure: None,
                done: false,
                terminal: false,
                rows: None,
                running: true,
            },
            Some(ManagedState::Retrying { kind, .. }) => LifeView {
                state: "retrying",
                failure: Some(kind.clone()),
                done: false,
                terminal: false,
                rows: None,
                running: false,
            },
            Some(ManagedState::Terminal {
                done,
                failure,
                rows,
            }) => LifeView {
                state: if *done { "done" } else { "failed" },
                failure: failure.clone(),
                done: *done,
                terminal: true,
                rows: *rows,
                running: false,
            },
        }
    }
}

/// Registry of live queries, keyed by a process-unique query id.
///
/// Queries [`register`](Self::register) when compiled and unregister when
/// their [`MonitoredQuery`] token drops (normally: when the
/// `QueryHandle` does), so a finished query stays visible — pinned at
/// 100% — for as long as its handle is held.
pub struct QueryDirectory {
    next_id: AtomicU64,
    entries: Mutex<BTreeMap<u64, QueryEntry>>,
    /// Server-push fan-out, attached by the [`MonitorServer`] when it
    /// starts. Lock order is always entries → hub.
    hub: Mutex<Option<Arc<StreamHub>>>,
    /// `qprog_queries_live`, when a metrics registry is attached.
    live_gauge: Option<Arc<Gauge>>,
    /// `qprog_queries_registered_total`, when a registry is attached.
    registered: Option<Arc<Counter>>,
}

impl QueryDirectory {
    /// A directory; with a metrics registry attached it also maintains the
    /// `qprog_queries_live` gauge and `qprog_queries_registered_total`
    /// counter.
    pub fn new(metrics: Option<&Registry>) -> Self {
        QueryDirectory {
            next_id: AtomicU64::new(1),
            entries: Mutex::new(BTreeMap::new()),
            hub: Mutex::new(None),
            live_gauge: metrics.map(|r| {
                r.gauge(
                    "qprog_queries_live",
                    "Queries currently registered with the monitor",
                    &[],
                )
            }),
            registered: metrics.map(|r| {
                r.counter(
                    "qprog_queries_registered_total",
                    "Queries ever registered with the monitor",
                    &[],
                )
            }),
        }
    }

    /// Register a query; the returned token unregisters it on drop. Pass
    /// a [`HealthAnalyzer`] to have the broadcast tick sample it and to
    /// surface its verdict in the query's JSON (`"health"` is `null`
    /// otherwise).
    pub fn register(
        self: &Arc<Self>,
        label: impl Into<String>,
        estimator: impl Into<String>,
        tracker: ProgressTracker,
        phases: Arc<PhaseSink>,
        health: Option<Arc<HealthAnalyzer>>,
    ) -> MonitoredQuery {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.insert(
            id,
            QueryEntry {
                label: label.into(),
                estimator: estimator.into(),
                tenant: None,
                attempt: 0,
                exec: Some(ExecAttachment {
                    tracker,
                    phases,
                    health,
                }),
                managed: None,
                started: Instant::now(),
                eta: Mutex::new(EtaSmoother::new()),
                max_fraction: AtomicU64::new(0.0f64.to_bits()),
                terminal_emitted: AtomicBool::new(false),
            },
        )
    }

    /// Reserve a fresh query id that is `≥ floor` and unique among every
    /// id this directory has seen (including explicitly-registered
    /// managed ids). Used by the query service so journal-recovered ids
    /// and fresh submissions share one namespace.
    pub fn allocate_id(&self, floor: u64) -> u64 {
        self.next_id.fetch_max(floor, Ordering::Relaxed);
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Register a service-managed entry under an explicit, pre-allocated
    /// id (fresh via [`allocate_id`](Self::allocate_id) or recovered from
    /// the journal). Starts `queued` with no execution attached.
    pub fn register_managed(
        self: &Arc<Self>,
        id: u64,
        label: impl Into<String>,
        estimator: impl Into<String>,
        tenant: impl Into<String>,
    ) -> MonitoredQuery {
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
        self.insert(
            id,
            QueryEntry {
                label: label.into(),
                estimator: estimator.into(),
                tenant: Some(tenant.into()),
                attempt: 0,
                exec: None,
                managed: Some(ManagedState::Queued),
                started: Instant::now(),
                eta: Mutex::new(EtaSmoother::new()),
                max_fraction: AtomicU64::new(0.0f64.to_bits()),
                terminal_emitted: AtomicBool::new(false),
            },
        )
    }

    fn insert(self: &Arc<Self>, id: u64, entry: QueryEntry) -> MonitoredQuery {
        self.entries.lock().insert(id, entry);
        if let Some(g) = &self.live_gauge {
            g.add(1.0);
        }
        if let Some(c) = &self.registered {
            c.inc();
        }
        MonitoredQuery {
            directory: Arc::clone(self),
            id,
        }
    }

    /// Attach live execution state to a managed entry (a worker is about
    /// to drive the query). A retry attempt replaces the previous
    /// attachment; the published fraction stays monotone across attempts.
    /// Returns false if the id is unknown.
    pub fn attach_execution(
        &self,
        id: u64,
        tracker: ProgressTracker,
        phases: Arc<PhaseSink>,
        health: Option<Arc<HealthAnalyzer>>,
    ) -> bool {
        let mut entries = self.entries.lock();
        match entries.get_mut(&id) {
            Some(e) => {
                e.exec = Some(ExecAttachment {
                    tracker,
                    phases,
                    health,
                });
                true
            }
            None => false,
        }
    }

    /// Move a managed entry through its service-dictated lifecycle.
    /// Setting [`ManagedState::Terminal`] arms the exactly-once terminal
    /// frame (emitted by the next tick, or on unregister). Returns false
    /// if the id is unknown.
    pub fn set_managed_state(&self, id: u64, state: ManagedState) -> bool {
        let mut entries = self.entries.lock();
        match entries.get_mut(&id) {
            Some(e) => {
                match &state {
                    ManagedState::Running { attempt } | ManagedState::Retrying { attempt, .. } => {
                        e.attempt = *attempt
                    }
                    _ => {}
                }
                e.managed = Some(state);
                true
            }
            None => false,
        }
    }

    fn remove(&self, id: u64) {
        let removed = self.entries.lock().remove(&id);
        if let Some(e) = removed {
            if let Some(g) = &self.live_gauge {
                g.sub(1.0);
            }
            // A query can unregister before the broadcast tick saw it end
            // (or while still running, if its handle is dropped early).
            // Streams must still always learn the outcome: emit the final
            // frame now, then close its per-query subscribers.
            let hub = self.hub.lock().clone();
            if let Some(hub) = hub {
                if !e.terminal_emitted.swap(true, Ordering::Relaxed) {
                    hub.publish(id, "terminal", &Self::summary_json(id, &e), true);
                }
                hub.close_query(id);
            }
        }
    }

    /// Attach the server-push hub (done by [`MonitorServer::start`]).
    ///
    /// [`MonitorServer::start`]: crate::server::MonitorServer::start
    pub fn set_hub(&self, hub: Arc<StreamHub>) {
        *self.hub.lock() = Some(hub);
    }

    /// One broadcast tick: per registered query, sample health, then push
    /// a `progress` frame (if anyone is listening) or — exactly once — a
    /// `terminal` frame. Encoding happens at most once per query per tick
    /// regardless of subscriber count.
    pub fn tick(&self) {
        let hub = match self.hub.lock().clone() {
            Some(h) => h,
            None => return,
        };
        let entries = self.entries.lock();
        for (&id, e) in entries.iter() {
            let view = e.view();
            if let Some(exec) = &e.exec {
                if let Some(h) = &exec.health {
                    let snap = exec.tracker.snapshot();
                    let elapsed_us = e.started.elapsed().as_micros() as u64;
                    let fraction = e.clamped_fraction(snap.fraction());
                    let eta = e.eta.lock().update(elapsed_us, fraction, view.running);
                    if let Some((from, to, reason)) =
                        h.observe(snap.current(), eta.map(|v| v as f64), view.running)
                    {
                        hub.publish(
                            id,
                            "health",
                            &format!(
                                "{{\"id\":{id},\"from\":\"{from}\",\"to\":\"{to}\",\
                                 \"reason\":\"{reason}\"}}"
                            ),
                            false,
                        );
                    }
                }
            }
            if view.terminal {
                if !e.terminal_emitted.swap(true, Ordering::Relaxed) {
                    hub.publish(id, "terminal", &Self::summary_json(id, e), true);
                }
            } else if hub.wants(id) {
                hub.publish(id, "progress", &Self::summary_json(id, e), false);
            }
        }
    }

    /// Number of currently registered queries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True iff no query is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registered query ids, ascending.
    pub fn ids(&self) -> Vec<u64> {
        self.entries.lock().keys().copied().collect()
    }

    fn summary_json(id: u64, e: &QueryEntry) -> String {
        let view = e.view();
        // Progress numbers come from the execution attachment; entries
        // waiting for dispatch render the trivially-true bounds.
        let (fraction, lo, hi, current, total, pipes, pipes_done) = match &e.exec {
            Some(exec) => {
                let snap = exec.tracker.snapshot();
                let (lo, hi) = exec.tracker.fraction_bounds();
                let fraction = e.clamped_fraction(snap.fraction());
                let hi = if hi.is_finite() { hi.max(fraction) } else { hi };
                let pipelines = snap.pipelines();
                let finished = pipelines
                    .iter()
                    .filter(|p| p.state == PipelineState::Finished)
                    .count();
                (
                    fraction,
                    lo,
                    hi,
                    snap.current(),
                    snap.total(),
                    pipelines.len(),
                    finished,
                )
            }
            None => {
                let fraction = e.clamped_fraction(0.0);
                (fraction, 0.0, 1.0, 0, f64::NAN, 0, 0)
            }
        };
        let elapsed_us = e.started.elapsed().as_micros() as u64;
        // The paper's motivating use case, estimated time remaining from
        // the gnm fraction, smoothed so refinement noise does not whipsaw
        // the number. `null` before meaningful progress and once terminal.
        let eta_us = e
            .eta
            .lock()
            .update(elapsed_us, fraction, view.running)
            .map_or_else(|| "null".to_string(), |v| v.to_string());
        let health = e.exec.as_ref().and_then(|x| x.health.as_ref()).map_or_else(
            || "null".to_string(),
            |h| format!("\"{}\"", h.state().name()),
        );
        // Service-managed entries carry their tenant and attempt count;
        // session-owned JSON is unchanged.
        let tenancy = match &e.tenant {
            Some(t) => format!("\"tenant\":\"{}\",\"attempt\":{},", escape(t), e.attempt),
            None => String::new(),
        };
        format!(
            "{{\"id\":{id},\"label\":\"{}\",\"estimator\":\"{}\",{tenancy}\
             \"elapsed_us\":{elapsed_us},\"eta_us\":{eta_us},\
             \"fraction\":{},\"lo\":{},\"hi\":{},\
             \"current\":{current},\"total\":{},\"pipelines\":{pipes},\
             \"pipelines_finished\":{pipes_done},\"state\":\"{}\",\"failure\":{},\
             \"health\":{health},\"done\":{},\"rows\":{}}}",
            escape(&e.label),
            escape(&e.estimator),
            num(fraction),
            num(lo),
            num(hi),
            num(total),
            view.state,
            view.failure
                .as_ref()
                .map_or("null".to_string(), |f| format!("\"{}\"", escape(f))),
            view.done,
            view.rows.map_or("null".to_string(), |r| r.to_string()),
        )
    }

    fn detail_json(id: u64, e: &QueryEntry) -> String {
        let summary = Self::summary_json(id, e);
        let ops: Vec<String> = match &e.exec {
            None => Vec::new(),
            Some(exec) => exec
                .tracker
                .registry()
                .iter()
                .enumerate()
                .map(|(i, (name, m))| {
                    let (lo, hi) = m
                        .estimated_bounds()
                        .map_or(("null".to_string(), "null".to_string()), |(lo, hi)| {
                            (num(lo), num(hi))
                        });
                    format!(
                        "{{\"name\":\"{}\",\"k\":{},\"driver\":{},\"n\":{},\
                         \"lo\":{lo},\"hi\":{hi},\"finished\":{},\"phase\":{},\
                         \"wall_us\":{},\"workers\":{}}}",
                        escape(name),
                        m.emitted(),
                        m.driver_consumed(),
                        num(m.estimated_total()),
                        m.is_finished(),
                        exec.phases
                            .phase(i)
                            .map_or("null".to_string(), |p| format!("\"{}\"", p.name())),
                        m.wall_us().map_or("null".to_string(), |w| w.to_string()),
                        m.workers().map_or("null".to_string(), |w| w.to_string()),
                    )
                })
                .collect(),
        };
        debug_assert!(summary.ends_with('}'));
        format!(
            "{},\"ops\":[{}]}}",
            &summary[..summary.len() - 1],
            ops.join(",")
        )
    }

    /// JSON for `GET /progress`: every registered query's summary.
    pub fn render_all(&self) -> String {
        let entries = self.entries.lock();
        let queries: Vec<String> = entries
            .iter()
            .map(|(&id, e)| Self::summary_json(id, e))
            .collect();
        format!("{{\"queries\":[{}]}}", queries.join(","))
    }

    /// JSON for `GET /progress/{id}`: one query with per-operator detail,
    /// or `None` if the id is not (or no longer) registered.
    pub fn render_query(&self, id: u64) -> Option<String> {
        let entries = self.entries.lock();
        entries.get(&id).map(|e| Self::detail_json(id, e))
    }

    /// Initial state for a new SSE subscriber: the query's summary JSON,
    /// whether it is already terminal, and whether its terminal frame was
    /// already broadcast (in which case the new subscriber will never see
    /// one and the server must synthesize it).
    pub fn stream_snapshot(&self, id: u64) -> Option<(String, bool, bool)> {
        let entries = self.entries.lock();
        entries.get(&id).map(|e| {
            (
                Self::summary_json(id, e),
                e.view().terminal,
                e.terminal_emitted.load(Ordering::Relaxed),
            )
        })
    }
}

impl std::fmt::Debug for QueryDirectory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryDirectory")
            .field("live", &self.len())
            .finish()
    }
}

/// Registration token: while alive, the query is listed by the monitor;
/// dropping it unregisters the query.
pub struct MonitoredQuery {
    directory: Arc<QueryDirectory>,
    id: u64,
}

impl MonitoredQuery {
    /// The process-unique query id (`/progress/{id}`).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for MonitoredQuery {
    fn drop(&mut self) {
        self.directory.remove(self.id);
    }
}

impl std::fmt::Debug for MonitoredQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitoredQuery")
            .field("id", &self.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_exec::metrics::MetricsRegistry;
    use qprog_plan::pipeline::PipelineSet;

    fn tracker() -> (ProgressTracker, MetricsRegistry) {
        let mut reg = MetricsRegistry::new();
        reg.register("scan", 100.0);
        let mut pipes = PipelineSet::new();
        let p = pipes.new_pipeline();
        pipes.assign(p, 0);
        (ProgressTracker::new(reg.clone(), pipes), reg)
    }

    fn ev(kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            seq: 0,
            at_us: 0,
            kind,
        }
    }

    #[test]
    fn register_list_unregister() {
        let dir = Arc::new(QueryDirectory::new(None));
        let (t1, _) = tracker();
        let (t2, _) = tracker();
        let q1 = dir.register("q one", "once", t1, Arc::new(PhaseSink::new()), None);
        let q2 = dir.register("q two", "dne", t2, Arc::new(PhaseSink::new()), None);
        assert_eq!(dir.len(), 2);
        assert_eq!(dir.ids(), vec![q1.id(), q2.id()]);
        assert_ne!(q1.id(), q2.id());
        drop(q1);
        assert_eq!(dir.len(), 1);
        assert!(dir.render_query(q2.id()).is_some());
        drop(q2);
        assert!(dir.is_empty());
    }

    #[test]
    fn progress_json_reflects_tracker_state() {
        let dir = Arc::new(QueryDirectory::new(None));
        let (t, reg) = tracker();
        let q = dir.register("sel", "once", t, Arc::new(PhaseSink::new()), None);
        for _ in 0..50 {
            reg.get(0).unwrap().record_emitted();
        }
        let all = dir.render_all();
        assert!(all.contains("\"label\":\"sel\""), "{all}");
        assert!(all.contains("\"current\":50"), "{all}");
        assert!(all.contains("\"fraction\":0.5"), "{all}");
        assert!(all.contains("\"done\":false"), "{all}");
        // running at p = 0.5: elapsed and a finite ETA are reported
        assert!(all.contains("\"elapsed_us\":"), "{all}");
        assert!(all.contains("\"eta_us\":"), "{all}");
        assert!(!all.contains("\"eta_us\":null"), "{all}");
        // session-owned queries carry no tenancy fields
        assert!(!all.contains("\"tenant\""), "{all}");
        let detail = dir.render_query(q.id()).unwrap();
        assert!(detail.contains("\"ops\":[{\"name\":\"scan\""), "{detail}");
        assert!(detail.contains("\"k\":50"), "{detail}");
        reg.finish_all();
        let detail = dir.render_query(q.id()).unwrap();
        assert!(detail.contains("\"done\":true"), "{detail}");
        assert!(detail.contains("\"fraction\":1"), "{detail}");
        // terminal queries have no remaining-time estimate
        assert!(detail.contains("\"eta_us\":null"), "{detail}");
    }

    #[test]
    fn phase_sink_tracks_last_phase_and_terminal_event() {
        let sink = PhaseSink::new();
        assert_eq!(sink.phase(0), None);
        assert_eq!(sink.rows(), None);
        sink.publish(&ev(TraceEventKind::PhaseTransition {
            op: 2,
            from: Phase::Init,
            to: Phase::Build,
        }));
        sink.publish(&ev(TraceEventKind::PhaseTransition {
            op: 2,
            from: Phase::Build,
            to: Phase::Probe,
        }));
        assert_eq!(sink.phase(2), Some(Phase::Probe));
        assert_eq!(sink.phase(0), None);
        assert!(!sink.is_finished());
        sink.publish(&ev(TraceEventKind::QueryFinished { rows: 9 }));
        assert!(sink.is_finished());
        assert_eq!(sink.rows(), Some(9));
    }

    #[test]
    fn phase_sink_records_aborts_as_failed_state() {
        let sink = PhaseSink::new();
        assert_eq!(sink.state(), QueryState::Running);
        sink.publish(&ev(TraceEventKind::QueryAborted {
            reason: AbortKind::Cancelled,
            rows: 17,
        }));
        assert_eq!(sink.state(), QueryState::Failed(AbortKind::Cancelled));
        assert_eq!(sink.abort_reason(), Some(AbortKind::Cancelled));
        assert_eq!(sink.rows(), Some(17));
        assert!(!sink.is_finished());
    }

    #[test]
    fn summary_json_reports_failed_queries() {
        let dir = Arc::new(QueryDirectory::new(None));
        let (t, reg) = tracker();
        let sink = Arc::new(PhaseSink::new());
        let q = dir.register("doomed", "once", t, Arc::clone(&sink), None);
        for _ in 0..30 {
            reg.get(0).unwrap().record_emitted();
        }
        let all = dir.render_all();
        assert!(all.contains("\"state\":\"running\""), "{all}");
        assert!(all.contains("\"failure\":null"), "{all}");
        sink.publish(&ev(TraceEventKind::QueryAborted {
            reason: AbortKind::DeadlineExceeded,
            rows: 30,
        }));
        let detail = dir.render_query(q.id()).unwrap();
        assert!(detail.contains("\"state\":\"failed\""), "{detail}");
        assert!(detail.contains("\"failure\":\"deadline\""), "{detail}");
        assert!(detail.contains("\"done\":false"), "{detail}");
        assert!(detail.contains("\"rows\":30"), "{detail}");
        // progress froze where the abort happened, it did not jump to 1.0
        assert!(detail.contains("\"fraction\":0.3"), "{detail}");
    }

    #[test]
    fn live_gauge_follows_registrations() {
        let metrics = Registry::new();
        let dir = Arc::new(QueryDirectory::new(Some(&metrics)));
        let gauge = metrics.gauge("qprog_queries_live", "", &[]);
        let registered = metrics.counter("qprog_queries_registered_total", "", &[]);
        let (t, _) = tracker();
        let q = dir.register("q", "once", t, Arc::new(PhaseSink::new()), None);
        assert_eq!(gauge.get(), 1.0);
        assert_eq!(registered.get(), 1);
        drop(q);
        assert_eq!(gauge.get(), 0.0);
        assert_eq!(registered.get(), 1, "total is monotone");
    }

    #[test]
    fn unknown_id_renders_none() {
        let dir = QueryDirectory::new(None);
        assert!(dir.render_query(404).is_none());
    }

    #[test]
    fn managed_entries_walk_the_service_lifecycle() {
        let dir = Arc::new(QueryDirectory::new(None));
        let id = dir.allocate_id(1);
        let q = dir.register_managed(id, "svc query", "gnm", "acme");
        let all = dir.render_all();
        assert!(all.contains("\"state\":\"queued\""), "{all}");
        assert!(all.contains("\"tenant\":\"acme\""), "{all}");
        assert!(all.contains("\"attempt\":0"), "{all}");
        assert!(all.contains("\"fraction\":0"), "{all}");
        assert!(all.contains("\"eta_us\":null"), "{all}");

        assert!(dir.set_managed_state(id, ManagedState::Running { attempt: 1 }));
        let (t, reg) = tracker();
        assert!(dir.attach_execution(id, t, Arc::new(PhaseSink::new()), None));
        for _ in 0..40 {
            reg.get(0).unwrap().record_emitted();
        }
        let detail = dir.render_query(id).unwrap();
        assert!(detail.contains("\"state\":\"running\""), "{detail}");
        assert!(detail.contains("\"attempt\":1"), "{detail}");
        assert!(detail.contains("\"fraction\":0.4"), "{detail}");
        assert!(detail.contains("\"ops\":[{\"name\":\"scan\""), "{detail}");

        assert!(dir.set_managed_state(
            id,
            ManagedState::Retrying {
                kind: "injected".to_string(),
                attempt: 1,
            }
        ));
        let all = dir.render_all();
        assert!(all.contains("\"state\":\"retrying\""), "{all}");
        assert!(all.contains("\"failure\":\"injected\""), "{all}");
        assert!(all.contains("\"done\":false"), "{all}");

        assert!(dir.set_managed_state(
            id,
            ManagedState::Terminal {
                done: true,
                failure: None,
                rows: Some(123),
            }
        ));
        let detail = dir.render_query(id).unwrap();
        assert!(detail.contains("\"state\":\"done\""), "{detail}");
        assert!(detail.contains("\"done\":true"), "{detail}");
        assert!(detail.contains("\"rows\":123"), "{detail}");
        drop(q);
        assert!(!dir.set_managed_state(id, ManagedState::Queued));
        assert!(!dir.attach_execution(id, tracker().0, Arc::new(PhaseSink::new()), None));
    }

    #[test]
    fn allocate_id_respects_floor_and_explicit_registrations() {
        let dir = Arc::new(QueryDirectory::new(None));
        let a = dir.allocate_id(10);
        assert!(a >= 10);
        let _q = dir.register_managed(50, "replayed", "gnm", "t");
        let b = dir.allocate_id(1);
        assert!(b > 50, "{b}");
        let (t, _) = tracker();
        let s = dir.register("session", "once", t, Arc::new(PhaseSink::new()), None);
        assert!(s.id() > b, "session ids share the namespace: {}", s.id());
    }

    #[test]
    fn managed_terminal_is_not_derived_from_trace_state() {
        // A retryable abort publishes QueryAborted into the phase sink;
        // the entry must stay non-terminal until the service says so.
        let dir = Arc::new(QueryDirectory::new(None));
        let id = dir.allocate_id(1);
        let _q = dir.register_managed(id, "flaky", "gnm", "t");
        dir.set_managed_state(id, ManagedState::Running { attempt: 1 });
        let (t, _reg) = tracker();
        let sink = Arc::new(PhaseSink::new());
        dir.attach_execution(id, t, Arc::clone(&sink), None);
        sink.publish(&ev(TraceEventKind::QueryAborted {
            reason: AbortKind::Injected,
            rows: 0,
        }));
        let (_, terminal, emitted) = dir.stream_snapshot(id).unwrap();
        assert!(!terminal, "trace abort must not leak a managed terminal");
        assert!(!emitted);
        let all = dir.render_all();
        assert!(all.contains("\"state\":\"running\""), "{all}");
    }
}
