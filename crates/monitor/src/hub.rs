//! The server-push broadcast hub: one encoded SSE frame per progress tick,
//! fanned out to every subscriber.
//!
//! Polling `/progress/{id}` costs O(N) renders per tick for N clients; the
//! hub inverts that. The monitor's broadcast tick encodes each query's
//! summary **once** (an `Arc<String>` SSE frame) and pushes the `Arc` into
//! every subscriber's bounded queue — N clients cost N queue pushes, not N
//! renders. Subscribers are the server's `GET /progress/{id}/stream` and
//! `GET /events` connections (and, in benches, in-process drains).
//!
//! Backpressure policy: each subscriber owns a bounded queue. When it is
//! full, **non-terminal** frames are dropped (progress is snapshot-like:
//! the next tick supersedes the lost one) and counted; a subscriber that
//! accumulates more than a full queue's worth of drops is evicted (closed)
//! — it was never going to catch up. **Terminal** frames are exempt from
//! both: they are force-pushed past the cap and never dropped, so every
//! surviving subscriber learns how a query ended. A per-query subscriber is
//! closed (drain-then-deliver semantics) right after its terminal frame is
//! queued.
//!
//! Reconnect support: every published frame carries a monotonically
//! increasing `id:` line, and the hub keeps the last [`REPLAY_RING_CAP`]
//! frames in a replay ring. A client reconnecting with `Last-Event-ID`
//! gets the frames it missed ([`frames_since`](StreamHub::frames_since))
//! when the ring still covers the gap, and a full snapshot resync when it
//! does not.
//!
//! Self-observability: the hub counts delivered/dropped frames and
//! evictions, and maintains the `qprog_stream_subscribers` gauge plus
//! `qprog_stream_events_{delivered,dropped}_total` and
//! `qprog_stream_evictions_total` when a metrics registry is attached.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use qprog_metrics::{Counter, Gauge, Registry};

/// Default per-subscriber queue bound (frames). At the monitor's tick
/// cadence this is multiple seconds of buffered progress — a reader that
/// falls further behind is not keeping up.
pub const DEFAULT_QUEUE_CAP: usize = 256;

/// How many recently-published frames the hub retains for
/// `Last-Event-ID` reconnect replay.
pub const REPLAY_RING_CAP: usize = 512;

/// What [`StreamSubscriber::next`] yielded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamNext {
    /// One SSE frame, ready to write verbatim.
    Frame(Arc<String>),
    /// Nothing arrived within the timeout (emit a keepalive, check stop
    /// flags, and wait again).
    Timeout,
    /// The stream ended: queue drained and the subscriber was closed
    /// (terminal frame delivered, eviction, or hub shutdown).
    Closed,
}

#[derive(Debug, Default)]
struct SubState {
    queue: VecDeque<Arc<String>>,
    closed: bool,
    dropped: u64,
}

/// One subscriber's bounded frame queue. Obtain via
/// [`StreamHub::subscribe`]; frames arrive in publication order.
#[derive(Debug)]
pub struct StreamSubscriber {
    id: u64,
    /// `Some(query_id)` = per-query stream; `None` = all-queries firehose.
    filter: Option<u64>,
    cap: usize,
    state: Mutex<SubState>,
    cv: Condvar,
}

impl StreamSubscriber {
    fn lock(&self) -> MutexGuard<'_, SubState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Pop the next frame, waiting up to `timeout`. Queued frames are
    /// always drained before `Closed` is reported.
    pub fn next(&self, timeout: Duration) -> StreamNext {
        let mut st = self.lock();
        loop {
            if let Some(frame) = st.queue.pop_front() {
                return StreamNext::Frame(frame);
            }
            if st.closed {
                return StreamNext::Closed;
            }
            let (guard, result) = self
                .cv
                .wait_timeout(st, timeout)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
            if result.timed_out() {
                if let Some(frame) = st.queue.pop_front() {
                    return StreamNext::Frame(frame);
                }
                return if st.closed {
                    StreamNext::Closed
                } else {
                    StreamNext::Timeout
                };
            }
        }
    }

    /// Frames this subscriber lost to its queue bound.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Whether the subscriber has been closed (it may still have queued
    /// frames to drain).
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

/// The broadcast hub; see the module docs.
pub struct StreamHub {
    subscribers: Mutex<Vec<Arc<StreamSubscriber>>>,
    next_id: AtomicU64,
    /// Frame ids issued so far (ids start at 1; 0 = none issued).
    frame_seq: AtomicU64,
    /// The last [`REPLAY_RING_CAP`] published frames, oldest first, for
    /// `Last-Event-ID` reconnect replay.
    replay: Mutex<VecDeque<(u64, Arc<String>)>>,
    delivered: AtomicU64,
    dropped: AtomicU64,
    evicted: AtomicU64,
    gauge: Option<Arc<Gauge>>,
    delivered_counter: Option<Arc<Counter>>,
    dropped_counter: Option<Arc<Counter>>,
    evictions_counter: Option<Arc<Counter>>,
}

impl std::fmt::Debug for StreamHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamHub")
            .field("subscribers", &self.subscriber_count())
            .field("delivered", &self.delivered())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl StreamHub {
    /// A hub; with a metrics registry attached it also maintains the
    /// `qprog_stream_*` gauge and counters.
    pub fn new(metrics: Option<&Registry>) -> Self {
        StreamHub {
            subscribers: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            frame_seq: AtomicU64::new(0),
            replay: Mutex::new(VecDeque::with_capacity(REPLAY_RING_CAP)),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            gauge: metrics.map(|r| {
                r.gauge(
                    "qprog_stream_subscribers",
                    "Live SSE stream subscribers",
                    &[],
                )
            }),
            delivered_counter: metrics.map(|r| {
                r.counter(
                    "qprog_stream_events_delivered_total",
                    "SSE frames enqueued to stream subscribers",
                    &[],
                )
            }),
            dropped_counter: metrics.map(|r| {
                r.counter(
                    "qprog_stream_events_dropped_total",
                    "Non-terminal SSE frames dropped at full subscriber queues",
                    &[],
                )
            }),
            evictions_counter: metrics.map(|r| {
                r.counter(
                    "qprog_stream_evictions_total",
                    "Subscribers evicted for falling too far behind",
                    &[],
                )
            }),
        }
    }

    fn subs(&self) -> MutexGuard<'_, Vec<Arc<StreamSubscriber>>> {
        self.subscribers.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn update_gauge(&self, len: usize) {
        if let Some(g) = &self.gauge {
            g.set(len as f64);
        }
    }

    /// Register a subscriber: `filter = Some(id)` for one query's stream,
    /// `None` for the firehose. `cap` bounds the queue
    /// ([`DEFAULT_QUEUE_CAP`] is the server's choice).
    pub fn subscribe(&self, filter: Option<u64>, cap: usize) -> Arc<StreamSubscriber> {
        let sub = Arc::new(StreamSubscriber {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            filter,
            cap: cap.max(1),
            state: Mutex::new(SubState::default()),
            cv: Condvar::new(),
        });
        let mut subs = self.subs();
        subs.push(Arc::clone(&sub));
        self.update_gauge(subs.len());
        sub
    }

    /// Remove a subscriber (normally: its connection closed).
    pub fn unsubscribe(&self, sub: &StreamSubscriber) {
        let mut subs = self.subs();
        subs.retain(|s| s.id != sub.id);
        self.update_gauge(subs.len());
        {
            let mut st = sub.lock();
            st.closed = true;
        }
        sub.cv.notify_all();
    }

    /// Current subscriber count.
    pub fn subscriber_count(&self) -> usize {
        self.subs().len()
    }

    /// Whether any subscriber would receive a frame for `query_id` — the
    /// broadcast tick skips encoding entirely when nobody is listening.
    pub fn wants(&self, query_id: u64) -> bool {
        self.subs()
            .iter()
            .any(|s| s.filter.is_none_or(|f| f == query_id))
    }

    /// The id of the most recently published frame (0 = none yet).
    pub fn last_frame_id(&self) -> u64 {
        self.frame_seq.load(Ordering::Acquire)
    }

    /// Frames published after `last_id`, for `Last-Event-ID` reconnects.
    ///
    /// - `Some(frames)` — the ring still covers everything after
    ///   `last_id`; replaying `frames` (possibly empty) makes the client
    ///   whole.
    /// - `None` — the gap is older than the ring (or `last_id` was never
    ///   issued); the caller must fall back to a full snapshot resync.
    pub fn frames_since(&self, last_id: u64) -> Option<Vec<Arc<String>>> {
        let newest = self.last_frame_id();
        if last_id > newest {
            // The client claims frames we never issued (e.g. a server
            // restart reset the sequence): resync.
            return None;
        }
        if last_id == newest {
            return Some(Vec::new());
        }
        let ring = self.replay.lock().unwrap_or_else(|p| p.into_inner());
        match ring.front() {
            // Continuity: the ring's oldest entry must be no newer than
            // the first missed frame, or frames were already evicted.
            Some(&(oldest, _)) if oldest <= last_id + 1 => Some(
                ring.iter()
                    .filter(|(id, _)| *id > last_id)
                    .map(|(_, f)| Arc::clone(f))
                    .collect(),
            ),
            _ => None,
        }
    }

    /// Encode and fan one frame out. The frame is encoded once (with a
    /// fresh monotonic `id:` line) and recorded in the replay ring; every
    /// matching subscriber gets an `Arc` clone. `terminal` frames bypass
    /// the queue bound and close per-query subscribers after delivery.
    pub fn publish(&self, query_id: u64, event: &str, data: &str, terminal: bool) {
        let id = self.frame_seq.fetch_add(1, Ordering::AcqRel) + 1;
        let frame = Arc::new(format!("id: {id}\nevent: {event}\ndata: {data}\n\n"));
        {
            let mut ring = self.replay.lock().unwrap_or_else(|p| p.into_inner());
            if ring.len() >= REPLAY_RING_CAP {
                ring.pop_front();
            }
            ring.push_back((id, Arc::clone(&frame)));
        }
        let subs = self.subs();
        let matching = subs
            .iter()
            .filter(|s| s.filter.is_none_or(|f| f == query_id));
        let mut any_closed = false;
        for sub in matching {
            let frame = &frame;
            let mut st = sub.lock();
            if st.closed {
                any_closed = true;
                continue;
            }
            if !terminal && st.queue.len() >= sub.cap {
                st.dropped += 1;
                self.dropped.fetch_add(1, Ordering::Relaxed);
                if let Some(c) = &self.dropped_counter {
                    c.inc();
                }
                // A subscriber that has lost a full queue's worth of
                // frames is never catching up: evict it.
                if st.dropped > sub.cap as u64 {
                    st.closed = true;
                    any_closed = true;
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                    if let Some(c) = &self.evictions_counter {
                        c.inc();
                    }
                    sub.cv.notify_all();
                }
                continue;
            }
            st.queue.push_back(Arc::clone(frame));
            self.delivered.fetch_add(1, Ordering::Relaxed);
            if let Some(c) = &self.delivered_counter {
                c.inc();
            }
            if terminal && sub.filter == Some(query_id) {
                // The query's story is over; close after the drain.
                st.closed = true;
                any_closed = true;
            }
            drop(st);
            sub.cv.notify_all();
        }
        drop(subs);
        if any_closed {
            self.reap();
        }
    }

    /// Drop closed subscribers from the fan-out list (readers still drain
    /// their queues through their own `Arc`).
    fn reap(&self) {
        let mut subs = self.subs();
        subs.retain(|s| !s.lock().closed);
        self.update_gauge(subs.len());
    }

    /// Close every subscriber filtered on `query_id` (the query
    /// unregistered; its terminal frame, if any, is already queued).
    pub fn close_query(&self, query_id: u64) {
        let mut subs = self.subs();
        for sub in subs.iter() {
            if sub.filter == Some(query_id) {
                sub.lock().closed = true;
                sub.cv.notify_all();
            }
        }
        subs.retain(|s| !s.lock().closed);
        self.update_gauge(subs.len());
    }

    /// Close every subscriber (server shutdown). Queued frames still
    /// drain; waiting readers wake immediately.
    pub fn close_all(&self) {
        let mut subs = self.subs();
        for sub in subs.drain(..) {
            sub.lock().closed = true;
            sub.cv.notify_all();
        }
        self.update_gauge(0);
    }

    /// Frames enqueued across all subscribers so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Non-terminal frames dropped at full queues so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Subscribers evicted for falling behind so far.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_millis(50);

    fn frame_text(n: StreamNext) -> String {
        match n {
            StreamNext::Frame(f) => f.as_ref().clone(),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn frames_fan_out_in_order_to_matching_subscribers() {
        let hub = StreamHub::new(None);
        let firehose = hub.subscribe(None, 8);
        let q1 = hub.subscribe(Some(1), 8);
        let q2 = hub.subscribe(Some(2), 8);
        assert_eq!(hub.subscriber_count(), 3);
        hub.publish(1, "progress", "{\"id\":1}", false);
        hub.publish(2, "progress", "{\"id\":2}", false);
        assert_eq!(
            frame_text(firehose.next(T)),
            "id: 1\nevent: progress\ndata: {\"id\":1}\n\n"
        );
        assert_eq!(
            frame_text(firehose.next(T)),
            "id: 2\nevent: progress\ndata: {\"id\":2}\n\n"
        );
        assert!(frame_text(q1.next(T)).contains("\"id\":1"));
        assert_eq!(q1.next(Duration::from_millis(1)), StreamNext::Timeout);
        assert!(frame_text(q2.next(T)).contains("\"id\":2"));
        assert_eq!(hub.delivered(), 4);
        assert_eq!(hub.dropped(), 0);
    }

    #[test]
    fn terminal_frames_bypass_the_cap_and_close_per_query_streams() {
        let hub = StreamHub::new(None);
        let sub = hub.subscribe(Some(7), 4);
        for i in 0..6 {
            hub.publish(7, "progress", &format!("{{\"n\":{i}}}"), false);
        }
        // Queue bound held: 2 progress frames dropped (below the eviction
        // threshold of a full queue's worth)...
        assert_eq!(sub.dropped(), 2);
        assert_eq!(hub.evicted(), 0);
        // ...but the terminal frame is force-pushed past the full queue.
        hub.publish(7, "terminal", "{\"done\":true}", true);
        let mut got = Vec::new();
        loop {
            match sub.next(T) {
                StreamNext::Frame(f) => got.push(f.as_ref().clone()),
                StreamNext::Closed => break,
                StreamNext::Timeout => panic!("stream should have closed"),
            }
        }
        assert_eq!(got.len(), 5, "{got:?}");
        assert!(got[4].contains("\nevent: terminal\n"), "{got:?}");
        assert!(got[4].starts_with("id: "), "{got:?}");
        // Drain-then-close: the subscriber is gone from the fan-out list.
        assert_eq!(hub.subscriber_count(), 0);
    }

    #[test]
    fn hopeless_subscribers_are_evicted() {
        let hub = StreamHub::new(None);
        let slow = hub.subscribe(None, 2);
        let fast = hub.subscribe(None, 1024);
        // 2 queued + cap (2) tolerated drops + 1 → eviction.
        for i in 0..6 {
            hub.publish(1, "progress", &format!("{{\"n\":{i}}}"), false);
        }
        assert_eq!(hub.evicted(), 1);
        assert!(slow.is_closed());
        assert_eq!(hub.subscriber_count(), 1);
        // The evicted reader still drains what it had, then sees Closed.
        assert!(matches!(slow.next(T), StreamNext::Frame(_)));
        assert!(matches!(slow.next(T), StreamNext::Frame(_)));
        assert_eq!(slow.next(T), StreamNext::Closed);
        // The fast subscriber got everything.
        for _ in 0..6 {
            assert!(matches!(fast.next(T), StreamNext::Frame(_)));
        }
    }

    #[test]
    fn replay_ring_serves_missed_frames_by_last_event_id() {
        let hub = StreamHub::new(None);
        // Keep one firehose subscriber so frames keep flowing while the
        // "reconnecting" client is away.
        let _live = hub.subscribe(None, 64);
        for i in 0..5 {
            hub.publish(1, "progress", &format!("{{\"n\":{i}}}"), false);
        }
        assert_eq!(hub.last_frame_id(), 5);
        // Saw everything: nothing to replay.
        assert_eq!(hub.frames_since(5).unwrap().len(), 0);
        // Missed the last two: exactly those come back, in order.
        let missed = hub.frames_since(3).unwrap();
        assert_eq!(missed.len(), 2);
        assert!(missed[0].starts_with("id: 4\n"), "{missed:?}");
        assert!(missed[1].starts_with("id: 5\n"), "{missed:?}");
        // A never-issued id (stale client from a previous server life)
        // forces a snapshot resync.
        assert!(hub.frames_since(99).is_none());
    }

    #[test]
    fn replay_gaps_older_than_the_ring_force_a_resync() {
        let hub = StreamHub::new(None);
        let _live = hub.subscribe(None, 4);
        for i in 0..(REPLAY_RING_CAP as u64 + 10) {
            hub.publish(1, "progress", &format!("{{\"n\":{i}}}"), false);
        }
        // The oldest retained frame is id 11; a client at id 5 has an
        // unrecoverable gap.
        assert!(hub.frames_since(5).is_none());
        // But a client within the ring window still replays.
        let tail = hub.frames_since(REPLAY_RING_CAP as u64 + 8).unwrap();
        assert_eq!(tail.len(), 2);
    }

    #[test]
    fn close_all_wakes_waiting_readers() {
        let hub = Arc::new(StreamHub::new(None));
        let sub = hub.subscribe(None, 8);
        let hub2 = Arc::clone(&hub);
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            hub2.close_all();
        });
        // A long wait returns Closed promptly once the hub shuts down.
        assert_eq!(sub.next(Duration::from_secs(30)), StreamNext::Closed);
        waker.join().unwrap();
        assert_eq!(hub.subscriber_count(), 0);
    }

    #[test]
    fn metrics_track_subscribers_and_flow() {
        let registry = Registry::new();
        let hub = StreamHub::new(Some(&registry));
        let gauge = registry.gauge("qprog_stream_subscribers", "", &[]);
        let sub = hub.subscribe(None, 2);
        assert_eq!(gauge.get(), 1.0);
        for i in 0..3 {
            hub.publish(1, "progress", &format!("{i}"), false);
        }
        hub.unsubscribe(&sub);
        assert_eq!(gauge.get(), 0.0);
        let text = registry.render();
        assert!(
            text.contains("qprog_stream_events_delivered_total 2"),
            "{text}"
        );
        assert!(
            text.contains("qprog_stream_events_dropped_total 1"),
            "{text}"
        );
    }
}
