//! Live progress monitoring for concurrent qprog queries.
//!
//! The paper's framework is *online*: a progress estimate is only useful if
//! someone can watch it while the query runs. This crate serves that view
//! over plain HTTP using nothing but `std::net`:
//!
//! - [`directory`] — a [`QueryDirectory`](directory::QueryDirectory) where
//!   live queries register a cloneable
//!   [`ProgressTracker`](qprog_plan::ProgressTracker) plus a
//!   [`PhaseSink`](directory::PhaseSink) (last observed phase per
//!   operator), and unregister automatically when their registration token
//!   drops;
//! - [`server`] — a threaded [`MonitorServer`](server::MonitorServer) on
//!   `std::net::TcpListener` answering
//!   `GET /metrics` (Prometheus text from an attached
//!   [`qprog_metrics::Registry`]), `GET /progress` and
//!   `GET /progress/{query_id}` (JSON: whole-query `C/T` with `[lo, hi]`
//!   bounds and per-operator `K_i`/`N_i`/phase), and `GET /` (a
//!   self-contained HTML dashboard polling the JSON endpoints);
//! - [`http`] — the minimal HTTP/1.1 request parsing and response writing
//!   underneath, shared by the server and its tests;
//! - [`hub`] — the server-push [`StreamHub`](hub::StreamHub) behind
//!   `GET /progress/{id}/stream` and the `GET /events` firehose: each
//!   broadcast tick encodes a query's progress **once** and fans the frame
//!   out to every `text/event-stream` subscriber through bounded queues
//!   (slow readers drop stale progress frames and are eventually evicted;
//!   terminal frames are never dropped);
//! - [`eta`] — the [`EtaSmoother`](eta::EtaSmoother) turning the raw
//!   `elapsed × (1 − p) / p` remaining-time formula into a stable number.
//!
//! Everything is observer-side: sampling a tracker is a handful of relaxed
//! atomic loads, and a query that never registers pays nothing.

pub mod dashboard;
pub mod directory;
pub mod eta;
pub mod http;
pub mod hub;
pub mod server;
pub mod service;

// The submit/queue/dispatch service this crate fronts (`POST /submit`);
// re-exported so monitor users need only one dependency.
pub use qprog_service;

pub use directory::{ManagedState, MonitoredQuery, PhaseSink, QueryDirectory, QueryState};
pub use eta::EtaSmoother;
pub use hub::{StreamHub, StreamNext, StreamSubscriber};
pub use server::{MonitorServer, ServerConfig};
pub use service::DirectoryObserver;
