//! The threaded monitor HTTP server.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use qprog_exec::sync::Mutex;
use qprog_metrics::Registry;
use qprog_types::{QError, QResult};

use crate::dashboard::DASHBOARD_HTML;
use crate::directory::QueryDirectory;
use crate::http::{read_request, Request, Response};

/// Per-connection socket timeout: the monitor must never hold a thread
/// hostage to a stalled client.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// A live progress monitor server.
///
/// Binds a `std::net::TcpListener` (use port `0` to let the OS pick), and
/// serves, each request on its own thread:
///
/// - `GET /` — self-contained HTML dashboard,
/// - `GET /metrics` — Prometheus text exposition of the attached registry,
/// - `GET /progress` — JSON summaries of every registered query,
/// - `GET /progress/{id}` — one query with per-operator detail.
///
/// Dropping the server (or calling [`shutdown`](Self::shutdown)) stops the
/// accept loop and joins every thread the server spawned.
pub struct MonitorServer {
    addr: SocketAddr,
    directory: Arc<QueryDirectory>,
    metrics: Option<Arc<Registry>>,
    stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl MonitorServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving. With a
    /// metrics registry attached, `/metrics` exposes it and the query
    /// directory maintains the `qprog_queries_live` gauge.
    pub fn start(addr: impl ToSocketAddrs, metrics: Option<Arc<Registry>>) -> QResult<Arc<Self>> {
        let listener = TcpListener::bind(addr).map_err(|e| QError::plan(format!("bind: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| QError::plan(format!("local_addr: {e}")))?;
        let directory = Arc::new(QueryDirectory::new(metrics.as_deref()));
        let server = Arc::new(MonitorServer {
            addr,
            directory,
            metrics,
            stop: Arc::new(AtomicBool::new(false)),
            accept_thread: Mutex::new(None),
            connections: Arc::new(Mutex::new(Vec::new())),
        });
        let accept = {
            let server = Arc::clone(&server);
            std::thread::Builder::new()
                .name("qprog-monitor-accept".to_string())
                .spawn(move || server.accept_loop(listener))
                .map_err(|e| QError::plan(format!("spawn accept thread: {e}")))?
        };
        *server.accept_thread.lock() = Some(accept);
        Ok(server)
    }

    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Convenience `http://host:port` form of [`addr`](Self::addr).
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// The query directory live queries register with.
    pub fn directory(&self) -> &Arc<QueryDirectory> {
        &self.directory
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&Arc<Registry>> {
        self.metrics.as_ref()
    }

    fn accept_loop(self: &Arc<Self>, listener: TcpListener) {
        for stream in listener.incoming() {
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Fault-injection site: a failing accept drops the connection
            // but must never take the accept loop down with it.
            if qprog_fault::eval("monitor/accept").is_err() {
                continue;
            }
            // Reap finished connection threads so the vec stays bounded.
            self.connections.lock().retain(|h| !h.is_finished());
            let server = Arc::clone(self);
            let handle = std::thread::Builder::new()
                .name("qprog-monitor-conn".to_string())
                // A panic while serving one client (route bug, poisoned
                // downstream lock) must not unwind the connection thread
                // noisily or poison shared state; swallow it and drop the
                // connection.
                .spawn(move || {
                    let _ = catch_unwind(AssertUnwindSafe(|| server.handle_connection(stream)));
                });
            if let Ok(handle) = handle {
                self.connections.lock().push(handle);
            }
        }
    }

    fn handle_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        // Fault-injection site: simulate request-read failures (client gone
        // mid-request, interrupted socket) — the connection just drops.
        if qprog_fault::eval("monitor/read").is_err() {
            return;
        }
        let Some(request) = read_request(&mut stream) else {
            return;
        };
        let head_only = request.method == "HEAD";
        let response = if request.method == "GET" || head_only {
            self.route(&request)
        } else {
            Response::method_not_allowed()
        };
        let _ = response.write_to(&mut stream, head_only);
    }

    /// Dispatch one parsed request (separated from IO for testability).
    pub fn route(&self, request: &Request) -> Response {
        match request.path.as_str() {
            "/" => Response::ok("text/html; charset=utf-8", DASHBOARD_HTML),
            "/metrics" => match &self.metrics {
                Some(r) => Response::ok(qprog_metrics::expose::CONTENT_TYPE, r.render()),
                None => Response::not_found("no metrics registry attached"),
            },
            "/progress" => Response::ok(
                "application/json; charset=utf-8",
                self.directory.render_all(),
            ),
            path => match path.strip_prefix("/progress/") {
                Some(id) => match id.parse::<u64>().ok() {
                    Some(id) => match self.directory.render_query(id) {
                        Some(json) => Response::ok("application/json; charset=utf-8", json),
                        None => Response::not_found(
                            "no such query (finished queries \
                                                     unregister when their handle drops)",
                        ),
                    },
                    None => Response::not_found("query id must be an integer"),
                },
                None => Response::not_found("try /, /metrics, /progress, or /progress/{id}"),
            },
        }
    }

    /// Stop accepting, then join the accept thread and every in-flight
    /// connection thread. Idempotent; also called on drop.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Poke the listener so the blocking accept observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.lock().take() {
            let _ = handle.join();
        }
        let connections: Vec<_> = std::mem::take(&mut *self.connections.lock());
        for c in connections {
            let _ = c.join();
        }
    }
}

impl Drop for MonitorServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for MonitorServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorServer")
            .field("addr", &self.addr)
            .field("live_queries", &self.directory.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// One GET over a fresh TcpStream; returns the whole raw response.
    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_dashboard_progress_and_404() {
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let addr = server.addr();

        let home = get(addr, "/");
        assert!(home.starts_with("HTTP/1.1 200 OK\r\n"), "{home}");
        assert!(home.contains("text/html"), "{home}");
        assert!(home.contains("<!doctype html>"), "{home}");

        let progress = get(addr, "/progress");
        assert!(progress.contains("application/json"), "{progress}");
        assert!(progress.ends_with("{\"queries\":[]}"), "{progress}");

        assert!(get(addr, "/progress/99").starts_with("HTTP/1.1 404"));
        assert!(get(addr, "/progress/zzz").starts_with("HTTP/1.1 404"));
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
        // no registry attached
        assert!(get(addr, "/metrics").starts_with("HTTP/1.1 404"));

        server.shutdown();
    }

    #[test]
    fn serves_metrics_when_registry_attached() {
        let registry = Arc::new(Registry::new());
        registry.counter("up_total", "updates", &[]).add(3);
        let server = MonitorServer::start("127.0.0.1:0", Some(Arc::clone(&registry))).unwrap();
        let text = get(server.addr(), "/metrics");
        assert!(text.contains("text/plain; version=0.0.4"), "{text}");
        assert!(text.contains("# TYPE up_total counter"), "{text}");
        assert!(text.contains("up_total 3"), "{text}");
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "POST /progress HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");
    }

    /// Write raw (possibly invalid) bytes, then read whatever comes back.
    /// The assertion that matters is implicit: the server survives.
    fn raw(addr: SocketAddr, bytes: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        let _ = stream.write_all(bytes);
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let mut out = Vec::new();
        let _ = stream.read_to_end(&mut out);
        String::from_utf8_lossy(&out).into_owned()
    }

    #[test]
    fn malformed_requests_do_not_take_the_server_down() {
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let addr = server.addr();
        let cases: &[&[u8]] = &[
            b"",                                // connect-then-close
            b"\r\n\r\n",                        // empty request line
            b"GARBAGE\r\n\r\n",                 // no method/path split
            b"GET\r\n\r\n",                     // missing path
            b"GET /progress",                   // truncated: no header end
            b"\xff\xfe\x00\x01garbage\r\n\r\n", // non-UTF-8 noise
            b"GET /progress HTTP/1.1\r\nHeader-without-colon\r\n\r\n",
            b"GET /%zz%%% HTTP/1.1\r\n\r\n", // junk path, parses fine
            b"GET / HTTP/9.9\r\n\r\n",       // absurd version
        ];
        for case in cases {
            // Never panics, never hangs; response may be empty or an error.
            let _ = raw(addr, case);
        }
        // A request head past MAX_HEAD_BYTES is dropped, not buffered forever.
        let mut huge = Vec::from(&b"GET / HTTP/1.1\r\n"[..]);
        huge.extend(std::iter::repeat_n(b'a', 64 * 1024));
        let _ = raw(addr, &huge);
        // The server still answers well-formed requests afterwards.
        let ok = get(addr, "/progress");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        server.shutdown();
    }

    #[test]
    fn slow_clients_cannot_hold_connection_threads_hostage() {
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let addr = server.addr();
        // A slowloris-style client: opens the connection, trickles half a
        // request, then stalls. The read timeout must reclaim the thread.
        let stalled = TcpStream::connect(addr).unwrap();
        {
            let mut s = &stalled;
            let _ = s.write_all(b"GET /progress HT");
        }
        // Meanwhile the server keeps answering other clients immediately.
        let ok = get(addr, "/progress");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        drop(stalled);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent() {
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let addr = server.addr();
        assert!(get(addr, "/").starts_with("HTTP/1.1 200"));
        server.shutdown();
        server.shutdown();
        // The listener is gone: new connections fail or yield no response.
        let refused = match TcpStream::connect(addr) {
            Err(_) => true,
            Ok(mut s) => {
                let _ = write!(s, "GET / HTTP/1.1\r\n\r\n");
                let mut out = String::new();
                let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
                s.read_to_string(&mut out).is_err() || out.is_empty()
            }
        };
        assert!(refused, "server still answering after shutdown");
    }
}
