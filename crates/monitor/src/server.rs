//! The threaded monitor HTTP server.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use qprog_exec::sync::Mutex;
use qprog_metrics::Registry;
use qprog_obs::Corpus;
use qprog_service::{CancelOutcome, QueryService, SubmitError, SubmitRequest};
use qprog_types::{QError, QResult};

use crate::dashboard::DASHBOARD_HTML;
use crate::directory::QueryDirectory;
use crate::http::{
    body_str_field, body_u64_field, read_request, write_sse_frame, write_sse_frame_with_id,
    write_sse_head, ReadError, Request, Response,
};
use crate::hub::{StreamHub, StreamNext, StreamSubscriber, DEFAULT_QUEUE_CAP};

/// Cadence of the broadcast tick that samples every registered query and
/// fans progress/health/terminal frames out to stream subscribers.
const TICK: Duration = Duration::from_millis(25);

/// How long an SSE writer waits for a frame before emitting a keepalive
/// comment (which also detects silently-dead clients).
const STREAM_POLL: Duration = Duration::from_millis(250);

/// Terminal states a corpus run can be archived under (`/history?state=`).
const HISTORY_STATES: &[&str] = &[
    "finished",
    "cancelled",
    "deadline",
    "budget",
    "panic",
    "injected",
    "error",
    "unknown",
];

/// Tunable robustness bounds for the HTTP front end.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-connection socket read/write timeout: the monitor must never
    /// hold a thread hostage to a stalled client. For SSE connections
    /// this doubles as the slow-client guard — a receiver that blocks
    /// writes for this long is disconnected.
    pub io_timeout: Duration,
    /// Upper bound on concurrently-served connections. Connections past
    /// the bound are answered `503` + `Retry-After` and dropped, so a
    /// connection flood degrades into fast rejections instead of
    /// unbounded threads.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            io_timeout: Duration::from_secs(5),
            max_connections: 256,
        }
    }
}

/// A live progress monitor server.
///
/// Binds a `std::net::TcpListener` (use port `0` to let the OS pick), and
/// serves, each request on its own thread:
///
/// - `GET /` — self-contained HTML dashboard,
/// - `GET /metrics` — Prometheus text exposition of the attached registry,
/// - `GET /progress` — JSON summaries of every registered query,
/// - `GET /progress/{id}` — one query with per-operator detail,
/// - `GET /progress/{id}/stream` — server-push `text/event-stream` of one
///   query's `progress`/`health` frames, ending with its `terminal` frame,
/// - `GET /events` — the all-queries firehose stream.
///
/// With a trace corpus attached ([`set_corpus`](Self::set_corpus), or
/// `Observability::with_corpus` session-side), three more routes serve run
/// history:
///
/// - `GET /history` — archived runs with scorecards (filter with
///   `?workload=`/`?estimator=`/`?state=`/`?limit=`),
/// - `GET /history/{run}` — one run's metadata + scorecard,
/// - `GET /history/{run}/trace` — the run's raw trace JSONL.
///
/// With a query service attached ([`set_service`](Self::set_service), or
/// `ServiceRuntime` session-side), the monitor doubles as the service's
/// front door:
///
/// - `POST /submit` — accept `{"sql","tenant"[,"label","deadline_ms"]}`,
///   answer `202 {"id":N,...}` immediately (or a typed `400`/`429`/`503`),
/// - `POST /progress/{id}/cancel` — cancel a queued or running submission,
/// - `GET /service` — admission/queue/retry statistics.
///
/// Errors are structured JSON bodies (`{"error","detail"}`) with accurate
/// status codes; shed responses carry `Retry-After`.
///
/// Streamed frames are encoded once per broadcast tick and shared across
/// subscribers, so N watchers cost O(1) encodes per tick, not O(N).
///
/// Dropping the server (or calling [`shutdown`](Self::shutdown)) stops the
/// accept loop and joins every thread the server spawned.
pub struct MonitorServer {
    addr: SocketAddr,
    config: ServerConfig,
    /// Server start instant, for `/healthz` uptime reporting.
    started: std::time::Instant,
    directory: Arc<QueryDirectory>,
    metrics: Option<Arc<Registry>>,
    hub: Arc<StreamHub>,
    /// Attached after start (the session opens its corpus at build time,
    /// which may follow the server), hence the mutex.
    corpus: Mutex<Option<Arc<Corpus>>>,
    /// Attached after start, like the corpus: the service needs the
    /// directory (for its status observer), which needs the server.
    service: Mutex<Option<Arc<QueryService>>>,
    stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    tick_thread: Mutex<Option<JoinHandle<()>>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl MonitorServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving with default
    /// bounds. With a metrics registry attached, `/metrics` exposes it and
    /// the query directory maintains the `qprog_queries_live` gauge.
    pub fn start(addr: impl ToSocketAddrs, metrics: Option<Arc<Registry>>) -> QResult<Arc<Self>> {
        Self::start_with(addr, metrics, ServerConfig::default())
    }

    /// [`start`](Self::start) with explicit robustness bounds.
    pub fn start_with(
        addr: impl ToSocketAddrs,
        metrics: Option<Arc<Registry>>,
        config: ServerConfig,
    ) -> QResult<Arc<Self>> {
        let listener = TcpListener::bind(addr).map_err(|e| QError::plan(format!("bind: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| QError::plan(format!("local_addr: {e}")))?;
        let directory = Arc::new(QueryDirectory::new(metrics.as_deref()));
        let hub = Arc::new(StreamHub::new(metrics.as_deref()));
        directory.set_hub(Arc::clone(&hub));
        let server = Arc::new(MonitorServer {
            addr,
            config,
            started: std::time::Instant::now(),
            directory,
            metrics,
            hub,
            corpus: Mutex::new(None),
            service: Mutex::new(None),
            stop: Arc::new(AtomicBool::new(false)),
            accept_thread: Mutex::new(None),
            tick_thread: Mutex::new(None),
            connections: Arc::new(Mutex::new(Vec::new())),
        });
        let accept = {
            let server = Arc::clone(&server);
            std::thread::Builder::new()
                .name("qprog-monitor-accept".to_string())
                .spawn(move || server.accept_loop(listener))
                .map_err(|e| QError::plan(format!("spawn accept thread: {e}")))?
        };
        *server.accept_thread.lock() = Some(accept);
        let tick = {
            let server = Arc::clone(&server);
            std::thread::Builder::new()
                .name("qprog-monitor-tick".to_string())
                .spawn(move || server.broadcast_loop())
                .map_err(|e| QError::plan(format!("spawn broadcast thread: {e}")))?
        };
        *server.tick_thread.lock() = Some(tick);
        Ok(server)
    }

    /// The broadcast tick: sample every registered query and fan frames
    /// out to stream subscribers until shutdown.
    fn broadcast_loop(&self) {
        while !self.stop.load(Ordering::Acquire) {
            self.directory.tick();
            std::thread::sleep(TICK);
        }
    }

    /// The server-push hub stream subscribers hang off.
    pub fn hub(&self) -> &Arc<StreamHub> {
        &self.hub
    }

    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Convenience `http://host:port` form of [`addr`](Self::addr).
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// The query directory live queries register with.
    pub fn directory(&self) -> &Arc<QueryDirectory> {
        &self.directory
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&Arc<Registry>> {
        self.metrics.as_ref()
    }

    /// Attach (or replace) the trace corpus served under `/history`.
    pub fn set_corpus(&self, corpus: Arc<Corpus>) {
        *self.corpus.lock() = Some(corpus);
    }

    /// The attached trace corpus, if any.
    pub fn corpus(&self) -> Option<Arc<Corpus>> {
        self.corpus.lock().clone()
    }

    /// Attach (or replace) the query service behind `POST /submit`,
    /// `POST /progress/{id}/cancel`, and `GET /service`.
    pub fn set_service(&self, service: Arc<QueryService>) {
        *self.service.lock() = Some(service);
    }

    /// The attached query service, if any.
    pub fn service(&self) -> Option<Arc<QueryService>> {
        self.service.lock().clone()
    }

    fn accept_loop(self: &Arc<Self>, listener: TcpListener) {
        for stream in listener.incoming() {
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            let mut stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Fault-injection site: a failing accept drops the connection
            // but must never take the accept loop down with it.
            if qprog_fault::eval("monitor/accept").is_err() {
                continue;
            }
            // Reap finished connection threads so the vec stays bounded,
            // then shed connections past the cap with a fast typed 503
            // (bounded write timeout: an unresponsive flooder must not
            // stall the accept loop either).
            let live = {
                let mut conns = self.connections.lock();
                conns.retain(|h| !h.is_finished());
                conns.len()
            };
            if live >= self.config.max_connections {
                let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                let _ =
                    Response::error(503, "overloaded", "connection limit reached; retry shortly")
                        .with_retry_after(1)
                        .write_to(&mut stream, false);
                continue;
            }
            let server = Arc::clone(self);
            let handle = std::thread::Builder::new()
                .name("qprog-monitor-conn".to_string())
                // A panic while serving one client (route bug, poisoned
                // downstream lock) must not unwind the connection thread
                // noisily or poison shared state; swallow it and drop the
                // connection.
                .spawn(move || {
                    let _ = catch_unwind(AssertUnwindSafe(|| server.handle_connection(stream)));
                });
            if let Ok(handle) = handle {
                self.connections.lock().push(handle);
            }
        }
    }

    fn handle_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(self.config.io_timeout));
        let _ = stream.set_write_timeout(Some(self.config.io_timeout));
        // Fault-injection site: simulate request-read failures (client gone
        // mid-request, interrupted socket) — the connection just drops.
        if qprog_fault::eval("monitor/read").is_err() {
            return;
        }
        let request = match read_request(&mut stream) {
            Ok(r) => r,
            Err(ReadError::BodyTooLarge) => {
                let _ = Response::error(
                    413,
                    "payload too large",
                    "request body exceeds the 256 KiB limit",
                )
                .write_to(&mut stream, false);
                return;
            }
            // Garbage (or a socket that died mid-request) gets no reply;
            // there may be nothing HTTP on the other end to read it.
            Err(ReadError::Malformed) => return,
        };
        // Streaming endpoints keep the connection open and write frames as
        // they arrive; everything else is a buffered one-shot response.
        if request.method == "GET" {
            if request.path == "/events" {
                self.serve_events(stream, &request);
                return;
            }
            if let Some(id) = request
                .path
                .strip_prefix("/progress/")
                .and_then(|rest| rest.strip_suffix("/stream"))
                .and_then(|id| id.parse::<u64>().ok())
            {
                self.serve_query_stream(stream, id);
                return;
            }
        }
        let head_only = request.method == "HEAD";
        let response = if request.method == "GET" || head_only {
            self.route(&request)
        } else if request.method == "POST" {
            self.route_post(&request)
        } else {
            Response::method_not_allowed()
        };
        let _ = response.write_to(&mut stream, head_only);
    }

    /// `GET /events`: subscribe to the firehose, open the stream, then
    /// pump frames until the client leaves or the server stops.
    ///
    /// A fresh connect opens with a `snapshot` frame of every query's
    /// current state, stamped with the hub's latest frame id so the
    /// client's `Last-Event-ID` tracking starts live. A reconnect carrying
    /// `Last-Event-ID` instead replays exactly the frames it missed when
    /// the hub's replay ring still covers the gap; when the gap is too old
    /// (or the id was never issued) it degrades to the snapshot resync.
    /// The subscription is taken *before* the replay cut, so a frame
    /// published in between is at worst duplicated (frames are
    /// snapshot-like upserts), never lost.
    fn serve_events(&self, mut stream: TcpStream, request: &Request) {
        use std::io::Write;
        let sub = self.hub.subscribe(None, DEFAULT_QUEUE_CAP);
        if write_sse_head(&mut stream).is_err() {
            self.hub.unsubscribe(&sub);
            return;
        }
        let replayed = request
            .last_event_id
            .and_then(|id| self.hub.frames_since(id));
        let opened = match replayed {
            Some(frames) => frames.iter().all(|f| {
                stream
                    .write_all(f.as_bytes())
                    .and_then(|()| stream.flush())
                    .is_ok()
            }),
            None => write_sse_frame_with_id(
                &mut stream,
                self.hub.last_frame_id(),
                "snapshot",
                &self.directory.render_all(),
            )
            .is_ok(),
        };
        if !opened {
            self.hub.unsubscribe(&sub);
            return;
        }
        self.pump(&mut stream, &sub);
        self.hub.unsubscribe(&sub);
    }

    /// `GET /progress/{id}/stream`: one query's progress/health stream.
    /// The subscription is taken *before* the snapshot so a terminal frame
    /// broadcast in between is either in the snapshot or in the queue —
    /// never lost.
    fn serve_query_stream(&self, mut stream: TcpStream, id: u64) {
        let sub = self.hub.subscribe(Some(id), DEFAULT_QUEUE_CAP);
        let Some((summary, terminal, already_emitted)) = self.directory.stream_snapshot(id) else {
            self.hub.unsubscribe(&sub);
            let _ = Response::not_found(
                "no such query (finished queries unregister when their handle drops)",
            )
            .write_to(&mut stream, false);
            return;
        };
        if write_sse_head(&mut stream).is_err()
            || write_sse_frame(&mut stream, "progress", &summary).is_err()
        {
            self.hub.unsubscribe(&sub);
            return;
        }
        if terminal && already_emitted {
            // The broadcast predates this subscriber; synthesize the
            // terminal frame so late watchers still learn the outcome.
            let _ = write_sse_frame(&mut stream, "terminal", &summary);
        } else {
            self.pump(&mut stream, &sub);
        }
        self.hub.unsubscribe(&sub);
    }

    /// Forward frames from `sub` to the socket until the stream closes,
    /// the client disconnects, or the server shuts down.
    fn pump(&self, stream: &mut TcpStream, sub: &StreamSubscriber) {
        use std::io::Write;
        while !self.stop.load(Ordering::Acquire) {
            match sub.next(STREAM_POLL) {
                StreamNext::Frame(frame) => {
                    if stream
                        .write_all(frame.as_bytes())
                        .and_then(|()| stream.flush())
                        .is_err()
                    {
                        return;
                    }
                }
                StreamNext::Timeout => {
                    // SSE comment: keeps intermediaries from idling the
                    // connection out and surfaces dead clients as errors.
                    if stream
                        .write_all(b": keepalive\n\n")
                        .and_then(|()| stream.flush())
                        .is_err()
                    {
                        return;
                    }
                }
                StreamNext::Closed => return,
            }
        }
    }

    /// Dispatch one parsed GET/HEAD request (separated from IO for
    /// testability).
    pub fn route(&self, request: &Request) -> Response {
        match request.path.as_str() {
            "/" => Response::ok("text/html; charset=utf-8", DASHBOARD_HTML),
            "/metrics" => match &self.metrics {
                Some(r) => Response::ok(qprog_metrics::expose::CONTENT_TYPE, r.render()),
                None => Response::not_found("no metrics registry attached"),
            },
            "/progress" => Response::ok(
                "application/json; charset=utf-8",
                self.directory.render_all(),
            ),
            "/service" => match self.service() {
                Some(s) => Response::ok("application/json; charset=utf-8", s.stats_json()),
                None => Response::not_found("no query service attached"),
            },
            "/healthz" => self.serve_healthz(),
            "/history" => self.serve_history(request),
            path => match path.strip_prefix("/history/") {
                Some(rest) => self.serve_history_run(rest),
                None => match path.strip_prefix("/trace/") {
                    Some(id) => self.serve_trace(id),
                    None => match path.strip_prefix("/progress/") {
                        Some(id) => match id.parse::<u64>().ok() {
                            Some(id) => match self.directory.render_query(id) {
                                Some(json) => Response::ok("application/json; charset=utf-8", json),
                                None => Response::not_found(
                                    "no such query (finished queries unregister when their \
                                     handle drops)",
                                ),
                            },
                            None => Response::bad_request("query id must be an integer"),
                        },
                        None => Response::not_found(
                            "try /, /metrics, /progress, /progress/{id}, /history, /service, \
                             /trace/{id}, or /healthz",
                        ),
                    },
                },
            },
        }
    }

    /// `GET /healthz`: liveness/readiness probe. `200` while the server
    /// is up and (if a service is attached) admitting; `503` once the
    /// service is draining or the server is stopping, so load balancers
    /// rotate traffic away before shutdown completes.
    fn serve_healthz(&self) -> Response {
        let (queue_depth, draining) = match self.service() {
            Some(s) => (s.stats().queue_depth, !s.is_admitting()),
            None => (0, false),
        };
        let stopping = self.stop.load(Ordering::Acquire);
        let unhealthy = draining || stopping;
        let body = format!(
            "{{\"status\":\"{}\",\"version\":\"{}\",\"uptime_s\":{},\"queue_depth\":{},\
             \"draining\":{}}}",
            if unhealthy { "draining" } else { "ok" },
            env!("CARGO_PKG_VERSION"),
            self.started.elapsed().as_secs(),
            queue_depth,
            unhealthy,
        );
        if unhealthy {
            Response {
                status: 503,
                content_type: "application/json; charset=utf-8",
                body,
                retry_after: Some(5),
            }
        } else {
            Response::ok("application/json; charset=utf-8", body)
        }
    }

    /// `GET /trace/{id}`: one submission's causal span tree as Chrome
    /// trace-event JSON — load it in Perfetto / `chrome://tracing`, or
    /// feed it to the dashboard's waterfall view.
    fn serve_trace(&self, rest: &str) -> Response {
        let Ok(id) = rest.parse::<u64>() else {
            return Response::bad_request("query id must be an integer");
        };
        let Some(service) = self.service() else {
            return Response::not_found("no query service attached");
        };
        match service.span_events(id) {
            Some(events) => {
                let tree = qprog_obs::SpanTree::from_events(&events, &[]);
                Response::ok("application/json; charset=utf-8", tree.to_chrome_json(id))
            }
            None => Response::not_found("no such submission (evicted or never accepted)"),
        }
    }

    /// Dispatch one parsed POST request.
    pub fn route_post(&self, request: &Request) -> Response {
        if request.path == "/submit" {
            return self.serve_submit(request);
        }
        if let Some(id) = request
            .path
            .strip_prefix("/progress/")
            .and_then(|rest| rest.strip_suffix("/cancel"))
        {
            return match id.parse::<u64>() {
                Ok(id) => self.serve_cancel(id),
                Err(_) => Response::bad_request("query id must be an integer"),
            };
        }
        Response::method_not_allowed()
    }

    /// `POST /submit`: hand the body to the attached query service and
    /// answer immediately — `202` with the query id on acceptance, or the
    /// typed rejection (`400` invalid, `429` shed + `Retry-After`, `503`
    /// draining, `500` journal failure).
    fn serve_submit(&self, request: &Request) -> Response {
        let Some(service) = self.service() else {
            return Response::not_found("no query service attached");
        };
        let Some(sql) = body_str_field(&request.body, "sql") else {
            return Response::bad_request("body must be a JSON object with a \"sql\" string field");
        };
        let Some(tenant) = body_str_field(&request.body, "tenant") else {
            return Response::bad_request(
                "body must be a JSON object with a \"tenant\" string field",
            );
        };
        let req = SubmitRequest {
            sql,
            tenant,
            label: body_str_field(&request.body, "label"),
            deadline: body_u64_field(&request.body, "deadline_ms").map(Duration::from_millis),
        };
        match service.submit(req) {
            Ok(ticket) => Response {
                status: 202,
                content_type: "application/json; charset=utf-8",
                body: format!(
                    "{{\"id\":{},\"state\":\"queued\",\"queue_depth\":{}}}",
                    ticket.id, ticket.queue_depth
                ),
                retry_after: None,
            },
            Err(SubmitError::Invalid(detail)) => Response::bad_request(&detail),
            Err(SubmitError::Rejected {
                reason,
                detail,
                retry_after,
            }) => Response::error(429, reason.label(), &detail)
                .with_retry_after(retry_after.as_secs().max(1)),
            Err(SubmitError::ShuttingDown) => {
                Response::error(503, "shutting down", "service is draining; retry later")
                    .with_retry_after(5)
            }
            Err(SubmitError::Internal(detail)) => Response::error(500, "internal", &detail),
        }
    }

    /// `POST /progress/{id}/cancel`.
    fn serve_cancel(&self, id: u64) -> Response {
        let Some(service) = self.service() else {
            return Response::not_found("no query service attached");
        };
        let state = match service.cancel(id) {
            CancelOutcome::CancelledQueued => "cancelled",
            CancelOutcome::SignalledRunning => "cancelling",
            CancelOutcome::AlreadyTerminal => "terminal",
            CancelOutcome::Unknown => {
                return Response::not_found("no such submission (evicted or never accepted)");
            }
        };
        Response::ok(
            "application/json; charset=utf-8",
            format!("{{\"id\":{id},\"state\":\"{state}\"}}"),
        )
    }

    /// `GET /history`: the corpus run list, newest last, as an array of
    /// index records (each already carries its scorecard). Filters:
    /// `?workload=`, `?estimator=`, `?state=`, `?limit=N` (newest N).
    /// Malformed filter values are a `400`, not a silently-ignored default.
    fn serve_history(&self, request: &Request) -> Response {
        let limit = match request.param("limit") {
            None => None,
            Some(v) => match v.parse::<usize>() {
                Ok(n) => Some(n),
                Err(_) => {
                    return Response::bad_request("limit must be a non-negative integer");
                }
            },
        };
        if let Some(s) = request.param("state") {
            if !HISTORY_STATES.contains(&s) {
                return Response::bad_request(
                    "state must be one of finished, cancelled, deadline, budget, panic, \
                     injected, error, unknown",
                );
            }
        }
        let Some(corpus) = self.corpus() else {
            return Response::not_found("no trace corpus attached");
        };
        let mut runs = corpus.runs();
        if let Some(w) = request.param("workload") {
            // Substring match: workloads are whole SQL texts and the query
            // string carries no percent-decoding, so exact match would make
            // any workload containing a space unfilterable.
            runs.retain(|r| r.workload.contains(w));
        }
        if let Some(e) = request.param("estimator") {
            runs.retain(|r| r.estimator == e);
        }
        if let Some(s) = request.param("state") {
            runs.retain(|r| r.state == s);
        }
        if let Some(n) = limit {
            if runs.len() > n {
                runs.drain(..runs.len() - n);
            }
        }
        let records: Vec<String> = runs.iter().map(|r| r.to_json()).collect();
        let body = format!(
            "{{\"runs\":[{}],\"diagnostics\":{}}}",
            records.join(","),
            corpus.diagnostics().len()
        );
        Response::ok("application/json; charset=utf-8", body)
    }

    /// `GET /history/{run}` (metadata + scorecard) and
    /// `GET /history/{run}/trace` (raw trace JSONL download).
    fn serve_history_run(&self, rest: &str) -> Response {
        let Some(corpus) = self.corpus() else {
            return Response::not_found("no trace corpus attached");
        };
        let (id, want_trace) = match rest.strip_suffix("/trace") {
            Some(id) => (id, true),
            None => (rest, false),
        };
        let Ok(id) = id.parse::<u64>() else {
            return Response::bad_request("run id must be an integer");
        };
        if want_trace {
            match corpus.trace_jsonl(id) {
                Ok(jsonl) => Response::ok("application/x-ndjson", jsonl),
                Err(_) => Response::not_found(
                    "no such archived run (evicted by retention or never archived)",
                ),
            }
        } else {
            match corpus.run(id) {
                Some(r) => Response::ok("application/json; charset=utf-8", r.to_json()),
                None => Response::not_found(
                    "no such archived run (evicted by retention or never archived)",
                ),
            }
        }
    }

    /// Stop accepting, then join the accept thread and every in-flight
    /// connection thread. Idempotent; also called on drop.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake stream subscribers first so SSE connection threads unblock.
        self.hub.close_all();
        // Poke the listener so the blocking accept observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.lock().take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.tick_thread.lock().take() {
            let _ = handle.join();
        }
        let connections: Vec<_> = std::mem::take(&mut *self.connections.lock());
        for c in connections {
            let _ = c.join();
        }
    }
}

impl Drop for MonitorServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for MonitorServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorServer")
            .field("addr", &self.addr)
            .field("live_queries", &self.directory.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::PhaseSink;
    use crate::service::DirectoryObserver;
    use qprog_exec::governor::CancellationToken;
    use qprog_exec::metrics::MetricsRegistry;
    use qprog_plan::pipeline::PipelineSet;
    use qprog_plan::ProgressTracker;
    use qprog_service::{JobExecutor, JobSpec, ServiceConfig};
    use std::io::{Read, Write};
    use std::path::{Path, PathBuf};

    /// One GET over a fresh TcpStream; returns the whole raw response.
    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    /// One POST with a body; returns the whole raw response.
    fn post(addr: SocketAddr, path: &str, body: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn tracker() -> (ProgressTracker, MetricsRegistry) {
        let mut reg = MetricsRegistry::new();
        reg.register("scan", 100.0);
        let mut pipes = PipelineSet::new();
        let p = pipes.new_pipeline();
        pipes.assign(p, 0);
        (ProgressTracker::new(reg.clone(), pipes), reg)
    }

    /// Open a streaming GET and read until the server closes (or errors),
    /// tolerating the open-ended body.
    fn stream_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut out = String::new();
        let mut buf = [0u8; 4096];
        loop {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => out.push_str(&String::from_utf8_lossy(&buf[..n])),
            }
        }
        out
    }

    /// A trivial executor for service-over-HTTP tests: every job succeeds
    /// instantly with one row.
    struct InstantExec;
    impl JobExecutor for InstantExec {
        fn execute(
            &self,
            _job: &JobSpec,
            _cancel: CancellationToken,
            _deadline: Option<Duration>,
        ) -> Result<u64, qprog_types::QError> {
            Ok(1)
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qprog-monitor-svc-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn attach_service(
        server: &Arc<MonitorServer>,
        dir: &Path,
        cfg: ServiceConfig,
    ) -> Arc<QueryService> {
        let observer = DirectoryObserver::new(Arc::clone(server.directory()), "gnm");
        let service = QueryService::open(dir, cfg, Arc::new(InstantExec), observer, None).unwrap();
        server.set_service(Arc::clone(&service));
        service
    }

    #[test]
    fn query_stream_pushes_progress_and_always_ends_with_terminal() {
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let (t, reg) = tracker();
        let q =
            server
                .directory()
                .register("streamed", "once", t, Arc::new(PhaseSink::new()), None);
        let id = q.id();
        let addr = server.addr();
        for _ in 0..40 {
            reg.get(0).unwrap().record_emitted();
        }
        let reader =
            std::thread::spawn(move || stream_get(addr, &format!("/progress/{id}/stream")));
        // Let the subscriber attach and see at least one live frame.
        std::thread::sleep(Duration::from_millis(80));
        for _ in 0..60 {
            reg.get(0).unwrap().record_emitted();
        }
        reg.finish_all();
        let out = reader.join().unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        assert!(out.contains("Content-Type: text/event-stream"), "{out}");
        assert!(!out.contains("Content-Length"), "{out}");
        assert!(out.contains("event: progress\ndata: {\"id\":"), "{out}");
        // The stream always closes with the query's terminal frame.
        assert!(out.contains("event: terminal\n"), "{out}");
        assert!(out.contains("\"done\":true"), "{out}");
        server.shutdown();
    }

    #[test]
    fn late_stream_subscribers_still_get_a_terminal_frame() {
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let (t, reg) = tracker();
        let q = server
            .directory()
            .register("late", "once", t, Arc::new(PhaseSink::new()), None);
        for _ in 0..100 {
            reg.get(0).unwrap().record_emitted();
        }
        reg.finish_all();
        // Wait for the broadcast tick to notice and emit the terminal.
        std::thread::sleep(Duration::from_millis(120));
        // A subscriber arriving after the broadcast gets a synthesized one.
        let out = stream_get(server.addr(), &format!("/progress/{}/stream", q.id()));
        assert!(out.contains("event: terminal\n"), "{out}");
        assert!(out.contains("\"done\":true"), "{out}");
        server.shutdown();
    }

    #[test]
    fn events_firehose_snapshots_then_reports_unregistration() {
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let (t, reg) = tracker();
        let q = server
            .directory()
            .register("fire", "once", t, Arc::new(PhaseSink::new()), None);
        let addr = server.addr();
        let reader = std::thread::spawn(move || stream_get(addr, "/events"));
        std::thread::sleep(Duration::from_millis(80));
        for _ in 0..100 {
            reg.get(0).unwrap().record_emitted();
        }
        reg.finish_all();
        std::thread::sleep(Duration::from_millis(120));
        drop(q);
        server.shutdown();
        let out = reader.join().unwrap();
        assert!(
            out.contains("event: snapshot\ndata: {\"queries\":["),
            "{out}"
        );
        assert!(out.contains("\"label\":\"fire\""), "{out}");
        assert!(out.contains("event: terminal\n"), "{out}");
    }

    #[test]
    fn stream_for_unknown_query_is_a_404() {
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let out = stream_get(server.addr(), "/progress/424242/stream");
        assert!(out.starts_with("HTTP/1.1 404"), "{out}");
        server.shutdown();
    }

    #[test]
    fn serves_dashboard_progress_and_structured_errors() {
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let addr = server.addr();

        let home = get(addr, "/");
        assert!(home.starts_with("HTTP/1.1 200 OK\r\n"), "{home}");
        assert!(home.contains("text/html"), "{home}");
        assert!(home.contains("<!doctype html>"), "{home}");

        let progress = get(addr, "/progress");
        assert!(progress.contains("application/json"), "{progress}");
        assert!(progress.ends_with("{\"queries\":[]}"), "{progress}");

        // Errors are structured JSON with accurate status codes.
        let missing = get(addr, "/progress/99");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        assert!(missing.contains("{\"error\":\"not found\""), "{missing}");
        let bad_id = get(addr, "/progress/zzz");
        assert!(bad_id.starts_with("HTTP/1.1 400"), "{bad_id}");
        assert!(
            bad_id.contains("\"detail\":\"query id must be an integer\""),
            "{bad_id}"
        );
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
        // no registry / service attached
        assert!(get(addr, "/metrics").starts_with("HTTP/1.1 404"));
        assert!(get(addr, "/service").starts_with("HTTP/1.1 404"));

        server.shutdown();
    }

    #[test]
    fn serves_metrics_when_registry_attached() {
        let registry = Arc::new(Registry::new());
        registry.counter("up_total", "updates", &[]).add(3);
        let server = MonitorServer::start("127.0.0.1:0", Some(Arc::clone(&registry))).unwrap();
        let text = get(server.addr(), "/metrics");
        assert!(text.contains("text/plain; version=0.0.4"), "{text}");
        assert!(text.contains("# TYPE up_total counter"), "{text}");
        assert!(text.contains("up_total 3"), "{text}");
    }

    #[test]
    fn history_routes_serve_the_attached_corpus() {
        use qprog_exec::trace::{TraceEvent, TraceEventKind};
        use qprog_obs::{Corpus, RunMeta};

        let dir =
            std::env::temp_dir().join(format!("qprog-monitor-history-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let events: Vec<TraceEvent> = vec![
            TraceEvent {
                seq: 0,
                at_us: 100,
                kind: TraceEventKind::ProgressSampled {
                    current: 50,
                    total: 100.0,
                    fraction: 0.5,
                    lo: f64::NAN,
                    hi: f64::NAN,
                },
            },
            TraceEvent {
                seq: 1,
                at_us: 200,
                kind: TraceEventKind::QueryFinished { rows: 100 },
            },
        ];

        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let addr = server.addr();
        // No corpus attached yet: the routes 404 with a hint.
        assert!(get(addr, "/history").starts_with("HTTP/1.1 404"));

        let corpus = Arc::new(Corpus::open(&dir).unwrap());
        server.set_corpus(Arc::clone(&corpus));
        corpus
            .archive(&RunMeta::new("q1", "once"), &events, &[])
            .unwrap();
        corpus
            .archive(&RunMeta::new("q2", "dne"), &events, &[])
            .unwrap();

        let list = get(addr, "/history");
        assert!(list.starts_with("HTTP/1.1 200"), "{list}");
        assert!(list.contains("\"run\":0"), "{list}");
        assert!(list.contains("\"run\":1"), "{list}");
        assert!(list.contains("\"mean_abs_err\":"), "{list}");

        // Filters narrow the list; limit keeps the newest N.
        let filtered = get(addr, "/history?workload=q2");
        assert!(filtered.contains("\"workload\":\"q2\""), "{filtered}");
        assert!(!filtered.contains("\"workload\":\"q1\""), "{filtered}");
        let limited = get(addr, "/history?limit=1");
        assert!(!limited.contains("\"run\":0"), "{limited}");
        assert!(limited.contains("\"run\":1"), "{limited}");

        let one = get(addr, "/history/0");
        assert!(one.contains("\"workload\":\"q1\""), "{one}");
        assert!(one.contains("\"state\":\"finished\""), "{one}");

        let trace = get(addr, "/history/0/trace");
        assert!(trace.contains("application/x-ndjson"), "{trace}");
        assert!(trace.contains("\"event\":\"query_finished\""), "{trace}");

        assert!(get(addr, "/history/99").starts_with("HTTP/1.1 404"));
        assert!(get(addr, "/history/zzz").starts_with("HTTP/1.1 400"));
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn history_params_are_validated_not_silently_defaulted() {
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let addr = server.addr();
        // Validation runs before the corpus check: a malformed request is
        // a client error regardless of server configuration.
        let bad_limit = get(addr, "/history?limit=banana");
        assert!(bad_limit.starts_with("HTTP/1.1 400"), "{bad_limit}");
        assert!(bad_limit.contains("non-negative integer"), "{bad_limit}");
        let bad_state = get(addr, "/history?state=exploded");
        assert!(bad_state.starts_with("HTTP/1.1 400"), "{bad_state}");
        assert!(bad_state.contains("state must be one of"), "{bad_state}");
        // Valid states pass validation (then 404: no corpus attached).
        assert!(get(addr, "/history?state=finished").starts_with("HTTP/1.1 404"));
        server.shutdown();
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "POST /progress HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");
        assert!(out.contains("{\"error\":\"method not allowed\""), "{out}");
    }

    #[test]
    fn submit_over_http_runs_to_a_visible_terminal() {
        let dir = temp_dir("submit");
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let addr = server.addr();
        // Without a service: the submit route is a structured 404.
        let none = post(addr, "/submit", "{\"sql\":\"select 1\",\"tenant\":\"t\"}");
        assert!(none.starts_with("HTTP/1.1 404"), "{none}");
        let service = attach_service(&server, &dir, ServiceConfig::default());

        let accepted = post(
            addr,
            "/submit",
            "{\"sql\":\"select 1\",\"tenant\":\"acme\"}",
        );
        assert!(accepted.starts_with("HTTP/1.1 202 Accepted"), "{accepted}");
        let body = accepted.split("\r\n\r\n").nth(1).unwrap();
        let id = body_u64_field(body, "id").expect("ticket carries the id");
        assert!(body.contains("\"state\":\"queued\""), "{body}");

        // The submission becomes visible under /progress/{id} and reaches
        // a done terminal there.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let detail = get(addr, &format!("/progress/{id}"));
            if detail.contains("\"state\":\"done\"") {
                assert!(detail.contains("\"tenant\":\"acme\""), "{detail}");
                assert!(detail.contains("\"rows\":1"), "{detail}");
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "submission never finished: {detail}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        let stats = get(addr, "/service");
        assert!(stats.contains("\"admitted\":1"), "{stats}");
        service.shutdown();
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_submissions_get_structured_400s() {
        let dir = temp_dir("invalid");
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let addr = server.addr();
        let service = attach_service(&server, &dir, ServiceConfig::default());
        for (body, hint) in [
            ("", "sql"),
            ("{\"tenant\":\"t\"}", "sql"),
            ("{\"sql\":\"select 1\"}", "tenant"),
            ("{\"sql\":\"\",\"tenant\":\"t\"}", "sql"),
            ("{\"sql\":\"select 1\",\"tenant\":\"\"}", "tenant"),
        ] {
            let out = post(addr, "/submit", body);
            assert!(out.starts_with("HTTP/1.1 400"), "{body} -> {out}");
            assert!(out.contains("{\"error\":"), "{body} -> {out}");
            assert!(out.contains(hint), "{body} -> {out}");
        }
        service.shutdown();
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shed_submissions_get_429_with_retry_after() {
        let dir = temp_dir("shed");
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let addr = server.addr();
        let cfg = ServiceConfig {
            admission: qprog_service::AdmissionConfig {
                max_queue_depth: 8,
                max_tenant_inflight: 1,
                retry_after: Duration::from_secs(2),
            },
            workers: 0, // nothing drains the queue
            ..ServiceConfig::default()
        };
        let service = attach_service(&server, &dir, cfg);
        let first = post(addr, "/submit", "{\"sql\":\"select 1\",\"tenant\":\"a\"}");
        assert!(first.starts_with("HTTP/1.1 202"), "{first}");
        let shed = post(addr, "/submit", "{\"sql\":\"select 1\",\"tenant\":\"a\"}");
        assert!(shed.starts_with("HTTP/1.1 429"), "{shed}");
        assert!(shed.contains("Retry-After: 2"), "{shed}");
        assert!(shed.contains("{\"error\":\"tenant_cap\""), "{shed}");
        service.shutdown();
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_route_cancels_queued_submissions() {
        let dir = temp_dir("cancel");
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let addr = server.addr();
        let cfg = ServiceConfig {
            workers: 0, // keep it queued
            ..ServiceConfig::default()
        };
        let service = attach_service(&server, &dir, cfg);
        let accepted = post(addr, "/submit", "{\"sql\":\"select 1\",\"tenant\":\"t\"}");
        let body = accepted.split("\r\n\r\n").nth(1).unwrap();
        let id = body_u64_field(body, "id").unwrap();
        let cancelled = post(addr, &format!("/progress/{id}/cancel"), "");
        assert!(cancelled.starts_with("HTTP/1.1 200"), "{cancelled}");
        assert!(cancelled.contains("\"state\":\"cancelled\""), "{cancelled}");
        let again = post(addr, &format!("/progress/{id}/cancel"), "");
        assert!(again.contains("\"state\":\"terminal\""), "{again}");
        assert!(post(addr, "/progress/999999/cancel", "").starts_with("HTTP/1.1 404"));
        assert!(post(addr, "/progress/zzz/cancel", "").starts_with("HTTP/1.1 400"));
        service.shutdown();
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn healthz_reports_ok_then_draining() {
        let dir = temp_dir("healthz");
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let addr = server.addr();
        // Healthy even with no service attached (pure monitor deployments).
        let ok = get(addr, "/healthz");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        assert!(ok.contains("\"status\":\"ok\""), "{ok}");
        assert!(ok.contains("\"version\":\""), "{ok}");
        assert!(ok.contains("\"uptime_s\":"), "{ok}");
        assert!(ok.contains("\"queue_depth\":0"), "{ok}");
        assert!(ok.contains("\"draining\":false"), "{ok}");
        let service = attach_service(&server, &dir, ServiceConfig::default());
        assert!(get(addr, "/healthz").starts_with("HTTP/1.1 200"));
        // A draining service flips the probe to 503 so load balancers
        // rotate away before shutdown completes.
        service.shutdown();
        let drained = get(addr, "/healthz");
        assert!(drained.starts_with("HTTP/1.1 503"), "{drained}");
        assert!(drained.contains("\"status\":\"draining\""), "{drained}");
        assert!(drained.contains("\"draining\":true"), "{drained}");
        assert!(drained.contains("Retry-After: 5"), "{drained}");
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_route_serves_chrome_trace_json() {
        let dir = temp_dir("trace");
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let addr = server.addr();
        assert!(
            get(addr, "/trace/1").starts_with("HTTP/1.1 404"),
            "no service yet"
        );
        assert!(get(addr, "/trace/zzz").starts_with("HTTP/1.1 400"));
        let service = attach_service(&server, &dir, ServiceConfig::default());
        let accepted = post(addr, "/submit", "{\"sql\":\"select 1\",\"tenant\":\"t\"}");
        let body = accepted.split("\r\n\r\n").nth(1).unwrap();
        let id = body_u64_field(body, "id").unwrap();
        // Poll until the lifecycle completes and the span tree includes
        // the terminal finalize phase.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let trace = loop {
            let t = get(addr, &format!("/trace/{id}"));
            if t.contains("finalize") {
                break t;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "span tree never completed: {t}"
            );
            std::thread::sleep(Duration::from_millis(20));
        };
        assert!(trace.starts_with("HTTP/1.1 200"), "{trace}");
        assert!(trace.contains("\"traceEvents\":["), "{trace}");
        assert!(trace.contains("\"ph\":\"X\""), "{trace}");
        assert!(trace.contains("queue_wait"), "{trace}");
        assert!(trace.contains("\"pid\":"), "{trace}");
        assert!(get(addr, "/trace/424242").starts_with("HTTP/1.1 404"));
        service.shutdown();
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn events_reconnect_replays_missed_frames_or_resyncs() {
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let addr = server.addr();
        let (t, reg) = tracker();
        let _q = server
            .directory()
            .register("recon", "once", t, Arc::new(PhaseSink::new()), None);
        // Publish a few frames through the hub directly (deterministic ids).
        for i in 0..4 {
            server
                .hub()
                .publish(1, "progress", &format!("{{\"n\":{i}}}"), false);
        }
        drop(reg);
        // Reconnect claiming id 2: frames 3 and 4 replay, no snapshot.
        let shutdown_later = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(300));
                server.shutdown();
            })
        };
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET /events HTTP/1.1\r\nHost: t\r\nLast-Event-ID: 2\r\n\r\n"
        )
        .unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut out = String::new();
        let mut buf = [0u8; 4096];
        loop {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => out.push_str(&String::from_utf8_lossy(&buf[..n])),
            }
        }
        assert!(
            out.contains("id: 3\nevent: progress\ndata: {\"n\":2}\n\n"),
            "{out}"
        );
        assert!(
            out.contains("id: 4\nevent: progress\ndata: {\"n\":3}\n\n"),
            "{out}"
        );
        assert!(
            !out.contains("event: snapshot"),
            "replay must not resync: {out}"
        );
        shutdown_later.join().unwrap();
    }

    #[test]
    fn events_reconnect_with_stale_id_falls_back_to_snapshot() {
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let addr = server.addr();
        let shutdown_later = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(300));
                server.shutdown();
            })
        };
        // Id 99 was never issued (e.g. the server restarted): the stream
        // must open with a full snapshot resync instead of a replay.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET /events HTTP/1.1\r\nHost: t\r\nLast-Event-ID: 99\r\n\r\n"
        )
        .unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut out = String::new();
        let mut buf = [0u8; 4096];
        loop {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => out.push_str(&String::from_utf8_lossy(&buf[..n])),
            }
        }
        assert!(
            out.contains("event: snapshot\ndata: {\"queries\":["),
            "{out}"
        );
        shutdown_later.join().unwrap();
    }

    #[test]
    fn oversized_bodies_are_rejected_with_413() {
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(
            stream,
            "POST /submit HTTP/1.1\r\nHost: t\r\nContent-Length: 999999999\r\n\r\n"
        )
        .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 413"), "{out}");
        assert!(out.contains("{\"error\":\"payload too large\""), "{out}");
        server.shutdown();
    }

    /// Write raw (possibly invalid) bytes, then read whatever comes back.
    /// The assertion that matters is implicit: the server survives.
    fn raw(addr: SocketAddr, bytes: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        let _ = stream.write_all(bytes);
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let mut out = Vec::new();
        let _ = stream.read_to_end(&mut out);
        String::from_utf8_lossy(&out).into_owned()
    }

    #[test]
    fn malformed_requests_do_not_take_the_server_down() {
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let addr = server.addr();
        let cases: &[&[u8]] = &[
            b"",                                // connect-then-close
            b"\r\n\r\n",                        // empty request line
            b"GARBAGE\r\n\r\n",                 // no method/path split
            b"GET\r\n\r\n",                     // missing path
            b"GET /progress",                   // truncated: no header end
            b"\xff\xfe\x00\x01garbage\r\n\r\n", // non-UTF-8 noise
            b"GET /progress HTTP/1.1\r\nHeader-without-colon\r\n\r\n",
            b"GET /%zz%%% HTTP/1.1\r\n\r\n", // junk path, parses fine
            b"GET / HTTP/9.9\r\n\r\n",       // absurd version
            b"POST /submit HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ];
        for case in cases {
            // Never panics, never hangs; response may be empty or an error.
            let _ = raw(addr, case);
        }
        // A request head past MAX_HEAD_BYTES is dropped, not buffered forever.
        let mut huge = Vec::from(&b"GET / HTTP/1.1\r\n"[..]);
        huge.extend(std::iter::repeat_n(b'a', 64 * 1024));
        let _ = raw(addr, &huge);
        // The server still answers well-formed requests afterwards.
        let ok = get(addr, "/progress");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        server.shutdown();
    }

    #[test]
    fn slow_clients_cannot_hold_connection_threads_hostage() {
        // Tight bounds: 300ms socket timeout, at most 2 live connections.
        let server = MonitorServer::start_with(
            "127.0.0.1:0",
            None,
            ServerConfig {
                io_timeout: Duration::from_millis(300),
                max_connections: 2,
            },
        )
        .unwrap();
        let addr = server.addr();
        // Slowloris-style clients: open connections, trickle half a
        // request, then stall — filling the connection budget.
        let stalled: Vec<TcpStream> = (0..2)
            .map(|_| {
                let s = TcpStream::connect(addr).unwrap();
                {
                    let mut w = &s;
                    let _ = w.write_all(b"GET /progress HT");
                }
                s
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        // With the budget exhausted, the next connection is shed fast with
        // a typed 503 + Retry-After instead of queueing behind the flood.
        // (`raw` instead of `get`: a shed connection may be reset before
        // the client finishes reading.)
        let shed = raw(addr, b"GET /progress HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(shed.starts_with("HTTP/1.1 503"), "{shed}");
        assert!(shed.contains("Retry-After: 1"), "{shed}");
        assert!(shed.contains("{\"error\":\"overloaded\""), "{shed}");
        // The read timeout reclaims the stalled threads; the server then
        // recovers and serves normally again.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let out = raw(addr, b"GET /progress HTTP/1.1\r\nHost: t\r\n\r\n");
            if out.starts_with("HTTP/1.1 200") {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "server never recovered from slowloris flood: {out}"
            );
            std::thread::sleep(Duration::from_millis(100));
        }
        drop(stalled);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent() {
        let server = MonitorServer::start("127.0.0.1:0", None).unwrap();
        let addr = server.addr();
        assert!(get(addr, "/").starts_with("HTTP/1.1 200"));
        server.shutdown();
        server.shutdown();
        // The listener is gone: new connections fail or yield no response.
        let refused = match TcpStream::connect(addr) {
            Err(_) => true,
            Ok(mut s) => {
                let _ = write!(s, "GET / HTTP/1.1\r\n\r\n");
                let mut out = String::new();
                let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
                s.read_to_string(&mut out).is_err() || out.is_empty()
            }
        };
        assert!(refused, "server still answering after shutdown");
    }
}
