//! Minimal HTTP/1.1 plumbing for the monitor server: just enough to parse
//! `GET`/`POST` requests (with small bodies) and write well-formed
//! responses over a `std::net::TcpStream`. No external crates, no chunked
//! encoding, one request per connection (`Connection: close`). Errors are
//! structured JSON bodies (`{"error","detail"}`) so clients never have to
//! scrape prose.

use std::io::{Read, Write};

/// Cap on the request head (request line + headers) we are willing to read.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Cap on a request body (`POST /submit` payloads — small JSON documents).
pub const MAX_BODY_BYTES: usize = 256 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// HTTP method, uppercase as received (`GET`, `HEAD`, `POST`, ...).
    pub method: String,
    /// Request target path, without query string.
    pub path: String,
    /// Raw query string (without the `?`); empty when the target had none.
    pub query: String,
    /// Request body (empty unless the client sent `Content-Length`).
    pub body: String,
    /// Parsed `Last-Event-ID` header, when the client sent one on an SSE
    /// reconnect (non-numeric values are ignored — the monitor only ever
    /// issues numeric frame ids).
    pub last_event_id: Option<u64>,
}

impl Request {
    /// A request with no query string (handy in tests and direct routing).
    pub fn get(path: impl Into<String>) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.into(),
            query: String::new(),
            body: String::new(),
            last_event_id: None,
        }
    }

    /// A `POST` carrying `body` (tests and direct routing).
    pub fn post(path: impl Into<String>, body: impl Into<String>) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.into(),
            query: String::new(),
            body: body.into(),
            last_event_id: None,
        }
    }

    /// The value of query parameter `key`, if present (`k=v` pairs split
    /// on `&`; no percent-decoding — the monitor's filter values are plain
    /// identifiers).
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// Parse the head of an HTTP request from `text` (everything up to the
/// blank line). Returns `None` for anything that is not a plausible
/// HTTP/1.x request line. The body, if any, is read separately.
pub fn parse_request(text: &str) -> Option<Request> {
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    // Split the query string off; filterable routes read it via
    // [`Request::param`], everything else ignores it.
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    if !path.starts_with('/') {
        return None;
    }
    Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
        body: String::new(),
        last_event_id: header_value(text, "last-event-id").and_then(|v| v.parse().ok()),
    })
}

/// The (trimmed) value of header `name` in a request head, if present.
fn header_value<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.trim().eq_ignore_ascii_case(name))
        .map(|(_, v)| v.trim())
}

/// `Content-Length` from a request head, if present and parseable.
fn content_length(head: &str) -> Option<usize> {
    header_value(head, "content-length").and_then(|v| v.parse().ok())
}

/// Why reading a request failed — the server maps these to status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadError {
    /// Unparseable head, IO error, or the head exceeded its cap.
    Malformed,
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge,
}

/// Read a full request (head + `Content-Length` body) from `stream`.
pub fn read_request(stream: &mut impl Read) -> Result<Request, ReadError> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(ReadError::Malformed);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ReadError::Malformed),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(ReadError::Malformed),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut req = parse_request(&head).ok_or(ReadError::Malformed)?;
    let want = content_length(&head).unwrap_or(0);
    if want > MAX_BODY_BYTES {
        return Err(ReadError::BodyTooLarge);
    }
    let mut body = buf[head_end..].to_vec();
    while body.len() < want {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(ReadError::Malformed),
        }
    }
    body.truncate(want);
    req.body = String::from_utf8_lossy(&body).into_owned();
    Ok(req)
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Content-Type header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// `Retry-After` header in seconds (shed/drain responses).
    pub retry_after: Option<u64>,
}

impl Response {
    /// 200 with the given type and body.
    pub fn ok(content_type: &'static str, body: impl Into<String>) -> Self {
        Response {
            status: 200,
            content_type,
            body: body.into(),
            retry_after: None,
        }
    }

    /// A structured JSON error: `{"error": <short>, "detail": <long>}`.
    pub fn error(status: u16, error: &str, detail: &str) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: format!(
                "{{\"error\":\"{}\",\"detail\":\"{}\"}}",
                json_escape(error),
                json_escape(detail)
            ),
            retry_after: None,
        }
    }

    /// 400 with a structured body.
    pub fn bad_request(detail: &str) -> Self {
        Response::error(400, "bad request", detail)
    }

    /// 404 with a structured body.
    pub fn not_found(detail: &str) -> Self {
        Response::error(404, "not found", detail)
    }

    /// 405 for unsupported methods.
    pub fn method_not_allowed() -> Self {
        Response::error(
            405,
            "method not allowed",
            "monitor endpoints accept GET/HEAD; the service accepts POST /submit and POST /progress/{id}/cancel",
        )
    }

    /// Attach a `Retry-After` header (429/503 responses).
    pub fn with_retry_after(mut self, seconds: u64) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Error",
        }
    }

    /// Serialize head + body. `head_only` omits the body (HEAD requests).
    pub fn write_to(&self, stream: &mut impl Write, head_only: bool) -> std::io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        if let Some(secs) = self.retry_after {
            write!(stream, "Retry-After: {secs}\r\n")?;
        }
        write!(stream, "Connection: close\r\n\r\n")?;
        if !head_only {
            stream.write_all(self.body.as_bytes())?;
        }
        stream.flush()
    }
}

/// Write the head of a Server-Sent Events response: `200 OK`, no
/// `Content-Length` — the body is an open-ended `text/event-stream` the
/// caller keeps appending frames to until the connection closes.
pub fn write_sse_head(stream: &mut impl Write) -> std::io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
          Cache-Control: no-cache\r\nConnection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// Write one SSE frame (`event:` + `data:` lines and the blank-line
/// terminator). `data` must be a single line — the monitor's frames are
/// compact JSON.
pub fn write_sse_frame(stream: &mut impl Write, event: &str, data: &str) -> std::io::Result<()> {
    write!(stream, "event: {event}\ndata: {data}\n\n")?;
    stream.flush()
}

/// [`write_sse_frame`] with an explicit `id:` line, so the client's
/// `Last-Event-ID` tracking advances (used for snapshot-resync frames,
/// which stamp the hub's current frame id).
pub fn write_sse_frame_with_id(
    stream: &mut impl Write,
    id: u64,
    event: &str,
    data: &str,
) -> std::io::Result<()> {
    write!(stream, "id: {id}\nevent: {event}\ndata: {data}\n\n")?;
    stream.flush()
}

/// JSON string escaping for error bodies and submit-payload echoes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Extract string field `key` from a flat JSON object, handling escaped
/// quotes inside the value (submit bodies carry raw SQL). Returns `None`
/// when the field is absent or not a string.
pub fn body_str_field(body: &str, key: &str) -> Option<String> {
    let key_pos = find_key(body, key)?;
    let rest = body[key_pos..].trim_start();
    let inner = rest.strip_prefix('"')?;
    let bytes = inner.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return json_unescape(&inner[..i]),
            _ => i += 1,
        }
    }
    None
}

/// Extract non-negative integer field `key` from a flat JSON object.
pub fn body_u64_field(body: &str, key: &str) -> Option<u64> {
    let key_pos = find_key(body, key)?;
    let rest = body[key_pos..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Position just past `"key":`, skipping matches inside string values by
/// requiring the key to sit at a structural boundary (after `{` or `,`).
fn find_key(body: &str, key: &str) -> Option<usize> {
    let needle = format!("\"{key}\"");
    let mut from = 0;
    while let Some(rel) = body[from..].find(&needle) {
        let at = from + rel;
        let before = body[..at].trim_end().chars().last();
        let after = body[at + needle.len()..].trim_start();
        if matches!(before, Some('{') | Some(',')) {
            if let Some(rest) = after.strip_prefix(':') {
                return Some(body.len() - rest.len());
            }
        }
        from = at + needle.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_get_request_line() {
        let r = parse_request("GET /progress/7?x=1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/progress/7");
        assert_eq!(r.query, "x=1");
        assert_eq!(r.param("x"), Some("1"));
        assert_eq!(r.param("y"), None);
    }

    #[test]
    fn query_params_split_on_ampersands() {
        let r = parse_request("GET /history?workload=q1&state=finished HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.param("workload"), Some("q1"));
        assert_eq!(r.param("state"), Some("finished"));
        assert_eq!(r.param("estimator"), None);
        assert_eq!(Request::get("/history").param("workload"), None);
    }

    #[test]
    fn last_event_id_header_is_parsed_case_insensitively() {
        let r = parse_request("GET /events HTTP/1.1\r\nLast-Event-ID: 42\r\n\r\n").unwrap();
        assert_eq!(r.last_event_id, Some(42));
        let r = parse_request("GET /events HTTP/1.1\r\nlast-event-id:  7 \r\n\r\n").unwrap();
        assert_eq!(r.last_event_id, Some(7));
        // Absent or non-numeric: ignored, not an error.
        let r = parse_request("GET /events HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.last_event_id, None);
        let r = parse_request("GET /events HTTP/1.1\r\nLast-Event-ID: abc\r\n\r\n").unwrap();
        assert_eq!(r.last_event_id, None);
    }

    #[test]
    fn sse_frames_can_carry_ids() {
        let mut out = Vec::new();
        write_sse_frame_with_id(&mut out, 9, "snapshot", "{\"queries\":[]}").unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "id: 9\nevent: snapshot\ndata: {\"queries\":[]}\n\n"
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_request("").is_none());
        assert!(parse_request("GET\r\n").is_none());
        assert!(parse_request("GET /x SMTP/1.0\r\n").is_none());
        assert!(parse_request("GET x HTTP/1.1\r\n").is_none());
    }

    #[test]
    fn response_serializes_with_content_length() {
        let mut out = Vec::new();
        Response::ok("text/plain; charset=utf-8", "hello")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.ends_with("\r\n\r\nhello"));
    }

    #[test]
    fn head_only_omits_body() {
        let mut out = Vec::new();
        Response::ok("text/plain; charset=utf-8", "hello")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.ends_with("\r\n\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
    }

    #[test]
    fn errors_are_structured_json() {
        let mut out = Vec::new();
        Response::not_found("no query with id 7")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json"), "{text}");
        assert!(
            text.ends_with("{\"error\":\"not found\",\"detail\":\"no query with id 7\"}"),
            "{text}"
        );
        let r = Response::error(400, "bad request", "limit must be an integer, got \"x\"");
        assert!(r.body.contains("got \\\"x\\\""), "{}", r.body);
    }

    #[test]
    fn retry_after_header_is_emitted() {
        let mut out = Vec::new();
        Response::error(429, "rejected", "tenant cap")
            .with_retry_after(3)
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 3\r\n"), "{text}");
    }

    #[test]
    fn sse_head_and_frames_are_well_formed() {
        let mut out = Vec::new();
        write_sse_head(&mut out).unwrap();
        write_sse_frame(&mut out, "progress", "{\"id\":1}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(
            text.contains("Content-Type: text/event-stream\r\n"),
            "{text}"
        );
        // Streams are open-ended: no Content-Length may be promised.
        assert!(!text.contains("Content-Length"), "{text}");
        assert!(
            text.ends_with("\r\n\r\nevent: progress\ndata: {\"id\":1}\n\n"),
            "{text}"
        );
    }

    #[test]
    fn read_request_handles_split_reads() {
        struct Chunked(Vec<Vec<u8>>);
        impl Read for Chunked {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                match self.0.pop() {
                    Some(chunk) => {
                        buf[..chunk.len()].copy_from_slice(&chunk);
                        Ok(chunk.len())
                    }
                    None => Ok(0),
                }
            }
        }
        let mut stream = Chunked(vec![b"\r\n\r\n".to_vec(), b"GET / HTTP/1.1".to_vec()]);
        let r = read_request(&mut stream).unwrap();
        assert_eq!(r.path, "/");
        assert_eq!(r.body, "");
    }

    #[test]
    fn read_request_collects_post_bodies() {
        let body = "{\"sql\":\"select 1\"}";
        let raw = format!(
            "POST /submit HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let mut stream = raw.as_bytes();
        let r = read_request(&mut stream).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, body);

        let huge = format!(
            "POST /submit HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let mut stream = huge.as_bytes();
        assert_eq!(read_request(&mut stream), Err(ReadError::BodyTooLarge));
    }

    #[test]
    fn body_fields_handle_escapes_and_embedded_keys() {
        let body = "{\"tenant\":\"acme\",\"sql\":\"select \\\"x\\\" from t where s='\\\"sql\\\": 1'\",\"deadline_ms\":2500}";
        assert_eq!(body_str_field(body, "tenant").unwrap(), "acme");
        assert_eq!(
            body_str_field(body, "sql").unwrap(),
            "select \"x\" from t where s='\"sql\": 1'"
        );
        assert_eq!(body_u64_field(body, "deadline_ms"), Some(2500));
        assert_eq!(body_str_field(body, "label"), None);
        assert_eq!(body_u64_field(body, "sql"), None);
        // a key-looking token inside a string value is not a field
        let tricky = "{\"sql\":\"x \\\"label\\\": y\"}";
        assert_eq!(body_str_field(tricky, "label"), None);
        // whitespace-tolerant
        let spaced = "{ \"sql\" : \"select 1\" , \"tenant\" : \"t\" }";
        assert_eq!(body_str_field(spaced, "sql").unwrap(), "select 1");
        assert_eq!(body_str_field(spaced, "tenant").unwrap(), "t");
    }
}
