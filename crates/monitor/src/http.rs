//! Minimal HTTP/1.1 plumbing for the monitor server: just enough to parse
//! a `GET` request line and write a well-formed response over a
//! `std::net::TcpStream`. No external crates, no chunked encoding, one
//! request per connection (`Connection: close`).

use std::io::{Read, Write};

/// Cap on the request head (request line + headers) we are willing to read.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// HTTP method, uppercase as received (`GET`, `HEAD`, ...).
    pub method: String,
    /// Request target path, without query string.
    pub path: String,
    /// Raw query string (without the `?`); empty when the target had none.
    pub query: String,
}

impl Request {
    /// A request with no query string (handy in tests and direct routing).
    pub fn get(path: impl Into<String>) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.into(),
            query: String::new(),
        }
    }

    /// The value of query parameter `key`, if present (`k=v` pairs split
    /// on `&`; no percent-decoding — the monitor's filter values are plain
    /// identifiers).
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// Parse the head of an HTTP request from `text` (everything up to the
/// blank line). Returns `None` for anything that is not a plausible
/// HTTP/1.x request line.
pub fn parse_request(text: &str) -> Option<Request> {
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    // Split the query string off; filterable routes read it via
    // [`Request::param`], everything else ignores it.
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    if !path.starts_with('/') {
        return None;
    }
    Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
    })
}

/// Read a request head from `stream` (until `\r\n\r\n`, EOF, or the size
/// cap) and parse it.
pub fn read_request(stream: &mut impl Read) -> Option<Request> {
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(_) => return None,
        };
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= MAX_HEAD_BYTES {
            break;
        }
    }
    parse_request(&String::from_utf8_lossy(&head))
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Content-Type header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// 200 with the given type and body.
    pub fn ok(content_type: &'static str, body: impl Into<String>) -> Self {
        Response {
            status: 200,
            content_type,
            body: body.into(),
        }
    }

    /// 404 with a plain-text message.
    pub fn not_found(msg: &str) -> Self {
        Response {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: format!("404 not found: {msg}\n"),
        }
    }

    /// 405 for non-GET methods.
    pub fn method_not_allowed() -> Self {
        Response {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            body: "405 method not allowed (monitor endpoints are GET-only)\n".to_string(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Error",
        }
    }

    /// Serialize head + body. `head_only` omits the body (HEAD requests).
    pub fn write_to(&self, stream: &mut impl Write, head_only: bool) -> std::io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        if !head_only {
            stream.write_all(self.body.as_bytes())?;
        }
        stream.flush()
    }
}

/// Write the head of a Server-Sent Events response: `200 OK`, no
/// `Content-Length` — the body is an open-ended `text/event-stream` the
/// caller keeps appending frames to until the connection closes.
pub fn write_sse_head(stream: &mut impl Write) -> std::io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
          Cache-Control: no-cache\r\nConnection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// Write one SSE frame (`event:` + `data:` lines and the blank-line
/// terminator). `data` must be a single line — the monitor's frames are
/// compact JSON.
pub fn write_sse_frame(stream: &mut impl Write, event: &str, data: &str) -> std::io::Result<()> {
    write!(stream, "event: {event}\ndata: {data}\n\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_get_request_line() {
        let r = parse_request("GET /progress/7?x=1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/progress/7");
        assert_eq!(r.query, "x=1");
        assert_eq!(r.param("x"), Some("1"));
        assert_eq!(r.param("y"), None);
    }

    #[test]
    fn query_params_split_on_ampersands() {
        let r = parse_request("GET /history?workload=q1&state=finished HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.param("workload"), Some("q1"));
        assert_eq!(r.param("state"), Some("finished"));
        assert_eq!(r.param("estimator"), None);
        assert_eq!(Request::get("/history").param("workload"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_request("").is_none());
        assert!(parse_request("GET\r\n").is_none());
        assert!(parse_request("GET /x SMTP/1.0\r\n").is_none());
        assert!(parse_request("GET x HTTP/1.1\r\n").is_none());
    }

    #[test]
    fn response_serializes_with_content_length() {
        let mut out = Vec::new();
        Response::ok("text/plain; charset=utf-8", "hello")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.ends_with("\r\n\r\nhello"));
    }

    #[test]
    fn head_only_omits_body() {
        let mut out = Vec::new();
        Response::ok("text/plain; charset=utf-8", "hello")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.ends_with("\r\n\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
    }

    #[test]
    fn sse_head_and_frames_are_well_formed() {
        let mut out = Vec::new();
        write_sse_head(&mut out).unwrap();
        write_sse_frame(&mut out, "progress", "{\"id\":1}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(
            text.contains("Content-Type: text/event-stream\r\n"),
            "{text}"
        );
        // Streams are open-ended: no Content-Length may be promised.
        assert!(!text.contains("Content-Length"), "{text}");
        assert!(
            text.ends_with("\r\n\r\nevent: progress\ndata: {\"id\":1}\n\n"),
            "{text}"
        );
    }

    #[test]
    fn read_request_handles_split_reads() {
        struct Chunked(Vec<Vec<u8>>);
        impl Read for Chunked {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                match self.0.pop() {
                    Some(chunk) => {
                        buf[..chunk.len()].copy_from_slice(&chunk);
                        Ok(chunk.len())
                    }
                    None => Ok(0),
                }
            }
        }
        let mut stream = Chunked(vec![b"\r\n\r\n".to_vec(), b"GET / HTTP/1.1".to_vec()]);
        let r = read_request(&mut stream).unwrap();
        assert_eq!(r.path, "/");
    }
}
