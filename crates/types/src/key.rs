//! Hashable, equatable join/grouping keys.
//!
//! The estimation framework maintains exact frequency histograms keyed by
//! attribute value (the `N_i` counts of the paper). [`Key`] is the subset of
//! [`Value`](crate::Value) that supports sound hashing and equality, plus a
//! compact composite form for multi-column keys.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{QError, QResult};
use crate::value::Value;

/// A single-column join or grouping key.
///
/// `Null` keys are representable so that grouping can place all NULLs in one
/// group; equi-joins must filter them out (NULL never equi-joins in SQL),
/// which the join operators do before consulting their histograms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Key {
    Null,
    Bool(bool),
    Int(i64),
    Str(Arc<str>),
    /// A composite key over multiple columns (conjunctive multi-attribute
    /// join conditions, multi-column grouping).
    Composite(Arc<[Key]>),
}

impl Key {
    /// Convert a [`Value`] into a key, rejecting non-key types (floats).
    pub fn from_value(v: &Value) -> QResult<Key> {
        match v {
            Value::Null => Ok(Key::Null),
            Value::Bool(b) => Ok(Key::Bool(*b)),
            Value::Int64(i) => Ok(Key::Int(*i)),
            Value::Str(s) => Ok(Key::Str(Arc::clone(s))),
            Value::Float64(_) => Err(QError::type_err(
                "DOUBLE columns cannot be join/grouping keys",
            )),
        }
    }

    /// Build a composite key from parts. A composite containing any NULL
    /// part is itself considered NULL for equi-join purposes.
    pub fn composite(parts: Vec<Key>) -> Key {
        Key::Composite(Arc::from(parts))
    }

    /// True iff this key is the NULL key (a composite counts as NULL when
    /// any component is — SQL conjunctive equality cannot hold then).
    pub fn is_null(&self) -> bool {
        match self {
            Key::Null => true,
            Key::Composite(parts) => parts.iter().any(Key::is_null),
            _ => false,
        }
    }

    /// Approximate in-memory footprint in bytes, counting string payloads.
    pub fn memory_size(&self) -> usize {
        let base = std::mem::size_of::<Key>();
        match self {
            Key::Str(s) => base + s.len(),
            Key::Composite(parts) => base + parts.iter().map(Key::memory_size).sum::<usize>(),
            _ => base,
        }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Key::Null => f.write_str("NULL"),
            Key::Bool(b) => write!(f, "{b}"),
            Key::Int(i) => write!(f, "{i}"),
            Key::Str(s) => write!(f, "{s}"),
            Key::Composite(parts) => {
                write!(f, "(")?;
                for (i, k) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<i64> for Key {
    fn from(v: i64) -> Self {
        Key::Int(v)
    }
}

impl From<&str> for Key {
    fn from(v: &str) -> Self {
        Key::Str(Arc::from(v))
    }
}

/// A composite (multi-column) key.
///
/// Stored as a boxed slice to keep the common single-column case cheap to
/// clone and hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompositeKey(pub Box<[Key]>);

impl CompositeKey {
    /// Build a composite key by extracting `cols` from a slice of values.
    pub fn from_values(values: &[Value], cols: &[usize]) -> QResult<CompositeKey> {
        let mut parts = Vec::with_capacity(cols.len());
        for &c in cols {
            let v = values.get(c).ok_or_else(|| {
                QError::internal(format!("key column {c} out of bounds ({})", values.len()))
            })?;
            parts.push(Key::from_value(v)?);
        }
        Ok(CompositeKey(parts.into_boxed_slice()))
    }

    /// True iff any component is NULL (such keys never equi-join).
    pub fn any_null(&self) -> bool {
        self.0.iter().any(Key::is_null)
    }
}

impl Hash for CompositeKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must match `<[Key] as Hash>` exactly: hash tables keyed by
        // `CompositeKey` rely on `Borrow<[Key]>` lookups with a borrowed
        // slice to avoid allocating a boxed key per probe.
        self.0.hash(state);
    }
}

impl std::borrow::Borrow<[Key]> for CompositeKey {
    fn borrow(&self) -> &[Key] {
        &self.0
    }
}

impl fmt::Display for CompositeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, k) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn from_value_accepts_key_types() {
        assert_eq!(Key::from_value(&Value::Int64(3)).unwrap(), Key::Int(3));
        assert_eq!(
            Key::from_value(&Value::str("x")).unwrap(),
            Key::Str(Arc::from("x"))
        );
        assert_eq!(Key::from_value(&Value::Null).unwrap(), Key::Null);
        assert!(Key::from_value(&Value::Float64(1.0)).is_err());
    }

    #[test]
    fn keys_work_in_hash_maps() {
        let mut m: HashMap<Key, u64> = HashMap::new();
        *m.entry(Key::Int(5)).or_default() += 1;
        *m.entry(Key::Int(5)).or_default() += 1;
        *m.entry(Key::from("a")).or_default() += 1;
        assert_eq!(m[&Key::Int(5)], 2);
        assert_eq!(m[&Key::from("a")], 1);
    }

    #[test]
    fn composite_key_variant() {
        let k = Key::composite(vec![Key::Int(1), Key::from("a")]);
        assert_eq!(k.to_string(), "(1, a)");
        assert!(!k.is_null());
        let n = Key::composite(vec![Key::Int(1), Key::Null]);
        assert!(n.is_null());
        // usable in maps
        let mut m = HashMap::new();
        m.insert(k.clone(), 5);
        assert_eq!(m[&Key::composite(vec![Key::Int(1), Key::from("a")])], 5);
        assert!(k.memory_size() > Key::Int(1).memory_size());
    }

    #[test]
    fn composite_key_extraction_and_null_detection() {
        let row = vec![Value::Int64(1), Value::str("a"), Value::Null];
        let k = CompositeKey::from_values(&row, &[0, 1]).unwrap();
        assert!(!k.any_null());
        assert_eq!(k.to_string(), "(1, a)");
        let k2 = CompositeKey::from_values(&row, &[0, 2]).unwrap();
        assert!(k2.any_null());
        assert!(CompositeKey::from_values(&row, &[9]).is_err());
    }

    #[test]
    fn composite_keys_hash_consistently() {
        let row = vec![Value::Int64(1), Value::Int64(2)];
        let a = CompositeKey::from_values(&row, &[0, 1]).unwrap();
        let b = CompositeKey::from_values(&row, &[0, 1]).unwrap();
        let mut m = HashMap::new();
        m.insert(a, 1);
        assert_eq!(m[&b], 1);
    }
}
