//! Fundamental data types shared by every `qprog` crate.
//!
//! This crate defines the dynamically typed [`Value`], the [`Row`] tuple
//! representation flowing between operators, [`Schema`]/[`Field`] metadata,
//! the hashable/equatable [`Key`] used for join and grouping attributes, and
//! the crate-wide [`QError`]/[`QResult`] error types.
//!
//! It deliberately has no dependencies: everything above it (storage,
//! execution, planning, the estimation framework) builds on these types.

pub mod batch;
pub mod error;
pub mod key;
pub mod row;
pub mod schema;
pub mod value;

pub use batch::{BatchStatus, RowBatch, DEFAULT_BATCH_ROWS};
pub use error::{ExecError, QError, QResult};
pub use key::{CompositeKey, Key};
pub use row::Row;
pub use schema::{Field, Schema, SchemaRef};
pub use value::{DataType, Value};
