//! Columnar row batches: the unit of exchange in the vectorized engine.
//!
//! A [`RowBatch`] holds up to `capacity` rows in column-major order — one
//! `Vec<Value>` per column — so operators touch values without per-row
//! allocation, and per-tuple bookkeeping (governor checkpoints, metrics,
//! failpoints, trace publication) amortizes to batch boundaries. The gnm
//! progress model counts `K_i` *deltas*, so summing them per batch is
//! exact: published fractions, bounds, and converged estimates are
//! unchanged from tuple-at-a-time execution.
//!
//! Batches are reused: the driver allocates one batch per pipeline edge and
//! operators [`clear`](RowBatch::clear) + refill it, so the steady state
//! performs no heap allocation at all for fixed-width columns.

use crate::error::QResult;
use crate::key::{CompositeKey, Key};
use crate::row::Row;
use crate::value::Value;

/// Default rows per batch (`PhysicalOptions::batch_rows`): large enough to
/// amortize per-batch overhead to noise, small enough to stay cache
/// resident. `1` selects the strict legacy-equivalent mode reproducing
/// tuple-at-a-time traces byte-for-byte.
pub const DEFAULT_BATCH_ROWS: usize = 1024;

/// What a `next_batch` call (`qprog_exec::ops::Operator`) promises about
/// future output.
///
/// `Exhausted` may still deliver rows (the operator's final, partial
/// batch); a driver consumes `out` *then* stops. Operators are fused:
/// calling `next_batch` again after `Exhausted` returns an empty
/// `Exhausted` without side effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStatus {
    /// More output may follow; call again.
    HasMore,
    /// The operator is exhausted; `out` holds its final rows (possibly
    /// zero).
    Exhausted,
}

impl BatchStatus {
    /// True iff this is [`BatchStatus::Exhausted`].
    pub fn is_exhausted(self) -> bool {
        matches!(self, BatchStatus::Exhausted)
    }
}

/// A reusable, fixed-capacity, column-major batch of rows.
#[derive(Debug, Clone)]
pub struct RowBatch {
    /// Column-major storage: `cols[c][r]` is row `r`'s value in column `c`.
    cols: Vec<Vec<Value>>,
    /// Rows currently stored (every column vector has exactly this length).
    len: usize,
    /// Maximum rows before [`is_full`](Self::is_full).
    capacity: usize,
}

impl RowBatch {
    /// An empty batch of `arity` columns holding up to `capacity` rows
    /// (clamped to at least 1).
    pub fn with_capacity(arity: usize, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RowBatch {
            cols: (0..arity).map(|_| Vec::with_capacity(capacity)).collect(),
            len: 0,
            capacity,
        }
    }

    /// An unbounded accumulator batch: no capacity bound, no
    /// pre-allocation. Blocking operators use these as columnar buffers
    /// (join partitions, sort runs) that grow with their input.
    pub fn accumulator(arity: usize) -> Self {
        RowBatch {
            cols: (0..arity).map(|_| Vec::new()).collect(),
            len: 0,
            capacity: usize::MAX,
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Rows currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True iff the batch is at capacity.
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// Maximum rows per fill. Operators size their internal scratch
    /// batches from the output batch's capacity, so the configured
    /// `batch_rows` propagates down a plan without constructor plumbing.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rows still accepted before the batch is full.
    pub fn remaining(&self) -> usize {
        self.capacity - self.len
    }

    /// Re-bound an empty batch's capacity (clamped to at least 1).
    /// Operators that must not over-pull their input — LIMIT, or a filter
    /// whose output already holds rows — shrink their scratch batch with
    /// this before each refill so a child can never produce more rows than
    /// the parent can accept.
    pub fn set_capacity(&mut self, capacity: usize) {
        debug_assert!(self.is_empty(), "set_capacity on non-empty batch");
        self.capacity = capacity.max(1);
    }

    /// Drop all rows, keeping the column allocations for reuse.
    pub fn clear(&mut self) {
        for col in &mut self.cols {
            col.clear();
        }
        self.len = 0;
    }

    /// Borrow column `c` (its `self.len()` values).
    pub fn col(&self, c: usize) -> &[Value] {
        &self.cols[c]
    }

    /// Borrow all columns (column-major; each has `self.len()` values).
    pub fn cols(&self) -> &[Vec<Value>] {
        &self.cols
    }

    /// Borrow the value at (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> &Value {
        &self.cols[col][row]
    }

    /// Append one row from a slice of values (must match the arity).
    pub fn push_values(&mut self, values: &[Value]) {
        debug_assert_eq!(values.len(), self.cols.len());
        debug_assert!(!self.is_full());
        for (col, v) in self.cols.iter_mut().zip(values) {
            col.push(v.clone());
        }
        self.len += 1;
    }

    /// Append one row, consuming it.
    pub fn push_row(&mut self, row: Row) {
        debug_assert!(!self.is_full());
        debug_assert_eq!(row.arity(), self.cols.len());
        for (col, v) in self.cols.iter_mut().zip(row.into_values()) {
            col.push(v);
        }
        self.len += 1;
    }

    /// Append the concatenation of two value slices (join output:
    /// `left ++ right` must match the arity).
    pub fn push_concat(&mut self, left: &[Value], right: &[Value]) {
        debug_assert_eq!(left.len() + right.len(), self.cols.len());
        debug_assert!(!self.is_full());
        for (col, v) in self.cols.iter_mut().zip(left.iter().chain(right)) {
            col.push(v.clone());
        }
        self.len += 1;
    }

    /// Append row `row` of `src` (a column-wise gather; arities must
    /// match).
    pub fn push_from(&mut self, src: &RowBatch, row: usize) {
        debug_assert_eq!(src.arity(), self.arity());
        debug_assert!(!self.is_full());
        for (dst, s) in self.cols.iter_mut().zip(&src.cols) {
            dst.push(s[row].clone());
        }
        self.len += 1;
    }

    /// Append the selected rows of `src` column-wise — the
    /// selection-vector gather used by filters. `sel` indexes rows of
    /// `src`; the caller guarantees the result fits.
    pub fn gather_from(&mut self, src: &RowBatch, sel: &[usize]) {
        debug_assert_eq!(src.arity(), self.arity());
        debug_assert!(self.len + sel.len() <= self.capacity);
        for (dst, s) in self.cols.iter_mut().zip(&src.cols) {
            dst.extend(sel.iter().map(|&r| s[r].clone()));
        }
        self.len += sel.len();
    }

    /// Append the join-output gather `left[b] ++ right[p]` for every
    /// `(b, p)` pair, column-wise: each output column is filled in one
    /// tight loop over the pair list, so an inner join emits a whole batch
    /// of matches without materializing any row. The caller guarantees the
    /// pairs fit.
    pub fn gather_concat_from(&mut self, left: &RowBatch, right: &RowBatch, pairs: &[(u32, u32)]) {
        debug_assert_eq!(left.arity() + right.arity(), self.arity());
        debug_assert!(self.len + pairs.len() <= self.capacity);
        let split = left.arity();
        for (c, dst) in self.cols.iter_mut().enumerate() {
            if c < split {
                let s = &left.cols[c];
                dst.extend(pairs.iter().map(|&(b, _)| s[b as usize].clone()));
            } else {
                let s = &right.cols[c - split];
                dst.extend(pairs.iter().map(|&(_, p)| s[p as usize].clone()));
            }
        }
        self.len += pairs.len();
    }

    /// Append the concatenation of a value slice (e.g. an outer join's
    /// NULL padding) and row `rrow` of `right`.
    pub fn push_concat_row_from(&mut self, left: &[Value], right: &RowBatch, rrow: usize) {
        debug_assert_eq!(left.len() + right.arity(), self.cols.len());
        debug_assert!(!self.is_full());
        for (col, v) in self
            .cols
            .iter_mut()
            .zip(left.iter().chain(right.cols.iter().map(|c| &c[rrow])))
        {
            col.push(v.clone());
        }
        self.len += 1;
    }

    /// Move every row of `src` onto the end of this batch, leaving `src`
    /// empty (arities must match; the caller guarantees the rows fit).
    /// Used to merge per-worker columnar partition fragments in worker
    /// order without cloning any value.
    pub fn append_batch(&mut self, src: &mut RowBatch) {
        debug_assert_eq!(src.arity(), self.arity());
        debug_assert!(self.len + src.len <= self.capacity);
        self.len += src.len;
        src.len = 0;
        for (dst, s) in self.cols.iter_mut().zip(&mut src.cols) {
            dst.append(s);
        }
    }

    /// Append rows `range` from external column-major storage (the block
    /// scan path). `src` must have this batch's arity; the caller
    /// guarantees the range is in bounds for every column and that the
    /// rows fit.
    pub fn extend_from_cols(&mut self, src: &[Vec<Value>], range: std::ops::Range<usize>) {
        debug_assert_eq!(src.len(), self.cols.len());
        debug_assert!(self.len + (range.end - range.start) <= self.capacity);
        self.len += range.end - range.start;
        for (dst, s) in self.cols.iter_mut().zip(src) {
            dst.extend_from_slice(&s[range.clone()]);
        }
    }

    /// Materialize row `r` as an owned [`Row`].
    pub fn row(&self, r: usize) -> Row {
        Row::new(self.cols.iter().map(|c| c[r].clone()).collect())
    }

    /// Materialize every row, appending to `out` (blocking operators that
    /// buffer their input — sort, join partitioning — use this).
    pub fn append_rows_to(&self, out: &mut Vec<Row>) {
        out.reserve(self.len);
        for r in 0..self.len {
            out.push(self.row(r));
        }
    }

    /// Single-column [`Key`] of (`row`, `col`).
    pub fn key(&self, row: usize, col: usize) -> QResult<Key> {
        Key::from_value(&self.cols[col][row])
    }

    /// [`CompositeKey`] over `cols` of `row`.
    pub fn composite_key(&self, row: usize, cols: &[usize]) -> QResult<CompositeKey> {
        let mut parts = Vec::with_capacity(cols.len());
        for &c in cols {
            parts.push(Key::from_value(&self.cols[c][row])?);
        }
        Ok(CompositeKey(parts.into_boxed_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn push_and_read_column_major() {
        let mut b = RowBatch::with_capacity(2, 4);
        assert!(b.is_empty());
        assert_eq!(b.capacity(), 4);
        b.push_values(&[Value::Int64(1), Value::str("a")]);
        b.push_row(row![2i64, "b"]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.col(0), &[Value::Int64(1), Value::Int64(2)]);
        assert_eq!(b.value(1, 1), &Value::str("b"));
        assert_eq!(b.row(0), row![1i64, "a"]);
        assert!(!b.is_full());
        assert_eq!(b.remaining(), 2);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut b = RowBatch::with_capacity(1, 2);
        b.push_row(row![1i64]);
        b.push_row(row![2i64]);
        assert!(b.is_full());
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), 2);
        assert_eq!(b.arity(), 1);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let b = RowBatch::with_capacity(1, 0);
        assert_eq!(b.capacity(), 1);
    }

    #[test]
    fn set_capacity_rebounds_empty_batch() {
        let mut b = RowBatch::with_capacity(1, 8);
        b.set_capacity(2);
        b.push_row(row![1i64]);
        b.push_row(row![2i64]);
        assert!(b.is_full());
        b.clear();
        b.set_capacity(0);
        assert_eq!(b.capacity(), 1);
    }

    #[test]
    fn gather_applies_selection() {
        let mut src = RowBatch::with_capacity(1, 4);
        for i in 0..4i64 {
            src.push_row(row![i]);
        }
        let mut dst = RowBatch::with_capacity(1, 4);
        dst.gather_from(&src, &[0, 2, 3]);
        assert_eq!(
            dst.col(0),
            &[Value::Int64(0), Value::Int64(2), Value::Int64(3)]
        );
    }

    #[test]
    fn concat_and_from_batch() {
        let mut b = RowBatch::with_capacity(3, 2);
        b.push_concat(&[Value::Int64(1)], &[Value::Int64(2), Value::str("x")]);
        assert_eq!(b.row(0), row![1i64, 2i64, "x"]);
        let mut c = RowBatch::with_capacity(3, 2);
        c.push_from(&b, 0);
        assert_eq!(c.row(0), b.row(0));
    }

    #[test]
    fn extend_from_cols_copies_slices() {
        let src = vec![
            vec![Value::Int64(1), Value::Int64(2), Value::Int64(3)],
            vec![Value::str("a"), Value::str("b"), Value::str("c")],
        ];
        let mut b = RowBatch::with_capacity(2, 8);
        b.extend_from_cols(&src, 1..3);
        assert_eq!(b.len(), 2);
        assert_eq!(b.row(0), row![2i64, "b"]);
        assert_eq!(b.row(1), row![3i64, "c"]);
    }

    #[test]
    fn keys_and_row_materialization() {
        let mut b = RowBatch::with_capacity(2, 2);
        b.push_row(row![7i64, "k"]);
        assert_eq!(b.key(0, 0).unwrap(), Key::Int(7));
        let ck = b.composite_key(0, &[0, 1]).unwrap();
        assert_eq!(ck.to_string(), "(7, k)");
        let mut rows = Vec::new();
        b.append_rows_to(&mut rows);
        assert_eq!(rows, vec![row![7i64, "k"]]);
    }

    #[test]
    fn status_helpers() {
        assert!(BatchStatus::Exhausted.is_exhausted());
        assert!(!BatchStatus::HasMore.is_exhausted());
    }
}
