//! Dynamically typed scalar values.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::{QError, QResult};

/// The logical data types supported by the engine.
///
/// The set mirrors what the paper's TPC-H workloads require: integers for
/// keys and grouping attributes, floats for prices/discounts, strings for
/// names, booleans for predicates, and `Null` for missing data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int64,
    Float64,
    Utf8,
    /// The type of the SQL NULL literal before coercion.
    Null,
}

impl DataType {
    /// Whether values of this type may be used as join/grouping keys.
    ///
    /// Floats are excluded because their bit patterns do not define a sound
    /// equality for hashing (NaN, -0.0).
    pub fn is_key_type(self) -> bool {
        matches!(self, DataType::Bool | DataType::Int64 | DataType::Utf8)
    }

    /// Whether this type supports arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int64 => "BIGINT",
            DataType::Float64 => "DOUBLE",
            DataType::Utf8 => "VARCHAR",
            DataType::Null => "NULL",
        };
        f.write_str(s)
    }
}

/// A dynamically typed scalar value.
///
/// Strings are reference counted so that copying rows through the Volcano
/// iterator chain does not reallocate payloads.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int64(i64),
    Float64(f64),
    Str(Arc<str>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The [`DataType`] of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int64(_) => DataType::Int64,
            Value::Float64(_) => DataType::Float64,
            Value::Str(_) => DataType::Utf8,
        }
    }

    /// True iff this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an `i64`, erroring on any other type.
    pub fn as_i64(&self) -> QResult<i64> {
        match self {
            Value::Int64(v) => Ok(*v),
            other => Err(QError::type_err(format!(
                "expected BIGINT, got {}",
                other.data_type()
            ))),
        }
    }

    /// Extract an `f64`, transparently widening integers.
    pub fn as_f64(&self) -> QResult<f64> {
        match self {
            Value::Float64(v) => Ok(*v),
            Value::Int64(v) => Ok(*v as f64),
            other => Err(QError::type_err(format!(
                "expected DOUBLE, got {}",
                other.data_type()
            ))),
        }
    }

    /// Extract a `bool`, erroring on any other type.
    pub fn as_bool(&self) -> QResult<bool> {
        match self {
            Value::Bool(v) => Ok(*v),
            other => Err(QError::type_err(format!(
                "expected BOOLEAN, got {}",
                other.data_type()
            ))),
        }
    }

    /// Extract a string slice, erroring on any other type.
    pub fn as_str(&self) -> QResult<&str> {
        match self {
            Value::Str(v) => Ok(v),
            other => Err(QError::type_err(format!(
                "expected VARCHAR, got {}",
                other.data_type()
            ))),
        }
    }

    /// SQL three-valued comparison: `None` when either side is NULL or the
    /// types are not comparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int64(a), Value::Int64(b)) => Some(a.cmp(b)),
            (Value::Float64(a), Value::Float64(b)) => a.partial_cmp(b),
            (Value::Int64(a), Value::Float64(b)) => (*a as f64).partial_cmp(b),
            (Value::Float64(a), Value::Int64(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            _ => None,
        }
    }

    /// SQL equality (three-valued; NULL = anything is `None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Total ordering used by the sort operator: NULLs sort first, values of
    /// different types are ordered by a type rank so the order is total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int64(_) => 2,
                Value::Float64(_) => 2, // numerics share a rank and compare by value
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Float64(a), Value::Float64(b)) => a.total_cmp(b),
            (Value::Int64(a), Value::Float64(b)) => (*a as f64).total_cmp(b),
            (Value::Float64(a), Value::Int64(b)) => a.total_cmp(&(*b as f64)),
            _ => match rank(self).cmp(&rank(other)) {
                Ordering::Equal => self.sql_cmp(other).unwrap_or(Ordering::Equal),
                o => o,
            },
        }
    }

    /// Approximate in-memory footprint in bytes, counting string payloads.
    pub fn memory_size(&self) -> usize {
        let base = std::mem::size_of::<Value>();
        match self {
            Value::Str(s) => base + s.len(),
            _ => base,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality (NULL == NULL here); SQL semantics live in
        // `sql_eq`. This impl is what tests and collections rely on.
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int64(a), Value::Int64(b)) => a == b,
            (Value::Float64(a), Value::Float64(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_classification() {
        assert!(DataType::Int64.is_key_type());
        assert!(DataType::Utf8.is_key_type());
        assert!(!DataType::Float64.is_key_type());
        assert!(DataType::Float64.is_numeric());
        assert!(!DataType::Utf8.is_numeric());
    }

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Value::Int64(7).as_i64().unwrap(), 7);
        assert!(Value::str("x").as_i64().is_err());
        assert_eq!(Value::Int64(7).as_f64().unwrap(), 7.0);
        assert!(Value::Bool(true).as_bool().unwrap());
        assert_eq!(Value::str("ab").as_str().unwrap(), "ab");
        assert!(Value::Null.as_bool().is_err());
    }

    #[test]
    fn sql_cmp_is_three_valued() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int64(1)), None);
        assert_eq!(
            Value::Int64(1).sql_cmp(&Value::Int64(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int64(2).sql_cmp(&Value::Float64(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::str("a").sql_cmp(&Value::Int64(1)), None);
        assert_eq!(Value::Int64(1).sql_eq(&Value::Int64(1)), Some(true));
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn total_cmp_sorts_nulls_first_and_mixed_types() {
        let mut vals = [
            Value::str("b"),
            Value::Int64(3),
            Value::Null,
            Value::Float64(1.5),
            Value::Int64(1),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int64(1));
        assert_eq!(vals[2], Value::Float64(1.5));
        assert_eq!(vals[3], Value::Int64(3));
        assert_eq!(vals[4], Value::str("b"));
    }

    #[test]
    fn structural_eq_handles_floats_bitwise() {
        assert_eq!(Value::Float64(f64::NAN), Value::Float64(f64::NAN));
        assert_ne!(Value::Float64(0.0), Value::Float64(-0.0));
        assert_eq!(Value::Float64(1.0), Value::Float64(1.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int64(-4).to_string(), "-4");
        assert_eq!(Value::str("hi").to_string(), "hi");
    }

    #[test]
    fn memory_size_counts_string_payload() {
        let short = Value::str("a");
        let long = Value::str("aaaaaaaaaaaaaaaaaaaa");
        assert!(long.memory_size() > short.memory_size());
        assert_eq!(Value::Int64(1).memory_size(), std::mem::size_of::<Value>());
    }
}
