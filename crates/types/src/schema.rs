//! Schemas: ordered, optionally table-qualified column metadata.

use std::fmt;
use std::sync::Arc;

use crate::error::{QError, QResult};
use crate::value::DataType;

/// A single column: optional table qualifier, name, type, nullability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Table (or alias) qualifier, e.g. `customer` in `customer.nationkey`.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Logical type.
    pub data_type: DataType,
    /// Whether NULLs may appear.
    pub nullable: bool,
}

impl Field {
    /// An unqualified, non-nullable field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            qualifier: None,
            name: name.into(),
            data_type,
            nullable: false,
        }
    }

    /// A qualified, non-nullable field.
    pub fn qualified(
        qualifier: impl Into<String>,
        name: impl Into<String>,
        data_type: DataType,
    ) -> Self {
        Field {
            qualifier: Some(qualifier.into()),
            name: name.into(),
            data_type,
            nullable: false,
        }
    }

    /// Make the field nullable.
    pub fn with_nullable(mut self, nullable: bool) -> Self {
        self.nullable = nullable;
        self
    }

    /// Replace the qualifier (used when aliasing tables).
    pub fn with_qualifier(mut self, qualifier: impl Into<String>) -> Self {
        self.qualifier = Some(qualifier.into());
        self
    }

    /// `qualifier.name` when qualified, else just `name`.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Whether a reference (possibly qualified) matches this field.
    fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .is_some_and(|fq| fq.eq_ignore_ascii_case(q)),
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.qualified_name(), self.data_type)
    }
}

/// Shared schema handle passed between operators.
pub type SchemaRef = Arc<Schema>;

/// An ordered list of [`Field`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Wrap in an [`Arc`].
    pub fn into_ref(self) -> SchemaRef {
        Arc::new(self)
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Borrow the field at `idx`.
    pub fn field(&self, idx: usize) -> QResult<&Field> {
        self.fields.get(idx).ok_or_else(|| {
            QError::schema(format!(
                "field index {idx} out of bounds for schema of arity {}",
                self.fields.len()
            ))
        })
    }

    /// Resolve a column reference of the form `name` or `qualifier.name`
    /// to its index, erroring on unknown or ambiguous references.
    pub fn index_of(&self, reference: &str) -> QResult<usize> {
        let (qualifier, name) = match reference.split_once('.') {
            Some((q, n)) => (Some(q), n),
            None => (None, reference),
        };
        let mut found: Option<usize> = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.matches(qualifier, name) {
                if let Some(prev) = found {
                    return Err(QError::schema(format!(
                        "ambiguous column `{reference}`: matches both `{}` and `{}`",
                        self.fields[prev].qualified_name(),
                        f.qualified_name()
                    )));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| QError::schema(format!("unknown column `{reference}`")))
    }

    /// Concatenate two schemas (join output schema).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = Vec::with_capacity(self.fields.len() + other.fields.len());
        fields.extend_from_slice(&self.fields);
        fields.extend_from_slice(&other.fields);
        Schema { fields }
    }

    /// Project onto the given indices.
    pub fn project(&self, cols: &[usize]) -> QResult<Schema> {
        let mut fields = Vec::with_capacity(cols.len());
        for &c in cols {
            fields.push(self.field(c)?.clone());
        }
        Ok(Schema { fields })
    }

    /// Re-qualify every field with a new table alias.
    pub fn with_qualifier(&self, qualifier: &str) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| f.clone().with_qualifier(qualifier))
                .collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::qualified("customer", "custkey", DataType::Int64),
            Field::qualified("customer", "nationkey", DataType::Int64),
            Field::qualified("nation", "nationkey", DataType::Int64),
            Field::new("comment", DataType::Utf8),
        ])
    }

    #[test]
    fn index_of_unqualified_unique() {
        let s = schema();
        assert_eq!(s.index_of("custkey").unwrap(), 0);
        assert_eq!(s.index_of("comment").unwrap(), 3);
    }

    #[test]
    fn index_of_ambiguous_errors() {
        let s = schema();
        let err = s.index_of("nationkey").unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn index_of_qualified_disambiguates() {
        let s = schema();
        assert_eq!(s.index_of("customer.nationkey").unwrap(), 1);
        assert_eq!(s.index_of("nation.nationkey").unwrap(), 2);
        assert!(s.index_of("orders.custkey").is_err());
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.index_of("CUSTKEY").unwrap(), 0);
        assert_eq!(s.index_of("Customer.NationKey").unwrap(), 1);
    }

    #[test]
    fn join_concatenates() {
        let a = Schema::new(vec![Field::new("a", DataType::Int64)]);
        let b = Schema::new(vec![Field::new("b", DataType::Utf8)]);
        let j = a.join(&b);
        assert_eq!(j.arity(), 2);
        assert_eq!(j.field(1).unwrap().name, "b");
    }

    #[test]
    fn project_and_requalify() {
        let s = schema();
        let p = s.project(&[3, 0]).unwrap();
        assert_eq!(p.field(0).unwrap().name, "comment");
        assert!(s.project(&[9]).is_err());
        let rq = s.with_qualifier("c2");
        assert_eq!(rq.index_of("c2.custkey").unwrap(), 0);
        assert!(rq.index_of("customer.custkey").is_err());
    }

    #[test]
    fn display_roundtrip_readable() {
        let s = schema();
        let d = s.to_string();
        assert!(d.contains("customer.custkey BIGINT"));
        assert!(d.contains("comment VARCHAR"));
    }
}
