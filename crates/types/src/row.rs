//! The tuple representation flowing between operators.

use std::fmt;

use crate::error::{QError, QResult};
use crate::key::{CompositeKey, Key};
use crate::value::Value;

/// A row (tuple) of dynamically typed values.
///
/// Rows are the unit of exchange in the Volcano iterator model: each
/// `getnext()` call produces one [`Row`]. The paper's *gnm* progress measure
/// is literally a count of these productions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Build a row from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// True iff the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the value at `idx`, erroring when out of bounds.
    pub fn get(&self, idx: usize) -> QResult<&Value> {
        self.values.get(idx).ok_or_else(|| {
            QError::internal(format!(
                "column index {idx} out of bounds for row of arity {}",
                self.values.len()
            ))
        })
    }

    /// Borrow all values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume the row, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Extract a single-column [`Key`] from column `idx`.
    pub fn key(&self, idx: usize) -> QResult<Key> {
        Key::from_value(self.get(idx)?)
    }

    /// Extract a [`CompositeKey`] from the given column indices.
    pub fn composite_key(&self, cols: &[usize]) -> QResult<CompositeKey> {
        CompositeKey::from_values(&self.values, cols)
    }

    /// Concatenate two rows (used by join operators).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row { values }
    }

    /// Project the row onto the given column indices.
    pub fn project(&self, cols: &[usize]) -> QResult<Row> {
        let mut values = Vec::with_capacity(cols.len());
        for &c in cols {
            values.push(self.get(c)?.clone());
        }
        Ok(Row { values })
    }

    /// Approximate in-memory footprint in bytes.
    pub fn memory_size(&self) -> usize {
        std::mem::size_of::<Row>() + self.values.iter().map(Value::memory_size).sum::<usize>()
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Build a row from literal-convertible values: `row![1i64, "x", 2.5]`.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let r = row![1i64, "a", 2.5];
        assert_eq!(r.arity(), 3);
        assert_eq!(r.get(0).unwrap(), &Value::Int64(1));
        assert_eq!(r.get(1).unwrap(), &Value::str("a"));
        assert!(r.get(3).is_err());
        assert!(!r.is_empty());
        assert!(Row::default().is_empty());
    }

    #[test]
    fn concat_preserves_order() {
        let a = row![1i64, 2i64];
        let b = row!["x"];
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.get(2).unwrap(), &Value::str("x"));
        // concat does not mutate inputs
        assert_eq!(a.arity(), 2);
    }

    #[test]
    fn project_selects_and_reorders() {
        let r = row![10i64, 20i64, 30i64];
        let p = r.project(&[2, 0]).unwrap();
        assert_eq!(p.values(), &[Value::Int64(30), Value::Int64(10)]);
        assert!(r.project(&[5]).is_err());
    }

    #[test]
    fn key_extraction() {
        let r = row![7i64, "k"];
        assert_eq!(r.key(0).unwrap(), Key::Int(7));
        let ck = r.composite_key(&[0, 1]).unwrap();
        assert_eq!(ck.to_string(), "(7, k)");
    }

    #[test]
    fn display_and_size() {
        let r = row![1i64, "ab"];
        assert_eq!(r.to_string(), "[1, ab]");
        assert!(r.memory_size() > std::mem::size_of::<Row>());
    }
}
