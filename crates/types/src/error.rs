//! Error handling for the `qprog` workspace.

use std::fmt;

/// Convenient result alias used across the workspace.
pub type QResult<T> = Result<T, QError>;

/// The unified error type for all `qprog` crates.
///
/// Lower layers construct the structured variants; the `Internal` variant is
/// reserved for invariant violations that indicate a bug rather than bad
/// input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QError {
    /// A schema lookup failed (unknown column or ambiguous reference).
    Schema(String),
    /// A value had an unexpected type for the requested operation.
    Type(String),
    /// The catalog has no table with the given name.
    TableNotFound(String),
    /// SQL text failed to lex or parse.
    Parse(String),
    /// A logical plan could not be bound or physically planned.
    Plan(String),
    /// A runtime execution failure (e.g. division by zero).
    Execution(String),
    /// An estimator was configured or driven incorrectly.
    Estimation(String),
    /// Invariant violation — indicates a bug in qprog itself.
    Internal(String),
}

impl QError {
    /// Build a [`QError::Schema`] from anything displayable.
    pub fn schema(msg: impl fmt::Display) -> Self {
        QError::Schema(msg.to_string())
    }

    /// Build a [`QError::Type`] from anything displayable.
    pub fn type_err(msg: impl fmt::Display) -> Self {
        QError::Type(msg.to_string())
    }

    /// Build a [`QError::Parse`] from anything displayable.
    pub fn parse(msg: impl fmt::Display) -> Self {
        QError::Parse(msg.to_string())
    }

    /// Build a [`QError::Plan`] from anything displayable.
    pub fn plan(msg: impl fmt::Display) -> Self {
        QError::Plan(msg.to_string())
    }

    /// Build a [`QError::Execution`] from anything displayable.
    pub fn exec(msg: impl fmt::Display) -> Self {
        QError::Execution(msg.to_string())
    }

    /// Build a [`QError::Estimation`] from anything displayable.
    pub fn estimation(msg: impl fmt::Display) -> Self {
        QError::Estimation(msg.to_string())
    }

    /// Build a [`QError::Internal`] from anything displayable.
    pub fn internal(msg: impl fmt::Display) -> Self {
        QError::Internal(msg.to_string())
    }
}

impl fmt::Display for QError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QError::Schema(m) => write!(f, "schema error: {m}"),
            QError::Type(m) => write!(f, "type error: {m}"),
            QError::TableNotFound(m) => write!(f, "table not found: {m}"),
            QError::Parse(m) => write!(f, "parse error: {m}"),
            QError::Plan(m) => write!(f, "plan error: {m}"),
            QError::Execution(m) => write!(f, "execution error: {m}"),
            QError::Estimation(m) => write!(f, "estimation error: {m}"),
            QError::Internal(m) => write!(f, "internal error (bug): {m}"),
        }
    }
}

impl std::error::Error for QError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = QError::schema("no column `x`");
        assert_eq!(e.to_string(), "schema error: no column `x`");
        let e = QError::TableNotFound("orders".into());
        assert_eq!(e.to_string(), "table not found: orders");
        let e = QError::internal("counter underflow");
        assert!(e.to_string().contains("bug"));
    }

    #[test]
    fn constructors_map_to_variants() {
        assert!(matches!(QError::type_err("x"), QError::Type(_)));
        assert!(matches!(QError::parse("x"), QError::Parse(_)));
        assert!(matches!(QError::plan("x"), QError::Plan(_)));
        assert!(matches!(QError::exec("x"), QError::Execution(_)));
        assert!(matches!(QError::estimation("x"), QError::Estimation(_)));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(QError::schema("a"), QError::schema("a"));
        assert_ne!(QError::schema("a"), QError::schema("b"));
        assert_ne!(QError::schema("a"), QError::plan("a"));
    }
}
