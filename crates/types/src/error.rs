//! Error handling for the `qprog` workspace.

use std::fmt;

/// Convenient result alias used across the workspace.
pub type QResult<T> = Result<T, QError>;

/// The unified error type for all `qprog` crates.
///
/// Lower layers construct the structured variants; the `Internal` variant is
/// reserved for invariant violations that indicate a bug rather than bad
/// input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QError {
    /// A schema lookup failed (unknown column or ambiguous reference).
    Schema(String),
    /// A value had an unexpected type for the requested operation.
    Type(String),
    /// The catalog has no table with the given name.
    TableNotFound(String),
    /// SQL text failed to lex or parse.
    Parse(String),
    /// A logical plan could not be bound or physically planned.
    Plan(String),
    /// A runtime execution failure (e.g. division by zero).
    Execution(String),
    /// An estimator was configured or driven incorrectly.
    Estimation(String),
    /// Invariant violation — indicates a bug in qprog itself.
    Internal(String),
    /// A query-lifecycle event terminated execution (cancellation,
    /// deadline, budget breach, operator panic, or an injected fault).
    Lifecycle(ExecError),
}

/// The typed taxonomy of lifecycle terminations.
///
/// These are *expected* ways for a query to stop early — they carry enough
/// structure for the monitor and metrics layers to label terminal states
/// without parsing strings. They propagate through [`QResult`] wrapped in
/// [`QError::Lifecycle`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The query's [`CancellationToken`] was triggered.
    Cancelled,
    /// The wall-clock deadline attached to the query elapsed.
    DeadlineExceeded,
    /// A hard per-query resource budget was breached; the message names
    /// the budget and its limit.
    BudgetExceeded(String),
    /// An operator's `next()` (or a worker thread) panicked; the payload
    /// is the captured panic message.
    OperatorPanic(String),
    /// A fault-injection site fired (`--features failpoints` builds only);
    /// the payload names the site.
    Injected(String),
}

impl ExecError {
    /// Short stable label for metrics/monitor rendering.
    pub fn kind(&self) -> &'static str {
        match self {
            ExecError::Cancelled => "cancelled",
            ExecError::DeadlineExceeded => "deadline",
            ExecError::BudgetExceeded(_) => "budget",
            ExecError::OperatorPanic(_) => "panic",
            ExecError::Injected(_) => "injected",
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Cancelled => write!(f, "query cancelled"),
            ExecError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            ExecError::BudgetExceeded(m) => write!(f, "resource budget exceeded: {m}"),
            ExecError::OperatorPanic(m) => write!(f, "operator panicked: {m}"),
            ExecError::Injected(m) => write!(f, "injected fault: {m}"),
        }
    }
}

impl From<ExecError> for QError {
    fn from(e: ExecError) -> Self {
        QError::Lifecycle(e)
    }
}

impl QError {
    /// Build a [`QError::Schema`] from anything displayable.
    pub fn schema(msg: impl fmt::Display) -> Self {
        QError::Schema(msg.to_string())
    }

    /// Build a [`QError::Type`] from anything displayable.
    pub fn type_err(msg: impl fmt::Display) -> Self {
        QError::Type(msg.to_string())
    }

    /// Build a [`QError::Parse`] from anything displayable.
    pub fn parse(msg: impl fmt::Display) -> Self {
        QError::Parse(msg.to_string())
    }

    /// Build a [`QError::Plan`] from anything displayable.
    pub fn plan(msg: impl fmt::Display) -> Self {
        QError::Plan(msg.to_string())
    }

    /// Build a [`QError::Execution`] from anything displayable.
    pub fn exec(msg: impl fmt::Display) -> Self {
        QError::Execution(msg.to_string())
    }

    /// Build a [`QError::Estimation`] from anything displayable.
    pub fn estimation(msg: impl fmt::Display) -> Self {
        QError::Estimation(msg.to_string())
    }

    /// Build a [`QError::Internal`] from anything displayable.
    pub fn internal(msg: impl fmt::Display) -> Self {
        QError::Internal(msg.to_string())
    }

    /// Build a [`QError::Lifecycle`] cancellation.
    pub fn cancelled() -> Self {
        QError::Lifecycle(ExecError::Cancelled)
    }

    /// Build a [`QError::Lifecycle`] deadline expiry.
    pub fn deadline_exceeded() -> Self {
        QError::Lifecycle(ExecError::DeadlineExceeded)
    }

    /// Build a [`QError::Lifecycle`] budget breach.
    pub fn budget_exceeded(msg: impl fmt::Display) -> Self {
        QError::Lifecycle(ExecError::BudgetExceeded(msg.to_string()))
    }

    /// Build a [`QError::Lifecycle`] operator panic.
    pub fn operator_panic(msg: impl fmt::Display) -> Self {
        QError::Lifecycle(ExecError::OperatorPanic(msg.to_string()))
    }

    /// Build a [`QError::Lifecycle`] injected fault.
    pub fn injected(site: impl fmt::Display) -> Self {
        QError::Lifecycle(ExecError::Injected(site.to_string()))
    }

    /// The lifecycle termination carried by this error, if any.
    pub fn lifecycle(&self) -> Option<&ExecError> {
        match self {
            QError::Lifecycle(e) => Some(e),
            _ => None,
        }
    }

    /// True when this error is a cooperative cancellation.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, QError::Lifecycle(ExecError::Cancelled))
    }
}

impl fmt::Display for QError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QError::Schema(m) => write!(f, "schema error: {m}"),
            QError::Type(m) => write!(f, "type error: {m}"),
            QError::TableNotFound(m) => write!(f, "table not found: {m}"),
            QError::Parse(m) => write!(f, "parse error: {m}"),
            QError::Plan(m) => write!(f, "plan error: {m}"),
            QError::Execution(m) => write!(f, "execution error: {m}"),
            QError::Estimation(m) => write!(f, "estimation error: {m}"),
            QError::Internal(m) => write!(f, "internal error (bug): {m}"),
            QError::Lifecycle(e) => write!(f, "lifecycle: {e}"),
        }
    }
}

impl std::error::Error for QError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = QError::schema("no column `x`");
        assert_eq!(e.to_string(), "schema error: no column `x`");
        let e = QError::TableNotFound("orders".into());
        assert_eq!(e.to_string(), "table not found: orders");
        let e = QError::internal("counter underflow");
        assert!(e.to_string().contains("bug"));
    }

    #[test]
    fn constructors_map_to_variants() {
        assert!(matches!(QError::type_err("x"), QError::Type(_)));
        assert!(matches!(QError::parse("x"), QError::Parse(_)));
        assert!(matches!(QError::plan("x"), QError::Plan(_)));
        assert!(matches!(QError::exec("x"), QError::Execution(_)));
        assert!(matches!(QError::estimation("x"), QError::Estimation(_)));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(QError::schema("a"), QError::schema("a"));
        assert_ne!(QError::schema("a"), QError::schema("b"));
        assert_ne!(QError::schema("a"), QError::plan("a"));
    }

    #[test]
    fn lifecycle_taxonomy_roundtrips() {
        let e = QError::cancelled();
        assert!(e.is_cancelled());
        assert_eq!(e.lifecycle().map(ExecError::kind), Some("cancelled"));
        assert_eq!(e.to_string(), "lifecycle: query cancelled");

        let e = QError::budget_exceeded("max_rows=100");
        assert!(!e.is_cancelled());
        assert_eq!(e.lifecycle().map(ExecError::kind), Some("budget"));
        assert!(e.to_string().contains("max_rows=100"));

        let e: QError = ExecError::OperatorPanic("boom".into()).into();
        assert_eq!(e.lifecycle().map(ExecError::kind), Some("panic"));
        assert_eq!(
            QError::deadline_exceeded().lifecycle().map(ExecError::kind),
            Some("deadline")
        );
        assert_eq!(
            QError::injected("exec/scan/next")
                .lifecycle()
                .map(ExecError::kind),
            Some("injected")
        );
        assert!(QError::schema("x").lifecycle().is_none());
    }
}
