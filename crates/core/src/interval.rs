//! Adaptive recomputation interval for the MLE estimator
//! (§4.2, Algorithm 3 of the paper).
//!
//! The MLE estimate must be recomputed rather than incrementally updated.
//! Algorithm 3 recomputes every `I` tuples, starting at a lower threshold
//! `l`; when consecutive estimates agree within `k`, the interval doubles
//! (capped at `u`), and when they diverge it resets to `l` — so estimates
//! refresh often exactly when they are moving.

/// Algorithm 3's interval controller.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveInterval {
    /// Lower bound `l` on the interval (initial and reset value), in tuples.
    lower: u64,
    /// Upper bound `u` on the interval, in tuples.
    upper: u64,
    /// Relative agreement threshold `k` (e.g. 0.01 for 1%).
    k: f64,
    /// Current interval `I`.
    interval: u64,
    /// Tuples observed.
    t: u64,
}

impl AdaptiveInterval {
    /// New controller with bounds `l ≤ u` (both clamped to ≥ 1) and
    /// agreement threshold `k`.
    pub fn new(lower: u64, upper: u64, k: f64) -> Self {
        let lower = lower.max(1);
        let upper = upper.max(lower);
        AdaptiveInterval {
            lower,
            upper,
            k,
            interval: lower,
            t: 0,
        }
    }

    /// The paper's Table 4(b) configuration: `l` = 0.1% and `u` = 3.2% of
    /// the input size, `k` = 1%.
    pub fn paper_default(input_size: u64) -> Self {
        AdaptiveInterval::new(input_size / 1000, input_size * 32 / 1000, 0.01)
    }

    /// Advance by one tuple; returns `true` when the estimate is due for
    /// recomputation (`t mod I == 0`).
    pub fn tick(&mut self) -> bool {
        self.t += 1;
        self.t.is_multiple_of(self.interval)
    }

    /// Report the old and freshly recomputed estimates; adjusts `I`
    /// (double on agreement within `k`, reset to `l` otherwise).
    pub fn feedback(&mut self, old_estimate: f64, new_estimate: f64) {
        let agree = if new_estimate == 0.0 {
            old_estimate == 0.0
        } else {
            let ratio = old_estimate / new_estimate;
            (1.0 - self.k..1.0 + self.k).contains(&ratio)
        };
        self.interval = if agree {
            (self.interval * 2).min(self.upper)
        } else {
            self.lower
        };
    }

    /// Current interval `I`.
    pub fn current_interval(&self) -> u64 {
        self.interval
    }

    /// Tuples observed so far.
    pub fn ticks(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_every_interval() {
        let mut ai = AdaptiveInterval::new(3, 100, 0.01);
        let fired: Vec<bool> = (0..9).map(|_| ai.tick()).collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn doubles_on_agreement_and_caps_at_upper() {
        let mut ai = AdaptiveInterval::new(4, 10, 0.01);
        ai.feedback(100.0, 100.0);
        assert_eq!(ai.current_interval(), 8);
        ai.feedback(100.0, 100.05);
        assert_eq!(ai.current_interval(), 10); // capped
        ai.feedback(100.0, 100.0);
        assert_eq!(ai.current_interval(), 10);
    }

    #[test]
    fn resets_on_disagreement() {
        let mut ai = AdaptiveInterval::new(4, 100, 0.01);
        ai.feedback(100.0, 100.0);
        ai.feedback(100.0, 100.0);
        assert_eq!(ai.current_interval(), 16);
        ai.feedback(100.0, 150.0);
        assert_eq!(ai.current_interval(), 4);
    }

    #[test]
    fn agreement_threshold_is_relative() {
        let mut ai = AdaptiveInterval::new(4, 100, 0.10);
        ai.feedback(95.0, 100.0); // ratio 0.95, within 10%
        assert_eq!(ai.current_interval(), 8);
        ai.feedback(80.0, 100.0); // ratio 0.8, outside
        assert_eq!(ai.current_interval(), 4);
    }

    #[test]
    fn zero_estimates_handled() {
        let mut ai = AdaptiveInterval::new(4, 100, 0.01);
        ai.feedback(0.0, 0.0); // both zero → agree
        assert_eq!(ai.current_interval(), 8);
        ai.feedback(5.0, 0.0); // old nonzero, new zero → disagree
        assert_eq!(ai.current_interval(), 4);
    }

    #[test]
    fn bounds_are_clamped() {
        let ai = AdaptiveInterval::new(0, 0, 0.01);
        assert_eq!(ai.current_interval(), 1);
        let ai = AdaptiveInterval::new(10, 5, 0.01);
        assert_eq!(ai.current_interval(), 10); // upper raised to lower
    }

    #[test]
    fn paper_default_scales_with_input() {
        let ai = AdaptiveInterval::paper_default(1_500_000);
        assert_eq!(ai.current_interval(), 1500);
        // tiny inputs still get a sane interval
        let ai = AdaptiveInterval::paper_default(100);
        assert_eq!(ai.current_interval(), 1);
    }
}
