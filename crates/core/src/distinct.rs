//! Composed online distinct-value (GROUP BY output cardinality) tracking.
//!
//! [`DistinctTracker`] wires together the pieces of §4.2 the way the
//! prototype does inside an aggregation operator's hashing/sorting phase:
//! one shared [`FreqHist`] feeds the O(1)-per-tuple GEE update
//! (Algorithm 2), the adaptively-recomputed MLE estimate (Algorithm 3), the
//! incrementally maintained `γ²` skew measure, and the online chooser.

use qprog_types::Key;

use crate::chooser::{choose_estimator, EstimatorChoice, DEFAULT_TAU};
use crate::freq_hist::FreqHist;
use crate::gee::Gee;
use crate::interval::AdaptiveInterval;
use crate::mle::mle_estimate;

/// Online estimator for the number of groups a grouping column will
/// produce, refined as input tuples stream by.
///
/// # Example
///
/// ```
/// use qprog_core::distinct::DistinctTracker;
/// use qprog_types::Key;
///
/// let mut tracker = DistinctTracker::new(6);
/// for v in [5i64, 5, 7, 7, 7, 9] {
///     tracker.observe(&Key::Int(v));
/// }
/// // the whole input has been seen: the count is exact
/// assert_eq!(tracker.estimate(), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct DistinctTracker {
    hist: FreqHist,
    gee: Gee,
    interval: AdaptiveInterval,
    /// Cached MLE estimate from the last recomputation.
    mle_cache: f64,
    input_size: u64,
    tau: f64,
}

impl DistinctTracker {
    /// New tracker for a grouping column of a stream of (known or
    /// estimated) size `input_size`, using the paper's Algorithm 3
    /// parameters and `τ = 10`.
    pub fn new(input_size: u64) -> Self {
        DistinctTracker {
            hist: FreqHist::new(),
            gee: Gee::new(input_size),
            interval: AdaptiveInterval::paper_default(input_size),
            mle_cache: 0.0,
            input_size,
            tau: DEFAULT_TAU,
        }
    }

    /// Override the `γ²` threshold `τ`.
    pub fn with_tau(mut self, tau: f64) -> Self {
        self.tau = tau;
        self
    }

    /// Override the MLE recomputation interval controller.
    pub fn with_interval(mut self, interval: AdaptiveInterval) -> Self {
        self.interval = interval;
        self
    }

    /// Observe one grouping key.
    pub fn observe(&mut self, key: &Key) {
        let prior = self.hist.observe(key);
        self.gee.observe_transition(prior);
        if self.interval.tick() {
            let new = mle_estimate(&self.hist, self.input_size);
            self.interval.feedback(self.mle_cache, new);
            self.mle_cache = new;
        }
    }

    /// Observe `n` occurrences of a grouping key at once (weighted
    /// observation, e.g. from a join's derived output histogram). Counts as
    /// a single tick of the MLE recomputation interval.
    pub fn observe_n(&mut self, key: &Key, n: u64) {
        if n == 0 {
            return;
        }
        let prior = self.hist.observe_n(key, n);
        self.gee.observe_transition_n(prior, n);
        if self.interval.tick() {
            let new = mle_estimate(&self.hist, self.input_size);
            self.interval.feedback(self.mle_cache, new);
            self.mle_cache = new;
        }
    }

    /// Which estimator the `γ²` rule currently selects.
    pub fn choice(&self) -> EstimatorChoice {
        choose_estimator(self.hist.gamma_squared(), self.tau)
    }

    /// Current skew measure `γ²`.
    pub fn gamma_squared(&self) -> f64 {
        self.hist.gamma_squared()
    }

    /// The group-count estimate from the currently chosen estimator.
    ///
    /// Once the whole input has been seen this is the exact group count
    /// (both estimators converge, and the hashing/sorting phase has then
    /// literally enumerated the groups).
    pub fn estimate(&self) -> f64 {
        if self.seen() >= self.input_size {
            return self.hist.distinct() as f64;
        }
        match self.choice() {
            EstimatorChoice::Gee => self.gee.estimate(),
            EstimatorChoice::Mle => {
                // Between recomputations the cache may lag behind newly seen
                // groups; the observed distinct count is a hard lower bound.
                self.mle_cache.max(self.hist.distinct() as f64)
            }
        }
    }

    /// The GEE estimate regardless of the chooser.
    pub fn gee_estimate(&self) -> f64 {
        self.gee.estimate()
    }

    /// A freshly recomputed MLE estimate regardless of the chooser (does
    /// not consult the cache; costs O(#frequency classes)).
    pub fn mle_estimate_fresh(&self) -> f64 {
        mle_estimate(&self.hist, self.input_size)
    }

    /// Groups actually seen so far.
    pub fn groups_seen(&self) -> u64 {
        self.hist.distinct()
    }

    /// Tuples observed so far.
    pub fn seen(&self) -> u64 {
        self.hist.total()
    }

    /// The underlying frequency histogram.
    pub fn histogram(&self) -> &FreqHist {
        &self.hist
    }

    /// Revise the input size (e.g. refined upstream estimate).
    pub fn set_input_size(&mut self, input_size: u64) {
        self.input_size = input_size;
        self.gee.set_input_size(input_size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn feed(tracker: &mut DistinctTracker, stream: &[i64]) {
        for &v in stream {
            tracker.observe(&Key::Int(v));
        }
    }

    #[test]
    fn exact_after_full_input() {
        let stream: Vec<i64> = (0..1000).map(|i| i % 37).collect();
        let mut t = DistinctTracker::new(stream.len() as u64);
        feed(&mut t, &stream);
        assert_eq!(t.estimate(), 37.0);
        assert_eq!(t.groups_seen(), 37);
        assert_eq!(t.seen(), 1000);
    }

    #[test]
    fn chooser_switches_with_skew() {
        // Low-skew stream → MLE
        let uniform: Vec<i64> = (0..2000).map(|i| (i * 7919) % 200).collect();
        let mut t = DistinctTracker::new(10_000);
        feed(&mut t, &uniform);
        assert_eq!(t.choice(), EstimatorChoice::Mle);
        // High-skew stream → GEE
        let mut skewed = vec![0i64; 5000];
        skewed.extend(1..100);
        let mut t = DistinctTracker::new(50_000);
        feed(&mut t, &skewed);
        assert_eq!(t.choice(), EstimatorChoice::Gee);
    }

    #[test]
    fn mle_path_reasonable_on_uniform_random() {
        let mut rng = StdRng::seed_from_u64(7);
        let input: Vec<i64> = (0..20_000).map(|_| rng.random_range(0..500)).collect();
        let mut t = DistinctTracker::new(input.len() as u64);
        feed(&mut t, &input[..4000]);
        assert_eq!(t.choice(), EstimatorChoice::Mle);
        let est = t.estimate();
        assert!(
            (400.0..=600.0).contains(&est),
            "expected ≈500 groups from 20% sample, got {est}"
        );
    }

    #[test]
    fn gee_path_reasonable_on_high_skew() {
        // Zipf-ish: value v appears ~ 1/(v+1)² → heavy skew.
        let mut input = Vec::new();
        for v in 0..200i64 {
            let reps = (20_000.0 / ((v + 1) * (v + 1)) as f64).ceil() as usize;
            input.extend(std::iter::repeat_n(v, reps));
        }
        let mut rng = StdRng::seed_from_u64(3);
        use rand::seq::SliceRandom;
        input.shuffle(&mut rng);
        let n = input.len() as u64;
        let mut t = DistinctTracker::new(n);
        feed(&mut t, &input[..(n as usize / 5)]);
        assert_eq!(t.choice(), EstimatorChoice::Gee);
        let est = t.estimate();
        assert!(
            (100.0..=420.0).contains(&est),
            "expected order-of-200 groups, got {est}"
        );
    }

    #[test]
    fn estimate_never_below_groups_seen() {
        let stream: Vec<i64> = (0..500).collect(); // all distinct
        let mut t = DistinctTracker::new(5_000);
        for &v in &stream {
            t.observe(&Key::Int(v));
            assert!(t.estimate() >= t.groups_seen() as f64);
        }
    }

    #[test]
    fn set_input_size_propagates() {
        let mut t = DistinctTracker::new(10);
        feed(&mut t, &[1, 2, 3]);
        let before = t.gee_estimate();
        t.set_input_size(1000);
        assert!(t.gee_estimate() > before);
    }

    #[test]
    fn string_keys_supported() {
        let mut t = DistinctTracker::new(4);
        for s in ["a", "b", "a", "c"] {
            t.observe(&Key::from(s));
        }
        assert_eq!(t.estimate(), 3.0);
    }
}
