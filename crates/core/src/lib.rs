//! # The online estimation framework (the paper's contribution)
//!
//! This crate implements §4 of Mishra & Koudas, *"A Lightweight Online
//! Framework For Query Progress Indicators"* (ICDE 2007), as a standalone
//! library over abstract tuple/key streams — it has no dependency on the
//! execution engine, which *drives* these estimators from inside its
//! operators.
//!
//! ## Map from paper to modules
//!
//! | Paper | Module |
//! |---|---|
//! | §4.1 confidence bounds (`β = Z_α / 2√t`) | [`confidence`] |
//! | exact frequency histograms (`N_i` counts) + memory accounting (Table 2) | [`freq_hist`] |
//! | §4.1 basic two-stream estimator; §4.1.1–4.1.2 incremental `D_{t+1}` | [`join_est`] |
//! | §4.1 multi-attribute conditions (conjunction/disjunction) | [`multi_est`] |
//! | §4.1.4 Algorithm 1: pipeline push-down, same/different attributes, derived histograms | [`pipeline_est`] |
//! | §4.2 Algorithm 2: incremental GEE | [`gee`] |
//! | §4.2 MLE estimator | [`mle`] |
//! | §4.2 Algorithm 3: adaptive recomputation interval | [`interval`] |
//! | §4.2 `γ²` skew measure and online estimator choice | [`chooser`] |
//! | §4.2 composed distinct-value tracking | [`distinct`] |
//! | dne baseline (Chaudhuri et al.) | [`dne`] |
//! | byte baseline (Luo et al.) | [`byte`] |
//! | §3/§4.4 `getnext()` model of progress | [`gnm`] |

pub mod byte;
pub mod chooser;
pub mod confidence;
pub mod distinct;
pub mod dne;
pub mod freq_hist;
pub mod fx;
pub mod gee;
pub mod gnm;
pub mod interval;
pub mod join_est;
pub mod mle;
pub mod multi_est;
pub mod pipeline_est;

pub use chooser::{choose_estimator, EstimatorChoice, DEFAULT_TAU};
pub use confidence::{z_alpha, ConfidenceInterval, RunningMoments};
pub use distinct::DistinctTracker;
pub use freq_hist::FreqHist;
pub use gee::Gee;
pub use gnm::{PipelineProgress, PipelineState, ProgressSnapshot};
pub use join_est::{JoinKind, OnceJoinEstimator, ProbeFragment, SymmetricJoinEstimator};
pub use mle::mle_estimate;
pub use multi_est::{conjunction_key, DisjunctionJoinEstimator};
pub use pipeline_est::{AttrSource, JoinSpec, PipelineEstimator};

/// Which cardinality-refinement strategy an instrumented operator runs.
///
/// `Once` is the paper's framework ("online cardinality estimation");
/// `Dne` and `Byte` are the published baselines it is compared against;
/// `Off` disables estimation entirely (the overhead baseline of Tables 3/4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EstimationMode {
    /// No online estimation; optimizer estimates are used unchanged.
    Off,
    /// The paper's framework: estimation pushed into preprocessing phases.
    #[default]
    Once,
    /// Driver-node estimator of Chaudhuri et al. (ICDE 2004).
    Dne,
    /// Byte-model estimator of Luo et al. (SIGMOD 2004), approximated.
    Byte,
}

impl EstimationMode {
    /// All modes, in the order used by benchmark tables.
    pub const ALL: [EstimationMode; 4] = [
        EstimationMode::Off,
        EstimationMode::Once,
        EstimationMode::Dne,
        EstimationMode::Byte,
    ];

    /// Short label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            EstimationMode::Off => "off",
            EstimationMode::Once => "once",
            EstimationMode::Dne => "dne",
            EstimationMode::Byte => "byte",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            EstimationMode::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn default_mode_is_once() {
        assert_eq!(EstimationMode::default(), EstimationMode::Once);
    }
}
