//! The byte-model estimator baseline of Luo et al. (SIGMOD 2004),
//! approximated per its published qualitative behaviour.
//!
//! Luo et al. measure work as *bytes processed* at segment inputs/outputs
//! and refine the optimizer's cardinality estimate with a weighted average
//! that shifts from the optimizer estimate toward the observed
//! extrapolation as the segment's input is consumed. The paper under
//! reproduction characterizes it as: "the byte estimator imposes a weighted
//! average operation involving the original cardinality estimate, and so it
//! converges slowly to the correct answer" (§5.1.2), while sharing dne's
//! vulnerability to output clustered by hash partitioning or sorting.
//!
//! We implement exactly that published behaviour:
//!
//! ```text
//! c  = bytes_in_seen / bytes_in_total            (input progress)
//! E  = (1 − c) · E_opt + c · (rows_out_seen / c) (cardinality estimate)
//! ```
//!
//! Row counts are converted to bytes with fixed per-row widths, so the
//! estimator's internal arithmetic is in bytes as in the original
//! (DESIGN.md records this substitution).

/// Byte-model cardinality estimator for one operator.
#[derive(Debug, Clone, Copy)]
pub struct ByteEstimator {
    /// Total input bytes expected over the operator's lifetime.
    input_bytes_total: u64,
    /// Input bytes consumed so far.
    input_bytes_seen: u64,
    /// Output rows observed so far.
    output_rows_seen: u64,
    /// Bytes per input row (fixed-width model).
    input_row_bytes: u64,
    /// Optimizer's initial output-cardinality estimate.
    optimizer_estimate: f64,
}

impl ByteEstimator {
    /// New estimator from input size (rows), per-row byte widths and the
    /// optimizer's output estimate.
    pub fn new(input_rows_total: u64, input_row_bytes: u64, optimizer_estimate: f64) -> Self {
        let input_row_bytes = input_row_bytes.max(1);
        ByteEstimator {
            input_bytes_total: input_rows_total * input_row_bytes,
            input_bytes_seen: 0,
            output_rows_seen: 0,
            input_row_bytes,
            optimizer_estimate,
        }
    }

    /// Record `n` input rows consumed.
    pub fn observe_input_rows(&mut self, n: u64) {
        self.input_bytes_seen =
            (self.input_bytes_seen + n * self.input_row_bytes).min(self.input_bytes_total);
    }

    /// Record `n` output rows emitted.
    pub fn observe_output_rows(&mut self, n: u64) {
        self.output_rows_seen += n;
    }

    /// Input progress `c` in bytes (clamped to 1).
    pub fn input_fraction(&self) -> f64 {
        if self.input_bytes_total == 0 {
            1.0
        } else {
            (self.input_bytes_seen as f64 / self.input_bytes_total as f64).min(1.0)
        }
    }

    /// Current cardinality estimate: optimizer-anchored weighted average
    /// converging to the observed extrapolation (and to the exact count at
    /// `c = 1`). Never below the output already observed.
    pub fn estimate(&self) -> f64 {
        let c = self.input_fraction();
        if c <= 0.0 {
            return self.optimizer_estimate;
        }
        let extrapolated = self.output_rows_seen as f64 / c;
        let blended = (1.0 - c) * self.optimizer_estimate + c * extrapolated;
        blended.max(self.output_rows_seen as f64)
    }

    /// Output rows observed so far.
    pub fn output_seen(&self) -> u64 {
        self.output_rows_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_optimizer_estimate() {
        let e = ByteEstimator::new(1000, 64, 500.0);
        assert_eq!(e.estimate(), 500.0);
    }

    #[test]
    fn exact_at_full_input() {
        let mut e = ByteEstimator::new(100, 8, 9999.0);
        e.observe_input_rows(100);
        e.observe_output_rows(42);
        assert_eq!(e.estimate(), 42.0);
    }

    #[test]
    fn converges_slower_than_pure_extrapolation() {
        // Optimizer says 1000; truth is 100, output arriving uniformly.
        let mut e = ByteEstimator::new(1000, 10, 1000.0);
        e.observe_input_rows(100); // 10% consumed
        e.observe_output_rows(10); // uniform rate → extrapolates to 100
        let est = e.estimate();
        // pure extrapolation would say 100; byte still anchored near 1000
        assert!(est > 500.0, "byte should converge slowly, got {est}");
        // ... and by 90% it should be close to the truth
        e.observe_input_rows(800);
        e.observe_output_rows(80);
        let est = e.estimate();
        assert!((90.0..=250.0).contains(&est), "late estimate {est}");
    }

    #[test]
    fn weighted_average_formula() {
        let mut e = ByteEstimator::new(100, 1, 200.0);
        e.observe_input_rows(50);
        e.observe_output_rows(20);
        // c = 0.5: E = 0.5·200 + 0.5·(20/0.5) = 100 + 20 = 120
        assert!((e.estimate() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn never_below_observed_output() {
        let mut e = ByteEstimator::new(100, 1, 0.0);
        e.observe_input_rows(10);
        e.observe_output_rows(500);
        assert!(e.estimate() >= 500.0);
    }

    #[test]
    fn input_bytes_clamp_at_total() {
        let mut e = ByteEstimator::new(10, 4, 5.0);
        e.observe_input_rows(100); // overshoot clamps
        assert_eq!(e.input_fraction(), 1.0);
    }

    #[test]
    fn zero_row_bytes_clamped_to_one() {
        let e = ByteEstimator::new(10, 0, 5.0);
        assert!(e.input_bytes_total > 0);
    }
}
