//! The paper's MLE-based distinct-value estimator (§4.2).
//!
//! After observing `t` of `|T|` values, with `f_j` values seen exactly `j`
//! times, the maximum-likelihood estimate of each observed group's fraction
//! is `p̂ = j/t`. The expected number of groups that are unseen after `t`
//! draws but appear among the remaining `r = |T| − t` draws is approximated
//! over the observed groups:
//!
//! ```text
//! D_t = d_seen + Σ_j f_j · [ (1 − j/t)^t − (1 − j/t)^{t+r} ]
//! ```
//!
//! The estimate is monotone in the information observed and converges to the
//! true count as `t → |T|` (the bracketed term vanishes at `r = 0`). It
//! rarely overestimates but is prone to underestimation, and — unlike GEE —
//! works best on *low-skew* data; the chooser in [`crate::chooser`] picks
//! between them online.
//!
//! Unlike GEE the estimate cannot be maintained in O(1) per tuple; it is
//! recomputed from the count-of-counts profile (O(#distinct frequencies) =
//! O(√t) work) at the adaptive interval of
//! [`AdaptiveInterval`](crate::interval::AdaptiveInterval).

use crate::freq_hist::FreqHist;

/// Compute the MLE distinct-value estimate from a frequency histogram of the
/// first `t = hist.total()` values of a stream of size `input_size`.
///
/// Returns the observed distinct count when the stream is exhausted
/// (`t ≥ input_size`) and 0 for an empty histogram.
pub fn mle_estimate(hist: &FreqHist, input_size: u64) -> f64 {
    let t = hist.total();
    if t == 0 {
        return 0.0;
    }
    let d_seen = hist.distinct() as f64;
    if t >= input_size {
        return d_seen;
    }
    let r = (input_size - t) as f64;
    let tf = t as f64;
    let mut expected_new = 0.0;
    for (j, f_j) in hist.frequency_classes() {
        let q = 1.0 - j as f64 / tf; // (1 − p̂)
        if q <= 0.0 {
            continue; // a group occupying the whole sample contributes nothing
        }
        // (1−p̂)^t − (1−p̂)^{t+r}, computed in log space for stability.
        let lq = q.ln();
        let term = (tf * lq).exp() - ((tf + r) * lq).exp();
        expected_new += f_j as f64 * term;
    }
    d_seen + expected_new
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_types::Key;

    fn hist_of(stream: &[i64]) -> FreqHist {
        let mut h = FreqHist::new();
        for &v in stream {
            h.observe(&Key::Int(v));
        }
        h
    }

    #[test]
    fn empty_histogram_is_zero() {
        assert_eq!(mle_estimate(&FreqHist::new(), 100), 0.0);
    }

    #[test]
    fn exact_at_full_input() {
        let stream: Vec<i64> = (0..50).map(|i| i % 7).collect();
        let h = hist_of(&stream);
        assert_eq!(mle_estimate(&h, 50), 7.0);
        // also when input_size was an underestimate
        assert_eq!(mle_estimate(&h, 30), 7.0);
    }

    #[test]
    fn estimate_at_least_observed_distinct() {
        let stream = [1i64, 2, 3, 3];
        let h = hist_of(&stream);
        assert!(mle_estimate(&h, 100) >= h.distinct() as f64);
    }

    #[test]
    fn accurate_on_low_skew_data() {
        // Uniform over 100 groups, sample 20% of 5000 values: the MLE
        // estimator should land near 100 where GEE overshoots.
        let full: Vec<i64> = (0..5000).map(|i| (i * 7919) % 100).collect();
        let h = hist_of(&full[..1000]);
        let est = mle_estimate(&h, 5000);
        assert!(
            (90.0..=110.0).contains(&est),
            "expected ≈100 groups, got {est}"
        );
    }

    #[test]
    fn underestimates_rather_than_overestimates_on_sparse_tail() {
        // Many groups appear 0 or 1 times in the sample; MLE's documented
        // bias is downward.
        let full: Vec<i64> = (0..10_000).map(|i| (i * 6007) % 5000).collect();
        let h = hist_of(&full[..500]);
        let est = mle_estimate(&h, 10_000);
        assert!(est < 5500.0, "should not wildly overestimate, got {est}");
    }

    #[test]
    fn monotone_convergence_toward_truth() {
        // As t grows, the estimate should approach the true count.
        let full: Vec<i64> = (0..4000)
            .map(|i| (i * 2654435761u64 as i64) % 200)
            .collect();
        let errors: Vec<f64> = [200usize, 800, 2000, 4000]
            .iter()
            .map(|&t| {
                let h = hist_of(&full[..t]);
                (mle_estimate(&h, 4000) - 200.0).abs()
            })
            .collect();
        assert!(
            errors.last().unwrap() < &1e-9,
            "must be exact at full input: {errors:?}"
        );
        assert!(
            errors[0] >= errors[2],
            "error should shrink with more data: {errors:?}"
        );
    }

    #[test]
    fn single_dominant_group_contributes_nothing_new() {
        // One group occupies the whole sample: q = 0 branch.
        let h = hist_of(&[9i64; 10]);
        let est = mle_estimate(&h, 1000);
        assert_eq!(est, 1.0);
    }
}
