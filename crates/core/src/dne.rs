//! The driver-node estimator (dne) baseline of Chaudhuri et al.
//! (ICDE 2004), as described in §2/§5 of the paper.
//!
//! The *driver node* of a pipeline is the operator feeding tuples into it
//! (e.g. the probe-side scan of a hash join). The dne estimate for an
//! operator's output cardinality scales the output observed so far by the
//! inverse of the driver's progress:
//!
//! ```text
//! E = K_out / (K_driver / N_driver)
//! ```
//!
//! On randomly ordered input this has zero error in expectation — which is
//! why the paper *adopts* it for operators with no preprocessing phase
//! (selections, naive nested-loops joins). Its weakness, demonstrated in the
//! paper's Fig. 4, is that a hash join's output is observed *after*
//! partitioning has clustered equal keys together, so the "observed output
//! per driver tuple" rate fluctuates wildly under skew.

/// Driver-node cardinality estimator for one operator.
///
/// # Example
///
/// ```
/// use qprog_core::dne::DneEstimator;
///
/// let mut dne = DneEstimator::new(100, 42.0);
/// dne.observe_driver(25);
/// dne.observe_output(10);
/// assert_eq!(dne.estimate(), 40.0); // 10 outputs over 25% of the driver
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DneEstimator {
    /// Total driver input size `N_driver` (known or estimated).
    driver_total: u64,
    /// Driver tuples consumed so far `K_driver`.
    driver_seen: u64,
    /// Output tuples observed so far `K_out`.
    output_seen: u64,
    /// Optimizer estimate used until the driver makes progress.
    optimizer_estimate: f64,
}

impl DneEstimator {
    /// New estimator from the driver size and the optimizer's initial
    /// cardinality estimate for the operator.
    pub fn new(driver_total: u64, optimizer_estimate: f64) -> Self {
        DneEstimator {
            driver_total,
            driver_seen: 0,
            output_seen: 0,
            optimizer_estimate,
        }
    }

    /// Record `n` driver tuples consumed.
    pub fn observe_driver(&mut self, n: u64) {
        self.driver_seen += n;
    }

    /// Record `n` output tuples emitted.
    pub fn observe_output(&mut self, n: u64) {
        self.output_seen += n;
    }

    /// Driver progress fraction `K_driver / N_driver` (clamped to 1).
    pub fn driver_fraction(&self) -> f64 {
        if self.driver_total == 0 {
            1.0
        } else {
            (self.driver_seen as f64 / self.driver_total as f64).min(1.0)
        }
    }

    /// Current cardinality estimate: the optimizer estimate until the
    /// driver starts, then `K_out` scaled by driver progress. Never below
    /// the output already observed.
    pub fn estimate(&self) -> f64 {
        let c = self.driver_fraction();
        if c <= 0.0 {
            return self.optimizer_estimate.max(self.output_seen as f64);
        }
        (self.output_seen as f64 / c).max(self.output_seen as f64)
    }

    /// Hard bounds on the final cardinality: at least the output observed;
    /// once the driver is exhausted, exactly the output observed.
    pub fn bounds(&self) -> (f64, f64) {
        if self.driver_seen >= self.driver_total {
            (self.output_seen as f64, self.output_seen as f64)
        } else {
            (self.output_seen as f64, f64::INFINITY)
        }
    }

    /// Output tuples observed so far.
    pub fn output_seen(&self) -> u64 {
        self.output_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uses_optimizer_estimate_before_driver_starts() {
        let e = DneEstimator::new(100, 42.0);
        assert_eq!(e.estimate(), 42.0);
    }

    #[test]
    fn scales_output_by_driver_progress() {
        let mut e = DneEstimator::new(100, 10.0);
        e.observe_driver(25);
        e.observe_output(50);
        // 50 outputs from 25% of the driver → 200 expected
        assert!((e.estimate() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn exact_when_driver_exhausted() {
        let mut e = DneEstimator::new(10, 99.0);
        e.observe_driver(10);
        e.observe_output(7);
        assert_eq!(e.estimate(), 7.0);
        assert_eq!(e.bounds(), (7.0, 7.0));
    }

    #[test]
    fn never_below_observed_output() {
        let mut e = DneEstimator::new(1000, 1.0);
        e.observe_driver(999);
        e.observe_output(5000);
        assert!(e.estimate() >= 5000.0);
        let (lo, hi) = e.bounds();
        assert_eq!(lo, 5000.0);
        assert_eq!(hi, f64::INFINITY);
    }

    #[test]
    fn fluctuates_on_clustered_output() {
        // The pathology of Fig. 4: all matching tuples clustered at the
        // start of the partitionwise output.
        let mut e = DneEstimator::new(100, 0.0);
        // first 10 driver tuples each produce 10 outputs
        e.observe_driver(10);
        e.observe_output(100);
        let early = e.estimate(); // extrapolates to 1000
                                  // remaining 90 driver tuples produce nothing
        e.observe_driver(90);
        let late = e.estimate();
        assert!(early > 5.0 * late, "early {early} vs late {late}");
        assert_eq!(late, 100.0);
    }

    #[test]
    fn zero_driver_edge_case() {
        let mut e = DneEstimator::new(0, 3.0);
        assert_eq!(e.driver_fraction(), 1.0);
        e.observe_output(2);
        assert_eq!(e.estimate(), 2.0);
    }
}
