//! The GEE distinct-value estimator, maintained incrementally
//! (§4.2, Algorithm 2 of the paper; estimator due to Charikar et al.).
//!
//! For a random sample of `t` values from a stream of size `|T|`,
//!
//! ```text
//! D_t = √(|T|/t) · f₁ + Σ_{j≥2} f_j
//! ```
//!
//! where `f_j` is the number of values occurring exactly `j` times in the
//! sample. Algorithm 2 maintains `S₁ = f₁` and `Sₙ = Σ_{j≥2} f_j` in O(1)
//! per tuple from the *count transition* of the observed value, so the
//! estimate is available after every tuple at negligible cost.

/// Incrementally maintained GEE estimator state.
///
/// The caller owns the frequency histogram (usually a shared
/// [`FreqHist`](crate::FreqHist)) and feeds this struct the pre-increment
/// count of each observed value — exactly the `N_i` transition Algorithm 2
/// consumes.
#[derive(Debug, Clone, Copy)]
pub struct Gee {
    /// `S₁`: number of values seen exactly once.
    s1: u64,
    /// `Sₙ`: number of values seen more than once.
    sn: u64,
    /// Tuples observed (`t`).
    t: u64,
    /// Stream size `|T|` (known or estimated).
    input_size: u64,
}

impl Gee {
    /// New estimator for a stream of (known or estimated) size `|T|`.
    pub fn new(input_size: u64) -> Self {
        Gee {
            s1: 0,
            sn: 0,
            t: 0,
            input_size,
        }
    }

    /// Algorithm 2's update: observe a value whose count *before* this
    /// observation was `prior_count`.
    pub fn observe_transition(&mut self, prior_count: u64) {
        match prior_count {
            0 => self.s1 += 1,
            1 => {
                self.s1 -= 1;
                self.sn += 1;
            }
            _ => {}
        }
        self.t += 1;
    }

    /// Bulk form of [`observe_transition`](Self::observe_transition):
    /// `n` occurrences of a value whose count before them was
    /// `prior_count`. Used when folding weighted (derived-histogram)
    /// observations, e.g. aggregation push-down into a join. No-op for
    /// `n == 0`.
    pub fn observe_transition_n(&mut self, prior_count: u64, n: u64) {
        if n == 0 {
            return;
        }
        let after = prior_count + n;
        if prior_count == 0 && after == 1 {
            self.s1 += 1;
        } else if prior_count == 0 {
            self.sn += 1;
        } else if prior_count == 1 {
            self.s1 -= 1;
            self.sn += 1;
        }
        self.t += n;
    }

    /// Revise `|T|` (e.g. when the input size was itself an estimate).
    pub fn set_input_size(&mut self, input_size: u64) {
        self.input_size = input_size;
    }

    /// Tuples observed so far.
    pub fn seen(&self) -> u64 {
        self.t
    }

    /// `S₁`, the current singleton count.
    pub fn singletons(&self) -> u64 {
        self.s1
    }

    /// Current estimate `D_t = √(|T|/t)·S₁ + Sₙ`. Returns 0 before any
    /// observation.
    pub fn estimate(&self) -> f64 {
        if self.t == 0 {
            return 0.0;
        }
        let scale = (self.input_size as f64 / self.t as f64).max(1.0).sqrt();
        scale * self.s1 as f64 + self.sn as f64
    }

    /// GEE's guaranteed bounds: the number of distinct values lies in
    /// `[S₁ + Sₙ, (|T|/t)·S₁ + Sₙ]` (the estimate is their geometric mean
    /// in the `S₁` term).
    pub fn bounds(&self) -> (f64, f64) {
        if self.t == 0 {
            return (0.0, self.input_size as f64);
        }
        let scale = (self.input_size as f64 / self.t as f64).max(1.0);
        (
            (self.s1 + self.sn) as f64,
            scale * self.s1 as f64 + self.sn as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq_hist::FreqHist;
    use qprog_types::Key;

    /// Drive a GEE from a stream through a shared histogram.
    fn run_gee(stream: &[i64], input_size: u64) -> (Gee, FreqHist) {
        let mut hist = FreqHist::new();
        let mut gee = Gee::new(input_size);
        for &v in stream {
            let prior = hist.observe(&Key::Int(v));
            gee.observe_transition(prior);
        }
        (gee, hist)
    }

    #[test]
    fn matches_closed_form() {
        let stream = [1i64, 1, 2, 3, 3, 3, 4];
        let (gee, hist) = run_gee(&stream, 70);
        // f1 = 2 (values 2, 4); f_{≥2} values: 1, 3 → Sn = 2
        assert_eq!(gee.singletons(), 2);
        let expect = (70.0f64 / 7.0).sqrt() * 2.0 + 2.0;
        assert!((gee.estimate() - expect).abs() < 1e-12);
        // cross-check S1/Sn against the histogram profile
        assert_eq!(gee.singletons(), hist.singletons());
    }

    #[test]
    fn exact_when_sample_is_whole_input() {
        let stream: Vec<i64> = (0..100).map(|i| i % 17).collect();
        let (gee, hist) = run_gee(&stream, stream.len() as u64);
        assert_eq!(gee.estimate().round() as u64, hist.distinct());
        assert_eq!(hist.distinct(), 17);
    }

    #[test]
    fn all_distinct_scales_up() {
        // 10 singletons from a 1000-value stream → estimate √(1000/10)·10 = 100
        let stream: Vec<i64> = (0..10).collect();
        let (gee, _) = run_gee(&stream, 1000);
        assert!((gee.estimate() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn bounds_bracket_estimate() {
        let stream = [1i64, 1, 2, 3, 4, 4, 5];
        let (gee, _) = run_gee(&stream, 700);
        let (lo, hi) = gee.bounds();
        assert!(lo <= gee.estimate() && gee.estimate() <= hi);
        // lower bound is exactly the observed distinct count
        assert_eq!(lo, 5.0);
    }

    #[test]
    fn empty_and_oversampled_edge_cases() {
        let gee = Gee::new(100);
        assert_eq!(gee.estimate(), 0.0);
        assert_eq!(gee.bounds(), (0.0, 100.0));
        // t can exceed |T| when the size was an underestimate: scale clamps at 1
        let stream: Vec<i64> = (0..20).collect();
        let (gee, _) = run_gee(&stream, 10);
        assert_eq!(gee.estimate().round() as u64, 20);
    }

    #[test]
    fn set_input_size_rescales() {
        let stream = [1i64, 2, 3];
        let (mut gee, _) = run_gee(&stream, 3);
        assert!((gee.estimate() - 3.0).abs() < 1e-12);
        gee.set_input_size(300);
        assert!((gee.estimate() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn known_overestimation_on_low_skew_small_sample() {
        // The failure mode motivating the MLE estimator (§4.2): uniform data
        // with many small groups — GEE scales singletons up too aggressively.
        // ~1000 distinct values uniform in a 10_000-value stream; sample 500.
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let full: Vec<i64> = (0..10_000).map(|_| rng.random_range(0..1000)).collect();
        let (gee, hist) = run_gee(&full[..500], 10_000);
        assert!(hist.distinct() < 500);
        // GEE overestimates the true 1000 groups here.
        assert!(
            gee.estimate() > 1200.0,
            "expected characteristic overestimate, got {}",
            gee.estimate()
        );
    }
}
