//! A minimal Fx-style hasher (the rustc/Firefox multiply-rotate hash).
//!
//! The estimation framework touches a hash table for *every* tuple of every
//! build input; SipHash's per-byte cost is measurable there. The hashed
//! data are our own join keys (not adversarial input), so the classic
//! `FxHasher` construction is appropriate and keeps the framework
//! lightweight without external dependencies.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` alias using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher; state mixes each written word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_types::Key;

    #[test]
    fn deterministic_and_discriminating() {
        let h = |k: &Key| {
            let mut hasher = FxHasher::default();
            std::hash::Hash::hash(k, &mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&Key::Int(1)), h(&Key::Int(1)));
        assert_ne!(h(&Key::Int(1)), h(&Key::Int(2)));
        assert_ne!(h(&Key::from("a")), h(&Key::from("b")));
        assert_ne!(h(&Key::Int(1)), h(&Key::from("1")));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<Key, u64> = FxHashMap::default();
        for i in 0..10_000i64 {
            *m.entry(Key::Int(i % 997)).or_default() += 1;
        }
        assert_eq!(m.len(), 997);
        assert_eq!(m[&Key::Int(0)], 11);
    }

    #[test]
    fn string_tail_handling() {
        let h = |s: &str| {
            let mut hasher = FxHasher::default();
            hasher.write(s.as_bytes());
            hasher.finish()
        };
        // strings sharing an 8-byte prefix must still differ
        assert_ne!(h("abcdefgh1"), h("abcdefgh2"));
        assert_ne!(h("abcdefgh"), h("abcdefgh\0"));
        assert_ne!(h(""), h("\0"));
    }
}
