//! Push-down estimation for join pipelines (§4.1.4, Algorithm 1).
//!
//! In a pipeline of hash joins, every build input is fully consumed before
//! the lowest probe input streams, and the builds happen **top-down** (the
//! top join's build is read first, then probing it pulls from the next join
//! down, triggering its build, and so on). Algorithm 1 exploits this order:
//! every join's cardinality estimation is pushed down to the *lowest* probe
//! pass, so all joins in the pipeline converge to exact cardinalities by the
//! time that pass completes — long before upper joins have emitted anything.
//!
//! Three published cases, all handled here:
//!
//! - **Same attribute** (§4.1.4.1): every join probes with the same key the
//!   lowest probe tuple carries; per-join counts multiply
//!   (`N_i^A · N_i^B · …`).
//! - **Different attributes, Case 1** (§4.1.4.2): an upper join's probe key
//!   is a *different column of the lowest probe relation*; each join's
//!   histogram is probed with its own column of the probe tuple.
//! - **Different attributes, Case 2** (§4.1.4.2): an upper join's probe key
//!   originates in the *build relation of a lower join*. While that lower
//!   build streams, the upper histogram is **translated**: for each lower
//!   build tuple `b`, `derived[b.build_key] += upper[b.carried_key]`,
//!   folding the lower join's multiplicity into a histogram that the lowest
//!   probe can look up directly. The translation cascades: if the lower
//!   join's own probe key also comes from a deeper build relation, the
//!   derived histogram is re-translated at *that* build, until every
//!   histogram is keyed by a column of the lowest probe relation. This is
//!   exactly the `histList`/`joinList` bookkeeping of the paper's
//!   Algorithm 1.
//!
//! Join indices are **bottom-up**: join 0 is the lowest (its probe input is
//! the driving stream `C`), join `n−1` is the top. Builds must be fed in
//! execution order, i.e. top-down (`n−1`, `n−2`, …, `0`).

use qprog_types::{Key, QError, QResult, Row};

use crate::confidence::{ConfidenceInterval, RunningMoments};
use crate::freq_hist::FreqHist;

/// Where a join's probe-side key comes from, relative to the pipeline's
/// driving probe stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrSource {
    /// A column of the lowest probe relation `C` (same-attribute chains and
    /// Case 1).
    Probe {
        /// Column index within the probe tuple.
        col: usize,
    },
    /// A column of the build relation of a lower join (Case 2).
    Build {
        /// Index of the lower join whose build relation carries the key.
        join: usize,
        /// Column index within that build relation's tuples.
        col: usize,
    },
}

/// Static description of one join in the pipeline.
#[derive(Debug, Clone, Copy)]
pub struct JoinSpec {
    /// Column index of the join key within this join's *build* tuples.
    pub build_attr_col: usize,
    /// Where this join's probe-side key originates.
    pub probe_attr: AttrSource,
}

#[derive(Debug)]
struct JoinEstState {
    /// The join's (possibly derived) histogram.
    hist: FreqHist,
    /// Current key source for `hist`; estimation can start once every
    /// state's source is `Probe`.
    source: AttrSource,
    /// Σ of per-probe-tuple output contributions for this join.
    sum: f64,
    moments: RunningMoments,
    /// Joins whose multiplicity is folded into `hist` (this join's
    /// derivation chain) — used to assemble multiplicative factor lists.
    chain: Vec<usize>,
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Phase {
    /// Waiting for build `usize` to start (counts down from n−1).
    AwaitBuild(usize),
    /// Build `usize` streaming.
    Building(usize),
    /// All builds done; probe tuples streaming.
    Probing,
}

/// Online estimator for every join in a hash- or sort-merge-join pipeline.
///
/// # Example
///
/// Two hash joins on the same attribute; builds are fed top-down, then the
/// probe stream converges both estimates:
///
/// ```
/// use qprog_core::pipeline_est::PipelineEstimator;
/// use qprog_types::row;
///
/// let mut est = PipelineEstimator::same_attribute(2, 0, 0, 2).unwrap();
/// est.feed_build(1, [row![1i64], row![1i64]].iter()).unwrap(); // upper build
/// est.feed_build(0, [row![1i64]].iter()).unwrap();             // lower build
/// est.observe_probe(&row![1i64]).unwrap();
/// est.observe_probe(&row![2i64]).unwrap();
/// assert_eq!(est.estimates(), vec![1.0, 2.0]); // lower, upper
/// ```
#[derive(Debug)]
pub struct PipelineEstimator {
    specs: Vec<JoinSpec>,
    states: Vec<JoinEstState>,
    /// Translations in flight during the current build: `(join, new_hist)`.
    pending: Vec<(usize, FreqHist)>,
    /// Per-join multiplicative factor lists, fixed at probe start:
    /// `(join supplying the histogram, probe column for the lookup)`.
    factors: Vec<Vec<(usize, usize)>>,
    /// Distinct factor pairs across all lists; each is looked up once per
    /// probe tuple (factor lists overlap heavily in deep pipelines, so the
    /// naive per-join lookup is quadratic in the chain length).
    uniq_factors: Vec<(usize, usize)>,
    /// `factor_idx[u][k]`: position in `uniq_factors` of `factors[u][k]`.
    factor_idx: Vec<Vec<usize>>,
    /// Per-tuple scratch of `uniq_factors` histogram counts.
    counts: Vec<u64>,
    probe_size: u64,
    t: u64,
    phase: Phase,
}

impl PipelineEstimator {
    /// Create an estimator for a pipeline of `specs.len()` joins driven by a
    /// probe stream of (known or estimated) size `probe_size`.
    ///
    /// Validation: every `Build` source must point at a strictly lower join,
    /// and no two joins may draw their probe key from the same lower join's
    /// build relation (correlated folds are out of the paper's scope and
    /// would double-count).
    pub fn new(specs: Vec<JoinSpec>, probe_size: u64) -> QResult<Self> {
        if specs.is_empty() {
            return Err(QError::estimation(
                "pipeline must contain at least one join",
            ));
        }
        let mut used_sources = std::collections::HashSet::new();
        for (u, s) in specs.iter().enumerate() {
            if let AttrSource::Build { join, .. } = s.probe_attr {
                if join >= u {
                    return Err(QError::estimation(format!(
                        "join {u} draws its probe key from join {join}, which is not below it"
                    )));
                }
                if !used_sources.insert(join) {
                    return Err(QError::estimation(format!(
                        "two joins draw probe keys from the build relation of join {join}; \
                         correlated folds are unsupported"
                    )));
                }
            }
        }
        let states = specs
            .iter()
            .map(|s| JoinEstState {
                hist: FreqHist::new(),
                source: s.probe_attr,
                sum: 0.0,
                moments: RunningMoments::new(),
                chain: Vec::new(),
            })
            .collect();
        let n = specs.len();
        Ok(PipelineEstimator {
            specs,
            states,
            pending: Vec::new(),
            factors: Vec::new(),
            uniq_factors: Vec::new(),
            factor_idx: Vec::new(),
            counts: Vec::new(),
            probe_size,
            t: 0,
            phase: Phase::AwaitBuild(n - 1),
        })
    }

    /// Convenience constructor for a chain of hash joins **on the same
    /// attribute** (§4.1.4.1): `n_joins` joins all probing with probe
    /// column `probe_col`; build key at column `build_col` of each build
    /// relation.
    pub fn same_attribute(
        n_joins: usize,
        build_col: usize,
        probe_col: usize,
        probe_size: u64,
    ) -> QResult<Self> {
        PipelineEstimator::new(
            vec![
                JoinSpec {
                    build_attr_col: build_col,
                    probe_attr: AttrSource::Probe { col: probe_col },
                };
                n_joins
            ],
            probe_size,
        )
    }

    /// Number of joins in the pipeline.
    pub fn num_joins(&self) -> usize {
        self.specs.len()
    }

    /// Begin feeding the build relation of `join`. Builds must be fed
    /// top-down (`n−1` first, `0` last).
    pub fn begin_build(&mut self, join: usize) -> QResult<()> {
        match self.phase {
            Phase::AwaitBuild(expect) if expect == join => {}
            _ => {
                return Err(QError::estimation(format!(
                    "begin_build({join}) out of order (phase {:?}); builds are fed top-down",
                    self.phase
                )))
            }
        }
        // Stage translations for every histogram currently keyed by a
        // column of this build relation.
        self.pending = self
            .states
            .iter()
            .enumerate()
            .filter(|(_, st)| matches!(st.source, AttrSource::Build { join: j, .. } if j == join))
            .map(|(u, _)| (u, FreqHist::new()))
            .collect();
        self.phase = Phase::Building(join);
        Ok(())
    }

    /// Feed one build tuple of the current build relation.
    pub fn build_tuple(&mut self, join: usize, row: &Row) -> QResult<()> {
        self.build_tuple_with(join, |col| row.key(col))
    }

    /// [`build_tuple`](Self::build_tuple) with the tuple supplied as a
    /// column-keyed extractor, so vectorized callers feed directly from a
    /// column batch without materializing a [`Row`].
    pub fn build_tuple_with(
        &mut self,
        join: usize,
        key_of: impl Fn(usize) -> QResult<Key>,
    ) -> QResult<()> {
        qprog_fault::fail_point!("core/pipeline/build_tuple");
        if self.phase != Phase::Building(join) {
            return Err(QError::estimation(format!(
                "build_tuple({join}) outside its build phase ({:?})",
                self.phase
            )));
        }
        let build_key = key_of(self.specs[join].build_attr_col)?;
        // Translate pending upper histograms (Case 2 fold).
        for (u, new_hist) in &mut self.pending {
            let AttrSource::Build { col, .. } = self.states[*u].source else {
                unreachable!("pending entries are Build-sourced by construction");
            };
            let carried = key_of(col)?;
            if build_key.is_null() || carried.is_null() {
                continue;
            }
            let mult = self.states[*u].hist.count(&carried);
            new_hist.observe_n(&build_key, mult);
        }
        // Raw count for this join's own histogram.
        if !build_key.is_null() {
            self.states[join].hist.observe(&build_key);
        }
        Ok(())
    }

    /// Finish the current build relation, committing translations.
    pub fn end_build(&mut self, join: usize) -> QResult<()> {
        if self.phase != Phase::Building(join) {
            return Err(QError::estimation(format!(
                "end_build({join}) outside its build phase ({:?})",
                self.phase
            )));
        }
        let new_source = self.specs[join].probe_attr;
        for (u, new_hist) in std::mem::take(&mut self.pending) {
            let st = &mut self.states[u];
            st.hist = new_hist;
            st.source = new_source;
            // The fold subsumes `join`'s multiplicity; if the cascade
            // continues (new_source is Build-sourced), deeper joins are
            // pushed when their builds translate this histogram again.
            st.chain.push(join);
        }
        self.phase = if join == 0 {
            self.compute_factors()?;
            Phase::Probing
        } else {
            Phase::AwaitBuild(join - 1)
        };
        Ok(())
    }

    /// Feed the build relation of `join` from an iterator, bracketing with
    /// [`begin_build`](Self::begin_build)/[`end_build`](Self::end_build).
    pub fn feed_build<'a>(
        &mut self,
        join: usize,
        rows: impl IntoIterator<Item = &'a Row>,
    ) -> QResult<()> {
        self.begin_build(join)?;
        for r in rows {
            self.build_tuple(join, r)?;
        }
        self.end_build(join)
    }

    fn compute_factors(&mut self) -> QResult<()> {
        let n = self.specs.len();
        for st in &self.states {
            if let AttrSource::Build { .. } = st.source {
                return Err(QError::internal(
                    "histogram still build-sourced after all builds completed",
                ));
            }
        }
        self.factors = (0..n)
            .map(|u| {
                // Joins ≤ u not folded into any histogram of a join ≤ u.
                let mut folded = vec![false; u + 1];
                for w in 0..=u {
                    for &c in &self.states[w].chain {
                        folded[c] = true;
                    }
                }
                (0..=u)
                    .filter(|&w| !folded[w])
                    .map(|w| {
                        let AttrSource::Probe { col } = self.states[w].source else {
                            unreachable!("checked above");
                        };
                        (w, col)
                    })
                    .collect()
            })
            .collect();
        // Dedup the factor pairs so each (histogram, column) is looked up
        // once per probe tuple no matter how many joins it feeds.
        let mut uniq: Vec<(usize, usize)> = Vec::new();
        self.factor_idx = self
            .factors
            .iter()
            .map(|list| {
                list.iter()
                    .map(|&pair| {
                        uniq.iter().position(|&q| q == pair).unwrap_or_else(|| {
                            uniq.push(pair);
                            uniq.len() - 1
                        })
                    })
                    .collect()
            })
            .collect();
        self.counts = vec![0; uniq.len()];
        self.uniq_factors = uniq;
        Ok(())
    }

    /// Whether all builds are done and probe tuples may stream.
    pub fn ready_to_probe(&self) -> bool {
        self.phase == Phase::Probing
    }

    /// Observe one tuple of the lowest probe stream; updates every join's
    /// estimate. This is the per-tuple hot path of the framework — it does
    /// not allocate.
    pub fn observe_probe(&mut self, row: &Row) -> QResult<()> {
        self.observe_probe_with(|col| row.key(col))
    }

    /// [`observe_probe`](Self::observe_probe) with the tuple supplied as a
    /// column-keyed extractor, so vectorized callers feed directly from a
    /// column batch without materializing a [`Row`].
    pub fn observe_probe_with(&mut self, key_of: impl Fn(usize) -> QResult<Key>) -> QResult<()> {
        qprog_fault::fail_point!("core/pipeline/observe_probe");
        if self.phase != Phase::Probing {
            return Err(QError::estimation(format!(
                "observe_probe before builds completed ({:?})",
                self.phase
            )));
        }
        self.t += 1;
        // Histogram count of every distinct factor pair, once per tuple.
        for i in 0..self.uniq_factors.len() {
            let (w, col) = self.uniq_factors[i];
            let key = key_of(col)?;
            self.counts[i] = if key.is_null() {
                0
            } else {
                self.states[w].hist.count(&key)
            };
        }
        let n = self.specs.len();
        for u in 0..n {
            let mut contribution: u128 = 1;
            for &i in &self.factor_idx[u] {
                contribution = contribution.saturating_mul(self.counts[i] as u128);
                if contribution == 0 {
                    break;
                }
            }
            let st = &mut self.states[u];
            st.sum += contribution as f64;
            st.moments.push(contribution as f64);
        }
        Ok(())
    }

    /// Probe tuples observed so far.
    pub fn probe_seen(&self) -> u64 {
        self.t
    }

    /// Revise the probe stream size (e.g. once the stream is exhausted and
    /// the exact count is known).
    pub fn set_probe_size(&mut self, probe_size: u64) {
        self.probe_size = probe_size;
    }

    /// Fraction of the probe stream observed (clamped to 1).
    pub fn probe_fraction(&self) -> f64 {
        if self.probe_size == 0 {
            1.0
        } else {
            (self.t as f64 / self.probe_size as f64).min(1.0)
        }
    }

    /// Current cardinality estimate for `join` (0 before any probe tuple).
    pub fn estimate(&self, join: usize) -> f64 {
        if self.t == 0 {
            return 0.0;
        }
        self.states[join].sum / self.t as f64 * self.probe_size as f64
    }

    /// Estimates for every join, bottom-up.
    pub fn estimates(&self) -> Vec<f64> {
        (0..self.specs.len()).map(|u| self.estimate(u)).collect()
    }

    /// CLT confidence interval for `join`'s estimate.
    pub fn confidence_interval(&self, join: usize, z: f64) -> ConfidenceInterval {
        if self.converged() {
            return ConfidenceInterval::around(self.estimate(join), 0.0);
        }
        let ci = self.states[join].moments.mean_ci(z);
        ConfidenceInterval {
            estimate: self.estimate(join),
            lo: ci.lo * self.probe_size as f64,
            hi: ci.hi * self.probe_size as f64,
        }
    }

    /// Whether the full probe stream has been observed (estimates exact).
    pub fn converged(&self) -> bool {
        self.phase == Phase::Probing && self.t >= self.probe_size
    }

    /// This join's current histogram (e.g. for aggregation push-down).
    pub fn histogram(&self, join: usize) -> &FreqHist {
        &self.states[join].hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_types::row;

    fn int_rows(cols: &[&[i64]]) -> Vec<Row> {
        // cols is column-major: cols[c][r]
        let n = cols[0].len();
        (0..n)
            .map(|r| Row::new(cols.iter().map(|c| c[r].into()).collect()))
            .collect()
    }

    /// Brute-force join sizes of a left-deep pipeline for cross-checking:
    /// stream C through joins bottom-up, materializing intermediate tuples
    /// as vectors of all columns.
    fn brute_force(
        probe: &[Row],
        builds: &[Vec<Row>], // bottom-up
        specs: &[JoinSpec],
    ) -> Vec<u64> {
        let mut sizes = Vec::new();
        // each intermediate tuple = (probe row index, chosen build rows)
        let mut current: Vec<(usize, Vec<usize>)> =
            (0..probe.len()).map(|i| (i, Vec::new())).collect();
        for (u, spec) in specs.iter().enumerate() {
            let mut next = Vec::new();
            for (pi, chosen) in &current {
                let probe_key = match spec.probe_attr {
                    AttrSource::Probe { col } => probe[*pi].key(col).unwrap(),
                    AttrSource::Build { join, col } => builds[join][chosen[join]].key(col).unwrap(),
                };
                if probe_key.is_null() {
                    continue;
                }
                for (bi, brow) in builds[u].iter().enumerate() {
                    let bkey = brow.key(spec.build_attr_col).unwrap();
                    if !bkey.is_null() && bkey == probe_key {
                        let mut c = chosen.clone();
                        c.push(bi);
                        next.push((*pi, c));
                    }
                }
            }
            sizes.push(next.len() as u64);
            current = next;
        }
        sizes
    }

    fn run_pipeline(probe: &[Row], builds: &[Vec<Row>], specs: Vec<JoinSpec>) -> PipelineEstimator {
        let mut est = PipelineEstimator::new(specs, probe.len() as u64).unwrap();
        for j in (0..builds.len()).rev() {
            est.feed_build(j, builds[j].iter()).unwrap();
        }
        assert!(est.ready_to_probe());
        for r in probe {
            est.observe_probe(r).unwrap();
        }
        est
    }

    #[test]
    fn single_join_matches_once_estimator() {
        let build = int_rows(&[&[1, 1, 2, 3]]);
        let probe = int_rows(&[&[1, 2, 2, 9]]);
        let specs = vec![JoinSpec {
            build_attr_col: 0,
            probe_attr: AttrSource::Probe { col: 0 },
        }];
        let est = run_pipeline(&probe, std::slice::from_ref(&build), specs.clone());
        let truth = brute_force(&probe, &[build], &specs);
        assert!(est.converged());
        assert_eq!(est.estimate(0).round() as u64, truth[0]);
        assert_eq!(truth[0], 4); // 1→2 matches, 2→1 each, 9→0
    }

    #[test]
    fn same_attribute_three_joins_exact_at_convergence() {
        // A ⋈ (B ⋈ (B0 ⋈ C)) all on column 0
        let b0 = int_rows(&[&[1, 1, 2, 5, 5, 5]]);
        let b1 = int_rows(&[&[1, 2, 2, 5]]);
        let b2 = int_rows(&[&[1, 5, 5, 7]]);
        let probe = int_rows(&[&[1, 2, 5, 5, 7, 9]]);
        let builds = vec![b0, b1, b2];
        let mut est = PipelineEstimator::same_attribute(3, 0, 0, probe.len() as u64).unwrap();
        for j in (0..3).rev() {
            est.feed_build(j, builds[j].iter()).unwrap();
        }
        for r in &probe {
            est.observe_probe(r).unwrap();
        }
        let specs = vec![
            JoinSpec {
                build_attr_col: 0,
                probe_attr: AttrSource::Probe { col: 0 }
            };
            3
        ];
        let truth = brute_force(&probe, &builds, &specs);
        for (u, &t) in truth.iter().enumerate() {
            assert_eq!(
                est.estimate(u).round() as u64,
                t,
                "join {u}: estimate {} vs truth {}",
                est.estimate(u),
                t
            );
        }
    }

    #[test]
    fn case1_different_attributes_exact() {
        // Lower: B0.x = C.x (C col 0); upper: B1.y = C.y (C col 1).
        let b0 = int_rows(&[&[1, 1, 2]]); // x values
        let b1 = int_rows(&[&[10, 20, 20, 30]]); // y values
        let probe = int_rows(&[&[1, 2, 2, 3], &[20, 10, 30, 20]]); // (x, y)
        let specs = vec![
            JoinSpec {
                build_attr_col: 0,
                probe_attr: AttrSource::Probe { col: 0 },
            },
            JoinSpec {
                build_attr_col: 0,
                probe_attr: AttrSource::Probe { col: 1 },
            },
        ];
        let builds = vec![b0, b1];
        let est = run_pipeline(&probe, &builds, specs.clone());
        let truth = brute_force(&probe, &builds, &specs);
        assert_eq!(est.estimate(0).round() as u64, truth[0]);
        assert_eq!(est.estimate(1).round() as u64, truth[1]);
    }

    #[test]
    fn case2_derived_histogram_exact() {
        // Lower: B0.x = C.x; upper: B1.y = B0.y (key carried by B0 col 1).
        let b0 = int_rows(&[&[1, 1, 2, 3], &[100, 200, 100, 300]]); // (x, y)
        let b1 = int_rows(&[&[100, 100, 200, 400]]); // y values
        let probe = int_rows(&[&[1, 1, 2, 3, 9]]); // x only
        let specs = vec![
            JoinSpec {
                build_attr_col: 0,
                probe_attr: AttrSource::Probe { col: 0 },
            },
            JoinSpec {
                build_attr_col: 0,
                probe_attr: AttrSource::Build { join: 0, col: 1 },
            },
        ];
        let builds = vec![b0, b1];
        let est = run_pipeline(&probe, &builds, specs.clone());
        let truth = brute_force(&probe, &builds, &specs);
        assert_eq!(est.estimate(0).round() as u64, truth[0]);
        assert_eq!(est.estimate(1).round() as u64, truth[1]);
        assert!(truth[1] > 0, "test data should produce upper-join output");
    }

    #[test]
    fn case2_cascaded_two_levels_exact() {
        // J0: B0.x = C.x; J1: B1.y = B0.y; J2: B2.z = B1.z.
        // J2's histogram must translate twice (at B1's build, then B0's).
        let b0 = int_rows(&[&[1, 1, 2], &[10, 20, 10]]); // (x, y)
        let b1 = int_rows(&[&[10, 10, 20], &[7, 8, 7]]); // (y, z)
        let b2 = int_rows(&[&[7, 7, 8, 9]]); // z
        let probe = int_rows(&[&[1, 2, 2, 4]]);
        let specs = vec![
            JoinSpec {
                build_attr_col: 0,
                probe_attr: AttrSource::Probe { col: 0 },
            },
            JoinSpec {
                build_attr_col: 0,
                probe_attr: AttrSource::Build { join: 0, col: 1 },
            },
            JoinSpec {
                build_attr_col: 0,
                probe_attr: AttrSource::Build { join: 1, col: 1 },
            },
        ];
        let builds = vec![b0, b1, b2];
        let est = run_pipeline(&probe, &builds, specs.clone());
        let truth = brute_force(&probe, &builds, &specs);
        for u in 0..3 {
            assert_eq!(
                est.estimate(u).round() as u64,
                truth[u],
                "join {u}: {} vs {truth:?}",
                est.estimate(u)
            );
        }
        assert!(truth[2] > 0);
    }

    #[test]
    fn mixed_case_probe_sourced_above_derived() {
        // J0: B0.x = C.x; J1: B1.y = B0.y (derived); J2: B2.w = C.w.
        let b0 = int_rows(&[&[1, 2, 2], &[5, 5, 6]]); // (x, y)
        let b1 = int_rows(&[&[5, 6, 6]]); // y
        let b2 = int_rows(&[&[40, 40, 41]]); // w
        let probe = int_rows(&[&[1, 2, 2], &[40, 41, 42]]); // (x, w)
        let specs = vec![
            JoinSpec {
                build_attr_col: 0,
                probe_attr: AttrSource::Probe { col: 0 },
            },
            JoinSpec {
                build_attr_col: 0,
                probe_attr: AttrSource::Build { join: 0, col: 1 },
            },
            JoinSpec {
                build_attr_col: 0,
                probe_attr: AttrSource::Probe { col: 1 },
            },
        ];
        let builds = vec![b0, b1, b2];
        let est = run_pipeline(&probe, &builds, specs.clone());
        let truth = brute_force(&probe, &builds, &specs);
        for (u, &t) in truth.iter().enumerate() {
            assert_eq!(est.estimate(u).round() as u64, t, "join {u}");
        }
    }

    #[test]
    fn partial_probe_estimates_scale() {
        let b0 = int_rows(&[&[1, 1]]);
        let probe = int_rows(&[&[1, 1, 2, 2]]);
        let specs = vec![JoinSpec {
            build_attr_col: 0,
            probe_attr: AttrSource::Probe { col: 0 },
        }];
        let mut est = PipelineEstimator::new(specs, 4).unwrap();
        est.feed_build(0, b0.iter()).unwrap();
        est.observe_probe(&probe[0]).unwrap();
        // after 1 of 4 probes, one tuple matching ×2 → estimate 2/1·4 = 8
        assert!((est.estimate(0) - 8.0).abs() < 1e-9);
        assert!(!est.converged());
        assert!((est.probe_fraction() - 0.25).abs() < 1e-12);
        for r in &probe[1..] {
            est.observe_probe(r).unwrap();
        }
        assert!(est.converged());
        assert_eq!(est.estimate(0).round() as u64, 4);
    }

    #[test]
    fn validation_rejects_bad_sources() {
        // Build source not below the join
        let bad = PipelineEstimator::new(
            vec![JoinSpec {
                build_attr_col: 0,
                probe_attr: AttrSource::Build { join: 0, col: 0 },
            }],
            10,
        );
        assert!(bad.is_err());
        // Shared build source
        let shared = PipelineEstimator::new(
            vec![
                JoinSpec {
                    build_attr_col: 0,
                    probe_attr: AttrSource::Probe { col: 0 },
                },
                JoinSpec {
                    build_attr_col: 0,
                    probe_attr: AttrSource::Build { join: 0, col: 1 },
                },
                JoinSpec {
                    build_attr_col: 0,
                    probe_attr: AttrSource::Build { join: 0, col: 2 },
                },
            ],
            10,
        );
        assert!(shared.is_err());
        // Empty pipeline
        assert!(PipelineEstimator::new(vec![], 10).is_err());
    }

    #[test]
    fn phase_protocol_enforced() {
        let specs = vec![
            JoinSpec {
                build_attr_col: 0,
                probe_attr: AttrSource::Probe { col: 0 },
            };
            2
        ];
        let mut est = PipelineEstimator::new(specs, 10).unwrap();
        // builds must start from the top join (index 1)
        assert!(est.begin_build(0).is_err());
        est.begin_build(1).unwrap();
        assert!(est.begin_build(0).is_err()); // still building 1
        assert!(est.observe_probe(&row![1i64]).is_err());
        est.end_build(1).unwrap();
        assert!(est.end_build(0).is_err()); // not begun
        est.begin_build(0).unwrap();
        est.build_tuple(0, &row![5i64]).unwrap();
        assert!(est.build_tuple(1, &row![5i64]).is_err());
        est.end_build(0).unwrap();
        assert!(est.ready_to_probe());
        est.observe_probe(&row![5i64]).unwrap();
    }

    #[test]
    fn null_keys_never_join() {
        use qprog_types::Value;
        let build = vec![Row::new(vec![Value::Null]), Row::new(vec![Value::Int64(1)])];
        let probe = vec![Row::new(vec![Value::Null]), Row::new(vec![Value::Int64(1)])];
        let specs = vec![JoinSpec {
            build_attr_col: 0,
            probe_attr: AttrSource::Probe { col: 0 },
        }];
        let est = run_pipeline(&probe, &[build], specs);
        // only the 1-1 pair joins
        assert_eq!(est.estimate(0).round() as u64, 1);
    }

    #[test]
    fn confidence_interval_collapses_at_convergence() {
        let b0 = int_rows(&[&[1, 2, 3]]);
        let probe = int_rows(&[&[1, 2, 3, 4]]);
        let specs = vec![JoinSpec {
            build_attr_col: 0,
            probe_attr: AttrSource::Probe { col: 0 },
        }];
        let est = run_pipeline(&probe, &[b0], specs);
        let ci = est.confidence_interval(0, 4.0);
        assert_eq!(ci.width(), 0.0);
        assert_eq!(ci.estimate.round() as u64, 3);
    }

    #[test]
    fn estimates_vector_is_bottom_up() {
        let b0 = int_rows(&[&[1]]);
        let b1 = int_rows(&[&[1, 1]]);
        let probe = int_rows(&[&[1]]);
        let mut est = PipelineEstimator::same_attribute(2, 0, 0, 1).unwrap();
        est.feed_build(1, b1.iter()).unwrap();
        est.feed_build(0, b0.iter()).unwrap();
        est.observe_probe(&probe[0]).unwrap();
        assert_eq!(est.estimates(), vec![1.0, 2.0]);
    }
}
