//! Estimators for multi-attribute join conditions (§4.1: "this basic
//! formula can be easily adjusted for the case of join conditions involving
//! disjunctions and conjunctions of multiple attributes, using standard
//! probabilistic techniques").
//!
//! - **Conjunction** `R.a = S.x AND R.b = S.y`: a composite key `(a, b)`
//!   reduces this to a single-attribute equi-join — one histogram over the
//!   composite key, same convergence guarantees.
//! - **Disjunction** `R.a = S.x OR R.b = S.y`: per probe tuple with values
//!   `(x, y)`, the exact number of matching build rows is
//!   `N_a[x] + N_b[y] − N_{ab}[(x, y)]` by inclusion–exclusion, so three
//!   build histograms (on `a`, on `b`, and on the pair) make the running
//!   estimate exact-in-expectation per tuple and *exact* at probe
//!   exhaustion — strictly stronger than the probabilistic-independence
//!   adjustment the paper sketches, at the cost of one extra histogram.

use qprog_types::Key;

use crate::confidence::{ConfidenceInterval, RunningMoments};
use crate::freq_hist::FreqHist;

/// Builder for conjunctive (composite-key) estimation: collapse a
/// multi-column equi-join condition into composite [`Key`]s and use the
/// ordinary [`OnceJoinEstimator`](crate::join_est::OnceJoinEstimator).
pub fn conjunction_key(parts: Vec<Key>) -> Key {
    if parts.len() == 1 {
        parts.into_iter().next().expect("length checked")
    } else {
        Key::composite(parts)
    }
}

/// Online estimator for a two-attribute **disjunctive** equi-join
/// `R.a = S.x OR R.b = S.y` with a completed build side.
#[derive(Debug, Clone)]
pub struct DisjunctionJoinEstimator {
    hist_a: FreqHist,
    hist_b: FreqHist,
    hist_ab: FreqHist,
    probe_size: u64,
    t: u64,
    sum: u128,
    moments: RunningMoments,
}

impl DisjunctionJoinEstimator {
    /// Build the three histograms from build-side key pairs `(a, b)`, for a
    /// probe stream of (known or estimated) size `probe_size`.
    pub fn from_build_pairs<'a>(
        pairs: impl IntoIterator<Item = (&'a Key, &'a Key)>,
        probe_size: u64,
    ) -> Self {
        let mut hist_a = FreqHist::new();
        let mut hist_b = FreqHist::new();
        let mut hist_ab = FreqHist::new();
        for (a, b) in pairs {
            if !a.is_null() {
                hist_a.observe(a);
            }
            if !b.is_null() {
                hist_b.observe(b);
            }
            if !a.is_null() && !b.is_null() {
                hist_ab.observe(&Key::composite(vec![a.clone(), b.clone()]));
            }
        }
        DisjunctionJoinEstimator {
            hist_a,
            hist_b,
            hist_ab,
            probe_size,
            t: 0,
            sum: 0,
            moments: RunningMoments::new(),
        }
    }

    /// Observe one probe tuple's `(x, y)` pair; returns the exact number of
    /// build rows it will join with (inclusion–exclusion).
    pub fn observe_probe(&mut self, x: &Key, y: &Key) -> u64 {
        let na = if x.is_null() { 0 } else { self.hist_a.count(x) };
        let nb = if y.is_null() { 0 } else { self.hist_b.count(y) };
        let nab = if x.is_null() || y.is_null() {
            0
        } else {
            self.hist_ab
                .count(&Key::composite(vec![x.clone(), y.clone()]))
        };
        let matches = na + nb - nab;
        self.t += 1;
        self.sum += matches as u128;
        self.moments.push(matches as f64);
        matches
    }

    /// Probe tuples observed so far.
    pub fn probe_seen(&self) -> u64 {
        self.t
    }

    /// Revise the probe input size.
    pub fn set_probe_size(&mut self, probe_size: u64) {
        self.probe_size = probe_size;
    }

    /// Current estimate of the disjunctive join's cardinality.
    pub fn estimate(&self) -> f64 {
        if self.t == 0 {
            0.0
        } else {
            self.sum as f64 / self.t as f64 * self.probe_size as f64
        }
    }

    /// Whether the probe stream has been fully observed (estimate exact).
    pub fn converged(&self) -> bool {
        self.t >= self.probe_size
    }

    /// CLT confidence interval for the estimate.
    pub fn confidence_interval(&self, z: f64) -> ConfidenceInterval {
        if self.converged() {
            return ConfidenceInterval::around(self.estimate(), 0.0);
        }
        let ci = self.moments.mean_ci(z);
        ConfidenceInterval {
            estimate: self.estimate(),
            lo: ci.lo * self.probe_size as f64,
            hi: ci.hi * self.probe_size as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_est::OnceJoinEstimator;

    fn pairs(vals: &[(i64, i64)]) -> Vec<(Key, Key)> {
        vals.iter()
            .map(|&(a, b)| (Key::Int(a), Key::Int(b)))
            .collect()
    }

    fn brute_disjunction(build: &[(i64, i64)], probe: &[(i64, i64)]) -> u64 {
        probe
            .iter()
            .map(|&(x, y)| build.iter().filter(|&&(a, b)| a == x || b == y).count() as u64)
            .sum()
    }

    fn brute_conjunction(build: &[(i64, i64)], probe: &[(i64, i64)]) -> u64 {
        probe
            .iter()
            .map(|&(x, y)| build.iter().filter(|&&(a, b)| a == x && b == y).count() as u64)
            .sum()
    }

    #[test]
    fn conjunction_via_composite_keys_is_exact() {
        let build = [(1i64, 10i64), (1, 20), (2, 10), (1, 10)];
        let probe = [(1i64, 10i64), (2, 10), (3, 30), (1, 20)];
        let build_keys: Vec<Key> = pairs(&build)
            .into_iter()
            .map(|(a, b)| conjunction_key(vec![a, b]))
            .collect();
        let mut est = OnceJoinEstimator::from_build_keys(build_keys.iter(), probe.len() as u64);
        for (x, y) in pairs(&probe) {
            est.observe_probe(&conjunction_key(vec![x, y]));
        }
        assert!(est.converged());
        assert_eq!(
            est.estimate().round() as u64,
            brute_conjunction(&build, &probe)
        );
    }

    #[test]
    fn conjunction_key_single_column_passthrough() {
        assert_eq!(conjunction_key(vec![Key::Int(5)]), Key::Int(5));
        assert!(matches!(
            conjunction_key(vec![Key::Int(5), Key::Int(6)]),
            Key::Composite(_)
        ));
    }

    #[test]
    fn disjunction_exact_at_convergence() {
        let build = [(1i64, 10i64), (1, 20), (2, 10), (5, 50)];
        let probe = [(1i64, 10i64), (2, 20), (9, 50), (9, 99)];
        let bp = pairs(&build);
        let mut est = DisjunctionJoinEstimator::from_build_pairs(
            bp.iter().map(|(a, b)| (a, b)),
            probe.len() as u64,
        );
        for (x, y) in pairs(&probe) {
            est.observe_probe(&x, &y);
        }
        assert!(est.converged());
        assert_eq!(
            est.estimate().round() as u64,
            brute_disjunction(&build, &probe)
        );
        assert_eq!(est.confidence_interval(2.0).width(), 0.0);
    }

    #[test]
    fn disjunction_inclusion_exclusion_per_tuple() {
        // build row (1, 10) matches probe (1, 10) on BOTH attributes —
        // must be counted once, not twice.
        let build = [(1i64, 10i64)];
        let bp = pairs(&build);
        let mut est = DisjunctionJoinEstimator::from_build_pairs(bp.iter().map(|(a, b)| (a, b)), 1);
        assert_eq!(est.observe_probe(&Key::Int(1), &Key::Int(10)), 1);
    }

    #[test]
    fn disjunction_null_semantics() {
        // NULL never equi-joins; a probe NULL on one side still matches on
        // the other (SQL OR semantics with UNKNOWN treated as false).
        let build = [(1i64, 10i64)];
        let bp = pairs(&build);
        let mut est = DisjunctionJoinEstimator::from_build_pairs(bp.iter().map(|(a, b)| (a, b)), 3);
        assert_eq!(est.observe_probe(&Key::Null, &Key::Int(10)), 1);
        assert_eq!(est.observe_probe(&Key::Int(1), &Key::Null), 1);
        assert_eq!(est.observe_probe(&Key::Null, &Key::Null), 0);
    }

    #[test]
    fn disjunction_randomized_against_brute_force() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let gen = |rng: &mut StdRng, n: usize| -> Vec<(i64, i64)> {
                (0..n)
                    .map(|_| (rng.random_range(0..8), rng.random_range(0..8)))
                    .collect()
            };
            let build = gen(&mut rng, 30);
            let probe = gen(&mut rng, 25);
            let bp = pairs(&build);
            let mut est = DisjunctionJoinEstimator::from_build_pairs(
                bp.iter().map(|(a, b)| (a, b)),
                probe.len() as u64,
            );
            for (x, y) in pairs(&probe) {
                est.observe_probe(&x, &y);
            }
            assert_eq!(
                est.estimate().round() as u64,
                brute_disjunction(&build, &probe)
            );
        }
    }

    #[test]
    fn disjunction_midstream_scaling() {
        let build = [(1i64, 1i64); 10];
        let bp = pairs(&build);
        let mut est =
            DisjunctionJoinEstimator::from_build_pairs(bp.iter().map(|(a, b)| (a, b)), 100);
        est.observe_probe(&Key::Int(1), &Key::Int(2)); // matches all 10 on a
        assert!((est.estimate() - 1000.0).abs() < 1e-9);
        assert!(!est.converged());
        est.set_probe_size(10);
        assert!((est.estimate() - 100.0).abs() < 1e-9);
    }
}
