//! Online join-size estimators (§4.1, §4.1.1–4.1.3 of the paper).
//!
//! [`OnceJoinEstimator`] is the paper's incremental estimator for binary
//! hash and sort-merge joins: the build input's exact frequency histogram is
//! complete before the probe input streams, so after `t` probe tuples the
//! running estimate
//!
//! ```text
//! D_t = (Σ_{s ∈ first t probe tuples} N_R[key(s)]) / t · |S|
//! ```
//!
//! — algebraically identical to the paper's recurrence
//! `D_{t+1} = (D_t·t + N_R[i]·|S|) / (t+1)` but maintained as an exact
//! integer sum to avoid floating-point drift — converges to the *exact*
//! join cardinality at `t = |S|`, i.e. by the end of the probe-side
//! partitioning (or sorting) pass, before any real join work happens.
//!
//! [`SymmetricJoinEstimator`] is the §4.1 "basic scheme" where both streams
//! are observed simultaneously (`D_t = |R||S| Σ_i N_i^R N_i^S / t²`); the
//! paper presents it to motivate the cheaper asymmetric form, and it remains
//! useful when neither input has a preprocessing phase.

use qprog_types::Key;

use crate::confidence::{beta, ConfidenceInterval, RunningMoments};
use crate::freq_hist::FreqHist;

/// Join semantics, oriented around a completed build side `R` and a
/// streaming probe side `S` (the side the paper's estimators watch).
///
/// The paper notes (§4.1.1) that "similar estimators can be constructed for
/// semijoins and various kinds of outerjoins"; the construction is a
/// different per-probe-tuple *contribution function* in the same running
/// estimate:
///
/// | kind | output rows contributed by a probe tuple with key `i` |
/// |---|---|
/// | `Inner` | `N_R[i]` |
/// | `LeftOuter` (probe-preserving) | `max(N_R[i], 1)` |
/// | `Semi` (probe rows with a match) | `1{N_R[i] > 0}` |
/// | `Anti` (probe rows without a match) | `1{N_R[i] = 0}` |
///
/// Each is an unbiased sample mean on randomly ordered probe input and is
/// exact once the probe stream is exhausted — the same guarantees as the
/// inner-join estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JoinKind {
    #[default]
    Inner,
    /// Preserve unmatched probe tuples, padding the build columns with
    /// NULLs (SQL `A LEFT JOIN B` with `A` streaming).
    LeftOuter,
    /// Emit each probe tuple at most once, iff it has a build match
    /// (`EXISTS`).
    Semi,
    /// Emit each probe tuple iff it has no build match (`NOT EXISTS`).
    Anti,
}

impl JoinKind {
    /// Output rows a probe tuple contributes given its build-side
    /// multiplicity (`n = N_R[key]`, with NULL keys normalized to `n = 0`).
    #[inline]
    pub fn contribution(self, n: u64) -> u64 {
        match self {
            JoinKind::Inner => n,
            JoinKind::LeftOuter => n.max(1),
            JoinKind::Semi => u64::from(n > 0),
            JoinKind::Anti => u64::from(n == 0),
        }
    }

    /// Whether the output carries the build relation's columns.
    pub fn emits_build_columns(self) -> bool {
        matches!(self, JoinKind::Inner | JoinKind::LeftOuter)
    }
}

/// The paper's online cardinality estimator ("once") for a binary equi-join
/// with a completed build side.
///
/// # Example
///
/// ```
/// use qprog_core::join_est::OnceJoinEstimator;
/// use qprog_types::Key;
///
/// let build: Vec<Key> = [1i64, 1, 2].iter().map(|&v| Key::Int(v)).collect();
/// let mut est = OnceJoinEstimator::from_build_keys(build.iter(), 4);
/// for v in [1i64, 2, 2, 9] {
///     est.observe_probe(&Key::Int(v));
/// }
/// assert!(est.converged());
/// assert_eq!(est.estimate(), 4.0); // 1 matches twice, each 2 once
/// ```
#[derive(Debug, Clone)]
pub struct OnceJoinEstimator {
    build: FreqHist,
    probe_size: u64,
    kind: JoinKind,
    /// Probe tuples observed so far (`t`), including null-key tuples.
    t: u64,
    /// Exact `Σ contribution(key(s))` over observed probe tuples.
    sum: u128,
    moments: RunningMoments,
}

impl OnceJoinEstimator {
    /// Start estimation from a completed build histogram and the known (or
    /// optimizer-estimated) probe input size `|S|` (inner join).
    pub fn new(build: FreqHist, probe_size: u64) -> Self {
        OnceJoinEstimator::with_kind(build, probe_size, JoinKind::Inner)
    }

    /// Start estimation for an arbitrary [`JoinKind`].
    pub fn with_kind(build: FreqHist, probe_size: u64, kind: JoinKind) -> Self {
        OnceJoinEstimator {
            build,
            probe_size,
            kind,
            t: 0,
            sum: 0,
            moments: RunningMoments::new(),
        }
    }

    /// Build a histogram from build-side keys, then start estimation.
    pub fn from_build_keys<'a>(keys: impl IntoIterator<Item = &'a Key>, probe_size: u64) -> Self {
        OnceJoinEstimator::new(keys.into_iter().collect(), probe_size)
    }

    /// The build-side histogram (e.g. for pushing aggregation estimation
    /// down into the join, §4.2 end).
    pub fn build_histogram(&self) -> &FreqHist {
        &self.build
    }

    /// Observe one probe tuple's join key and return its build-side
    /// multiplicity `N_R[key]` (NULL keys never equi-join and count as 0).
    /// The running estimate accumulates this kind's contribution function.
    pub fn observe_probe(&mut self, key: &Key) -> u64 {
        let n = if key.is_null() {
            0
        } else {
            self.build.count(key)
        };
        let c = self.kind.contribution(n);
        self.t += 1;
        self.sum += c as u128;
        self.moments.push(c as f64);
        n
    }

    /// Revise the probe input size (e.g. when `|S|` was itself an estimate
    /// refined upstream).
    pub fn set_probe_size(&mut self, probe_size: u64) {
        self.probe_size = probe_size;
    }

    /// Probe tuples observed so far.
    pub fn probe_seen(&self) -> u64 {
        self.t
    }

    /// Fraction of the probe input observed (clamped to 1).
    pub fn probe_fraction(&self) -> f64 {
        if self.probe_size == 0 {
            1.0
        } else {
            (self.t as f64 / self.probe_size as f64).min(1.0)
        }
    }

    /// Exact number of join output tuples attributable to the probe tuples
    /// seen so far (the estimate's numerator before scaling).
    pub fn matched_so_far(&self) -> u128 {
        self.sum
    }

    /// The join semantics this estimator is configured for.
    pub fn kind(&self) -> JoinKind {
        self.kind
    }

    /// Current estimate `D_t`. Before any probe tuple arrives this is 0 —
    /// callers should keep using the optimizer estimate until `probe_seen`
    /// is positive.
    pub fn estimate(&self) -> f64 {
        if self.t == 0 {
            0.0
        } else if self.converged() && self.t == self.probe_size {
            // the running sum IS the exact cardinality; avoid the
            // floating-point round trip of sum/t·|S|
            self.sum as f64
        } else {
            self.sum as f64 / self.t as f64 * self.probe_size as f64
        }
    }

    /// Whether the estimator has seen the whole probe input and therefore
    /// reports the exact join cardinality.
    pub fn converged(&self) -> bool {
        self.t >= self.probe_size
    }

    /// CLT confidence interval for `D_t` at the two-sided level implied by
    /// `z` (e.g. `z = z_alpha(0.99)`): `|S| · (x̄ ± z·σ̂/√t)`.
    pub fn confidence_interval(&self, z: f64) -> ConfidenceInterval {
        if self.converged() {
            // exact: the remaining-sampling variance is zero
            return ConfidenceInterval::around(self.estimate(), 0.0);
        }
        let mean_ci = self.moments.mean_ci(z);
        ConfidenceInterval {
            estimate: self.estimate(),
            lo: mean_ci.lo * self.probe_size as f64,
            hi: mean_ci.hi * self.probe_size as f64,
        }
    }

    /// The paper's distribution-free half-width bound `β = z/(2√t)` on the
    /// per-value fraction estimates underlying `D_t`.
    pub fn beta(&self, z: f64) -> f64 {
        beta(self.t, z)
    }

    /// Fold a worker-private [`ProbeFragment`] into this estimator, as if
    /// its probe tuples had been observed here via
    /// [`observe_probe`](Self::observe_probe).
    ///
    /// `D_t` is maintained as the integer pair `(t, Σ contribution)`, and
    /// integer addition is associative and commutative, so fragments may be
    /// absorbed in any order: once every probe tuple is accounted for
    /// (`t == |S|`), [`estimate`](Self::estimate) returns `sum as f64` —
    /// byte-identical to the serial engine's converged estimate. The
    /// variance accumulator merges via Chan's update (exact up to
    /// floating-point rounding; it only feeds confidence intervals, never
    /// the estimate itself).
    pub fn absorb(&mut self, fragment: &ProbeFragment) {
        self.t += fragment.t;
        self.sum += fragment.sum;
        self.moments.merge(&fragment.moments);
    }
}

/// Worker-private probe-side accumulation for partition-parallel execution.
///
/// Each worker observes its slice of the probe stream against the shared
/// (completed, read-only) build histogram, accumulating the same integer
/// `(t, Σ contribution)` pair the serial estimator keeps. Fragments merge
/// associatively into each other and into an [`OnceJoinEstimator`] via
/// [`OnceJoinEstimator::absorb`].
#[derive(Debug, Clone, Default)]
pub struct ProbeFragment {
    t: u64,
    sum: u128,
    moments: RunningMoments,
}

impl ProbeFragment {
    /// An empty fragment.
    pub fn new() -> Self {
        ProbeFragment::default()
    }

    /// Observe one probe tuple against the shared build histogram,
    /// returning its build-side multiplicity (NULL keys count as 0) —
    /// the worker-side mirror of [`OnceJoinEstimator::observe_probe`].
    pub fn observe(&mut self, build: &FreqHist, kind: JoinKind, key: &Key) -> u64 {
        let n = if key.is_null() { 0 } else { build.count(key) };
        let c = kind.contribution(n);
        self.t += 1;
        self.sum += c as u128;
        self.moments.push(c as f64);
        n
    }

    /// Probe tuples this fragment has observed.
    pub fn seen(&self) -> u64 {
        self.t
    }

    /// Exact `Σ contribution` over this fragment's probe tuples.
    pub fn matched(&self) -> u128 {
        self.sum
    }

    /// Fold another fragment into this one (associative, commutative in
    /// `(t, sum)`; moments combine via Chan's update).
    pub fn merge(&mut self, other: &ProbeFragment) {
        self.t += other.t;
        self.sum += other.sum;
        self.moments.merge(&other.moments);
    }
}

/// The §4.1 "basic scheme": both streams observed simultaneously.
///
/// After `t` tuples from each stream,
/// `D_t = |R||S| · Σ_i N_i^R N_i^S / t²`. Expensive relative to
/// [`OnceJoinEstimator`] (it must correlate two histograms), which is
/// exactly the overhead argument the paper makes before push-down.
#[derive(Debug, Clone, Default)]
pub struct SymmetricJoinEstimator {
    r_hist: FreqHist,
    s_hist: FreqHist,
    r_size: u64,
    s_size: u64,
    /// Incrementally maintained `Σ_i N_i^R N_i^S`.
    cross_sum: u128,
}

impl SymmetricJoinEstimator {
    /// New estimator for streams of (known or estimated) sizes.
    pub fn new(r_size: u64, s_size: u64) -> Self {
        SymmetricJoinEstimator {
            r_size,
            s_size,
            ..SymmetricJoinEstimator::default()
        }
    }

    /// Observe one tuple from `R`.
    pub fn observe_r(&mut self, key: &Key) {
        if key.is_null() {
            return;
        }
        self.r_hist.observe(key);
        // N_R[i] increased by one → cross term increases by N_S[i].
        self.cross_sum += self.s_hist.count(key) as u128;
    }

    /// Observe one tuple from `S`.
    pub fn observe_s(&mut self, key: &Key) {
        if key.is_null() {
            return;
        }
        self.s_hist.observe(key);
        self.cross_sum += self.r_hist.count(key) as u128;
    }

    /// Tuples observed from `R` / `S`.
    pub fn seen(&self) -> (u64, u64) {
        (self.r_hist.total(), self.s_hist.total())
    }

    /// Current estimate `D_t`.
    pub fn estimate(&self) -> f64 {
        let (tr, ts) = self.seen();
        if tr == 0 || ts == 0 {
            return 0.0;
        }
        self.cross_sum as f64 * (self.r_size as f64 / tr as f64) * (self.s_size as f64 / ts as f64)
    }

    /// Whether both streams have been fully observed (estimate is exact).
    pub fn converged(&self) -> bool {
        let (tr, ts) = self.seen();
        tr >= self.r_size && ts >= self.s_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::z_alpha;

    fn keys(vals: &[i64]) -> Vec<Key> {
        vals.iter().map(|&v| Key::Int(v)).collect()
    }

    /// Exact nested-loop count of the equi-join for cross-checking.
    fn exact_join(r: &[i64], s: &[i64]) -> u64 {
        r.iter()
            .map(|a| s.iter().filter(|&&b| b == *a).count() as u64)
            .sum()
    }

    #[test]
    fn converges_exactly_at_full_probe() {
        let r = [1i64, 1, 2, 3, 3, 3];
        let s = [1i64, 2, 2, 3, 4];
        let build = keys(&r);
        let mut est = OnceJoinEstimator::from_build_keys(build.iter(), s.len() as u64);
        for k in keys(&s) {
            est.observe_probe(&k);
        }
        assert!(est.converged());
        assert_eq!(est.estimate() as u64, exact_join(&r, &s));
        assert_eq!(est.matched_so_far(), exact_join(&r, &s) as u128);
        assert_eq!(est.confidence_interval(4.0).width(), 0.0);
    }

    #[test]
    fn partial_estimate_is_unbiased_scaling() {
        // Build: one value with multiplicity 2. Probe: half the tuples match.
        let build = keys(&[7, 7]);
        let mut est = OnceJoinEstimator::from_build_keys(build.iter(), 100);
        for i in 0..50 {
            let k = if i % 2 == 0 { Key::Int(7) } else { Key::Int(0) };
            est.observe_probe(&k);
        }
        // Half of probes match a build value of multiplicity 2 → mean 1.0
        assert!((est.estimate() - 100.0).abs() < 1e-9);
        assert!((est.probe_fraction() - 0.5).abs() < 1e-12);
        assert!(!est.converged());
    }

    #[test]
    fn recurrence_form_matches_running_sum() {
        // Verify D_{t+1} = (D_t·t + N_R[i]·|S|)/(t+1) equals our sum form.
        let r = [1i64, 1, 1, 2, 5, 5];
        let s = [1i64, 5, 2, 2, 1, 9, 5, 5];
        let build = keys(&r);
        let mut est = OnceJoinEstimator::from_build_keys(build.iter(), s.len() as u64);
        let mut d = 0.0f64;
        let mut t = 0.0f64;
        for k in keys(&s) {
            let hist = est.build_histogram().count(&k) as f64;
            d = (d * t + hist * s.len() as f64) / (t + 1.0);
            t += 1.0;
            est.observe_probe(&k);
            assert!((est.estimate() - d).abs() < 1e-9);
        }
    }

    #[test]
    fn null_probe_keys_do_not_join() {
        let build = keys(&[1, 1, 1]);
        let mut est = OnceJoinEstimator::from_build_keys(build.iter(), 2);
        assert_eq!(est.observe_probe(&Key::Null), 0);
        assert_eq!(est.observe_probe(&Key::Int(1)), 3);
        // t counts the null tuple: 2 seen, sum = 3, |S| = 2 → estimate 3
        assert!((est.estimate() - 3.0).abs() < 1e-9);
        assert!(est.converged());
    }

    #[test]
    fn confidence_interval_covers_truth_and_shrinks() {
        // Random-ish probe stream over a known distribution.
        let r: Vec<i64> = (0..100).map(|i| i % 10).collect(); // each value ×10
        let probe: Vec<i64> = (0..1000).map(|i| (i * 7 + 3) % 20).collect();
        let truth = exact_join(&r, &probe) as f64;
        let build = keys(&r);
        let mut est = OnceJoinEstimator::from_build_keys(build.iter(), probe.len() as u64);
        let z = z_alpha(0.99);
        let mut last_width = f64::INFINITY;
        for (i, k) in keys(&probe).into_iter().enumerate() {
            est.observe_probe(&k);
            if i == 99 || i == 499 || i == 999 {
                let ci = est.confidence_interval(z);
                assert!(
                    ci.contains(truth),
                    "at t={} interval [{}, {}] missed truth {}",
                    i + 1,
                    ci.lo,
                    ci.hi,
                    truth
                );
                assert!(ci.width() <= last_width);
                last_width = ci.width();
            }
        }
        assert!(est.converged());
    }

    #[test]
    fn beta_matches_formula() {
        let mut est = OnceJoinEstimator::new(FreqHist::new(), 100);
        assert_eq!(est.beta(4.0), f64::INFINITY);
        for _ in 0..25 {
            est.observe_probe(&Key::Int(1));
        }
        assert!((est.beta(4.0) - 4.0 / (2.0 * 5.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_sized_probe_is_converged() {
        let est = OnceJoinEstimator::new(FreqHist::new(), 0);
        assert!(est.converged());
        assert_eq!(est.probe_fraction(), 1.0);
        assert_eq!(est.estimate(), 0.0);
    }

    #[test]
    fn set_probe_size_rescales() {
        let build = keys(&[4, 4]);
        let mut est = OnceJoinEstimator::from_build_keys(build.iter(), 10);
        est.observe_probe(&Key::Int(4));
        assert!((est.estimate() - 20.0).abs() < 1e-9);
        est.set_probe_size(100);
        assert!((est.estimate() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn join_kind_contributions() {
        assert_eq!(JoinKind::Inner.contribution(3), 3);
        assert_eq!(JoinKind::Inner.contribution(0), 0);
        assert_eq!(JoinKind::LeftOuter.contribution(3), 3);
        assert_eq!(JoinKind::LeftOuter.contribution(0), 1);
        assert_eq!(JoinKind::Semi.contribution(3), 1);
        assert_eq!(JoinKind::Semi.contribution(0), 0);
        assert_eq!(JoinKind::Anti.contribution(3), 0);
        assert_eq!(JoinKind::Anti.contribution(0), 1);
        assert!(JoinKind::Inner.emits_build_columns());
        assert!(JoinKind::LeftOuter.emits_build_columns());
        assert!(!JoinKind::Semi.emits_build_columns());
        assert!(!JoinKind::Anti.emits_build_columns());
    }

    #[test]
    fn kinds_converge_to_exact_counts() {
        let r = [1i64, 1, 2, 3, 3, 3];
        let s = [1i64, 2, 2, 4, 9];
        // truth: inner = 2+1+1 = 4; semi = 3 (keys 1,2,2 match);
        // anti = 2 (4, 9); left outer = 4 + 2 = 6.
        let truths = [
            (JoinKind::Inner, 4u64),
            (JoinKind::Semi, 3),
            (JoinKind::Anti, 2),
            (JoinKind::LeftOuter, 6),
        ];
        for (kind, truth) in truths {
            let hist: FreqHist = keys(&r).iter().collect();
            let mut est = OnceJoinEstimator::with_kind(hist, s.len() as u64, kind);
            for k in keys(&s) {
                est.observe_probe(&k);
            }
            assert!(est.converged());
            assert_eq!(est.estimate().round() as u64, truth, "{kind:?}");
            assert_eq!(est.kind(), kind);
        }
    }

    #[test]
    fn kind_estimates_unbiased_midstream() {
        // uniform probe over matched/unmatched halves → semi ≈ |S|/2
        let r: Vec<i64> = (0..50).collect();
        let hist: FreqHist = keys(&r).iter().collect();
        let mut est = OnceJoinEstimator::with_kind(hist, 1000, JoinKind::Semi);
        for i in 0..500 {
            est.observe_probe(&Key::Int(i % 100)); // half the keys match
        }
        assert!((est.estimate() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn absorbed_fragments_match_serial_estimator_exactly() {
        let r = [1i64, 1, 2, 3, 3, 3, 7, 7];
        let s: Vec<i64> = (0..64).map(|i| (i * 13 + 1) % 9).collect();
        for kind in [
            JoinKind::Inner,
            JoinKind::LeftOuter,
            JoinKind::Semi,
            JoinKind::Anti,
        ] {
            let hist: FreqHist = keys(&r).iter().collect();
            let mut serial = OnceJoinEstimator::with_kind(hist.clone(), s.len() as u64, kind);
            for k in keys(&s) {
                serial.observe_probe(&k);
            }
            // Split the probe stream across 4 worker fragments, merge the
            // fragments pairwise in a scrambled order, absorb.
            let mut frags: Vec<ProbeFragment> = s
                .chunks(s.len() / 4)
                .map(|chunk| {
                    let mut f = ProbeFragment::new();
                    for k in keys(chunk) {
                        f.observe(&hist, kind, &k);
                    }
                    f
                })
                .collect();
            let mut merged = frags.swap_remove(2);
            for f in &frags {
                merged.merge(f);
            }
            let mut parallel = OnceJoinEstimator::with_kind(hist, s.len() as u64, kind);
            parallel.absorb(&merged);
            assert!(parallel.converged(), "{kind:?}");
            assert_eq!(parallel.matched_so_far(), serial.matched_so_far());
            // bit-identical converged estimates: both are `sum as f64`
            assert_eq!(
                parallel.estimate().to_bits(),
                serial.estimate().to_bits(),
                "{kind:?}"
            );
            assert_eq!(parallel.confidence_interval(4.0).width(), 0.0);
        }
    }

    #[test]
    fn fragment_observation_mirrors_observe_probe() {
        let hist: FreqHist = keys(&[5, 5, 5]).iter().collect();
        let mut f = ProbeFragment::new();
        assert_eq!(f.observe(&hist, JoinKind::Inner, &Key::Int(5)), 3);
        assert_eq!(f.observe(&hist, JoinKind::Inner, &Key::Null), 0);
        assert_eq!(f.observe(&hist, JoinKind::Inner, &Key::Int(8)), 0);
        assert_eq!(f.seen(), 3);
        assert_eq!(f.matched(), 3);
        // mid-stream absorb scales like the serial estimator
        let mut est = OnceJoinEstimator::new(hist, 6);
        est.absorb(&f);
        assert_eq!(est.probe_seen(), 3);
        assert!((est.estimate() - 6.0).abs() < 1e-9);
        assert!(!est.converged());
    }

    #[test]
    fn symmetric_estimator_converges_to_exact() {
        let r: Vec<i64> = vec![1, 1, 2, 3, 3, 3, 9];
        let s: Vec<i64> = vec![3, 1, 3, 2, 2, 7];
        let mut est = SymmetricJoinEstimator::new(r.len() as u64, s.len() as u64);
        for (a, b) in r.iter().zip(s.iter()) {
            est.observe_r(&Key::Int(*a));
            est.observe_s(&Key::Int(*b));
        }
        est.observe_r(&Key::Int(r[6]));
        assert!(est.converged());
        assert_eq!(est.estimate().round() as u64, exact_join(&r, &s));
    }

    #[test]
    fn symmetric_estimator_cross_sum_matches_direct() {
        let r = vec![5i64, 5, 6, 7];
        let s = vec![5i64, 6, 6];
        let mut est = SymmetricJoinEstimator::new(10, 10);
        for &a in &r {
            est.observe_r(&Key::Int(a));
        }
        for &b in &s {
            est.observe_s(&Key::Int(b));
        }
        // Σ N_R·N_S = (5: 2·1) + (6: 1·2) = 4; scaled by (10/4)(10/3)
        let expect = 4.0 * (10.0 / 4.0) * (10.0 / 3.0);
        assert!((est.estimate() - expect).abs() < 1e-9);
        assert!(!est.converged());
    }

    #[test]
    fn symmetric_estimator_interleaving_invariance() {
        // cross_sum is order-independent
        let r = vec![1i64, 2, 1, 3];
        let s = vec![1i64, 1, 2, 2];
        let mut a = SymmetricJoinEstimator::new(4, 4);
        let mut b = SymmetricJoinEstimator::new(4, 4);
        for i in 0..4 {
            a.observe_r(&Key::Int(r[i]));
            a.observe_s(&Key::Int(s[i]));
        }
        for &x in &r {
            b.observe_r(&Key::Int(x));
        }
        for &x in &s {
            b.observe_s(&Key::Int(x));
        }
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn symmetric_ignores_nulls() {
        let mut est = SymmetricJoinEstimator::new(2, 2);
        est.observe_r(&Key::Null);
        est.observe_s(&Key::Null);
        assert_eq!(est.seen(), (0, 0));
        assert_eq!(est.estimate(), 0.0);
    }
}
