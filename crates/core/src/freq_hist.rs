//! Exact frequency histograms — the `N_i` counts of §4.1.
//!
//! A [`FreqHist`] maintains, for every attribute value seen so far, the exact
//! number of occurrences. On top of the raw counts it *incrementally*
//! maintains the aggregates every estimator in the paper needs:
//!
//! - `t` — total observations,
//! - `d` — number of distinct values,
//! - the **count-of-counts** profile `f_j` (how many values occur exactly
//!   `j` times) used by GEE and MLE,
//! - `Σ N_i²` used by the `γ²` skew measure,
//!
//! all in `O(1)` per observation, which is what makes the framework
//! *lightweight*. Memory accounting (`memory_used` / `memory_allocated`)
//! reproduces the bookkeeping of the paper's Table 2.

use qprog_types::Key;

use crate::fx::FxHashMap;

/// Upper bound on dense-lane slots (8 bytes each, ≤ 8 MiB): integer key
/// spans wider than this fall back to the hash lane.
const DENSE_MAX_SLOTS: usize = 1 << 20;

/// Count storage: a contiguous array when the keys are integers in a
/// bounded span (the common case for synthetic and surrogate keys, and the
/// layout that makes the per-probe-tuple `N_i` lookup an array read instead
/// of a hash probe), falling back to a hash map for strings, composites,
/// and wide integer spans.
#[derive(Debug, Clone)]
enum CountLane {
    /// `slots[(k - lo) as usize]` is the count of `Key::Int(k)`.
    Dense {
        lo: i64,
        slots: Vec<u64>,
        /// Number of non-zero slots.
        distinct: usize,
    },
    Map(FxHashMap<Key, u64>),
}

impl Default for CountLane {
    fn default() -> Self {
        CountLane::Dense {
            lo: 0,
            slots: Vec::new(),
            distinct: 0,
        }
    }
}

/// An exact frequency histogram over [`Key`]s with incrementally maintained
/// summary aggregates.
///
/// # Example
///
/// ```
/// use qprog_core::freq_hist::FreqHist;
/// use qprog_types::Key;
///
/// let mut h = FreqHist::new();
/// for v in [1i64, 1, 2, 3, 3, 3] {
///     h.observe(&Key::Int(v));
/// }
/// assert_eq!(h.total(), 6);
/// assert_eq!(h.distinct(), 3);
/// assert_eq!(h.count(&Key::Int(3)), 3);
/// assert_eq!(h.singletons(), 1); // only the value 2
/// ```
#[derive(Debug, Clone, Default)]
pub struct FreqHist {
    counts: CountLane,
    total: u64,
    /// `f_j`: number of distinct values with frequency exactly `j`.
    /// The number of *distinct frequencies* is `O(√t)`, so this stays tiny.
    count_of_counts: FxHashMap<u64, u64>,
    /// Largest frequency ever reached (monotone: when a value moves from
    /// count `M` to `M+1`, the maximum becomes `M+1`).
    max_freq: u64,
    /// `Σ N_i²`, for the squared coefficient of variation.
    sum_sq: u128,
    /// Payload bytes of stored string keys (for memory accounting).
    key_payload_bytes: usize,
}

impl FreqHist {
    /// An empty histogram.
    pub fn new() -> Self {
        FreqHist::default()
    }

    /// An empty histogram expecting around `n` distinct keys (sizing hint
    /// for the fallback hash lane).
    pub fn with_capacity(n: usize) -> Self {
        let _ = n; // dense lane sizes itself from the observed key span
        FreqHist::default()
    }

    /// Convert the dense lane to the hash lane (non-integer key observed,
    /// or the integer span outgrew [`DENSE_MAX_SLOTS`]). Counts and every
    /// derived aggregate are unchanged.
    fn spill_to_map(&mut self) {
        if let CountLane::Dense {
            lo,
            slots,
            distinct,
        } = &self.counts
        {
            let mut map: FxHashMap<Key, u64> =
                FxHashMap::with_capacity_and_hasher(*distinct, Default::default());
            for (i, &c) in slots.iter().enumerate() {
                if c > 0 {
                    map.insert(Key::Int(lo + i as i64), c);
                }
            }
            self.counts = CountLane::Map(map);
        }
    }

    /// Add `n` (≥ 1) to `key`'s count, returning the count before. Handles
    /// lane selection, dense growth, and spill.
    fn bump(&mut self, key: &Key, n: u64) -> u64 {
        loop {
            match &mut self.counts {
                CountLane::Dense {
                    lo,
                    slots,
                    distinct,
                } => {
                    let Key::Int(k) = *key else {
                        // Bool/Str/Composite keys use the hash lane.
                        self.spill_to_map();
                        continue;
                    };
                    if slots.is_empty() {
                        *lo = k;
                        slots.push(n);
                        *distinct = 1;
                        return 0;
                    }
                    if k >= *lo && ((k - *lo) as u64) < slots.len() as u64 {
                        let slot = &mut slots[(k - *lo) as usize];
                        let before = *slot;
                        if before == 0 {
                            *distinct += 1;
                        }
                        *slot += n;
                        return before;
                    }
                    // Out of range: grow (with ~25% slack on the extended
                    // side, capped by the dense budget) or spill.
                    let hi = *lo as i128 + slots.len() as i128 - 1;
                    let span = (hi.max(k as i128) - (*lo as i128).min(k as i128) + 1) as u128;
                    if span > DENSE_MAX_SLOTS as u128 {
                        self.spill_to_map();
                        continue;
                    }
                    if (k as i128) > hi {
                        let want = (k as i128 - *lo as i128 + 1) as usize;
                        let slack = (want / 4).min(DENSE_MAX_SLOTS - want);
                        // Keep slack within i64 range above `lo`.
                        let room = (i64::MAX as i128 - *lo as i128 + 1 - want as i128)
                            .clamp(0, usize::MAX as i128)
                            as usize;
                        slots.resize(want + slack.min(room), 0);
                    } else {
                        let need = (*lo as i128 - k as i128) as usize;
                        let want = need + slots.len();
                        let slack = (want / 4)
                            .min(DENSE_MAX_SLOTS - want.min(DENSE_MAX_SLOTS))
                            .min((k as i128 - i64::MIN as i128) as u128 as usize);
                        let front = need + slack;
                        let mut grown = vec![0u64; front + slots.len()];
                        grown[front..].copy_from_slice(slots);
                        *slots = grown;
                        *lo -= front as i64;
                    }
                    // Re-enter the in-range path.
                }
                CountLane::Map(map) => {
                    let slot = match map.entry(key.clone()) {
                        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                        std::collections::hash_map::Entry::Vacant(v) => {
                            if let Key::Str(s) = key {
                                self.key_payload_bytes += s.len();
                            }
                            v.insert(0)
                        }
                    };
                    let before = *slot;
                    *slot += n;
                    return before;
                }
            }
        }
    }

    /// Record one occurrence of `key`; returns the count *before* this
    /// observation (0 for a first occurrence) — exactly the `N_i` transition
    /// the GEE update (Algorithm 2) needs.
    pub fn observe(&mut self, key: &Key) -> u64 {
        self.observe_n(key, 1)
    }

    /// Record `n` occurrences of `key` at once (used when folding derived
    /// histograms in pipeline estimation). A no-op when `n == 0`.
    /// Returns the count before the observation.
    pub fn observe_n(&mut self, key: &Key, n: u64) -> u64 {
        if n == 0 {
            return self.count(key);
        }
        let before = self.bump(key, n);
        let after = before + n;
        self.total += n;
        self.sum_sq += (after as u128) * (after as u128) - (before as u128) * (before as u128);
        if before > 0 {
            let f = self
                .count_of_counts
                .get_mut(&before)
                .expect("count-of-counts must contain the old frequency");
            *f -= 1;
            if *f == 0 {
                self.count_of_counts.remove(&before);
            }
        }
        *self.count_of_counts.entry(after).or_insert(0) += 1;
        self.max_freq = self.max_freq.max(after);
        before
    }

    /// Current count `N_i` for `key` (0 if never seen).
    pub fn count(&self, key: &Key) -> u64 {
        match &self.counts {
            CountLane::Dense { lo, slots, .. } => match key {
                Key::Int(k) if *k >= *lo && ((*k - *lo) as u64) < slots.len() as u64 => {
                    slots[(*k - *lo) as usize]
                }
                _ => 0,
            },
            CountLane::Map(map) => map.get(key).copied().unwrap_or(0),
        }
    }

    /// Total observations `t`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct values `d`.
    pub fn distinct(&self) -> u64 {
        match &self.counts {
            CountLane::Dense { distinct, .. } => *distinct as u64,
            CountLane::Map(map) => map.len() as u64,
        }
    }

    /// `f_1`: the number of singleton values.
    pub fn singletons(&self) -> u64 {
        self.count_of_counts.get(&1).copied().unwrap_or(0)
    }

    /// The count-of-counts profile `(j, f_j)`, in unspecified order.
    pub fn frequency_classes(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.count_of_counts.iter().map(|(&j, &f)| (j, f))
    }

    /// The largest observed frequency `M` (0 when empty).
    pub fn max_frequency(&self) -> u64 {
        self.max_freq
    }

    /// `Σ N_i²` over all values.
    pub fn sum_squared_counts(&self) -> u128 {
        self.sum_sq
    }

    /// Squared coefficient of variation `γ²` of the group frequencies:
    /// `Var(N) / Mean(N)²`. Returns 0 when fewer than one distinct value.
    ///
    /// Maintained from `t`, `d` and `Σ N_i²`, i.e. O(1) to read — §4.2's
    /// requirement for the online estimator chooser.
    pub fn gamma_squared(&self) -> f64 {
        let d = self.distinct() as f64;
        if d == 0.0 || self.total == 0 {
            return 0.0;
        }
        let mean = self.total as f64 / d;
        let var = (self.sum_sq as f64 / d) - mean * mean;
        (var / (mean * mean)).max(0.0)
    }

    /// Iterate over `(key, count)` pairs (unspecified order). Keys are
    /// yielded by value: the dense lane materializes them from slot indices.
    pub fn iter(&self) -> impl Iterator<Item = (Key, u64)> + '_ {
        let (dense, map) = match &self.counts {
            CountLane::Dense { lo, slots, .. } => (Some((*lo, slots)), None),
            CountLane::Map(m) => (None, Some(m)),
        };
        dense
            .into_iter()
            .flat_map(|(lo, slots)| {
                slots
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(move |(i, &c)| (Key::Int(lo + i as i64), c))
            })
            .chain(
                map.into_iter()
                    .flat_map(|m| m.iter().map(|(k, &c)| (k.clone(), c))),
            )
    }

    /// Fold another histogram into this one: every aggregate (`t`, `d`,
    /// `f_j`, `Σ N_i²`, `M`) ends up exactly as if each underlying
    /// observation had been applied here directly. Per-key counts add, so
    /// the merge is associative and commutative — the property that lets
    /// partition-parallel workers build private fragments and combine them
    /// into a histogram identical to the serial build.
    pub fn merge(&mut self, other: &FreqHist) {
        for (key, n) in other.iter() {
            self.observe_n(&key, n);
        }
    }

    /// Bytes of live data — the "Mem. Used" column of the paper's Table 2.
    /// Hash lane: one `(Key, u64)` entry per distinct value plus string
    /// payloads. Dense lane: one `u64` slot per key in the covered span.
    pub fn memory_used(&self) -> usize {
        let body = match &self.counts {
            CountLane::Dense { slots, .. } => slots.len() * std::mem::size_of::<u64>(),
            CountLane::Map(map) => {
                let entry = std::mem::size_of::<Key>() + std::mem::size_of::<u64>();
                map.len() * entry
            }
        };
        std::mem::size_of::<Self>() + body + self.key_payload_bytes
    }

    /// Bytes reserved by the backing storage (capacity, not length) —
    /// the "Mem. Alloc." column of the paper's Table 2.
    pub fn memory_allocated(&self) -> usize {
        let body = match &self.counts {
            CountLane::Dense { slots, .. } => slots.capacity() * std::mem::size_of::<u64>(),
            CountLane::Map(map) => {
                // Hash table slots hold (Key, u64) pairs plus one control
                // byte each, sized to capacity.
                let slot = std::mem::size_of::<(Key, u64)>() + 1;
                map.capacity() * slot
            }
        };
        std::mem::size_of::<Self>() + body + self.key_payload_bytes
    }
}

impl<'a> FromIterator<&'a Key> for FreqHist {
    fn from_iter<I: IntoIterator<Item = &'a Key>>(iter: I) -> Self {
        let mut h = FreqHist::new();
        for k in iter {
            h.observe(k);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_of(keys: &[i64]) -> FreqHist {
        let mut h = FreqHist::new();
        for &k in keys {
            h.observe(&Key::Int(k));
        }
        h
    }

    #[test]
    fn observe_returns_prior_count() {
        let mut h = FreqHist::new();
        assert_eq!(h.observe(&Key::Int(1)), 0);
        assert_eq!(h.observe(&Key::Int(1)), 1);
        assert_eq!(h.observe(&Key::Int(2)), 0);
        assert_eq!(h.count(&Key::Int(1)), 2);
        assert_eq!(h.count(&Key::Int(3)), 0);
    }

    #[test]
    fn totals_and_distinct() {
        let h = hist_of(&[1, 1, 1, 2, 2, 3]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.distinct(), 3);
        assert_eq!(h.max_frequency(), 3);
    }

    #[test]
    fn count_of_counts_profile() {
        let h = hist_of(&[1, 1, 1, 2, 2, 3, 4]);
        // frequencies: {1:3, 2:2, 3:1, 4:1} → f_1 = 2, f_2 = 1, f_3 = 1
        let mut classes: Vec<(u64, u64)> = h.frequency_classes().collect();
        classes.sort_unstable();
        assert_eq!(classes, vec![(1, 2), (2, 1), (3, 1)]);
        assert_eq!(h.singletons(), 2);
    }

    #[test]
    fn count_of_counts_sums_match() {
        let h = hist_of(&[5, 5, 5, 5, 7, 7, 9, 11, 11, 11]);
        let d: u64 = h.frequency_classes().map(|(_, f)| f).sum();
        let t: u64 = h.frequency_classes().map(|(j, f)| j * f).sum();
        assert_eq!(d, h.distinct());
        assert_eq!(t, h.total());
    }

    #[test]
    fn sum_sq_incremental_matches_direct() {
        let h = hist_of(&[1, 1, 2, 2, 2, 3, 4, 4, 4, 4]);
        let direct: u128 = h.iter().map(|(_, c)| (c as u128) * (c as u128)).sum();
        assert_eq!(h.sum_squared_counts(), direct);
    }

    #[test]
    fn gamma_squared_zero_for_uniform() {
        // all frequencies equal → variance 0 → γ² = 0
        let h = hist_of(&[1, 2, 3, 4, 1, 2, 3, 4]);
        assert!(h.gamma_squared().abs() < 1e-12);
    }

    #[test]
    fn gamma_squared_grows_with_skew() {
        let uniform = hist_of(&(0..100).map(|i| i % 10).collect::<Vec<_>>());
        let mut skewed_keys = vec![0i64; 91];
        skewed_keys.extend(1..10);
        let skewed = hist_of(&skewed_keys);
        assert!(skewed.gamma_squared() > uniform.gamma_squared() + 1.0);
    }

    #[test]
    fn gamma_squared_matches_definition() {
        let h = hist_of(&[1, 1, 1, 2, 3]); // freqs 3,1,1
        let freqs = [3.0f64, 1.0, 1.0];
        let mean = freqs.iter().sum::<f64>() / 3.0;
        let var = freqs.iter().map(|f| (f - mean) * (f - mean)).sum::<f64>() / 3.0;
        let expect = var / (mean * mean);
        assert!((h.gamma_squared() - expect).abs() < 1e-12);
    }

    #[test]
    fn observe_n_equivalent_to_repeated_observe() {
        let mut a = FreqHist::new();
        let mut b = FreqHist::new();
        for _ in 0..5 {
            a.observe(&Key::Int(9));
        }
        a.observe(&Key::Int(2));
        b.observe_n(&Key::Int(9), 5);
        b.observe_n(&Key::Int(2), 1);
        b.observe_n(&Key::Int(3), 0); // no-op
        assert_eq!(a.total(), b.total());
        assert_eq!(a.distinct(), b.distinct());
        assert_eq!(a.sum_squared_counts(), b.sum_squared_counts());
        let sorted = |h: &FreqHist| {
            let mut v: Vec<_> = h.frequency_classes().collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sorted(&a), sorted(&b));
        assert_eq!(b.count(&Key::Int(3)), 0);
    }

    #[test]
    fn merge_equals_serial_observation_order_independently() {
        let all = [1i64, 1, 1, 2, 2, 3, 4, 4, 5, 5, 5, 5];
        let serial = hist_of(&all);
        // Split into fragments, merge in both orders.
        let a = hist_of(&all[..5]);
        let b = hist_of(&all[5..]);
        for (x, y) in [(&a, &b), (&b, &a)] {
            let mut merged = x.clone();
            merged.merge(y);
            assert_eq!(merged.total(), serial.total());
            assert_eq!(merged.distinct(), serial.distinct());
            assert_eq!(merged.max_frequency(), serial.max_frequency());
            assert_eq!(merged.sum_squared_counts(), serial.sum_squared_counts());
            let sorted = |h: &FreqHist| {
                let mut v: Vec<_> = h.frequency_classes().collect();
                v.sort_unstable();
                v
            };
            assert_eq!(sorted(&merged), sorted(&serial));
            for (k, c) in serial.iter() {
                assert_eq!(merged.count(&k), c);
            }
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let h = hist_of(&[7, 7, 8]);
        let mut merged = h.clone();
        merged.merge(&FreqHist::new());
        assert_eq!(merged.total(), h.total());
        let mut empty = FreqHist::new();
        empty.merge(&h);
        assert_eq!(empty.total(), h.total());
        assert_eq!(empty.distinct(), h.distinct());
    }

    #[test]
    fn string_keys_and_memory_accounting() {
        let mut h = FreqHist::new();
        let used0 = h.memory_used();
        h.observe(&Key::from("abcdefgh"));
        h.observe(&Key::from("abcdefgh"));
        h.observe(&Key::Int(1));
        assert!(h.memory_used() > used0);
        assert!(h.memory_allocated() >= h.memory_used() - std::mem::size_of::<FreqHist>());
        // duplicate string key payload counted once
        let one_str = h.memory_used();
        let mut h2 = FreqHist::new();
        h2.observe(&Key::from("abcdefgh"));
        h2.observe(&Key::Int(1));
        assert_eq!(
            one_str - 2 * (std::mem::size_of::<Key>() + 8) - 8,
            h2.memory_used() - 2 * (std::mem::size_of::<Key>() + 8) - 8
        );
    }

    #[test]
    fn empty_histogram_edge_cases() {
        let h = FreqHist::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.distinct(), 0);
        assert_eq!(h.singletons(), 0);
        assert_eq!(h.max_frequency(), 0);
        assert_eq!(h.gamma_squared(), 0.0);
        assert_eq!(h.frequency_classes().count(), 0);
    }

    #[test]
    fn from_iterator() {
        let keys: Vec<Key> = [1i64, 1, 2].iter().map(|&i| Key::Int(i)).collect();
        let h: FreqHist = keys.iter().collect();
        assert_eq!(h.total(), 3);
        assert_eq!(h.distinct(), 2);
    }

    /// The dense lane must be observationally identical to the hash lane.
    fn assert_same(a: &FreqHist, b: &FreqHist, keys: &[Key]) {
        assert_eq!(a.total(), b.total());
        assert_eq!(a.distinct(), b.distinct());
        assert_eq!(a.max_frequency(), b.max_frequency());
        assert_eq!(a.sum_squared_counts(), b.sum_squared_counts());
        assert_eq!(a.singletons(), b.singletons());
        let sorted = |h: &FreqHist| {
            let mut v: Vec<_> = h.frequency_classes().collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sorted(a), sorted(b));
        for k in keys {
            assert_eq!(a.count(k), b.count(k));
        }
        let pairs = |h: &FreqHist| {
            let mut v: Vec<_> = h.iter().map(|(k, c)| (format!("{k:?}"), c)).collect();
            v.sort();
            v
        };
        assert_eq!(pairs(a), pairs(b));
    }

    #[test]
    fn dense_lane_front_extension_and_negative_keys() {
        let seq = [10i64, 500, -3, 10, -3, 0, -100, 499, -3];
        let mut dense = FreqHist::new();
        let mut map = FreqHist::new();
        map.observe(&Key::from("force-map-lane"));
        let mut befores = Vec::new();
        for &v in &seq {
            befores.push((dense.observe(&Key::Int(v)), map.observe(&Key::Int(v))));
        }
        for (d, m) in befores {
            assert_eq!(d, m);
        }
        assert_eq!(dense.total(), seq.len() as u64);
        assert_eq!(dense.count(&Key::Int(-3)), 3);
        assert_eq!(dense.count(&Key::Int(12345)), 0);
        assert_eq!(dense.distinct(), 6);
    }

    #[test]
    fn dense_lane_spills_on_wide_span() {
        let mut h = FreqHist::new();
        h.observe(&Key::Int(0));
        h.observe(&Key::Int(0));
        // Span of 10M slots exceeds the dense budget → hash lane.
        assert_eq!(h.observe(&Key::Int(10_000_000)), 0);
        assert_eq!(h.count(&Key::Int(0)), 2);
        assert_eq!(h.count(&Key::Int(10_000_000)), 1);
        assert_eq!(h.total(), 3);
        assert_eq!(h.distinct(), 2);
        assert_eq!(h.sum_squared_counts(), 5);
        // Extreme spans must not overflow the growth arithmetic.
        h.observe(&Key::Int(i64::MIN));
        h.observe(&Key::Int(i64::MAX));
        assert_eq!(h.distinct(), 4);
    }

    #[test]
    fn dense_lane_spills_on_mixed_key_types() {
        let mut h = FreqHist::new();
        h.observe(&Key::Int(7));
        h.observe(&Key::Int(7));
        h.observe(&Key::from("abc"));
        assert_eq!(h.observe(&Key::Int(7)), 2);
        assert_eq!(h.count(&Key::from("abc")), 1);
        assert_eq!(h.distinct(), 2);
        let mut pairs: Vec<_> = h.iter().map(|(k, c)| (format!("{k:?}"), c)).collect();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                (format!("{:?}", Key::Int(7)), 3),
                (format!("{:?}", Key::from("abc")), 1),
            ]
        );
    }

    #[test]
    fn dense_lane_matches_map_lane_under_random_workload() {
        // Deterministic LCG over a moderate span with duplicates.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut keys = Vec::new();
        for _ in 0..2000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            keys.push(Key::Int(((state >> 33) % 700) as i64 - 350));
        }
        let mut dense = FreqHist::new();
        let mut map = FreqHist::new();
        map.observe(&Key::from("force-map-lane"));
        for k in &keys {
            dense.observe(k);
            map.observe_n(k, 1);
        }
        // Remove the lane-forcing sentinel's contribution before comparing.
        let mut map_clean = FreqHist::new();
        for (k, c) in map.iter() {
            if !matches!(k, Key::Str(_)) {
                map_clean.observe_n(&k, c);
            }
        }
        assert_same(&dense, &map_clean, &keys);
    }
}
