//! Online choice between the GEE and MLE estimators (§4.2).
//!
//! GEE is cheap and accurate on high-skew data but overestimates badly on
//! low-skew data with many groups; the MLE estimator is the reverse. The
//! paper measures skew with the squared coefficient of variation `γ²` of
//! the observed group frequencies — incrementally maintainable, hence
//! cheap — and thresholds it at `τ = 10`: `γ² < τ → MLE`, else GEE.

use crate::freq_hist::FreqHist;

/// The paper's empirically chosen threshold `τ` on `γ²`.
pub const DEFAULT_TAU: f64 = 10.0;

/// Which distinct-value estimator to trust at the moment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimatorChoice {
    /// Guaranteed-Error Estimator — high-skew data.
    Gee,
    /// Maximum-likelihood estimator — low-skew data.
    Mle,
}

impl EstimatorChoice {
    /// Short label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            EstimatorChoice::Gee => "GEE",
            EstimatorChoice::Mle => "MLE",
        }
    }
}

/// Choose an estimator from the skew measure: MLE when `γ² < τ`, GEE
/// otherwise.
pub fn choose_estimator(gamma_squared: f64, tau: f64) -> EstimatorChoice {
    if gamma_squared < tau {
        EstimatorChoice::Mle
    } else {
        EstimatorChoice::Gee
    }
}

/// Choose an estimator directly from a frequency histogram with the paper's
/// default threshold.
pub fn choose_for_histogram(hist: &FreqHist) -> EstimatorChoice {
    choose_estimator(hist.gamma_squared(), DEFAULT_TAU)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_types::Key;

    #[test]
    fn thresholding() {
        assert_eq!(choose_estimator(0.0, 10.0), EstimatorChoice::Mle);
        assert_eq!(choose_estimator(9.99, 10.0), EstimatorChoice::Mle);
        assert_eq!(choose_estimator(10.0, 10.0), EstimatorChoice::Gee);
        assert_eq!(choose_estimator(1e6, 10.0), EstimatorChoice::Gee);
    }

    #[test]
    fn uniform_data_selects_mle() {
        let mut h = FreqHist::new();
        for i in 0..10_000 {
            h.observe(&Key::Int(i % 500));
        }
        assert_eq!(choose_for_histogram(&h), EstimatorChoice::Mle);
    }

    #[test]
    fn highly_skewed_data_selects_gee() {
        let mut h = FreqHist::new();
        // one value dominates among many rare values
        for _ in 0..9_000 {
            h.observe(&Key::Int(0));
        }
        for i in 1..1_000 {
            h.observe(&Key::Int(i));
        }
        assert!(h.gamma_squared() > DEFAULT_TAU);
        assert_eq!(choose_for_histogram(&h), EstimatorChoice::Gee);
    }

    #[test]
    fn labels() {
        assert_eq!(EstimatorChoice::Gee.label(), "GEE");
        assert_eq!(EstimatorChoice::Mle.label(), "MLE");
    }
}
