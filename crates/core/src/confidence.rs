//! Confidence machinery for online estimates (§4.1 of the paper).
//!
//! The paper derives per-value confidence from the normal approximation to
//! the binomial: after `t` observations, `p̂ ± Z_α √(p̂(1−p̂)/t)`, and bounds
//! the half-width by `β = Z_α / (2√t)` using `p(1−p) ≤ 1/4`. For the
//! composite join estimates we additionally provide the standard
//! empirical-variance CLT interval (via [`RunningMoments`]) — the paper's
//! footnote 1 notes such strengthened limit-theorem techniques "can be
//! easily adapted".

/// `Z_α` for a two-sided confidence level `alpha ∈ (0, 1)`, i.e. the
/// `(1+α)/2` quantile of the standard normal.
///
/// Uses Acklam's rational approximation of the inverse normal CDF
/// (relative error < 1.15e-9), so no tables are needed.
pub fn z_alpha(alpha: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&alpha),
        "confidence level must be in [0, 1), got {alpha}"
    );
    inverse_normal_cdf(0.5 + alpha / 2.0)
}

/// Inverse standard normal CDF (probit), Acklam's approximation.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p) && p > 0.0, "p must be in (0,1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

/// The distribution-free half-width bound `β = Z_α / (2√t)` on a fraction
/// estimate after `t` observations (§4.1). Returns `∞` for `t == 0`.
pub fn beta(t: u64, z: f64) -> f64 {
    if t == 0 {
        f64::INFINITY
    } else {
        z / (2.0 * (t as f64).sqrt())
    }
}

/// A symmetric confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    pub estimate: f64,
    pub lo: f64,
    pub hi: f64,
}

impl ConfidenceInterval {
    /// Interval from a point estimate and half-width, clamping the lower
    /// bound at zero (cardinalities are non-negative).
    pub fn around(estimate: f64, half_width: f64) -> Self {
        ConfidenceInterval {
            estimate,
            lo: (estimate - half_width).max(0.0),
            hi: estimate + half_width,
        }
    }

    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether a value lies inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        (self.lo..=self.hi).contains(&v)
    }

    /// Binomial-proportion interval `p̂ ± z √(p̂(1−p̂)/t)` (§4.1).
    pub fn binomial_proportion(successes: u64, t: u64, z: f64) -> Self {
        if t == 0 {
            return ConfidenceInterval {
                estimate: 0.0,
                lo: 0.0,
                hi: 1.0,
            };
        }
        let p = successes as f64 / t as f64;
        let hw = z * (p * (1.0 - p) / t as f64).sqrt();
        ConfidenceInterval {
            estimate: p,
            lo: (p - hw).max(0.0),
            hi: (p + hw).min(1.0),
        }
    }
}

/// Online mean/variance accumulator (Welford's algorithm).
///
/// Join estimates of the form `|S|/t · Σ X_i` are scaled sample means; the
/// CLT interval for the mean uses the running variance maintained here in
/// `O(1)` per observation.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningMoments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningMoments::default()
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard error of the mean, `√(var/n)`.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            f64::INFINITY
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Combine with an independently accumulated set of observations
    /// (Chan et al.'s pairwise update), as if every observation folded into
    /// `other` had been pushed here. Counts and means are exact; `m2`
    /// combines up to floating-point rounding, so merged variances agree
    /// with the serial accumulation to machine precision — good enough for
    /// confidence intervals, while cardinality *estimates* (which must be
    /// bit-reproducible) are carried in integer sums elsewhere.
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        self.mean += delta * nb / n;
        self.m2 += other.m2 + delta * delta * na * nb / n;
        self.n += other.n;
    }

    /// CLT confidence interval for the mean at `z`.
    pub fn mean_ci(&self, z: f64) -> ConfidenceInterval {
        if self.n == 0 {
            return ConfidenceInterval {
                estimate: 0.0,
                lo: 0.0,
                hi: f64::INFINITY,
            };
        }
        ConfidenceInterval::around(self.mean, z * self.std_error())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_alpha_matches_standard_table() {
        // classic two-sided z values
        assert!((z_alpha(0.90) - 1.6449).abs() < 1e-3);
        assert!((z_alpha(0.95) - 1.9600).abs() < 1e-3);
        assert!((z_alpha(0.99) - 2.5758).abs() < 1e-3);
        // paper: "for α = 99.99%, Z_α = 4" (rounded)
        assert!((z_alpha(0.9999) - 3.8906).abs() < 1e-3);
    }

    #[test]
    fn inverse_normal_cdf_symmetry_and_median() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        for p in [0.001, 0.01, 0.1, 0.3] {
            let lo = inverse_normal_cdf(p);
            let hi = inverse_normal_cdf(1.0 - p);
            assert!((lo + hi).abs() < 1e-7, "p={p}: {lo} vs {hi}");
            assert!(lo < 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn z_alpha_rejects_out_of_range() {
        z_alpha(1.5);
    }

    #[test]
    fn beta_shrinks_with_t() {
        let z = z_alpha(0.95);
        assert_eq!(beta(0, z), f64::INFINITY);
        assert!(beta(100, z) > beta(10_000, z));
        // β = z / (2√t): quadrupling t halves β
        assert!((beta(100, z) / beta(400, z) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn binomial_proportion_interval_covers_truth() {
        // p = 0.3, t = 1000: interval should cover truth comfortably
        let ci = ConfidenceInterval::binomial_proportion(300, 1000, z_alpha(0.99));
        assert!(ci.contains(0.3));
        assert!(ci.width() < 0.1);
        // clamped to [0,1]
        let ci = ConfidenceInterval::binomial_proportion(0, 10, 4.0);
        assert_eq!(ci.lo, 0.0);
        let ci = ConfidenceInterval::binomial_proportion(10, 10, 4.0);
        assert_eq!(ci.hi, 1.0);
        // empty
        let ci = ConfidenceInterval::binomial_proportion(0, 0, 4.0);
        assert_eq!((ci.lo, ci.hi), (0.0, 1.0));
    }

    #[test]
    fn interval_around_clamps_at_zero() {
        let ci = ConfidenceInterval::around(5.0, 10.0);
        assert_eq!(ci.lo, 0.0);
        assert_eq!(ci.hi, 15.0);
        assert!(ci.contains(0.0));
        assert!(!ci.contains(16.0));
    }

    #[test]
    fn running_moments_match_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = RunningMoments::new();
        for &x in &xs {
            m.push(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.variance() - 4.0).abs() < 1e-12);
        assert!((m.std_error() - (4.0f64 / 8.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn running_moments_edge_cases() {
        let m = RunningMoments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.std_error(), f64::INFINITY);
        assert_eq!(m.mean_ci(2.0).hi, f64::INFINITY);
        let mut m = RunningMoments::new();
        m.push(3.0);
        assert_eq!(m.variance(), 0.0);
    }

    #[test]
    fn merged_moments_match_serial_accumulation() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let mut serial = RunningMoments::new();
        for &x in &xs {
            serial.push(x);
        }
        for split in [0, 1, 250, 999, 1000] {
            let (left, right) = xs.split_at(split);
            let mut a = RunningMoments::new();
            let mut b = RunningMoments::new();
            left.iter().for_each(|&x| a.push(x));
            right.iter().for_each(|&x| b.push(x));
            a.merge(&b);
            assert_eq!(a.count(), serial.count());
            assert!((a.mean() - serial.mean()).abs() < 1e-9, "split {split}");
            assert!(
                (a.variance() - serial.variance()).abs() < 1e-6,
                "split {split}: {} vs {}",
                a.variance(),
                serial.variance()
            );
        }
    }

    #[test]
    fn merge_is_order_insensitive() {
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        [1.0, 2.0, 3.0].iter().for_each(|&x| a.push(x));
        [10.0, 20.0].iter().for_each(|&x| b.push(x));
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab.count(), ba.count());
        assert!((ab.mean() - ba.mean()).abs() < 1e-12);
        assert!((ab.variance() - ba.variance()).abs() < 1e-9);
    }

    #[test]
    fn mean_ci_narrows_with_samples() {
        let mut small = RunningMoments::new();
        let mut large = RunningMoments::new();
        for i in 0..10 {
            small.push((i % 5) as f64);
        }
        for i in 0..10_000 {
            large.push((i % 5) as f64);
        }
        let z = z_alpha(0.95);
        assert!(large.mean_ci(z).width() < small.mean_ci(z).width());
        assert!(large.mean_ci(z).contains(2.0));
    }
}
