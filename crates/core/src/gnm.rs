//! The `getnext()` model (gnm) of query progress (§3, §4.4).
//!
//! A query's progress is `C(Q)/T(Q)` where `C(Q) = Σ K_i` counts the
//! `getnext()` calls made so far over all operators and `T(Q) = Σ N_i` the
//! calls over the query's lifetime. `C(Q)` is observable; `T(Q)` is the sum
//! of per-pipeline totals `T(p)`:
//!
//! - **finished** pipelines: `T(p)` known exactly,
//! - the **running** pipeline: `T(p)` from the online estimators of this
//!   crate,
//! - **pending** pipelines: `T(p)` from refined optimizer estimates,
//!   clamped to `[lower, upper]` bounds as in Chaudhuri et al.
//!
//! The executor summarizes each pipeline into a [`PipelineProgress`] and
//! hands the set to [`ProgressSnapshot`], which does the gnm arithmetic.

/// Execution state of a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineState {
    /// All operators in the pipeline have completed.
    Finished,
    /// Currently executing.
    Running,
    /// Not yet started.
    Pending,
}

/// Progress summary for one pipeline.
#[derive(Debug, Clone)]
pub struct PipelineProgress {
    /// Pipeline identifier (assigned by the planner's decomposition).
    pub id: usize,
    /// Execution state.
    pub state: PipelineState,
    /// `C(p)`: `getnext()` calls made so far over the pipeline's operators.
    pub done: u64,
    /// `T(p)`: estimated total `getnext()` calls over the pipeline's
    /// lifetime (exact when finished).
    pub total_estimate: f64,
    /// Hard lower bound on `T(p)` (at least the calls already made).
    pub lower: f64,
    /// Upper bound on `T(p)` (`∞` when nothing better is known).
    pub upper: f64,
}

impl PipelineProgress {
    /// A finished pipeline with exact totals.
    pub fn finished(id: usize, total: u64) -> Self {
        PipelineProgress {
            id,
            state: PipelineState::Finished,
            done: total,
            total_estimate: total as f64,
            lower: total as f64,
            upper: total as f64,
        }
    }

    /// A running pipeline with an online total estimate.
    pub fn running(id: usize, done: u64, total_estimate: f64) -> Self {
        PipelineProgress {
            id,
            state: PipelineState::Running,
            done,
            total_estimate,
            lower: done as f64,
            upper: f64::INFINITY,
        }
    }

    /// A pending pipeline with an optimizer estimate.
    pub fn pending(id: usize, total_estimate: f64) -> Self {
        PipelineProgress {
            id,
            state: PipelineState::Pending,
            done: 0,
            total_estimate,
            lower: 0.0,
            upper: f64::INFINITY,
        }
    }

    /// Attach refinement bounds.
    pub fn with_bounds(mut self, lower: f64, upper: f64) -> Self {
        self.lower = lower;
        self.upper = upper;
        self
    }

    /// `T(p)` after clamping the estimate to the bounds and to the work
    /// already observed.
    pub fn total(&self) -> f64 {
        self.total_estimate
            .clamp(self.lower, self.upper.max(self.lower))
            .max(self.done as f64)
    }
}

/// A point-in-time gnm progress snapshot over all pipelines of a query.
#[derive(Debug, Clone)]
pub struct ProgressSnapshot {
    pipelines: Vec<PipelineProgress>,
    /// Monotonicity floor: the highest fraction previously reported for
    /// this query. A concurrent sampler can catch `C(Q)` and `T(Q)` between
    /// a batch's counter advance and its estimate publication (they live in
    /// separate atomics), momentarily lowering the raw ratio; the floor
    /// keeps the *reported* fraction non-decreasing. Zero (the default)
    /// leaves the raw ratio untouched.
    floor: f64,
}

impl ProgressSnapshot {
    /// Assemble a snapshot from per-pipeline summaries.
    pub fn new(pipelines: Vec<PipelineProgress>) -> Self {
        ProgressSnapshot {
            pipelines,
            floor: 0.0,
        }
    }

    /// Attach a monotonicity floor: [`fraction`](Self::fraction) reports at
    /// least this value (clamped to `[0, 1]`).
    pub fn with_floor(mut self, floor: f64) -> Self {
        self.floor = floor.clamp(0.0, 1.0);
        self
    }

    /// The per-pipeline summaries.
    pub fn pipelines(&self) -> &[PipelineProgress] {
        &self.pipelines
    }

    /// `C(Q)`: total `getnext()` calls made so far.
    pub fn current(&self) -> u64 {
        self.pipelines.iter().map(|p| p.done).sum()
    }

    /// `T(Q)`: estimated total `getnext()` calls over the query.
    pub fn total(&self) -> f64 {
        self.pipelines.iter().map(|p| p.total()).sum()
    }

    /// gnm progress `C(Q)/T(Q)`, clamped to `[0, 1]` and to the
    /// monotonicity floor (if one was attached). An empty snapshot with no
    /// floor reports 0.
    pub fn fraction(&self) -> f64 {
        self.raw_fraction().max(self.floor)
    }

    /// The unclamped-by-floor ratio `C(Q)/T(Q)` in `[0, 1]`.
    pub fn raw_fraction(&self) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            return 0.0;
        }
        (self.current() as f64 / total).clamp(0.0, 1.0)
    }

    /// Whether every pipeline has finished.
    pub fn is_complete(&self) -> bool {
        !self.pipelines.is_empty()
            && self
                .pipelines
                .iter()
                .all(|p| p.state == PipelineState::Finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_combines_pipeline_states() {
        let snap = ProgressSnapshot::new(vec![
            PipelineProgress::finished(0, 100),
            PipelineProgress::running(1, 50, 100.0),
            PipelineProgress::pending(2, 200.0),
        ]);
        assert_eq!(snap.current(), 150);
        assert!((snap.total() - 400.0).abs() < 1e-9);
        assert!((snap.fraction() - 0.375).abs() < 1e-9);
        assert!(!snap.is_complete());
    }

    #[test]
    fn complete_query_reports_one() {
        let snap = ProgressSnapshot::new(vec![
            PipelineProgress::finished(0, 10),
            PipelineProgress::finished(1, 20),
        ]);
        assert_eq!(snap.fraction(), 1.0);
        assert!(snap.is_complete());
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let snap = ProgressSnapshot::new(vec![]);
        assert_eq!(snap.fraction(), 0.0);
        assert!(!snap.is_complete());
    }

    #[test]
    fn floor_clamps_fraction_from_below_only() {
        let snap = ProgressSnapshot::new(vec![PipelineProgress::running(0, 25, 100.0)]);
        assert_eq!(snap.fraction(), 0.25);
        let floored = snap.clone().with_floor(0.4);
        assert_eq!(floored.fraction(), 0.4);
        assert_eq!(floored.raw_fraction(), 0.25);
        // a floor below the raw ratio changes nothing, and the floor never
        // pushes past 1.0
        assert_eq!(snap.clone().with_floor(0.1).fraction(), 0.25);
        assert_eq!(snap.with_floor(7.0).fraction(), 1.0);
    }

    #[test]
    fn running_total_never_below_done() {
        // Underestimating estimator must not push progress past 1.
        let p = PipelineProgress::running(0, 100, 10.0);
        assert_eq!(p.total(), 100.0);
        let snap = ProgressSnapshot::new(vec![p]);
        assert!(snap.fraction() <= 1.0);
    }

    #[test]
    fn bounds_clamp_estimates() {
        let p = PipelineProgress::pending(0, 1_000_000.0).with_bounds(10.0, 500.0);
        assert_eq!(p.total(), 500.0);
        let p = PipelineProgress::pending(0, 1.0).with_bounds(10.0, 500.0);
        assert_eq!(p.total(), 10.0);
        // degenerate bounds (upper < lower) resolve to lower
        let p = PipelineProgress::pending(0, 5.0).with_bounds(10.0, 2.0);
        assert_eq!(p.total(), 10.0);
    }

    #[test]
    fn fraction_is_monotone_under_progress() {
        let mut fractions = Vec::new();
        for done in [0u64, 25, 50, 75, 100] {
            let snap = ProgressSnapshot::new(vec![
                PipelineProgress::finished(0, 40),
                PipelineProgress::running(1, done, 100.0),
            ]);
            fractions.push(snap.fraction());
        }
        for w in fractions.windows(2) {
            assert!(w[1] >= w[0], "{fractions:?}");
        }
    }
}
