//! Vendored, dependency-free pseudo-random number generation.
//!
//! The workspace must build in offline/vendorless environments where no
//! crates-io registry is reachable, so this crate replaces the external
//! `rand` dependency with a small xoshiro256++ generator exposing the exact
//! API subset qprog uses (`StdRng`, [`SeedableRng::seed_from_u64`],
//! [`RngExt::random_range`] over integer/float ranges, and
//! [`seq::SliceRandom::shuffle`]). Workspace manifests alias it as `rand`
//! (`rand = { package = "qprog-prng", ... }`) so call sites are unchanged.
//!
//! The generator is deterministic per seed, statistically solid for data
//! generation and randomized testing, and **not** cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed (the only constructor qprog uses).
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling and other convenience methods, blanket-implemented for
/// every [`RngCore`].
pub trait RngExt: RngCore + Sized {
    /// A uniform sample from `range` (`Range` or `RangeInclusive` over
    /// `i64`/`u64`/`usize`/`f64`). The output type parameter lets integer
    /// literal inference flow from the expected type, as with `rand`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }
}

impl<T: RngCore + Sized> RngExt for T {}

/// A range that can produce a uniform sample of type `T`.
pub trait SampleRange<T> {
    /// Draw one uniform sample. Panics on an empty range, matching `rand`.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

/// Uniform integer in `[0, bound)` without modulo bias (Lemire's method
/// with rejection).
fn uniform_below<G: RngCore>(rng: &mut G, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= lo.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                let off = uniform_below(rng, span as u64);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(i64, u64, usize, u32, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.random_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + rng.random_f64() * (end - start)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ by Blackman & Vigna: 256-bit state, period 2^256 − 1,
    /// excellent statistical quality for non-cryptographic use.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the reference seeding for xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

pub mod seq {
    //! Sequence-related randomness.

    use super::{uniform_below, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle.
        fn shuffle<G: RngCore>(&mut self, rng: &mut G);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<G: RngCore>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<i64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..32).map(|_| r.random_range(0..1000i64)).collect()
        };
        let b: Vec<i64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..32).map(|_| r.random_range(0..1000i64)).collect()
        };
        let c: Vec<i64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..32).map(|_| r.random_range(0..1000i64)).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.random_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let w = r.random_range(3usize..=9);
            assert!((3..=9).contains(&w));
            let f = r.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = r.random_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&g));
        }
    }

    #[test]
    fn range_coverage_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u64> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "100 elements virtually never shuffle to identity"
        );
    }

    #[test]
    fn inclusive_full_width_range() {
        let mut r = StdRng::seed_from_u64(9);
        let _ = r.random_range(0u64..=u64::MAX);
        let _ = r.random_range(u64::MAX..=u64::MAX);
    }
}
