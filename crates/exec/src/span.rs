//! Causal span taxonomy: typed begin/end markers for the query lifecycle.
//!
//! A *span* is a named interval in a query's life — submit, journal
//! append, a queue-wait park, a backoff park, one dispatch attempt, the
//! terminal finalization — carried on the same trace port as every other
//! event ([`TraceEventKind::SpanStart`] / [`TraceEventKind::SpanEnd`]).
//! Spans form a tree: each start names its parent, the `query` root covers
//! the whole submit→terminal life, and sibling lifecycle spans tile it
//! gaplessly so queue-wait + retry-park + execution durations reconcile
//! with the journal's recorded wall time.
//!
//! Execution-side detail (operator phases, per-operator and per-worker
//! intervals) is *derived* from the events the engine already publishes
//! (`PhaseTransition`, `OperatorWallTime`, `WorkerWallTime` — all stamped
//! at the governor's amortized checkpoint stride), so the traced hot path
//! gains no new atomics from span support. The assembly and Chrome
//! trace-event export live in `qprog-obs::spans`.
//!
//! [`TraceEventKind::SpanStart`]: crate::trace::TraceEventKind::SpanStart
//! [`TraceEventKind::SpanEnd`]: crate::trace::TraceEventKind::SpanEnd

use std::fmt;

/// Sentinel parent id for a root span (no parent).
pub const NO_PARENT: u32 = u32::MAX;

/// What a lifecycle span covers. The `arg` field of
/// [`SpanStart`](crate::trace::TraceEventKind::SpanStart) qualifies the
/// kind: the attempt number for [`QueueWait`](SpanKind::QueueWait) /
/// [`BackoffPark`](SpanKind::BackoffPark) / [`Dispatch`](SpanKind::Dispatch)
/// (0-based completed attempts at start time), unused (0) otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Root: the query's whole life from submit to declared terminal.
    Query,
    /// Submit-side work: validation, admission control, id allocation.
    Submit,
    /// The crash-safety WAL append inside submit.
    JournalAppend,
    /// Parked in the tenant-fair ready queue waiting for a worker (one
    /// span per DRR park/unpark, including post-backoff re-parks).
    QueueWait,
    /// Parked for retry backoff after a transient failure.
    BackoffPark,
    /// One execution attempt, dispatch to outcome.
    Dispatch,
    /// Terminal processing: outcome classification, journal terminal
    /// append, eviction bookkeeping.
    Finalize,
}

impl SpanKind {
    /// Stable lowercase name (used by the JSONL encoding, the Chrome
    /// trace-event export, and metrics labels).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::Submit => "submit",
            SpanKind::JournalAppend => "journal_append",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::BackoffPark => "backoff_park",
            SpanKind::Dispatch => "dispatch",
            SpanKind::Finalize => "finalize",
        }
    }

    /// Inverse of [`SpanKind::name`], used by the trace replay parser.
    pub fn from_name(name: &str) -> Option<SpanKind> {
        Some(match name {
            "query" => SpanKind::Query,
            "submit" => SpanKind::Submit,
            "journal_append" => SpanKind::JournalAppend,
            "queue_wait" => SpanKind::QueueWait,
            "backoff_park" => SpanKind::BackoffPark,
            "dispatch" => SpanKind::Dispatch,
            "finalize" => SpanKind::Finalize,
            _ => return None,
        })
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        let kinds = [
            SpanKind::Query,
            SpanKind::Submit,
            SpanKind::JournalAppend,
            SpanKind::QueueWait,
            SpanKind::BackoffPark,
            SpanKind::Dispatch,
            SpanKind::Finalize,
        ];
        for k in kinds {
            assert_eq!(SpanKind::from_name(k.name()), Some(k), "{k}");
            assert_eq!(format!("{k}"), k.name());
        }
        assert_eq!(SpanKind::from_name("bogus"), None);
    }
}
