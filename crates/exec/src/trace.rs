//! Execution event tracing: the engine-side port of the observability
//! subsystem.
//!
//! Operators publish [`TraceEvent`]s through an [`EventBus`] at **phase
//! boundaries and estimate refinements only** — never per tuple — so the
//! paper's "couple of relaxed atomics per `getnext()`" cost model is
//! preserved. The bus itself is immutable after construction (no locks on
//! the publish path); sinks decide what to do with each event. The
//! higher-level sinks (bounded ring buffer, JSONL writer, progress
//! validator) and the timeline/EXPLAIN ANALYZE consumers live in the
//! `qprog-obs` crate; this module only defines the event taxonomy, the sink
//! trait, and the bus so the executor does not depend on the observability
//! stack.
//!
//! With no bus attached (the default), tracing costs a single `Option`
//! check at each *already amortized* publication site — the overhead
//! benches (`table3`/`table4a`) run in exactly this configuration.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Execution phase of a blocking operator, as exposed in
/// [`TraceEventKind::PhaseTransition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Not yet started (the implicit phase before the first transition).
    Init,
    /// Hash join: draining + partitioning the build input.
    Build,
    /// Hash join: draining + partitioning the probe input (where `once`
    /// estimation converges, §4.1.1).
    Probe,
    /// Hash join: partition-wise joining (output production).
    PartitionJoin,
    /// Merge join / sort: consuming and sorting an input.
    SortInput,
    /// Merge join: merging the sorted runs.
    Merge,
    /// Aggregation: consuming the input into groups.
    Accumulate,
    /// Producing output rows (generic final phase).
    Emit,
}

impl Phase {
    /// Stable lowercase name (used by the JSONL sink and EXPLAIN ANALYZE).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Init => "init",
            Phase::Build => "build",
            Phase::Probe => "probe",
            Phase::PartitionJoin => "partition_join",
            Phase::SortInput => "sort_input",
            Phase::Merge => "merge",
            Phase::Accumulate => "accumulate",
            Phase::Emit => "emit",
        }
    }

    /// Inverse of [`Phase::name`], used by the trace replay parser.
    pub fn from_name(name: &str) -> Option<Phase> {
        Some(match name {
            "init" => Phase::Init,
            "build" => Phase::Build,
            "probe" => Phase::Probe,
            "partition_join" => Phase::PartitionJoin,
            "sort_input" => Phase::SortInput,
            "merge" => Phase::Merge,
            "accumulate" => Phase::Accumulate,
            "emit" => Phase::Emit,
            _ => return None,
        })
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which estimator produced a refined `N_i` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimateSource {
    /// The compile-time optimizer estimate (published at registration).
    Optimizer,
    /// An online estimator (framework / dne / byte) during execution.
    Online,
    /// The exact count, pinned when the operator finishes.
    Exact,
}

impl EstimateSource {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            EstimateSource::Optimizer => "optimizer",
            EstimateSource::Online => "online",
            EstimateSource::Exact => "exact",
        }
    }

    /// Inverse of [`EstimateSource::name`], used by the trace replay parser.
    pub fn from_name(name: &str) -> Option<EstimateSource> {
        Some(match name {
            "optimizer" => EstimateSource::Optimizer,
            "online" => EstimateSource::Online,
            "exact" => EstimateSource::Exact,
            _ => return None,
        })
    }
}

impl fmt::Display for EstimateSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a query terminated before draining its root operator, as carried by
/// [`TraceEventKind::QueryAborted`]. Mirrors the
/// [`ExecError`](qprog_types::ExecError) taxonomy plus a catch-all for
/// organic execution errors, flattened to `Copy` data so trace events stay
/// allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortKind {
    /// Cooperative cancellation via the query's token.
    Cancelled,
    /// The wall-clock deadline elapsed.
    DeadlineExceeded,
    /// A hard per-query resource budget was breached.
    BudgetExceeded,
    /// An operator (or worker thread) panicked and was isolated.
    OperatorPanic,
    /// A fault-injection site fired (failpoints builds).
    Injected,
    /// Any other execution error (type error, division by zero, ...).
    Error,
}

impl AbortKind {
    /// Stable lowercase name (used by the JSONL sink, metrics labels, and
    /// the monitor's terminal-state rendering).
    pub fn name(self) -> &'static str {
        match self {
            AbortKind::Cancelled => "cancelled",
            AbortKind::DeadlineExceeded => "deadline",
            AbortKind::BudgetExceeded => "budget",
            AbortKind::OperatorPanic => "panic",
            AbortKind::Injected => "injected",
            AbortKind::Error => "error",
        }
    }

    /// Inverse of [`AbortKind::name`], used by the trace replay parser.
    pub fn from_name(name: &str) -> Option<AbortKind> {
        Some(match name {
            "cancelled" => AbortKind::Cancelled,
            "deadline" => AbortKind::DeadlineExceeded,
            "budget" => AbortKind::BudgetExceeded,
            "panic" => AbortKind::OperatorPanic,
            "injected" => AbortKind::Injected,
            "error" => AbortKind::Error,
            _ => return None,
        })
    }

    /// Classify an error into its abort kind.
    pub fn from_error(e: &qprog_types::QError) -> AbortKind {
        use qprog_types::ExecError;
        match e.lifecycle() {
            Some(ExecError::Cancelled) => AbortKind::Cancelled,
            Some(ExecError::DeadlineExceeded) => AbortKind::DeadlineExceeded,
            Some(ExecError::BudgetExceeded(_)) => AbortKind::BudgetExceeded,
            Some(ExecError::OperatorPanic(_)) => AbortKind::OperatorPanic,
            Some(ExecError::Injected(_)) => AbortKind::Injected,
            None => AbortKind::Error,
        }
    }
}

impl fmt::Display for AbortKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why an estimator stepped down a rung on the degradation ladder, as
/// carried by [`TraceEventKind::EstimatorDegraded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradeReason {
    /// The exact frequency histogram outgrew its memory budget.
    HistogramMemory,
}

impl DegradeReason {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            DegradeReason::HistogramMemory => "histogram_memory",
        }
    }

    /// Inverse of [`DegradeReason::name`], used by the trace replay parser.
    pub fn from_name(name: &str) -> Option<DegradeReason> {
        match name {
            "histogram_memory" => Some(DegradeReason::HistogramMemory),
            _ => None,
        }
    }
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Progress-health verdict for a running query, as carried by
/// [`TraceEventKind::HealthTransition`]. Computed by the `obs::health`
/// analyzer from the live trace stream plus periodic work/ETA samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthState {
    /// Work is flowing and estimates are settled.
    Healthy,
    /// No observed-work delta for longer than the configured stall window
    /// while the query is still Running.
    Stalled,
    /// Estimates are oscillating/diverging or the ETA is swinging beyond
    /// the configured volatility thresholds.
    Unstable,
}

impl HealthState {
    /// Stable lowercase name (used by the JSONL sink, metrics labels, and
    /// the monitor's `"health"` JSON field).
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Stalled => "stalled",
            HealthState::Unstable => "unstable",
        }
    }

    /// Inverse of [`HealthState::name`], used by the trace replay parser.
    pub fn from_name(name: &str) -> Option<HealthState> {
        Some(match name {
            "healthy" => HealthState::Healthy,
            "stalled" => HealthState::Stalled,
            "unstable" => HealthState::Unstable,
            _ => return None,
        })
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why the health analyzer changed its verdict, as carried by
/// [`TraceEventKind::HealthTransition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthReason {
    /// No observed-work delta past the stall window.
    Stall,
    /// Estimate refinements flipped direction (or diverged) too often.
    Oscillation,
    /// The smoothed ETA swung by more than the volatility threshold across
    /// consecutive samples.
    EtaVolatility,
    /// Conditions cleared; the query is behaving again.
    Recovered,
}

impl HealthReason {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            HealthReason::Stall => "stall",
            HealthReason::Oscillation => "oscillation",
            HealthReason::EtaVolatility => "eta_volatility",
            HealthReason::Recovered => "recovered",
        }
    }

    /// Inverse of [`HealthReason::name`], used by the trace replay parser.
    pub fn from_name(name: &str) -> Option<HealthReason> {
        Some(match name {
            "stall" => HealthReason::Stall,
            "oscillation" => HealthReason::Oscillation,
            "eta_volatility" => HealthReason::EtaVolatility,
            "recovered" => HealthReason::Recovered,
            _ => return None,
        })
    }
}

impl fmt::Display for HealthReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which progress-quality metric regressed against its corpus baseline, as
/// carried by [`TraceEventKind::RegressionDetected`]. Computed by the
/// `obs::corpus` regression engine when a completed run's scorecard is
/// compared against rolling median/MAD baselines for the same
/// (workload, estimator, threads) key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegressionKind {
    /// Mean absolute progress error vs the retrospective oracle grew.
    MeanAbsErr,
    /// The estimate converged later (larger fraction of the run elapsed
    /// before entering the convergence band, 1.0 = never converged).
    Convergence,
    /// The progress fraction moved backwards more often.
    Monotonicity,
    /// The run's wall time grew.
    WallTime,
}

impl RegressionKind {
    /// Stable lowercase name (used by the JSONL sink, metrics labels, and
    /// the monitor's history rendering).
    pub fn name(self) -> &'static str {
        match self {
            RegressionKind::MeanAbsErr => "mean_abs_err",
            RegressionKind::Convergence => "convergence",
            RegressionKind::Monotonicity => "monotonicity",
            RegressionKind::WallTime => "wall_time",
        }
    }

    /// Inverse of [`RegressionKind::name`], used by the trace replay parser.
    pub fn from_name(name: &str) -> Option<RegressionKind> {
        Some(match name {
            "mean_abs_err" => RegressionKind::MeanAbsErr,
            "convergence" => RegressionKind::Convergence,
            "monotonicity" => RegressionKind::Monotonicity,
            "wall_time" => RegressionKind::WallTime,
            _ => return None,
        })
    }
}

impl fmt::Display for RegressionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The event taxonomy. `op` fields are metrics-registry indices (resolve
/// names through the registry); `pipeline` fields are pipeline ids from the
/// plan's pipeline decomposition. Events are plain `Copy` data so sinks can
/// buffer them without allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEventKind {
    /// A pipeline moved from pending to running (observer-derived, so the
    /// timestamp is accurate to the monitor's sampling cadence).
    PipelineStarted { pipeline: u32 },
    /// Every operator of a pipeline finished (observer-derived).
    PipelineFinished { pipeline: u32 },
    /// A blocking operator crossed a phase boundary (build→probe,
    /// sort→merge, ...). Published synchronously by the operator.
    PhaseTransition { op: u32, from: Phase, to: Phase },
    /// An operator's lifetime-total estimate `N_i` changed materially.
    /// `old` is NaN for the very first (optimizer) publication.
    EstimateRefined {
        op: u32,
        old: f64,
        new: f64,
        source: EstimateSource,
    },
    /// An operator published a confidence interval on `N_i`.
    BoundsRefined { op: u32, lo: f64, hi: f64 },
    /// An operator returned `None`; `emitted` is its exact `K_i = N_i`.
    OperatorFinished { op: u32, emitted: u64 },
    /// The query's root operator is exhausted.
    QueryFinished { rows: u64 },
    /// The query terminated *without* exhausting its root operator —
    /// cancelled, past deadline, over budget, panicked, or errored. `rows`
    /// is how many rows the driver had consumed when it stopped. Terminal:
    /// at most one of `QueryFinished` / `QueryAborted` is published per
    /// query.
    QueryAborted { reason: AbortKind, rows: u64 },
    /// An operator's estimator fell back to a cheaper rung on the
    /// degradation ladder (e.g. exact frequency histogram → dne baseline)
    /// after breaching a resource budget; progress estimates continue but
    /// coarser.
    EstimatorDegraded { op: u32, reason: DegradeReason },
    /// A periodic `gnm` progress snapshot, published by the timeline
    /// recorder when it is bus-attached. Makes a recorded trace
    /// self-sufficient for post-hoc quality scoring (replay needs no live
    /// tracker): `fraction = current / total` with the estimator's current
    /// `ΣN_i`, and `[lo, hi]` the bounds-derived progress interval.
    ProgressSampled {
        /// `ΣK_i` — total work done across monitored operators.
        current: u64,
        /// `ΣN_i` — estimated total work (NaN when unknown).
        total: f64,
        /// `current / total`, clamped to `[0, 1]`.
        fraction: f64,
        /// Lower progress bound (NaN when no bounds are published).
        lo: f64,
        /// Upper progress bound (NaN when no bounds are published).
        hi: f64,
    },
    /// An operator's observed active wall-time span, stamped when it
    /// finishes. `wall_us` is the *inclusive* span from the operator's
    /// first to last observed unit of work (like `EXPLAIN ANALYZE`
    /// inclusive time: a parent's span contains its children's), measured
    /// by `Instant` reads amortized over the governor's 64-checkpoint
    /// stride.
    OperatorWallTime { op: u32, wall_us: u64 },
    /// One worker thread's busy time inside an operator's partition-parallel
    /// phases, published when the operator's parallel preprocessing
    /// completes. `worker` is the task index within the operator's pool;
    /// `busy_us` is wall time the worker spent executing (build + probe
    /// drains combined). Never published by serial execution, so
    /// single-threaded traces are byte-identical to pre-parallel builds.
    WorkerWallTime { op: u32, worker: u32, busy_us: u64 },
    /// The progress-health analyzer changed its verdict about the query
    /// (Healthy ↔ Stalled / Unstable). Published by the `obs::health`
    /// analyzer from the monitor's sampling thread — never from the query
    /// thread — and never published at all unless a health analyzer is
    /// attached, so plain traces stay byte-identical to pre-health builds.
    HealthTransition {
        from: HealthState,
        to: HealthState,
        reason: HealthReason,
    },
    /// A completed run's progress-quality scorecard regressed against the
    /// rolling corpus baseline for its (workload, estimator, threads) key.
    /// Published by the `obs::corpus` archival sink at terminal time — never
    /// unless a corpus is attached, so plain traces stay byte-identical to
    /// pre-corpus builds. `observed` exceeded `threshold`, which was derived
    /// from `baseline` (the rolling median) plus a MAD-scaled margin.
    RegressionDetected {
        kind: RegressionKind,
        observed: f64,
        baseline: f64,
        threshold: f64,
    },
    /// A causal lifecycle span opened. `span` is unique within the emitting
    /// stream, `parent` names the enclosing span
    /// ([`NO_PARENT`](crate::span::NO_PARENT) for the root), and `arg`
    /// qualifies the kind (see [`SpanKind`](crate::span::SpanKind)).
    /// Emitted by the query service's lifecycle instrumentation — never by
    /// execution operators, whose span detail is derived from the events
    /// they already publish — so the traced hot path gains no new atomics.
    SpanStart {
        span: u32,
        parent: u32,
        kind: crate::span::SpanKind,
        arg: u32,
    },
    /// The span opened by the matching [`SpanStart`](Self::SpanStart)
    /// closed; its duration is `at_us(end) - at_us(start)`.
    SpanEnd { span: u32 },
}

/// A timestamped, globally ordered trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Publication order across the whole bus (contiguous from 0 unless
    /// sinks drop on overflow).
    pub seq: u64,
    /// Microseconds since the bus was created.
    pub at_us: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// A trace consumer. Implementations must be cheap and non-blocking on
/// `publish` — it runs synchronously on the query thread (though only at
/// phase boundaries / refinements).
pub trait TraceSink: Send + Sync {
    /// Consume one event.
    fn publish(&self, event: &TraceEvent);
}

/// The event bus: a timestamp epoch, a sequence counter, and an immutable
/// set of sinks. Publishing takes no locks — one atomic fetch-add for the
/// sequence number plus whatever each sink does.
pub struct EventBus {
    epoch: Instant,
    seq: std::sync::atomic::AtomicU64,
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl fmt::Debug for EventBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventBus")
            .field("sinks", &self.sinks.len())
            .field(
                "published",
                &self.seq.load(std::sync::atomic::Ordering::Relaxed),
            )
            .finish()
    }
}

impl EventBus {
    /// Start building a bus.
    pub fn builder() -> EventBusBuilder {
        EventBusBuilder { sinks: Vec::new() }
    }

    /// Shorthand for a bus with exactly one sink.
    pub fn with_sink(sink: Arc<dyn TraceSink>) -> Arc<EventBus> {
        EventBus::builder().sink(sink).build()
    }

    /// Stamp and fan `kind` out to every sink.
    pub fn publish(&self, kind: TraceEventKind) {
        let event = TraceEvent {
            seq: self.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            at_us: self.epoch.elapsed().as_micros() as u64,
            kind,
        };
        for sink in &self.sinks {
            sink.publish(&event);
        }
    }

    /// Total events published so far.
    pub fn published(&self) -> u64 {
        self.seq.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The attached sinks (shareable: a caller composing a derived bus —
    /// e.g. a session adding metrics/monitor sinks per query — clones these
    /// so events are stamped once and fan out to every consumer).
    pub fn sinks(&self) -> &[Arc<dyn TraceSink>] {
        &self.sinks
    }

    /// The bus creation instant (`at_us` timestamps are relative to it).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }
}

/// Builder for [`EventBus`].
pub struct EventBusBuilder {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl EventBusBuilder {
    /// Attach a sink.
    pub fn sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Finish, producing a shareable bus.
    pub fn build(self) -> Arc<EventBus> {
        Arc::new(EventBus {
            epoch: Instant::now(),
            seq: std::sync::atomic::AtomicU64::new(0),
            sinks: self.sinks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Mutex;

    struct VecSink(Mutex<Vec<TraceEvent>>);
    impl TraceSink for VecSink {
        fn publish(&self, event: &TraceEvent) {
            self.0.lock().push(*event);
        }
    }

    #[test]
    fn events_are_stamped_in_order() {
        let sink = Arc::new(VecSink(Mutex::new(Vec::new())));
        let bus = EventBus::with_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
        for i in 0..5u64 {
            bus.publish(TraceEventKind::QueryFinished { rows: i });
        }
        let events = sink.0.lock();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.kind, TraceEventKind::QueryFinished { rows: i as u64 });
        }
        assert!(events.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert_eq!(bus.published(), 5);
    }

    #[test]
    fn fans_out_to_all_sinks() {
        let a = Arc::new(VecSink(Mutex::new(Vec::new())));
        let b = Arc::new(VecSink(Mutex::new(Vec::new())));
        let bus = EventBus::builder()
            .sink(Arc::clone(&a) as Arc<dyn TraceSink>)
            .sink(Arc::clone(&b) as Arc<dyn TraceSink>)
            .build();
        bus.publish(TraceEventKind::PipelineStarted { pipeline: 3 });
        assert_eq!(a.0.lock().len(), 1);
        assert_eq!(b.0.lock().len(), 1);
    }

    #[test]
    fn concurrent_publication_yields_unique_seqs() {
        let sink = Arc::new(VecSink(Mutex::new(Vec::new())));
        let bus = EventBus::with_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let bus = Arc::clone(&bus);
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        bus.publish(TraceEventKind::QueryFinished { rows: 0 });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut seqs: Vec<u64> = sink.0.lock().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..1000).collect::<Vec<_>>());
    }
}
