//! Plan execution drivers.

use qprog_types::{QResult, Row};

use crate::ops::Operator;

/// Drain an operator to completion, collecting all output rows.
pub fn collect(op: &mut dyn Operator) -> QResult<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(row) = op.next()? {
        out.push(row);
    }
    Ok(out)
}

/// Drain an operator, invoking `observer(rows_so_far)` after every
/// `every_n`-th output row and once more at completion — the hook progress
/// monitors and experiment harnesses use to snapshot estimates at a fixed
/// cadence without threading.
pub fn run_with_observer(
    op: &mut dyn Operator,
    every_n: u64,
    mut observer: impl FnMut(u64),
) -> QResult<Vec<Row>> {
    let every_n = every_n.max(1);
    let mut out = Vec::new();
    let mut n: u64 = 0;
    while let Some(row) = op.next()? {
        out.push(row);
        n += 1;
        if n.is_multiple_of(every_n) {
            observer(n);
        }
    }
    observer(n);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::OpMetrics;
    use crate::ops::test_util::int_table;
    use crate::ops::TableScan;

    #[test]
    fn collect_drains_everything() {
        let t = int_table("t", "a", &[1, 2, 3]).into_shared();
        let mut s = TableScan::new(t, OpMetrics::with_initial_estimate(0.0));
        assert_eq!(collect(&mut s).unwrap().len(), 3);
    }

    #[test]
    fn observer_fires_at_cadence_and_completion() {
        let vals: Vec<i64> = (0..10).collect();
        let t = int_table("t", "a", &vals).into_shared();
        let mut s = TableScan::new(t, OpMetrics::with_initial_estimate(0.0));
        let mut calls = Vec::new();
        let rows = run_with_observer(&mut s, 4, |n| calls.push(n)).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(calls, vec![4, 8, 10]);
    }

    #[test]
    fn observer_zero_cadence_clamped() {
        let t = int_table("t", "a", &[1]).into_shared();
        let mut s = TableScan::new(t, OpMetrics::with_initial_estimate(0.0));
        let mut calls = 0;
        run_with_observer(&mut s, 0, |_| calls += 1).unwrap();
        assert_eq!(calls, 2); // after row 1 and at completion
    }
}
