//! Plan execution drivers.
//!
//! Both drivers run inside [`governor::guarded`], a single `catch_unwind`
//! boundary around the whole drain loop: a panic anywhere below the root
//! surfaces as [`ExecError::OperatorPanic`](qprog_types::ExecError) through
//! the normal `QResult` channel instead of unwinding through the caller.
//! The boundary wraps the loop, not each `next_batch()`, so the per-batch
//! path stays free of unwind machinery.

use qprog_types::{QResult, Row, RowBatch};

use crate::governor::guarded;
use crate::ops::Operator;

/// Drain an operator to completion, collecting all output rows.
/// `batch_rows` is the root batch capacity (1 = strict tuple-at-a-time
/// equivalence mode).
pub fn collect(op: &mut dyn Operator, batch_rows: usize) -> QResult<Vec<Row>> {
    let arity = op.schema().arity();
    guarded(|| {
        let mut out = Vec::new();
        let mut batch = RowBatch::with_capacity(arity, batch_rows);
        loop {
            let status = op.next_batch(&mut batch)?;
            batch.append_rows_to(&mut out);
            if status.is_exhausted() {
                break;
            }
        }
        Ok(out)
    })
}

/// Drain an operator, invoking `observer(rows_so_far)` at every `every_n`-th
/// output row and once more at completion — the hook progress monitors and
/// experiment harnesses use to snapshot estimates at a fixed cadence without
/// threading. A batch that crosses several multiples of `every_n` fires the
/// observer once per crossed multiple, so the cadence is independent of
/// `batch_rows`.
pub fn run_with_observer(
    op: &mut dyn Operator,
    every_n: u64,
    batch_rows: usize,
    mut observer: impl FnMut(u64),
) -> QResult<Vec<Row>> {
    let every_n = every_n.max(1);
    let arity = op.schema().arity();
    guarded(move || {
        let mut out = Vec::new();
        let mut batch = RowBatch::with_capacity(arity, batch_rows);
        let mut n: u64 = 0;
        let mut next_fire = every_n;
        loop {
            let status = op.next_batch(&mut batch)?;
            n += batch.len() as u64;
            batch.append_rows_to(&mut out);
            while next_fire <= n {
                observer(next_fire);
                next_fire += every_n;
            }
            if status.is_exhausted() {
                break;
            }
        }
        observer(n);
        Ok(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::OpMetrics;
    use crate::ops::test_util::int_table;
    use crate::ops::TableScan;

    #[test]
    fn collect_drains_everything() {
        let t = int_table("t", "a", &[1, 2, 3]).into_shared();
        let mut s = TableScan::new(t, OpMetrics::with_initial_estimate(0.0));
        assert_eq!(collect(&mut s, 1).unwrap().len(), 3);
        let t2 = int_table("t", "a", &[1, 2, 3]).into_shared();
        let mut s2 = TableScan::new(t2, OpMetrics::with_initial_estimate(0.0));
        assert_eq!(collect(&mut s2, 1024).unwrap().len(), 3);
    }

    #[test]
    fn observer_fires_at_cadence_and_completion() {
        for batch_rows in [1usize, 3, 1024] {
            let vals: Vec<i64> = (0..10).collect();
            let t = int_table("t", "a", &vals).into_shared();
            let mut s = TableScan::new(t, OpMetrics::with_initial_estimate(0.0));
            let mut calls = Vec::new();
            let rows = run_with_observer(&mut s, 4, batch_rows, |n| calls.push(n)).unwrap();
            assert_eq!(rows.len(), 10);
            assert_eq!(calls, vec![4, 8, 10], "batch_rows={batch_rows}");
        }
    }

    #[test]
    fn operator_panic_is_isolated_as_typed_error() {
        use qprog_types::{BatchStatus, ExecError, QError, SchemaRef};
        use std::sync::Arc;

        struct Bomb {
            schema: SchemaRef,
        }
        impl Operator for Bomb {
            fn schema(&self) -> SchemaRef {
                Arc::clone(&self.schema)
            }
            fn next_batch(&mut self, _out: &mut RowBatch) -> QResult<BatchStatus> {
                panic!("wired to explode");
            }
            fn name(&self) -> &str {
                "bomb"
            }
        }

        let t = int_table("t", "a", &[1]);
        let mut bomb = Bomb {
            schema: Arc::clone(t.schema()),
        };
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
        let err = collect(&mut bomb, 1).unwrap_err();
        std::panic::set_hook(hook);
        match err {
            QError::Lifecycle(ExecError::OperatorPanic(m)) => {
                assert!(m.contains("wired to explode"), "{m}")
            }
            other => panic!("expected OperatorPanic, got {other:?}"),
        }
    }

    #[test]
    fn observer_zero_cadence_clamped() {
        let t = int_table("t", "a", &[1]).into_shared();
        let mut s = TableScan::new(t, OpMetrics::with_initial_estimate(0.0));
        let mut calls = 0;
        run_with_observer(&mut s, 0, 1, |_| calls += 1).unwrap();
        assert_eq!(calls, 2); // after row 1 and at completion
    }
}
