//! Std-only scoped worker pool for partition-parallel operator phases.
//!
//! Blocking operators (hash join build/probe drains) split their input into
//! contiguous chunks and run one task per chunk on a scoped thread. The pool
//! is deliberately minimal: threads live only for the duration of one
//! [`run_tasks`] call (no idle workers, no channels, nothing to leak), and
//! results come back **in task-index order** so callers can concatenate
//! per-worker fragments deterministically — the property the parallel hash
//! join relies on to reproduce the serial scan order exactly.
//!
//! Error handling mirrors the serial engine's: a worker panic is captured at
//! join and surfaces as [`ExecError::OperatorPanic`] (the same conversion
//! [`guarded`](crate::governor::guarded) performs for serial drains), and
//! when several tasks fail the error of the **lowest task index** wins, so a
//! multi-fault run reports deterministically.

use std::time::{Duration, Instant};

use qprog_types::{ExecError, QError, QResult};

use crate::governor::panic_message;

/// One task's result plus how long its worker was busy (used for the
/// per-worker wall-time attribution published as
/// [`TraceEventKind::WorkerWallTime`](crate::trace::TraceEventKind)).
#[derive(Debug)]
pub struct TaskOutput<T> {
    /// The task's return value.
    pub value: T,
    /// Wall time the worker spent inside the task body.
    pub busy: Duration,
}

/// Run `tasks` across scoped worker threads — one thread per task — and
/// return their outputs in task-index order.
///
/// Each task receives its own index. All threads are joined before this
/// function returns (scoped spawning), so callers never leak workers even
/// when a task fails or panics; remaining tasks run to completion and their
/// results are discarded in favor of the lowest-index error.
///
/// A single task runs inline on the calling thread — no spawn cost, and the
/// behavior under fault injection stays identical to the multi-task path.
pub fn run_tasks<T, F>(tasks: Vec<F>) -> QResult<Vec<TaskOutput<T>>>
where
    T: Send,
    F: FnOnce(usize) -> QResult<T> + Send,
{
    if tasks.len() <= 1 {
        let mut out = Vec::with_capacity(tasks.len());
        for (i, task) in tasks.into_iter().enumerate() {
            qprog_fault::fail_point!("exec/parallel/task");
            let start = Instant::now();
            let value = task(i)?;
            out.push(TaskOutput {
                value,
                busy: start.elapsed(),
            });
        }
        qprog_fault::fail_point!("exec/parallel/merge");
        return Ok(out);
    }
    qprog_fault::fail_point!("exec/parallel/spawn");
    let results: Vec<QResult<TaskOutput<T>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .into_iter()
            .enumerate()
            .map(|(i, task)| {
                std::thread::Builder::new()
                    .name(format!("qprog-worker-{i}"))
                    .spawn_scoped(scope, move || -> QResult<TaskOutput<T>> {
                        qprog_fault::fail_point!("exec/parallel/task");
                        let start = Instant::now();
                        let value = task(i)?;
                        Ok(TaskOutput {
                            value,
                            busy: start.elapsed(),
                        })
                    })
            })
            .collect();
        handles
            .into_iter()
            .map(|spawned| match spawned {
                Ok(handle) => match handle.join() {
                    Ok(result) => result,
                    Err(payload) => Err(ExecError::OperatorPanic(panic_message(&*payload)).into()),
                },
                Err(e) => Err(QError::internal(format!("worker spawn failed: {e}"))),
            })
            .collect()
    });
    qprog_fault::fail_point!("exec/parallel/merge");
    // Deterministic error selection: the lowest task index's error wins.
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        let tasks: Vec<_> = (0..8)
            .map(|i| {
                move |idx: usize| -> QResult<usize> {
                    assert_eq!(idx, i);
                    // Finish in scrambled real-time order.
                    std::thread::sleep(Duration::from_millis(((8 - i) % 3) as u64));
                    Ok(i * 10)
                }
            })
            .collect();
        let out = run_tasks(tasks).unwrap();
        let values: Vec<usize> = out.iter().map(|o| o.value).collect();
        assert_eq!(values, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn lowest_index_error_wins() {
        let tasks: Vec<_> = (0..4)
            .map(|i| {
                move |_: usize| -> QResult<()> {
                    if i >= 1 {
                        Err(QError::internal(format!("task {i} failed")))
                    } else {
                        Ok(())
                    }
                }
            })
            .collect();
        let e = run_tasks(tasks).unwrap_err();
        assert!(e.to_string().contains("task 1 failed"), "{e}");
    }

    #[test]
    fn worker_panics_become_operator_panic_errors() {
        let tasks: Vec<_> = (0..3)
            .map(|i| {
                move |_: usize| -> QResult<()> {
                    if i == 2 {
                        panic!("worker exploded");
                    }
                    Ok(())
                }
            })
            .collect();
        let e = run_tasks(tasks).unwrap_err();
        match e.lifecycle() {
            Some(ExecError::OperatorPanic(msg)) => {
                assert!(msg.contains("worker exploded"), "{msg}")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn single_task_runs_inline() {
        let caller = std::thread::current().id();
        let out = run_tasks(vec![move |_: usize| -> QResult<std::thread::ThreadId> {
            Ok(std::thread::current().id())
        }])
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, caller);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let out = run_tasks(Vec::<fn(usize) -> QResult<()>>::new()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn busy_time_is_recorded() {
        let out = run_tasks(vec![
            |_: usize| -> QResult<()> {
                std::thread::sleep(Duration::from_millis(10));
                Ok(())
            },
            |_: usize| -> QResult<()> { Ok(()) },
        ])
        .unwrap();
        assert!(out[0].busy >= Duration::from_millis(8));
    }
}
