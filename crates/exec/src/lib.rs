//! Volcano-style, instrumented execution engine.
//!
//! Every operator implements [`Operator::next`] — one call per output tuple,
//! which is precisely the `getnext()` event the gnm progress model counts.
//! Operators publish per-operator counters through lock-free
//! [`metrics::OpMetrics`] handles so a monitor (same thread or another) can
//! observe `K_i` and the current `N_i` estimate at any time.
//!
//! The operators reproduce the *phase structure* the paper's estimators
//! rely on:
//!
//! - [`ops::hash_join::HashJoin`] is a grace-style partitioned join: the
//!   build input is fully consumed and partitioned, then the probe input is
//!   fully consumed and partitioned (this is where `once` estimation runs
//!   and converges), and only then are partitions joined pairwise — so the
//!   output is clustered by key, the reordering that defeats the dne/byte
//!   baselines (paper Fig. 4).
//! - [`ops::merge_join::MergeJoin`] sorts both inputs up front (estimation
//!   runs in the two sort phases) and merges, again emitting key-clustered
//!   output.
//! - [`ops::agg::HashAggregate`] consumes its whole input into groups
//!   (distinct-value estimation runs here) before emitting.

pub mod expr;
pub mod governor;
pub mod metrics;
pub mod ops;
pub mod parallel;
pub mod runtime;
pub mod span;
pub mod sync;
pub mod trace;

pub use expr::{BinOp, Expr};
pub use governor::{Budgets, CancellationToken, Governor};
pub use metrics::{MetricsRegistry, OpMetrics};
pub use ops::{BoxedOp, Operator};
pub use runtime::{collect, run_with_observer};
