//! Row-level expression evaluation with SQL three-valued logic.

use std::fmt;

use qprog_types::{DataType, QError, QResult, Row, RowBatch, Schema, Value};

/// Column access abstraction so one evaluator serves both owned [`Row`]s
/// and rows of a column-major [`RowBatch`] (the vectorized operators
/// evaluate in place, without materializing rows).
trait Cols {
    fn col_value(&self, i: usize) -> QResult<&Value>;
}

impl Cols for Row {
    #[inline]
    fn col_value(&self, i: usize) -> QResult<&Value> {
        self.get(i)
    }
}

/// One row of a batch, viewed as a column accessor.
struct BatchRow<'a> {
    batch: &'a RowBatch,
    row: usize,
}

impl Cols for BatchRow<'_> {
    #[inline]
    fn col_value(&self, i: usize) -> QResult<&Value> {
        if i < self.batch.arity() {
            Ok(self.batch.value(self.row, i))
        } else {
            Err(QError::internal(format!(
                "column {i} out of bounds for arity {}",
                self.batch.arity()
            )))
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinOp {
    /// Whether this operator yields a boolean.
    pub fn is_predicate(self) -> bool {
        !matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// A physical (index-resolved) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Input column by index.
    Column(usize),
    /// Constant.
    Literal(Value),
    /// Binary operation.
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Logical negation (three-valued: NOT NULL = NULL).
    Not(Box<Expr>),
    /// `IS NULL` (negate = true ⇒ `IS NOT NULL`); never returns NULL.
    IsNull { expr: Box<Expr>, negate: bool },
}

impl Expr {
    /// Shorthand for a column reference.
    pub fn col(idx: usize) -> Expr {
        Expr::Column(idx)
    }

    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Shorthand for a binary expression.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(BinOp::And, self, other)
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &Row) -> QResult<Value> {
        self.eval_cols(row)
    }

    /// Evaluate against row `row` of a column-major batch (no row
    /// materialization).
    pub fn eval_at(&self, batch: &RowBatch, row: usize) -> QResult<Value> {
        self.eval_cols(&BatchRow { batch, row })
    }

    fn eval_cols<C: Cols>(&self, cols: &C) -> QResult<Value> {
        match self {
            Expr::Column(i) => cols.col_value(*i).cloned(),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Not(e) => match e.eval_cols(cols)? {
                Value::Null => Ok(Value::Null),
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => Err(QError::type_err(format!(
                    "NOT expects BOOLEAN, got {}",
                    other.data_type()
                ))),
            },
            Expr::IsNull { expr, negate } => {
                let isnull = expr.eval_cols(cols)?.is_null();
                Ok(Value::Bool(isnull != *negate))
            }
            Expr::Binary { op, left, right } => {
                let l = left.eval_cols(cols)?;
                // Short-circuit three-valued AND/OR.
                match op {
                    BinOp::And => return eval_and(&l, || right.eval_cols(cols)),
                    BinOp::Or => return eval_or(&l, || right.eval_cols(cols)),
                    _ => {}
                }
                let r = right.eval_cols(cols)?;
                eval_scalar_binary(*op, &l, &r)
            }
        }
    }

    /// Evaluate as a WHERE-clause predicate: NULL is treated as false.
    pub fn eval_predicate(&self, row: &Row) -> QResult<bool> {
        predicate_truth(self.eval(row)?)
    }

    /// [`eval_predicate`](Self::eval_predicate) against row `row` of a
    /// batch.
    pub fn eval_predicate_at(&self, batch: &RowBatch, row: usize) -> QResult<bool> {
        predicate_truth(self.eval_at(batch, row)?)
    }

    /// Static result type against an input schema (for planning).
    pub fn output_type(&self, schema: &Schema) -> QResult<DataType> {
        match self {
            Expr::Column(i) => Ok(schema.field(*i)?.data_type),
            Expr::Literal(v) => Ok(v.data_type()),
            Expr::Not(_) | Expr::IsNull { .. } => Ok(DataType::Bool),
            Expr::Binary { op, left, right } => {
                if op.is_predicate() {
                    return Ok(DataType::Bool);
                }
                let l = left.output_type(schema)?;
                let r = right.output_type(schema)?;
                match (l, r) {
                    (DataType::Int64, DataType::Int64) if *op != BinOp::Div => Ok(DataType::Int64),
                    (a, b) if a.is_numeric() && b.is_numeric() => Ok(DataType::Float64),
                    (a, b) => Err(QError::type_err(format!(
                        "cannot apply {op} to {a} and {b}"
                    ))),
                }
            }
        }
    }

    /// All column indices this expression reads.
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.collect_columns(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Column(i) => out.push(*i),
            Expr::Literal(_) => {}
            Expr::Not(e) | Expr::IsNull { expr: e, .. } => e.collect_columns(out),
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
        }
    }
}

fn predicate_truth(v: Value) -> QResult<bool> {
    match v {
        Value::Bool(b) => Ok(b),
        Value::Null => Ok(false),
        other => Err(QError::type_err(format!(
            "predicate must be BOOLEAN, got {}",
            other.data_type()
        ))),
    }
}

fn eval_and(l: &Value, r: impl FnOnce() -> QResult<Value>) -> QResult<Value> {
    match l {
        Value::Bool(false) => Ok(Value::Bool(false)),
        Value::Bool(true) => match r()? {
            Value::Bool(b) => Ok(Value::Bool(b)),
            Value::Null => Ok(Value::Null),
            other => type_mismatch("AND", &other),
        },
        Value::Null => match r()? {
            Value::Bool(false) => Ok(Value::Bool(false)),
            Value::Bool(true) | Value::Null => Ok(Value::Null),
            other => type_mismatch("AND", &other),
        },
        other => type_mismatch("AND", other),
    }
}

fn eval_or(l: &Value, r: impl FnOnce() -> QResult<Value>) -> QResult<Value> {
    match l {
        Value::Bool(true) => Ok(Value::Bool(true)),
        Value::Bool(false) => match r()? {
            Value::Bool(b) => Ok(Value::Bool(b)),
            Value::Null => Ok(Value::Null),
            other => type_mismatch("OR", &other),
        },
        Value::Null => match r()? {
            Value::Bool(true) => Ok(Value::Bool(true)),
            Value::Bool(false) | Value::Null => Ok(Value::Null),
            other => type_mismatch("OR", &other),
        },
        other => type_mismatch("OR", other),
    }
}

fn type_mismatch(op: &str, v: &Value) -> QResult<Value> {
    Err(QError::type_err(format!(
        "{op} expects BOOLEAN, got {}",
        v.data_type()
    )))
}

fn eval_scalar_binary(op: BinOp, l: &Value, r: &Value) -> QResult<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
            let ord = l.sql_cmp(r).ok_or_else(|| {
                QError::type_err(format!(
                    "cannot compare {} with {}",
                    l.data_type(),
                    r.data_type()
                ))
            })?;
            let b = match op {
                BinOp::Eq => ord == std::cmp::Ordering::Equal,
                BinOp::NotEq => ord != std::cmp::Ordering::Equal,
                BinOp::Lt => ord == std::cmp::Ordering::Less,
                BinOp::LtEq => ord != std::cmp::Ordering::Greater,
                BinOp::Gt => ord == std::cmp::Ordering::Greater,
                BinOp::GtEq => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul => match (l, r) {
            (Value::Int64(a), Value::Int64(b)) => {
                let res = match op {
                    BinOp::Add => a.checked_add(*b),
                    BinOp::Sub => a.checked_sub(*b),
                    BinOp::Mul => a.checked_mul(*b),
                    _ => unreachable!(),
                };
                res.map(Value::Int64)
                    .ok_or_else(|| QError::exec(format!("integer overflow in {op}")))
            }
            _ => {
                let (a, b) = (l.as_f64()?, r.as_f64()?);
                let res = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    _ => unreachable!(),
                };
                Ok(Value::Float64(res))
            }
        },
        BinOp::Div => {
            let (a, b) = (l.as_f64()?, r.as_f64()?);
            if b == 0.0 {
                return Err(QError::exec("division by zero"));
            }
            Ok(Value::Float64(a / b))
        }
        BinOp::And | BinOp::Or => unreachable!("handled by short-circuit path"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_types::{row, Field};

    fn r() -> Row {
        row![10i64, 2.5, "abc", true]
    }

    #[test]
    fn columns_and_literals() {
        assert_eq!(Expr::col(0).eval(&r()).unwrap(), Value::Int64(10));
        assert_eq!(Expr::lit(7i64).eval(&r()).unwrap(), Value::Int64(7));
        assert!(Expr::col(9).eval(&r()).is_err());
    }

    #[test]
    fn arithmetic() {
        let e = Expr::binary(BinOp::Add, Expr::col(0), Expr::lit(5i64));
        assert_eq!(e.eval(&r()).unwrap(), Value::Int64(15));
        let e = Expr::binary(BinOp::Mul, Expr::col(0), Expr::col(1));
        assert_eq!(e.eval(&r()).unwrap(), Value::Float64(25.0));
        let e = Expr::binary(BinOp::Div, Expr::col(0), Expr::lit(0i64));
        assert!(e.eval(&r()).is_err());
        let e = Expr::binary(BinOp::Div, Expr::col(0), Expr::lit(4i64));
        assert_eq!(e.eval(&r()).unwrap(), Value::Float64(2.5));
    }

    #[test]
    fn integer_overflow_is_an_error() {
        let e = Expr::binary(BinOp::Mul, Expr::lit(i64::MAX), Expr::lit(2i64));
        assert!(e.eval(&r()).is_err());
    }

    #[test]
    fn comparisons() {
        let e = Expr::binary(BinOp::Gt, Expr::col(0), Expr::lit(5i64));
        assert_eq!(e.eval(&r()).unwrap(), Value::Bool(true));
        let e = Expr::binary(BinOp::Eq, Expr::col(2), Expr::lit("abc"));
        assert_eq!(e.eval(&r()).unwrap(), Value::Bool(true));
        let e = Expr::binary(BinOp::Lt, Expr::col(2), Expr::lit(1i64));
        assert!(e.eval(&r()).is_err());
    }

    #[test]
    fn null_propagation_in_comparisons() {
        let e = Expr::binary(BinOp::Eq, Expr::lit(Value::Null), Expr::lit(1i64));
        assert_eq!(e.eval(&r()).unwrap(), Value::Null);
        assert!(!e.eval_predicate(&r()).unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let t = || Expr::lit(true);
        let f = || Expr::lit(false);
        let n = || Expr::lit(Value::Null);
        // AND truth table with NULL
        assert_eq!(t().and(n()).eval(&r()).unwrap(), Value::Null);
        assert_eq!(f().and(n()).eval(&r()).unwrap(), Value::Bool(false));
        assert_eq!(
            Expr::binary(BinOp::And, n(), f()).eval(&r()).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::binary(BinOp::And, n(), n()).eval(&r()).unwrap(),
            Value::Null
        );
        // OR truth table with NULL
        assert_eq!(
            Expr::binary(BinOp::Or, n(), t()).eval(&r()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::binary(BinOp::Or, f(), n()).eval(&r()).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn and_short_circuits() {
        // right side would error (bad column), but left is false
        let e = Expr::binary(BinOp::And, Expr::lit(false), Expr::col(99));
        assert_eq!(e.eval(&r()).unwrap(), Value::Bool(false));
    }

    #[test]
    fn not_and_is_null() {
        assert_eq!(
            Expr::Not(Box::new(Expr::lit(true))).eval(&r()).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::Not(Box::new(Expr::lit(Value::Null)))
                .eval(&r())
                .unwrap(),
            Value::Null
        );
        let isnull = Expr::IsNull {
            expr: Box::new(Expr::lit(Value::Null)),
            negate: false,
        };
        assert_eq!(isnull.eval(&r()).unwrap(), Value::Bool(true));
        let isnotnull = Expr::IsNull {
            expr: Box::new(Expr::col(0)),
            negate: true,
        };
        assert_eq!(isnotnull.eval(&r()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn output_types() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("f", DataType::Float64),
        ]);
        let e = Expr::binary(BinOp::Add, Expr::col(0), Expr::col(0));
        assert_eq!(e.output_type(&schema).unwrap(), DataType::Int64);
        let e = Expr::binary(BinOp::Add, Expr::col(0), Expr::col(1));
        assert_eq!(e.output_type(&schema).unwrap(), DataType::Float64);
        let e = Expr::binary(BinOp::Div, Expr::col(0), Expr::col(0));
        assert_eq!(e.output_type(&schema).unwrap(), DataType::Float64);
        let e = Expr::binary(BinOp::Lt, Expr::col(0), Expr::col(1));
        assert_eq!(e.output_type(&schema).unwrap(), DataType::Bool);
    }

    #[test]
    fn referenced_columns_deduped_sorted() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::binary(BinOp::Mul, Expr::col(3), Expr::col(1)),
            Expr::col(3),
        );
        assert_eq!(e.referenced_columns(), vec![1, 3]);
        assert!(Expr::lit(1i64).referenced_columns().is_empty());
    }

    #[test]
    fn predicate_rejects_non_boolean() {
        let e = Expr::binary(BinOp::Add, Expr::col(0), Expr::lit(1i64));
        assert!(e.eval_predicate(&r()).is_err());
    }

    #[test]
    fn batch_eval_matches_row_eval() {
        let mut b = RowBatch::with_capacity(4, 2);
        b.push_row(r());
        b.push_row(row![3i64, 0.5, "xyz", false]);
        let e = Expr::binary(BinOp::Gt, Expr::col(0), Expr::lit(5i64));
        for i in 0..b.len() {
            assert_eq!(e.eval_at(&b, i).unwrap(), e.eval(&b.row(i)).unwrap());
            assert_eq!(
                e.eval_predicate_at(&b, i).unwrap(),
                e.eval_predicate(&b.row(i)).unwrap()
            );
        }
        assert!(Expr::col(9).eval_at(&b, 0).is_err());
    }
}
