//! Query lifecycle governance: cooperative cancellation, deadlines, and
//! hard resource budgets.
//!
//! A [`Governor`] is shared by every operator of one query (each
//! [`OpMetrics`](crate::metrics::OpMetrics) holds an `Arc` to it) and by the
//! driver. Operators call
//! [`OpMetrics::checkpoint`](crate::metrics::OpMetrics::checkpoint) inside
//! their long loops; the fast path is one `Option` check when no governor is
//! attached, and two relaxed atomic loads when one is — atomic RMWs are paid
//! only while a row budget or deadline is actually armed. Deadline checks
//! amortize `Instant::now()` over [`DEADLINE_STRIDE`] checkpoints, so the
//! per-tuple cost stays within the paper's "couple of atomics" budget.
//!
//! Breaches surface as typed [`ExecError`](qprog_types::ExecError)s through
//! the normal `QResult` channel — cancellation is *cooperative*: a query
//! notices at its next checkpoint, which the chaos suite bounds at well
//! under 100ms.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qprog_types::{ExecError, QResult};

/// Deadline expiry is tested every this-many checkpoints (amortizes the
/// `Instant::now()` syscall; worst-case detection lag is `STRIDE` tuples).
pub const DEADLINE_STRIDE: u64 = 64;

/// A cloneable handle that requests cooperative cancellation of one query.
///
/// Cancelling is idempotent and thread-safe; the query observes the flag at
/// its next checkpoint and unwinds with [`ExecError::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, untriggered token.
    pub fn new() -> Self {
        CancellationToken::default()
    }

    /// Request cancellation.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Hard per-query resource budgets. `None` disables a budget. Breaching a
/// hard budget aborts the query with [`ExecError::BudgetExceeded`]; *soft*
/// budgets (estimator histogram memory) degrade instead — see
/// [`Governor::hist_budget_exceeded`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Budgets {
    /// Maximum tuples processed across all operators (checkpoint units).
    pub max_rows: Option<u64>,
    /// Soft cap on per-operator estimator histogram memory, in bytes; on
    /// breach the estimator degrades to a cheaper baseline rather than
    /// aborting.
    pub max_hist_bytes: Option<usize>,
}

/// Per-query lifecycle state: cancellation flag, optional deadline, and
/// resource budgets, checked cooperatively at operator checkpoints.
#[derive(Debug)]
pub struct Governor {
    token: CancellationToken,
    /// Deadline as microseconds after `anchor`; 0 = none.
    deadline_us: AtomicU64,
    anchor: Instant,
    budgets: Budgets,
    /// Checkpoint units charged so far (≈ tuples processed).
    units: AtomicU64,
    /// Checkpoint invocations, for deadline striding.
    ticks: AtomicU64,
    /// An external caller-supplied cancellation token linked into this
    /// query (see [`link_token`](Self::link_token)); checked alongside the
    /// query's own token at every checkpoint.
    linked: std::sync::OnceLock<CancellationToken>,
}

impl Default for Governor {
    fn default() -> Self {
        Governor::new(Budgets::default())
    }
}

impl Governor {
    /// A governor with the given budgets and a fresh cancellation token.
    pub fn new(budgets: Budgets) -> Self {
        Governor {
            token: CancellationToken::new(),
            deadline_us: AtomicU64::new(0),
            anchor: Instant::now(),
            budgets,
            units: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
            linked: std::sync::OnceLock::new(),
        }
    }

    /// Link an external cancellation token (e.g. one supplied through
    /// `RunOptions`) so cancelling *it* also cancels this query. At most one
    /// token can be linked; later calls are ignored. The checkpoint cost is
    /// one extra relaxed load only while a token is actually linked.
    pub fn link_token(&self, token: CancellationToken) {
        let _ = self.linked.set(token);
    }

    /// The query's cancellation token (clone to hand to other threads).
    pub fn token(&self) -> &CancellationToken {
        &self.token
    }

    /// Request cooperative cancellation.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Arm (or re-arm) a wall-clock deadline `after` from now.
    pub fn set_deadline(&self, after: Duration) {
        let us = self.anchor.elapsed().as_micros() as u64 + after.as_micros().max(1) as u64;
        self.deadline_us.store(us, Ordering::Relaxed);
    }

    /// The configured budgets.
    pub fn budgets(&self) -> Budgets {
        self.budgets
    }

    /// Checkpoint units charged so far. Units are only accumulated while a
    /// row budget is armed — with `max_rows: None` the checkpoint skips
    /// the counter entirely to keep the per-tuple path free of atomic RMWs.
    pub fn units(&self) -> u64 {
        self.units.load(Ordering::Relaxed)
    }

    /// Whether `bytes` of estimator histogram memory breaches the soft
    /// histogram budget (the caller degrades its estimator, it does not
    /// abort).
    pub fn hist_budget_exceeded(&self, bytes: usize) -> bool {
        self.budgets.max_hist_bytes.is_some_and(|max| bytes > max)
    }

    /// The cooperative checkpoint: charge `units` tuples of work and fail
    /// if the query is cancelled, past deadline, or over its row budget.
    ///
    /// The unarmed path (no cancel, no budget, no deadline — the common
    /// case) is two relaxed atomic *loads* and a predictable branch; the
    /// atomic RMWs are paid only while a row budget or deadline is armed,
    /// so an always-attached governor costs nothing measurable per tuple.
    #[inline]
    pub fn check(&self, units: u64) -> QResult<()> {
        if self.token.is_cancelled() {
            return Err(ExecError::Cancelled.into());
        }
        if let Some(linked) = self.linked.get() {
            if linked.is_cancelled() {
                return Err(ExecError::Cancelled.into());
            }
        }
        if let Some(max) = self.budgets.max_rows {
            let total = self.units.fetch_add(units, Ordering::Relaxed) + units;
            if total > max {
                return Err(ExecError::BudgetExceeded(format!(
                    "max_rows={max} (processed {total} tuples)"
                ))
                .into());
            }
        }
        let deadline = self.deadline_us.load(Ordering::Relaxed);
        if deadline != 0 {
            let tick = self.ticks.fetch_add(1, Ordering::Relaxed);
            if tick.is_multiple_of(DEADLINE_STRIDE)
                && self.anchor.elapsed().as_micros() as u64 >= deadline
            {
                return Err(ExecError::DeadlineExceeded.into());
            }
        }
        Ok(())
    }
}

/// Capture a panic payload as a readable message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f` inside a panic boundary, converting a panic anywhere below it
/// into [`ExecError::OperatorPanic`] so one misbehaving operator yields a
/// terminal `Failed` query instead of poisoning the process. Drive loops
/// wrap their *entire* drain in one `guarded` call rather than guarding
/// each `next()` — a per-tuple `catch_unwind` costs measurable throughput.
pub fn guarded<R>(f: impl FnOnce() -> QResult<R>) -> QResult<R> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(ExecError::OperatorPanic(panic_message(&*payload)).into()),
    }
}

/// Run a single `next_batch()` inside a panic boundary (for stepping
/// drivers that refill one batch at a time, where there is no loop to wrap
/// — see [`guarded`] for drains).
pub fn guarded_next_batch(
    op: &mut dyn crate::ops::Operator,
    out: &mut qprog_types::RowBatch,
) -> QResult<qprog_types::BatchStatus> {
    guarded(|| op.next_batch(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_types::QError;

    #[test]
    fn untriggered_governor_passes_checkpoints() {
        let g = Governor::default();
        for _ in 0..1000 {
            g.check(1).unwrap();
        }
        // No row budget armed: the counter is deliberately not maintained.
        assert_eq!(g.units(), 0);
        let g = Governor::new(Budgets {
            max_rows: Some(1_000_000),
            max_hist_bytes: None,
        });
        for _ in 0..1000 {
            g.check(1).unwrap();
        }
        assert_eq!(g.units(), 1000);
    }

    #[test]
    fn cancellation_fails_next_checkpoint() {
        let g = Governor::default();
        g.check(1).unwrap();
        let token = g.token().clone();
        token.cancel();
        assert!(token.is_cancelled());
        assert!(g.check(1).unwrap_err().is_cancelled());
    }

    #[test]
    fn linked_token_cancels_query() {
        let g = Governor::default();
        let external = CancellationToken::new();
        g.link_token(external.clone());
        g.check(1).unwrap();
        external.cancel();
        assert!(g.check(1).unwrap_err().is_cancelled());
        // only the first link sticks
        let g2 = Governor::default();
        g2.link_token(CancellationToken::new());
        let ignored = CancellationToken::new();
        g2.link_token(ignored.clone());
        ignored.cancel();
        g2.check(1).unwrap();
    }

    #[test]
    fn row_budget_aborts_on_breach() {
        let g = Governor::new(Budgets {
            max_rows: Some(10),
            max_hist_bytes: None,
        });
        for _ in 0..10 {
            g.check(1).unwrap();
        }
        let e = g.check(1).unwrap_err();
        assert!(matches!(e, QError::Lifecycle(ExecError::BudgetExceeded(_))));
        assert!(e.to_string().contains("max_rows=10"), "{e}");
    }

    #[test]
    fn deadline_fires_within_a_stride() {
        let g = Governor::default();
        g.set_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        let mut failed = None;
        for i in 0..=DEADLINE_STRIDE {
            if let Err(e) = g.check(1) {
                failed = Some((i, e));
                break;
            }
        }
        let (_, e) = failed.expect("deadline never observed");
        assert!(matches!(e, QError::Lifecycle(ExecError::DeadlineExceeded)));
    }

    #[test]
    fn hist_budget_is_soft() {
        let g = Governor::new(Budgets {
            max_rows: None,
            max_hist_bytes: Some(1024),
        });
        assert!(!g.hist_budget_exceeded(1024));
        assert!(g.hist_budget_exceeded(1025));
        // soft breach never fails a checkpoint
        g.check(1).unwrap();
    }

    #[test]
    fn panic_messages_are_captured() {
        let p = std::panic::catch_unwind(|| panic!("boom {}", 42)).unwrap_err();
        assert_eq!(panic_message(&*p), "boom 42");
        let p = std::panic::catch_unwind(|| panic!("static")).unwrap_err();
        assert_eq!(panic_message(&*p), "static");
    }
}
