//! Thin synchronization wrappers over `std::sync`.
//!
//! The engine previously used `parking_lot`; this module keeps its ergonomic
//! `lock()` (no `Result`) on top of `std::sync::Mutex` so the workspace has
//! no external dependencies. Poisoning is deliberately ignored: estimator
//! state is only ever mutated under short, panic-free critical sections, and
//! a panicking query thread aborts the query anyway — a monitor reading
//! slightly stale estimates afterwards is harmless.

use std::sync::MutexGuard;

/// A mutual-exclusion lock with `parking_lot`-style ergonomics
/// (`lock()` returns the guard directly, recovering from poison).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn survives_poisoning() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
