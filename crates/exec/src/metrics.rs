//! Lock-free per-operator execution counters.
//!
//! The gnm progress model needs, for every operator `i`, the `getnext()`
//! calls made so far (`K_i`) and the current estimate of the lifetime total
//! (`N_i`). Operators own an [`OpMetrics`] handle and update it with relaxed
//! atomics — the cost per tuple is a couple of uncontended atomic
//! increments, which is what keeps the framework lightweight. A progress
//! monitor holds the same handles through a [`MetricsRegistry`] and reads
//! them at any time, from any thread.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Counters for a single operator.
#[derive(Debug, Default)]
pub struct OpMetrics {
    /// `K_i`: tuples emitted so far.
    emitted: AtomicU64,
    /// Current estimate of `N_i` (f64 bit pattern).
    estimated_total: AtomicU64,
    /// Lower confidence bound on `N_i` (f64 bits; NaN = unset).
    estimated_lo: AtomicU64,
    /// Upper confidence bound on `N_i` (f64 bits; NaN = unset).
    estimated_hi: AtomicU64,
    /// Tuples consumed from the operator's driver input (for estimators and
    /// diagnostics).
    driver_consumed: AtomicU64,
    /// Set once the operator has returned `None`.
    finished: AtomicBool,
}

impl OpMetrics {
    /// Fresh counters with an initial (optimizer) total estimate.
    pub fn with_initial_estimate(estimate: f64) -> Arc<Self> {
        let m = OpMetrics::default();
        m.set_estimated_total(estimate);
        m.estimated_lo.store(f64::NAN.to_bits(), Ordering::Relaxed);
        m.estimated_hi.store(f64::NAN.to_bits(), Ordering::Relaxed);
        Arc::new(m)
    }

    /// Publish a confidence interval around the current `N_i` estimate
    /// (§4.1's `β`-style guarantees, surfaced to progress monitors).
    pub fn set_estimated_bounds(&self, lo: f64, hi: f64) {
        self.estimated_lo.store(lo.max(0.0).to_bits(), Ordering::Relaxed);
        self.estimated_hi.store(hi.max(0.0).to_bits(), Ordering::Relaxed);
    }

    /// The published confidence bounds on `N_i`, if any; both are clamped
    /// below by `K_i` (work already done is certain).
    pub fn estimated_bounds(&self) -> Option<(f64, f64)> {
        let lo = f64::from_bits(self.estimated_lo.load(Ordering::Relaxed));
        let hi = f64::from_bits(self.estimated_hi.load(Ordering::Relaxed));
        if lo.is_nan() || hi.is_nan() {
            return None;
        }
        if self.is_finished() {
            let k = self.emitted() as f64;
            return Some((k, k));
        }
        let k = self.emitted() as f64;
        Some((lo.max(k), hi.max(k)))
    }

    /// Record one emitted tuple.
    #[inline]
    pub fn record_emitted(&self) {
        self.emitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` driver tuples consumed.
    #[inline]
    pub fn record_driver(&self, n: u64) {
        self.driver_consumed.fetch_add(n, Ordering::Relaxed);
    }

    /// Publish a new estimate of the lifetime total `N_i`.
    #[inline]
    pub fn set_estimated_total(&self, estimate: f64) {
        self.estimated_total
            .store(estimate.max(0.0).to_bits(), Ordering::Relaxed);
    }

    /// Mark the operator finished (its `N_i` is now exactly `K_i`).
    pub fn mark_finished(&self) {
        self.finished.store(true, Ordering::Relaxed);
        let k = self.emitted();
        self.set_estimated_total(k as f64);
    }

    /// `K_i`: tuples emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Driver tuples consumed so far.
    pub fn driver_consumed(&self) -> u64 {
        self.driver_consumed.load(Ordering::Relaxed)
    }

    /// Current `N_i` estimate (never below `K_i`).
    pub fn estimated_total(&self) -> f64 {
        let raw = f64::from_bits(self.estimated_total.load(Ordering::Relaxed));
        raw.max(self.emitted() as f64)
    }

    /// Whether the operator has finished.
    pub fn is_finished(&self) -> bool {
        self.finished.load(Ordering::Relaxed)
    }
}

/// All operators' metrics for one physical plan, in plan order.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    entries: Vec<(String, Arc<OpMetrics>)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Register an operator; returns its metrics handle.
    pub fn register(&mut self, name: impl Into<String>, initial_estimate: f64) -> Arc<OpMetrics> {
        let m = OpMetrics::with_initial_estimate(initial_estimate);
        self.entries.push((name.into(), Arc::clone(&m)));
        m
    }

    /// Iterate `(name, metrics)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<OpMetrics>)> + '_ {
        self.entries.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// Number of registered operators.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no operators are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Metrics handle by registration index.
    pub fn get(&self, idx: usize) -> Option<&Arc<OpMetrics>> {
        self.entries.get(idx).map(|(_, m)| m)
    }

    /// Mark every operator finished, pinning each `N_i` to its `K_i`.
    ///
    /// Called when the plan root is exhausted: operators abandoned mid-way
    /// (e.g. below an early-terminating LIMIT) will never emit again, so
    /// their remaining estimated work must not keep progress below 1.
    pub fn finish_all(&self) {
        for (_, m) in self.iter() {
            m.mark_finished();
        }
    }

    /// Total `getnext()` calls so far across all operators (`C` over the
    /// registered set).
    pub fn total_emitted(&self) -> u64 {
        self.entries.iter().map(|(_, m)| m.emitted()).sum()
    }

    /// Sum of the current `N_i` estimates across all operators.
    pub fn total_estimated(&self) -> f64 {
        self.entries.iter().map(|(_, m)| m.estimated_total()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = OpMetrics::with_initial_estimate(100.0);
        assert_eq!(m.emitted(), 0);
        assert_eq!(m.estimated_total(), 100.0);
        for _ in 0..5 {
            m.record_emitted();
        }
        m.record_driver(3);
        assert_eq!(m.emitted(), 5);
        assert_eq!(m.driver_consumed(), 3);
    }

    #[test]
    fn estimate_never_below_emitted() {
        let m = OpMetrics::with_initial_estimate(2.0);
        for _ in 0..10 {
            m.record_emitted();
        }
        assert_eq!(m.estimated_total(), 10.0);
        m.set_estimated_total(50.0);
        assert_eq!(m.estimated_total(), 50.0);
    }

    #[test]
    fn finish_pins_estimate_to_emitted() {
        let m = OpMetrics::with_initial_estimate(1000.0);
        for _ in 0..7 {
            m.record_emitted();
        }
        m.mark_finished();
        assert!(m.is_finished());
        assert_eq!(m.estimated_total(), 7.0);
    }

    #[test]
    fn bounds_lifecycle() {
        let m = OpMetrics::with_initial_estimate(100.0);
        assert!(m.estimated_bounds().is_none());
        m.set_estimated_bounds(80.0, 120.0);
        assert_eq!(m.estimated_bounds(), Some((80.0, 120.0)));
        // clamped below by emitted work
        for _ in 0..90 {
            m.record_emitted();
        }
        assert_eq!(m.estimated_bounds(), Some((90.0, 120.0)));
        m.mark_finished();
        assert_eq!(m.estimated_bounds(), Some((90.0, 90.0)));
    }

    #[test]
    fn negative_estimates_clamped() {
        let m = OpMetrics::with_initial_estimate(-5.0);
        assert_eq!(m.estimated_total(), 0.0);
    }

    #[test]
    fn registry_aggregates() {
        let mut reg = MetricsRegistry::new();
        let a = reg.register("scan", 10.0);
        let b = reg.register("join", 20.0);
        a.record_emitted();
        b.record_emitted();
        b.record_emitted();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.total_emitted(), 3);
        assert_eq!(reg.total_estimated(), 30.0);
        let names: Vec<&str> = reg.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["scan", "join"]);
        assert!(reg.get(1).is_some());
        assert!(reg.get(2).is_none());
    }

    #[test]
    fn metrics_are_cross_thread_observable() {
        let m = OpMetrics::with_initial_estimate(0.0);
        let writer = Arc::clone(&m);
        let handle = std::thread::spawn(move || {
            for i in 0..1000 {
                writer.record_emitted();
                writer.set_estimated_total(i as f64);
            }
            writer.mark_finished();
        });
        // reader just must never see torn/invalid values
        loop {
            let e = m.estimated_total();
            assert!(e >= 0.0 && e.is_finite());
            if m.is_finished() {
                break;
            }
        }
        handle.join().unwrap();
        assert_eq!(m.emitted(), 1000);
        assert_eq!(m.estimated_total(), 1000.0);
    }
}
