//! Lock-free per-operator execution counters.
//!
//! The gnm progress model needs, for every operator `i`, the `getnext()`
//! calls made so far (`K_i`) and the current estimate of the lifetime total
//! (`N_i`). Operators own an [`OpMetrics`] handle and update it with relaxed
//! atomics — the cost per tuple is a couple of uncontended atomic
//! increments, which is what keeps the framework lightweight. A progress
//! monitor holds the same handles through a [`MetricsRegistry`] and reads
//! them at any time, from any thread.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use qprog_types::QResult;

use crate::governor::Governor;
use crate::trace::{DegradeReason, EstimateSource, EventBus, Phase, TraceEventKind};

/// Relative change in `N_i` below which an estimate refinement is *not*
/// traced. Keeps the event stream bounded when baselines (dne/byte) nudge
/// the estimate every driver tuple while still capturing every material
/// refinement.
pub const TRACE_REFINE_REL_EPS: f64 = 0.01;

/// How many observed work units elapse between `Instant` reads for the
/// wall-time span. Matches the governor's deadline stride so the traced
/// path's clock cost stays amortized to the same degree as deadline checks.
const WALL_STAMP_STRIDE: u64 = crate::governor::DEADLINE_STRIDE;

/// Sentinel for "never stamped" in the wall-span atomics.
const WALL_UNSET: u64 = u64::MAX;

/// Per-operator tracing state: the bus, this operator's registry index, and
/// the last estimate/bounds values actually published as events (f64 bit
/// patterns, NaN = never published).
#[derive(Debug)]
struct TraceHandle {
    bus: Arc<EventBus>,
    op: u32,
    last_estimate: AtomicU64,
    last_lo: AtomicU64,
    last_hi: AtomicU64,
    /// First observed-work timestamp (µs since bus epoch; `WALL_UNSET` =
    /// never stamped).
    first_us: AtomicU64,
    /// Most recent observed-work timestamp (µs since bus epoch).
    last_us: AtomicU64,
}

impl TraceHandle {
    fn new(bus: Arc<EventBus>, op: u32) -> Self {
        TraceHandle {
            bus,
            op,
            last_estimate: AtomicU64::new(f64::NAN.to_bits()),
            last_lo: AtomicU64::new(f64::NAN.to_bits()),
            last_hi: AtomicU64::new(f64::NAN.to_bits()),
            first_us: AtomicU64::new(WALL_UNSET),
            last_us: AtomicU64::new(WALL_UNSET),
        }
    }

    /// Count observed work; stamp the wall-span endpoints on the first
    /// unit and whenever a counter crosses a [`WALL_STAMP_STRIDE`]
    /// boundary. `prev` is the counter value before this unit of work —
    /// the caller's own `fetch_add` result — so the traced hot path adds
    /// no atomic beyond the counters the untraced path already maintains.
    #[inline]
    fn tick(&self, prev: u64, units: u64) {
        if prev == 0 || prev / WALL_STAMP_STRIDE != (prev + units) / WALL_STAMP_STRIDE {
            self.stamp();
        }
    }

    /// Read the epoch clock once and extend the observed span.
    fn stamp(&self) {
        let now = self.bus.epoch().elapsed().as_micros() as u64;
        self.first_us.fetch_min(now, Ordering::Relaxed);
        // fetch_max is safe against WALL_UNSET because the span is only
        // read through `wall_span_us`, which requires first_us to be set.
        if self.last_us.load(Ordering::Relaxed) == WALL_UNSET {
            self.last_us.store(now, Ordering::Relaxed);
        } else {
            self.last_us.fetch_max(now, Ordering::Relaxed);
        }
    }

    /// The inclusive observed wall span `[first, last]` in µs, if any work
    /// was ever stamped.
    fn wall_span_us(&self) -> Option<u64> {
        let first = self.first_us.load(Ordering::Relaxed);
        if first == WALL_UNSET {
            return None;
        }
        let last = self.last_us.load(Ordering::Relaxed);
        if last == WALL_UNSET {
            return None;
        }
        Some(last.saturating_sub(first))
    }

    /// Whether `new` differs from the last traced value by more than
    /// [`TRACE_REFINE_REL_EPS`] (always true for the first publication).
    fn materially_different(last_bits: &AtomicU64, new: f64) -> bool {
        let last = f64::from_bits(last_bits.load(Ordering::Relaxed));
        !last.is_finite() || (new - last).abs() > TRACE_REFINE_REL_EPS * last.abs().max(1.0)
    }
}

/// Counters for a single operator.
#[derive(Debug, Default)]
pub struct OpMetrics {
    /// `K_i`: tuples emitted so far.
    emitted: AtomicU64,
    /// Current estimate of `N_i` (f64 bit pattern).
    estimated_total: AtomicU64,
    /// Lower confidence bound on `N_i` (f64 bits; NaN = unset).
    estimated_lo: AtomicU64,
    /// Upper confidence bound on `N_i` (f64 bits; NaN = unset).
    estimated_hi: AtomicU64,
    /// Tuples consumed from the operator's driver input (for estimators and
    /// diagnostics).
    driver_consumed: AtomicU64,
    /// Set once the operator has returned `None`.
    finished: AtomicBool,
    /// Worker threads that contributed to this operator's parallel phases
    /// (0 = serial execution; see [`record_worker_busy`](Self::record_worker_busy)).
    workers: AtomicU32,
    /// Trace publication state; `None` (the default) makes every trace hook
    /// a single branch.
    trace: Option<TraceHandle>,
    /// Lifecycle governor shared by the whole query; `None` (the default)
    /// makes [`checkpoint`](Self::checkpoint) a single branch.
    governor: Option<Arc<Governor>>,
}

impl OpMetrics {
    /// Fresh counters with an initial (optimizer) total estimate.
    pub fn with_initial_estimate(estimate: f64) -> Arc<Self> {
        OpMetrics::build(estimate, None)
    }

    /// Fresh counters that additionally publish [`TraceEventKind`] events
    /// for estimate refinements and phase transitions to `bus`, identifying
    /// this operator as registry index `op`. The initial optimizer estimate
    /// is traced immediately (with `old = NaN`).
    pub fn with_initial_estimate_traced(estimate: f64, bus: Arc<EventBus>, op: u32) -> Arc<Self> {
        OpMetrics::build(estimate, Some(TraceHandle::new(bus, op)))
    }

    fn build(estimate: f64, trace: Option<TraceHandle>) -> Arc<Self> {
        OpMetrics::build_governed(estimate, trace, None)
    }

    fn build_governed(
        estimate: f64,
        trace: Option<TraceHandle>,
        governor: Option<Arc<Governor>>,
    ) -> Arc<Self> {
        let m = OpMetrics {
            trace,
            governor,
            ..OpMetrics::default()
        };
        if let Some(t) = &m.trace {
            t.last_estimate
                .store(estimate.max(0.0).to_bits(), Ordering::Relaxed);
            t.bus.publish(TraceEventKind::EstimateRefined {
                op: t.op,
                old: f64::NAN,
                new: estimate.max(0.0),
                source: EstimateSource::Optimizer,
            });
        }
        m.set_estimated_total(estimate);
        m.estimated_lo.store(f64::NAN.to_bits(), Ordering::Relaxed);
        m.estimated_hi.store(f64::NAN.to_bits(), Ordering::Relaxed);
        Arc::new(m)
    }

    /// Publish a confidence interval around the current `N_i` estimate
    /// (§4.1's `β`-style guarantees, surfaced to progress monitors). An
    /// inverted interval (`lo > hi`, e.g. from an estimator bug or a caller
    /// mixing up arguments) is repaired by swapping the endpoints so
    /// [`estimated_bounds`](Self::estimated_bounds) never returns `lo > hi`.
    pub fn set_estimated_bounds(&self, lo: f64, hi: f64) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let (lo, hi) = (lo.max(0.0), hi.max(0.0));
        self.estimated_lo.store(lo.to_bits(), Ordering::Relaxed);
        self.estimated_hi.store(hi.to_bits(), Ordering::Relaxed);
        if let Some(t) = &self.trace {
            if TraceHandle::materially_different(&t.last_lo, lo)
                || TraceHandle::materially_different(&t.last_hi, hi)
            {
                t.last_lo.store(lo.to_bits(), Ordering::Relaxed);
                t.last_hi.store(hi.to_bits(), Ordering::Relaxed);
                t.bus
                    .publish(TraceEventKind::BoundsRefined { op: t.op, lo, hi });
            }
        }
    }

    /// The published confidence bounds on `N_i`, if any; both are clamped
    /// below by `K_i` (work already done is certain).
    pub fn estimated_bounds(&self) -> Option<(f64, f64)> {
        let lo = f64::from_bits(self.estimated_lo.load(Ordering::Relaxed));
        let hi = f64::from_bits(self.estimated_hi.load(Ordering::Relaxed));
        if lo.is_nan() || hi.is_nan() {
            return None;
        }
        if self.is_finished() {
            let k = self.emitted() as f64;
            return Some((k, k));
        }
        let k = self.emitted() as f64;
        Some((lo.max(k), hi.max(k)))
    }

    /// Record one emitted tuple.
    #[inline]
    pub fn record_emitted(&self) {
        let prev = self.emitted.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.trace {
            t.tick(prev, 1);
        }
    }

    /// Record `n` emitted tuples at once — the batch-boundary form of
    /// [`record_emitted`](Self::record_emitted). One atomic add per batch;
    /// [`TraceHandle::tick`] already handles multi-unit advances (it stamps
    /// whenever the counter crosses a stride boundary), so wall-span
    /// attribution is unchanged.
    #[inline]
    pub fn record_emitted_n(&self, n: u64) {
        if n == 0 {
            return;
        }
        let prev = self.emitted.fetch_add(n, Ordering::Relaxed);
        if let Some(t) = &self.trace {
            t.tick(prev, n);
        }
    }

    /// Cooperative lifecycle checkpoint: charge `units` tuples of work to
    /// the query's [`Governor`], failing fast on cancellation, deadline
    /// expiry, or a row-budget breach. A single branch when no governor is
    /// attached.
    #[inline]
    pub fn checkpoint(&self, units: u64) -> QResult<()> {
        match &self.governor {
            Some(g) => g.check(units),
            None => Ok(()),
        }
    }

    /// The query governor shared with this operator, if any.
    pub fn governor(&self) -> Option<&Arc<Governor>> {
        self.governor.as_ref()
    }

    /// Whether `bytes` of estimator histogram memory breaches the query's
    /// soft histogram budget (no governor or no budget → never).
    pub fn hist_budget_exceeded(&self, bytes: usize) -> bool {
        self.governor
            .as_ref()
            .is_some_and(|g| g.hist_budget_exceeded(bytes))
    }

    /// Trace that this operator's estimator degraded to a cheaper baseline
    /// (no-op without an attached bus).
    pub fn trace_degraded(&self, reason: DegradeReason) {
        if let Some(t) = &self.trace {
            t.bus
                .publish(TraceEventKind::EstimatorDegraded { op: t.op, reason });
        }
    }

    /// Record `n` driver tuples consumed.
    #[inline]
    pub fn record_driver(&self, n: u64) {
        let prev = self.driver_consumed.fetch_add(n, Ordering::Relaxed);
        if let Some(t) = &self.trace {
            t.tick(prev, n);
        }
    }

    /// Publish a new estimate of the lifetime total `N_i`.
    #[inline]
    pub fn set_estimated_total(&self, estimate: f64) {
        let estimate = estimate.max(0.0);
        self.estimated_total
            .store(estimate.to_bits(), Ordering::Relaxed);
        if let Some(t) = &self.trace {
            if !self.is_finished() && TraceHandle::materially_different(&t.last_estimate, estimate)
            {
                let old = f64::from_bits(t.last_estimate.load(Ordering::Relaxed));
                t.last_estimate.store(estimate.to_bits(), Ordering::Relaxed);
                t.bus.publish(TraceEventKind::EstimateRefined {
                    op: t.op,
                    old,
                    new: estimate,
                    source: EstimateSource::Online,
                });
            }
        }
    }

    /// Mark the operator finished (its `N_i` is now exactly `K_i`).
    pub fn mark_finished(&self) {
        let first = !self.finished.swap(true, Ordering::Relaxed);
        let k = self.emitted();
        self.set_estimated_total(k as f64);
        if first {
            if let Some(t) = &self.trace {
                let old = f64::from_bits(t.last_estimate.load(Ordering::Relaxed));
                t.last_estimate
                    .store((k as f64).to_bits(), Ordering::Relaxed);
                t.bus.publish(TraceEventKind::EstimateRefined {
                    op: t.op,
                    old,
                    new: k as f64,
                    source: EstimateSource::Exact,
                });
                // Close the observed span at the finish instant so the
                // stride's tail (< 64 unstamped ticks) is attributed, then
                // publish the final attribution.
                if t.first_us.load(Ordering::Relaxed) != WALL_UNSET {
                    t.stamp();
                }
                if let Some(wall_us) = t.wall_span_us() {
                    t.bus
                        .publish(TraceEventKind::OperatorWallTime { op: t.op, wall_us });
                }
                t.bus.publish(TraceEventKind::OperatorFinished {
                    op: t.op,
                    emitted: k,
                });
            }
        }
    }

    /// Trace a phase boundary crossing (no-op without an attached bus).
    /// Operators call this at blocking-phase transitions only — never per
    /// tuple.
    pub fn trace_phase(&self, from: Phase, to: Phase) {
        if let Some(t) = &self.trace {
            t.bus
                .publish(TraceEventKind::PhaseTransition { op: t.op, from, to });
        }
    }

    /// `K_i`: tuples emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Driver tuples consumed so far.
    pub fn driver_consumed(&self) -> u64 {
        self.driver_consumed.load(Ordering::Relaxed)
    }

    /// Current `N_i` estimate (never below `K_i`).
    pub fn estimated_total(&self) -> f64 {
        let raw = f64::from_bits(self.estimated_total.load(Ordering::Relaxed));
        raw.max(self.emitted() as f64)
    }

    /// Whether the operator has finished.
    pub fn is_finished(&self) -> bool {
        self.finished.load(Ordering::Relaxed)
    }

    /// Record one worker thread's busy time inside this operator's
    /// partition-parallel phases. Publishes a
    /// [`TraceEventKind::WorkerWallTime`] event when traced (serial
    /// execution never calls this, so single-threaded traces stay
    /// byte-identical to pre-parallel builds).
    pub fn record_worker_busy(&self, worker: u32, busy: std::time::Duration) {
        self.workers.fetch_max(worker + 1, Ordering::Relaxed);
        if let Some(t) = &self.trace {
            t.bus.publish(TraceEventKind::WorkerWallTime {
                op: t.op,
                worker,
                busy_us: busy.as_micros() as u64,
            });
        }
    }

    /// How many worker threads contributed to this operator's parallel
    /// phases, or `None` for (so-far) serial execution.
    pub fn workers(&self) -> Option<u32> {
        match self.workers.load(Ordering::Relaxed) {
            0 => None,
            n => Some(n),
        }
    }

    /// The operator's observed active wall span in µs — the inclusive
    /// first-to-last-work interval measured by epoch-clock reads amortized
    /// over [`WALL_STAMP_STRIDE`] work units. `None` when untraced or
    /// before any work is observed. Like `EXPLAIN ANALYZE` inclusive time,
    /// a parent operator's span contains its children's.
    pub fn wall_us(&self) -> Option<u64> {
        self.trace.as_ref().and_then(|t| t.wall_span_us())
    }
}

/// All operators' metrics for one physical plan, in plan order.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    entries: Vec<(String, Arc<OpMetrics>)>,
    /// When set, every subsequently registered operator publishes trace
    /// events to this bus under its registry index.
    bus: Option<Arc<EventBus>>,
    /// When set, every subsequently registered operator checkpoints against
    /// this query-wide lifecycle governor.
    governor: Option<Arc<Governor>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// An empty registry whose operators will trace to `bus`.
    pub fn traced(bus: Arc<EventBus>) -> Self {
        MetricsRegistry {
            entries: Vec::new(),
            bus: Some(bus),
            governor: None,
        }
    }

    /// The attached event bus, if any.
    pub fn bus(&self) -> Option<&Arc<EventBus>> {
        self.bus.as_ref()
    }

    /// Attach a query-wide lifecycle governor. Call before registering
    /// operators — only operators registered afterwards observe it.
    pub fn set_governor(&mut self, governor: Arc<Governor>) {
        self.governor = Some(governor);
    }

    /// The attached lifecycle governor, if any.
    pub fn governor(&self) -> Option<&Arc<Governor>> {
        self.governor.as_ref()
    }

    /// Register an operator; returns its metrics handle.
    pub fn register(&mut self, name: impl Into<String>, initial_estimate: f64) -> Arc<OpMetrics> {
        let trace = self
            .bus
            .as_ref()
            .map(|bus| (Arc::clone(bus), self.entries.len() as u32));
        let m = match trace {
            Some((bus, op)) => OpMetrics::build_governed(
                initial_estimate,
                Some(TraceHandle::new(bus, op)),
                self.governor.clone(),
            ),
            None => OpMetrics::build_governed(initial_estimate, None, self.governor.clone()),
        };
        self.entries.push((name.into(), Arc::clone(&m)));
        m
    }

    /// Iterate `(name, metrics)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<OpMetrics>)> + '_ {
        self.entries.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// Number of registered operators.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no operators are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Metrics handle by registration index.
    pub fn get(&self, idx: usize) -> Option<&Arc<OpMetrics>> {
        self.entries.get(idx).map(|(_, m)| m)
    }

    /// Mark every operator finished, pinning each `N_i` to its `K_i`.
    ///
    /// Called when the plan root is exhausted: operators abandoned mid-way
    /// (e.g. below an early-terminating LIMIT) will never emit again, so
    /// their remaining estimated work must not keep progress below 1.
    pub fn finish_all(&self) {
        for (_, m) in self.iter() {
            m.mark_finished();
        }
    }

    /// Total `getnext()` calls so far across all operators (`C` over the
    /// registered set).
    pub fn total_emitted(&self) -> u64 {
        self.entries.iter().map(|(_, m)| m.emitted()).sum()
    }

    /// Sum of the current `N_i` estimates across all operators.
    pub fn total_estimated(&self) -> f64 {
        self.entries.iter().map(|(_, m)| m.estimated_total()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = OpMetrics::with_initial_estimate(100.0);
        assert_eq!(m.emitted(), 0);
        assert_eq!(m.estimated_total(), 100.0);
        for _ in 0..5 {
            m.record_emitted();
        }
        m.record_driver(3);
        assert_eq!(m.emitted(), 5);
        assert_eq!(m.driver_consumed(), 3);
    }

    #[test]
    fn estimate_never_below_emitted() {
        let m = OpMetrics::with_initial_estimate(2.0);
        for _ in 0..10 {
            m.record_emitted();
        }
        assert_eq!(m.estimated_total(), 10.0);
        m.set_estimated_total(50.0);
        assert_eq!(m.estimated_total(), 50.0);
    }

    #[test]
    fn finish_pins_estimate_to_emitted() {
        let m = OpMetrics::with_initial_estimate(1000.0);
        for _ in 0..7 {
            m.record_emitted();
        }
        m.mark_finished();
        assert!(m.is_finished());
        assert_eq!(m.estimated_total(), 7.0);
    }

    #[test]
    fn bounds_lifecycle() {
        let m = OpMetrics::with_initial_estimate(100.0);
        assert!(m.estimated_bounds().is_none());
        m.set_estimated_bounds(80.0, 120.0);
        assert_eq!(m.estimated_bounds(), Some((80.0, 120.0)));
        // clamped below by emitted work
        for _ in 0..90 {
            m.record_emitted();
        }
        assert_eq!(m.estimated_bounds(), Some((90.0, 120.0)));
        m.mark_finished();
        assert_eq!(m.estimated_bounds(), Some((90.0, 90.0)));
    }

    #[test]
    fn negative_estimates_clamped() {
        let m = OpMetrics::with_initial_estimate(-5.0);
        assert_eq!(m.estimated_total(), 0.0);
    }

    #[test]
    fn registry_aggregates() {
        let mut reg = MetricsRegistry::new();
        let a = reg.register("scan", 10.0);
        let b = reg.register("join", 20.0);
        a.record_emitted();
        b.record_emitted();
        b.record_emitted();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.total_emitted(), 3);
        assert_eq!(reg.total_estimated(), 30.0);
        let names: Vec<&str> = reg.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["scan", "join"]);
        assert!(reg.get(1).is_some());
        assert!(reg.get(2).is_none());
    }

    #[test]
    fn registry_attaches_governor_to_operators() {
        let mut reg = MetricsRegistry::new();
        reg.set_governor(Arc::new(crate::governor::Governor::default()));
        let m = reg.register("scan", 0.0);
        m.checkpoint(1).unwrap();
        reg.governor().unwrap().cancel();
        assert!(m.checkpoint(1).unwrap_err().is_cancelled());
        // ungoverned metrics never fail checkpoints
        let free = OpMetrics::with_initial_estimate(0.0);
        free.checkpoint(1).unwrap();
        assert!(free.governor().is_none());
    }

    #[test]
    fn wall_span_is_stamped_by_multi_unit_advances() {
        // Batch execution advances counters by whole batches (e.g. 1024 ≫
        // the 64-unit stamp stride); the wall span must still be anchored
        // by the first unit and extended across every boundary crossing.
        let bus = crate::trace::EventBus::builder().build();
        let m = OpMetrics::with_initial_estimate_traced(0.0, Arc::clone(&bus), 0);
        assert_eq!(m.wall_us(), None);
        m.record_emitted_n(1024);
        assert!(m.wall_us().is_some(), "first batch must stamp the span");
        m.record_emitted_n(1024);
        assert!(m.wall_us().is_some());
        // Sub-stride advances past the first unit also keep a valid span.
        let m2 = OpMetrics::with_initial_estimate_traced(0.0, bus, 1);
        m2.record_driver(3);
        assert!(
            m2.wall_us().is_some(),
            "first units stamp even below stride"
        );
    }

    #[test]
    fn worker_busy_tracks_pool_width() {
        let m = OpMetrics::with_initial_estimate(0.0);
        assert_eq!(m.workers(), None);
        m.record_worker_busy(0, std::time::Duration::from_micros(10));
        m.record_worker_busy(3, std::time::Duration::from_micros(20));
        m.record_worker_busy(1, std::time::Duration::from_micros(5));
        assert_eq!(m.workers(), Some(4));
    }

    #[test]
    fn metrics_are_cross_thread_observable() {
        let m = OpMetrics::with_initial_estimate(0.0);
        let writer = Arc::clone(&m);
        let handle = std::thread::spawn(move || {
            for i in 0..1000 {
                writer.record_emitted();
                writer.set_estimated_total(i as f64);
            }
            writer.mark_finished();
        });
        // reader just must never see torn/invalid values
        loop {
            let e = m.estimated_total();
            assert!(e >= 0.0 && e.is_finite());
            if m.is_finished() {
                break;
            }
        }
        handle.join().unwrap();
        assert_eq!(m.emitted(), 1000);
        assert_eq!(m.estimated_total(), 1000.0);
    }
}
