//! Blocking sort operator.
//!
//! The sort's *consume* phase sees every input tuple before emitting any —
//! the preprocessing window the paper's sort-merge-join and sort-aggregate
//! estimators run in (the join/aggregate variants embed their own sorts;
//! this standalone operator serves ORDER BY and explicit blocking
//! boundaries in plans).

use std::sync::Arc;

use qprog_types::{BatchStatus, QResult, Row, RowBatch, SchemaRef};

use crate::metrics::OpMetrics;
use crate::ops::{BoxedOp, Operator};
use crate::trace::Phase;

/// Sort keys: column index and direction.
#[derive(Debug, Clone, Copy)]
pub struct SortKey {
    pub col: usize,
    pub ascending: bool,
}

/// Sorts its entire input, then emits rows in order.
pub struct Sort {
    input: BoxedOp,
    keys: Vec<SortKey>,
    metrics: Arc<OpMetrics>,
    state: State,
}

enum State {
    Consuming,
    Emitting { rows: std::vec::IntoIter<Row> },
    Done,
}

impl Sort {
    /// Sort by the given keys (later keys break ties).
    pub fn new(input: BoxedOp, keys: Vec<SortKey>, metrics: Arc<OpMetrics>) -> Self {
        Sort {
            input,
            keys,
            metrics,
            state: State::Consuming,
        }
    }

    /// Ascending single-column sort.
    pub fn by_column(input: BoxedOp, col: usize, metrics: Arc<OpMetrics>) -> Self {
        Sort::new(
            input,
            vec![SortKey {
                col,
                ascending: true,
            }],
            metrics,
        )
    }
}

/// Compare rows by sort keys using the total order (NULLs first).
pub(crate) fn compare_rows(a: &Row, b: &Row, keys: &[SortKey]) -> std::cmp::Ordering {
    for k in keys {
        let (va, vb) = match (a.get(k.col), b.get(k.col)) {
            (Ok(x), Ok(y)) => (x, y),
            _ => return std::cmp::Ordering::Equal,
        };
        let ord = va.total_cmp(vb);
        let ord = if k.ascending { ord } else { ord.reverse() };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

impl Operator for Sort {
    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn next_batch(&mut self, out: &mut RowBatch) -> QResult<BatchStatus> {
        out.clear();
        loop {
            match &mut self.state {
                State::Consuming => {
                    self.metrics.trace_phase(Phase::Init, Phase::SortInput);
                    let mut rows = Vec::new();
                    let mut scratch =
                        RowBatch::with_capacity(self.input.schema().arity(), out.capacity());
                    loop {
                        let status = self.input.next_batch(&mut scratch)?;
                        let n = scratch.len();
                        if n > 0 {
                            self.metrics.checkpoint(n as u64)?;
                            qprog_fault::fail_point!("exec/sort/consume");
                            self.metrics.record_driver(n as u64);
                            scratch.append_rows_to(&mut rows);
                        }
                        if status.is_exhausted() {
                            break;
                        }
                    }
                    rows.sort_by(|a, b| compare_rows(a, b, &self.keys));
                    self.metrics.trace_phase(Phase::SortInput, Phase::Emit);
                    self.state = State::Emitting {
                        rows: rows.into_iter(),
                    };
                }
                State::Emitting { rows } => {
                    while !out.is_full() {
                        match rows.next() {
                            Some(r) => out.push_row(r),
                            None => {
                                self.metrics.record_emitted_n(out.len() as u64);
                                self.metrics.mark_finished();
                                self.state = State::Done;
                                return Ok(BatchStatus::Exhausted);
                            }
                        }
                    }
                    self.metrics.record_emitted_n(out.len() as u64);
                    return Ok(BatchStatus::HasMore);
                }
                State::Done => return Ok(BatchStatus::Exhausted),
            }
        }
    }

    fn name(&self) -> &str {
        "sort"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_util::{col_i64, drain, int2_table, int_table};
    use crate::ops::TableScan;

    fn scan1(vals: &[i64]) -> BoxedOp {
        let t = int_table("t", "a", vals).into_shared();
        Box::new(TableScan::new(t, OpMetrics::with_initial_estimate(0.0)))
    }

    #[test]
    fn sorts_ascending() {
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut s = Sort::by_column(scan1(&[3, 1, 2, 1]), 0, Arc::clone(&m));
        let rows = drain(&mut s);
        assert_eq!(col_i64(&rows, 0), vec![1, 1, 2, 3]);
        assert_eq!(m.emitted(), 4);
        assert_eq!(m.driver_consumed(), 4);
    }

    #[test]
    fn sorts_descending_and_multi_key() {
        let t = int2_table("t", ("a", "b"), &[(1, 9), (2, 1), (1, 3), (2, 5)]).into_shared();
        let scan = Box::new(TableScan::new(t, OpMetrics::with_initial_estimate(0.0)));
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut s = Sort::new(
            scan,
            vec![
                SortKey {
                    col: 0,
                    ascending: false,
                },
                SortKey {
                    col: 1,
                    ascending: true,
                },
            ],
            m,
        );
        let rows = drain(&mut s);
        assert_eq!(col_i64(&rows, 0), vec![2, 2, 1, 1]);
        assert_eq!(col_i64(&rows, 1), vec![1, 5, 3, 9]);
    }

    #[test]
    fn empty_input() {
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut s = Sort::by_column(scan1(&[]), 0, m);
        let mut src = crate::ops::RowSource::new(&mut s);
        assert!(src.next_row().unwrap().is_none());
        assert!(src.next_row().unwrap().is_none());
    }
}
