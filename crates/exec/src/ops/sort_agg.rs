//! Sort-based aggregation (§4.2's second implementation strategy).
//!
//! The input is sorted on the grouping columns, then groups are emitted by
//! scanning the sorted run. As with hash aggregation, the *sort* phase sees
//! every input tuple before any group is produced — the preprocessing
//! window where the GEE/MLE estimators run. Because the sort consumes the
//! input in its arrival (random) order, the estimators' randomness
//! assumption holds exactly as for the hash variant.

use std::sync::Arc;

use qprog_core::distinct::DistinctTracker;
use qprog_types::{BatchStatus, DataType, QResult, Row, RowBatch, SchemaRef};

use crate::metrics::OpMetrics;
use crate::ops::agg::{AggEstimation, AggSpec};
use crate::ops::sort::{compare_rows, SortKey};
use crate::ops::{BoxedOp, Operator};
use crate::trace::Phase;

enum SState {
    Consuming,
    Emitting { rows: std::vec::IntoIter<Row> },
    Done,
}

/// Sort-based GROUP BY: semantically identical to
/// [`HashAggregate`](crate::ops::agg::HashAggregate) (same output, same
/// deterministic group order), different preprocessing phase.
pub struct SortAggregate {
    input: BoxedOp,
    group_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    schema: SchemaRef,
    metrics: Arc<OpMetrics>,
    estimation: AggEstimation,
    tracker: Option<DistinctTracker>,
    state: SState,
}

impl SortAggregate {
    /// New sort aggregation; `schema` is the output schema (group columns
    /// then aggregate results).
    pub fn new(
        input: BoxedOp,
        group_cols: Vec<usize>,
        aggs: Vec<AggSpec>,
        schema: SchemaRef,
        estimation: AggEstimation,
        metrics: Arc<OpMetrics>,
    ) -> Self {
        let tracker = match (&estimation, group_cols.len()) {
            (AggEstimation::Track { input_size_hint }, 1) => {
                Some(DistinctTracker::new(*input_size_hint))
            }
            _ => None,
        };
        SortAggregate {
            input,
            group_cols,
            aggs,
            schema,
            metrics,
            estimation,
            tracker,
            state: SState::Consuming,
        }
    }

    fn consume(&mut self, batch_cap: usize) -> QResult<Vec<Row>> {
        use crate::ops::agg::accumulate_sorted_groups;

        let input_schema = self.input.schema();
        let input_types: Vec<Option<DataType>> = self
            .aggs
            .iter()
            .map(|a| {
                a.col
                    .and_then(|c| input_schema.field(c).ok().map(|f| f.data_type))
            })
            .collect();

        // Sort phase: consume the whole input, estimating as we go.
        self.metrics.trace_phase(Phase::Init, Phase::Accumulate);
        let mut rows: Vec<Row> = Vec::new();
        let mut scratch = RowBatch::with_capacity(input_schema.arity(), batch_cap);
        loop {
            let status = self.input.next_batch(&mut scratch)?;
            let n = scratch.len();
            if n > 0 {
                self.metrics.checkpoint(n as u64)?;
                self.metrics.record_driver(n as u64);
            }
            for r in 0..n {
                if let Some(tracker) = &mut self.tracker {
                    tracker.observe(&scratch.key(r, self.group_cols[0])?);
                }
            }
            // Published once per batch, after K_i advanced — keeps sampled
            // fractions monotone (and is the exact serial sequence at
            // batch_rows = 1).
            if n > 0 {
                if let Some(tracker) = &self.tracker {
                    self.metrics.set_estimated_total(tracker.estimate());
                } else if let AggEstimation::Pushdown(shared) = &self.estimation {
                    self.metrics.set_estimated_total(shared.lock().estimate());
                }
            }
            scratch.append_rows_to(&mut rows);
            if status.is_exhausted() {
                break;
            }
        }
        let sort_keys: Vec<SortKey> = self
            .group_cols
            .iter()
            .map(|&col| SortKey {
                col,
                ascending: true,
            })
            .collect();
        rows.sort_by(|a, b| compare_rows(a, b, &sort_keys));

        // Scan phase: runs of equal group keys become output rows.
        let out = accumulate_sorted_groups(&rows, &self.group_cols, &self.aggs, &input_types)?;
        self.metrics.set_estimated_total(out.len() as f64);
        Ok(out)
    }

    /// The internal tracker (for tests and experiment harnesses).
    pub fn tracker(&self) -> Option<&DistinctTracker> {
        self.tracker.as_ref()
    }
}

impl Operator for SortAggregate {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn next_batch(&mut self, out: &mut RowBatch) -> QResult<BatchStatus> {
        out.clear();
        loop {
            match &mut self.state {
                SState::Consuming => {
                    let rows = self.consume(out.capacity())?;
                    self.metrics.trace_phase(Phase::Accumulate, Phase::Emit);
                    self.state = SState::Emitting {
                        rows: rows.into_iter(),
                    };
                }
                SState::Emitting { rows } => {
                    while !out.is_full() {
                        match rows.next() {
                            Some(r) => out.push_row(r),
                            None => {
                                self.metrics.record_emitted_n(out.len() as u64);
                                self.metrics.mark_finished();
                                self.state = SState::Done;
                                return Ok(BatchStatus::Exhausted);
                            }
                        }
                    }
                    self.metrics.record_emitted_n(out.len() as u64);
                    return Ok(BatchStatus::HasMore);
                }
                SState::Done => return Ok(BatchStatus::Exhausted),
            }
        }
    }

    fn name(&self) -> &str {
        "sort_agg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::agg::{AggFunc, HashAggregate};
    use crate::ops::test_util::{drain, int2_table};
    use crate::ops::TableScan;
    use qprog_types::{Field, Schema};

    fn scan2(vals: &[(i64, i64)]) -> BoxedOp {
        let t = int2_table("t", ("g", "v"), vals).into_shared();
        Box::new(TableScan::new(t, OpMetrics::with_initial_estimate(0.0)))
    }

    fn out_schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::new("cnt", DataType::Int64).with_nullable(true),
            Field::new("sum", DataType::Int64).with_nullable(true),
        ])
        .into_ref()
    }

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec {
                func: AggFunc::CountStar,
                col: None,
            },
            AggSpec {
                func: AggFunc::Sum,
                col: Some(1),
            },
        ]
    }

    #[test]
    fn agrees_with_hash_aggregate() {
        let data: Vec<(i64, i64)> = (0..500).map(|i| ((i * 13) % 29, i)).collect();
        let m1 = OpMetrics::with_initial_estimate(0.0);
        let mut sort_agg = SortAggregate::new(
            scan2(&data),
            vec![0],
            specs(),
            out_schema(),
            AggEstimation::Off,
            m1,
        );
        let m2 = OpMetrics::with_initial_estimate(0.0);
        let mut hash_agg = HashAggregate::new(
            scan2(&data),
            vec![0],
            specs(),
            out_schema(),
            AggEstimation::Off,
            m2,
        );
        let a: Vec<String> = drain(&mut sort_agg).iter().map(|r| r.to_string()).collect();
        let b: Vec<String> = drain(&mut hash_agg).iter().map(|r| r.to_string()).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 29);
    }

    #[test]
    fn estimation_runs_in_the_sort_phase() {
        let data: Vec<(i64, i64)> = (0..600).map(|i| (i % 40, i)).collect();
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut agg = SortAggregate::new(
            scan2(&data),
            vec![0],
            specs(),
            out_schema(),
            AggEstimation::Track {
                input_size_hint: 600,
            },
            Arc::clone(&m),
        );
        let rows = drain(&mut agg);
        assert_eq!(rows.len(), 40);
        assert_eq!(m.estimated_total(), 40.0);
        assert_eq!(agg.tracker().unwrap().groups_seen(), 40);
    }

    #[test]
    fn empty_input_global_aggregation() {
        let m = OpMetrics::with_initial_estimate(0.0);
        // Global aggregation (no group columns): output is the agg results
        // alone, so the schema must not carry a group field.
        let schema = Schema::new(vec![
            Field::new("cnt", DataType::Int64).with_nullable(true),
            Field::new("sum", DataType::Int64).with_nullable(true),
        ])
        .into_ref();
        let mut agg =
            SortAggregate::new(scan2(&[]), vec![], specs(), schema, AggEstimation::Off, m);
        let rows = drain(&mut agg);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0).unwrap().as_i64().unwrap(), 0);
    }
}
