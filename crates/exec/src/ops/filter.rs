//! Selection (σ) with optional dne cardinality refinement.
//!
//! Selections have no preprocessing phase, so per §4.3 the framework uses
//! the driver-node estimator here: on randomly ordered input it has zero
//! error in expectation.

use std::sync::Arc;

use qprog_core::dne::DneEstimator;
use qprog_types::{BatchStatus, QResult, RowBatch, SchemaRef};

use crate::expr::Expr;
use crate::metrics::OpMetrics;
use crate::ops::{BoxedOp, Operator};

/// Filters rows by a boolean predicate.
pub struct Filter {
    input: BoxedOp,
    predicate: Expr,
    metrics: Arc<OpMetrics>,
    /// dne refinement over (input consumed, output emitted).
    dne: Option<DneEstimator>,
    /// Reused input batch; bounded by the output's remaining room so a
    /// fully-selective batch can never overflow `out`.
    scratch: Option<RowBatch>,
    done: bool,
}

impl Filter {
    /// New filter without online estimation.
    pub fn new(input: BoxedOp, predicate: Expr, metrics: Arc<OpMetrics>) -> Self {
        Filter {
            input,
            predicate,
            metrics,
            dne: None,
            scratch: None,
            done: false,
        }
    }

    /// Enable dne refinement given the input size and the optimizer's
    /// output estimate.
    pub fn with_dne(mut self, input_size: u64, optimizer_estimate: f64) -> Self {
        self.dne = Some(DneEstimator::new(input_size, optimizer_estimate));
        self
    }
}

impl Operator for Filter {
    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn next_batch(&mut self, out: &mut RowBatch) -> QResult<BatchStatus> {
        out.clear();
        if self.done {
            return Ok(BatchStatus::Exhausted);
        }
        if self.scratch.is_none() {
            let arity = self.input.schema().arity();
            self.scratch = Some(RowBatch::with_capacity(arity, out.capacity()));
        }
        loop {
            let scratch = self.scratch.as_mut().expect("scratch just ensured");
            scratch.clear();
            scratch.set_capacity(out.remaining());
            let status = self.input.next_batch(scratch)?;
            let n = scratch.len();
            let mut matched = 0u64;
            for r in 0..n {
                if let Some(dne) = &mut self.dne {
                    dne.observe_driver(1);
                }
                if self.predicate.eval_predicate_at(scratch, r)? {
                    out.push_from(scratch, r);
                    matched += 1;
                    if let Some(dne) = &mut self.dne {
                        dne.observe_output(1);
                    }
                }
            }
            if n > 0 {
                self.metrics.record_driver(n as u64);
                self.metrics.record_emitted_n(matched);
                if let Some(dne) = &self.dne {
                    self.metrics.set_estimated_total(dne.estimate());
                }
            }
            if status.is_exhausted() {
                self.done = true;
                self.metrics.mark_finished();
                return Ok(BatchStatus::Exhausted);
            }
            if out.is_full() {
                return Ok(BatchStatus::HasMore);
            }
        }
    }

    fn name(&self) -> &str {
        "filter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::ops::test_util::{col_i64, drain, int_table};
    use crate::ops::TableScan;

    fn scan(vals: &[i64]) -> BoxedOp {
        let t = int_table("t", "a", vals).into_shared();
        Box::new(TableScan::new(t, OpMetrics::with_initial_estimate(0.0)))
    }

    #[test]
    fn filters_rows() {
        let pred = Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(5i64));
        let m = OpMetrics::with_initial_estimate(0.0);
        let vals: Vec<i64> = (0..10).collect();
        let mut f = Filter::new(scan(&vals), pred, Arc::clone(&m));
        let rows = drain(&mut f);
        assert_eq!(col_i64(&rows, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(m.emitted(), 5);
        assert_eq!(m.driver_consumed(), 10);
        assert!(m.is_finished());
    }

    #[test]
    fn dne_refines_selectivity_online() {
        // All matches cluster at the front of the input, so early dne
        // extrapolation overshoots, converging once the driver is drained.
        let vals: Vec<i64> = (0..1000).collect();
        let pred = Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(500i64));
        let m = OpMetrics::with_initial_estimate(123.0);
        let mut f = Filter::new(scan(&vals), pred, Arc::clone(&m)).with_dne(1000, 123.0);
        // consume 100 rows of output (first 100 input rows all match)
        let mut src = crate::ops::RowSource::new(&mut f);
        for _ in 0..100 {
            src.next_row().unwrap().unwrap();
        }
        drop(src);
        // driver has consumed 100, output 100 → dne extrapolates 1000
        assert!((m.estimated_total() - 1000.0).abs() < 1e-6);
        let rest = drain(&mut f);
        assert_eq!(rest.len(), 400);
        assert_eq!(m.estimated_total(), 500.0);
    }

    #[test]
    fn empty_input() {
        let m = OpMetrics::with_initial_estimate(0.0);
        let pred = Expr::lit(true);
        let mut f = Filter::new(scan(&[]), pred, m);
        let mut src = crate::ops::RowSource::new(&mut f);
        assert!(src.next_row().unwrap().is_none());
        assert!(src.next_row().unwrap().is_none());
    }

    #[test]
    fn predicate_errors_propagate() {
        let m = OpMetrics::with_initial_estimate(0.0);
        let pred = Expr::col(0); // BIGINT, not BOOLEAN
        let mut f = Filter::new(scan(&[1]), pred, m);
        assert!(crate::ops::RowSource::new(&mut f).next_row().is_err());
    }

    #[test]
    fn wide_batches_match_strict_mode() {
        let pred = Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(500i64));
        let vals: Vec<i64> = (0..1000).rev().collect();
        let strict = {
            let m = OpMetrics::with_initial_estimate(0.0);
            let mut f = Filter::new(scan(&vals), pred.clone(), Arc::clone(&m)).with_dne(1000, 0.0);
            let rows = drain(&mut f);
            (col_i64(&rows, 0), m.estimated_total())
        };
        let wide = {
            let m = OpMetrics::with_initial_estimate(0.0);
            let mut f = Filter::new(scan(&vals), pred, Arc::clone(&m)).with_dne(1000, 0.0);
            let rows = crate::ops::test_util::drain_batched(&mut f, 64);
            (col_i64(&rows, 0), m.estimated_total())
        };
        assert_eq!(strict, wide);
    }
}
