//! Selection (σ) with optional dne cardinality refinement.
//!
//! Selections have no preprocessing phase, so per §4.3 the framework uses
//! the driver-node estimator here: on randomly ordered input it has zero
//! error in expectation.

use std::sync::Arc;

use qprog_core::dne::DneEstimator;
use qprog_types::{QResult, Row, SchemaRef};

use crate::expr::Expr;
use crate::metrics::OpMetrics;
use crate::ops::{BoxedOp, Operator};

/// Filters rows by a boolean predicate.
pub struct Filter {
    input: BoxedOp,
    predicate: Expr,
    metrics: Arc<OpMetrics>,
    /// dne refinement over (input consumed, output emitted).
    dne: Option<DneEstimator>,
    done: bool,
}

impl Filter {
    /// New filter without online estimation.
    pub fn new(input: BoxedOp, predicate: Expr, metrics: Arc<OpMetrics>) -> Self {
        Filter {
            input,
            predicate,
            metrics,
            dne: None,
            done: false,
        }
    }

    /// Enable dne refinement given the input size and the optimizer's
    /// output estimate.
    pub fn with_dne(mut self, input_size: u64, optimizer_estimate: f64) -> Self {
        self.dne = Some(DneEstimator::new(input_size, optimizer_estimate));
        self
    }
}

impl Operator for Filter {
    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn next(&mut self) -> QResult<Option<Row>> {
        if self.done {
            return Ok(None);
        }
        loop {
            match self.input.next()? {
                None => {
                    self.done = true;
                    self.metrics.mark_finished();
                    return Ok(None);
                }
                Some(row) => {
                    if let Some(dne) = &mut self.dne {
                        dne.observe_driver(1);
                    }
                    self.metrics.record_driver(1);
                    if self.predicate.eval_predicate(&row)? {
                        self.metrics.record_emitted();
                        if let Some(dne) = &mut self.dne {
                            dne.observe_output(1);
                            self.metrics.set_estimated_total(dne.estimate());
                        }
                        return Ok(Some(row));
                    } else if let Some(dne) = &self.dne {
                        self.metrics.set_estimated_total(dne.estimate());
                    }
                }
            }
        }
    }

    fn name(&self) -> &str {
        "filter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::ops::test_util::{col_i64, drain, int_table};
    use crate::ops::TableScan;

    fn scan(vals: &[i64]) -> BoxedOp {
        let t = int_table("t", "a", vals).into_shared();
        Box::new(TableScan::new(t, OpMetrics::with_initial_estimate(0.0)))
    }

    #[test]
    fn filters_rows() {
        let pred = Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(5i64));
        let m = OpMetrics::with_initial_estimate(0.0);
        let vals: Vec<i64> = (0..10).collect();
        let mut f = Filter::new(scan(&vals), pred, Arc::clone(&m));
        let rows = drain(&mut f);
        assert_eq!(col_i64(&rows, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(m.emitted(), 5);
        assert_eq!(m.driver_consumed(), 10);
        assert!(m.is_finished());
    }

    #[test]
    fn dne_refines_selectivity_online() {
        // All matches cluster at the front of the input, so early dne
        // extrapolation overshoots, converging once the driver is drained.
        let vals: Vec<i64> = (0..1000).collect();
        let pred = Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(500i64));
        let m = OpMetrics::with_initial_estimate(123.0);
        let mut f = Filter::new(scan(&vals), pred, Arc::clone(&m)).with_dne(1000, 123.0);
        // consume 100 rows of output (first 100 input rows all match)
        for _ in 0..100 {
            f.next().unwrap().unwrap();
        }
        // driver has consumed 100, output 100 → dne extrapolates 1000
        assert!((m.estimated_total() - 1000.0).abs() < 1e-6);
        let rest = drain(&mut f);
        assert_eq!(rest.len(), 400);
        assert_eq!(m.estimated_total(), 500.0);
    }

    #[test]
    fn empty_input() {
        let m = OpMetrics::with_initial_estimate(0.0);
        let pred = Expr::lit(true);
        let mut f = Filter::new(scan(&[]), pred, m);
        assert!(f.next().unwrap().is_none());
        assert!(f.next().unwrap().is_none());
    }

    #[test]
    fn predicate_errors_propagate() {
        let m = OpMetrics::with_initial_estimate(0.0);
        let pred = Expr::col(0); // BIGINT, not BOOLEAN
        let mut f = Filter::new(scan(&[1]), pred, m);
        assert!(f.next().is_err());
    }
}
