//! LIMIT operator.

use std::sync::Arc;

use qprog_types::{BatchStatus, QResult, RowBatch, SchemaRef};

use crate::metrics::OpMetrics;
use crate::ops::{BoxedOp, Operator};

/// Emits at most `limit` rows from its input.
pub struct Limit {
    input: BoxedOp,
    limit: usize,
    emitted: usize,
    metrics: Arc<OpMetrics>,
    /// Reused input batch, shrunk to the remaining quota before every pull
    /// so the input is never over-driven past the limit.
    scratch: Option<RowBatch>,
    done: bool,
}

impl Limit {
    /// New limit.
    pub fn new(input: BoxedOp, limit: usize, metrics: Arc<OpMetrics>) -> Self {
        Limit {
            input,
            limit,
            emitted: 0,
            metrics,
            scratch: None,
            done: false,
        }
    }
}

impl Operator for Limit {
    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn next_batch(&mut self, out: &mut RowBatch) -> QResult<BatchStatus> {
        out.clear();
        if self.done || self.emitted >= self.limit {
            if !self.done {
                self.done = true;
                self.metrics.mark_finished();
            }
            return Ok(BatchStatus::Exhausted);
        }
        if self.scratch.is_none() {
            let arity = self.input.schema().arity();
            self.scratch = Some(RowBatch::with_capacity(arity, out.capacity()));
        }
        loop {
            let quota = (self.limit - self.emitted).min(out.remaining());
            let scratch = self.scratch.as_mut().expect("scratch just ensured");
            scratch.clear();
            scratch.set_capacity(quota);
            let status = self.input.next_batch(scratch)?;
            let n = scratch.len();
            for r in 0..n {
                out.push_from(scratch, r);
            }
            self.emitted += n;
            self.metrics.record_emitted_n(n as u64);
            if status.is_exhausted() {
                self.done = true;
                self.metrics.mark_finished();
                return Ok(BatchStatus::Exhausted);
            }
            if out.is_full() || self.emitted >= self.limit {
                return Ok(BatchStatus::HasMore);
            }
        }
    }

    fn name(&self) -> &str {
        "limit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_util::{drain, int_table};
    use crate::ops::TableScan;

    fn scan(vals: &[i64]) -> BoxedOp {
        let t = int_table("t", "a", vals).into_shared();
        Box::new(TableScan::new(t, OpMetrics::with_initial_estimate(0.0)))
    }

    #[test]
    fn truncates() {
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut l = Limit::new(scan(&[1, 2, 3, 4, 5]), 3, Arc::clone(&m));
        assert_eq!(drain(&mut l).len(), 3);
        assert_eq!(m.emitted(), 3);
        assert!(m.is_finished());
        assert!(crate::ops::RowSource::new(&mut l)
            .next_row()
            .unwrap()
            .is_none());
    }

    #[test]
    fn shorter_input_than_limit() {
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut l = Limit::new(scan(&[1]), 10, m);
        assert_eq!(drain(&mut l).len(), 1);
    }

    #[test]
    fn zero_limit() {
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut l = Limit::new(scan(&[1, 2]), 0, Arc::clone(&m));
        assert!(crate::ops::RowSource::new(&mut l)
            .next_row()
            .unwrap()
            .is_none());
        assert!(m.is_finished());
    }

    #[test]
    fn wide_batches_never_over_pull_input() {
        let vals: Vec<i64> = (0..1000).collect();
        let t = int_table("t", "a", &vals).into_shared();
        let sm = OpMetrics::with_initial_estimate(0.0);
        let scan = Box::new(TableScan::new(t, Arc::clone(&sm)));
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut l = Limit::new(scan, 10, m);
        let rows = crate::ops::test_util::drain_batched(&mut l, 1024);
        assert_eq!(rows.len(), 10);
        assert_eq!(
            sm.emitted(),
            10,
            "limit must not drive its input past the quota"
        );
    }
}
