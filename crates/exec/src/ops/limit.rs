//! LIMIT operator.

use std::sync::Arc;

use qprog_types::{QResult, Row, SchemaRef};

use crate::metrics::OpMetrics;
use crate::ops::{BoxedOp, Operator};

/// Emits at most `limit` rows from its input.
pub struct Limit {
    input: BoxedOp,
    limit: usize,
    emitted: usize,
    metrics: Arc<OpMetrics>,
    done: bool,
}

impl Limit {
    /// New limit.
    pub fn new(input: BoxedOp, limit: usize, metrics: Arc<OpMetrics>) -> Self {
        Limit {
            input,
            limit,
            emitted: 0,
            metrics,
            done: false,
        }
    }
}

impl Operator for Limit {
    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn next(&mut self) -> QResult<Option<Row>> {
        if self.done || self.emitted >= self.limit {
            if !self.done {
                self.done = true;
                self.metrics.mark_finished();
            }
            return Ok(None);
        }
        match self.input.next()? {
            Some(row) => {
                self.emitted += 1;
                self.metrics.record_emitted();
                Ok(Some(row))
            }
            None => {
                self.done = true;
                self.metrics.mark_finished();
                Ok(None)
            }
        }
    }

    fn name(&self) -> &str {
        "limit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_util::{drain, int_table};
    use crate::ops::TableScan;

    fn scan(vals: &[i64]) -> BoxedOp {
        let t = int_table("t", "a", vals).into_shared();
        Box::new(TableScan::new(t, OpMetrics::with_initial_estimate(0.0)))
    }

    #[test]
    fn truncates() {
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut l = Limit::new(scan(&[1, 2, 3, 4, 5]), 3, Arc::clone(&m));
        assert_eq!(drain(&mut l).len(), 3);
        assert_eq!(m.emitted(), 3);
        assert!(m.is_finished());
        assert!(l.next().unwrap().is_none());
    }

    #[test]
    fn shorter_input_than_limit() {
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut l = Limit::new(scan(&[1]), 10, m);
        assert_eq!(drain(&mut l).len(), 1);
    }

    #[test]
    fn zero_limit() {
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut l = Limit::new(scan(&[1, 2]), 0, Arc::clone(&m));
        assert!(l.next().unwrap().is_none());
        assert!(m.is_finished());
    }
}
